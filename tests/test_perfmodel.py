"""The evaluation layer: paper data integrity, table builders, figures,
the curve-fit reproduction, and the analytic predictors."""

import pytest

from repro.perfmodel import (
    TABLE1,
    TABLE2,
    TABLE3,
    TABLE4,
    build_figure1,
    build_table,
    build_table1,
    build_table4,
    figure1_report,
    predict,
    reproduce_fit,
)


class TestPaperDataIntegrity:
    """The transcription itself must be internally consistent: the
    paper's printed speedups equal baseline/time within rounding."""

    @pytest.mark.parametrize("table", [TABLE1, TABLE2, TABLE3, TABLE4])
    def test_speedups_consistent(self, table):
        for row in table.rows:
            for variant, (time, speedup) in row.variants.items():
                implied = row.baseline / time
                assert implied == pytest.approx(speedup, abs=0.011), (
                    table.name, row.n, variant)

    def test_sequential_speedup_is_one(self):
        for table in (TABLE1, TABLE3, TABLE4):
            for row in table.rows:
                assert row.baseline <= row.seq * 1.0001

    def test_geometries(self):
        assert TABLE1.geometry == 3 and TABLE1.dims == 1
        assert TABLE2.geometry == 8 and TABLE2.dims == 1
        assert TABLE3.geometry == 2 and TABLE3.dims == 2
        assert TABLE4.geometry == 3 and TABLE4.dims == 2

    def test_row_counts(self):
        assert len(TABLE1.rows) == 6
        assert len(TABLE2.rows) == 1
        assert len(TABLE3.rows) == 5
        assert len(TABLE4.rows) == 6


class TestTableBuilders:
    def test_subset_by_orders(self):
        comparison = build_table1(orders={1536})
        assert len(comparison.rows) == 1
        assert comparison.rows[0].n == 1536

    def test_columns_follow_paper(self):
        comparison = build_table1(orders={1536})
        assert comparison.columns == [
            "navp-1d-dsc", "navp-1d-pipeline", "navp-1d-phase",
            "scalapack-1d"]

    def test_cells_populated(self):
        comparison = build_table1(orders={1536})
        cell = comparison.rows[0].cells["navp-1d-phase"]
        assert cell.paper_time == 24.55
        assert cell.model_time > 0
        assert cell.speedup_ratio == pytest.approx(
            cell.model_speedup / 2.67)

    def test_render_contains_both_sources(self):
        comparison = build_table1(orders={1536})
        text = comparison.render()
        assert "65.44" in text      # paper sequential
        assert "navp-1d-phase" in text

    def test_full_table4_shapes(self):
        comparison = build_table4()
        assert comparison.failed_shapes() == []

    def test_shape_report_structure(self):
        comparison = build_table1(orders={1536})
        report = comparison.shape_report()
        assert all(len(entry) == 3 for entry in report)
        assert any("improves on" in claim for claim, _ok, _d in report)


class TestFigure1:
    @pytest.fixture(scope="class")
    def panels(self):
        # ab=64 keeps the runs compute-dominated, as in the paper's
        # schematic; at tiny blocks the staggering latency of (d) can
        # exceed its fill-time win over (c).
        return build_figure1(p=3, ab=64)

    def test_four_panels(self, panels):
        assert [p.label for p in panels] == ["(a)", "(b)", "(c)", "(d)"]

    def test_all_claims_hold(self, panels):
        report = figure1_report(panels)
        assert all(ok for _c, ok, _d in report), report

    def test_diagrams_render(self, panels):
        for panel in panels:
            assert "PE0" in panel.diagram
            assert "legend" in panel.diagram


class TestSeqFit:
    def test_fit_matches_paper_stars(self):
        report = reproduce_fit()
        for n, _actual, fitted, _free, star in report.rows:
            if star is not None:
                assert fitted == pytest.approx(star, rel=0.05), n

    def test_render(self):
        assert "9216" in reproduce_fit().render()


class TestAnalytic:
    def test_known_variants(self):
        for variant in ("sequential", "navp-1d-dsc", "navp-2d-phase",
                        "mpi-gentleman", "scalapack-summa"):
            assert predict(variant, 1536, 128, 3) > 0

    def test_sequential_matches_model(self):
        t = predict("sequential", 1536, 128, 1)
        assert t == pytest.approx(65.44, rel=0.001)

    def test_phase_faster_than_dsc_analytically(self):
        dsc = predict("navp-1d-dsc", 1536, 128, 3)
        phase = predict("navp-1d-phase", 1536, 128, 3)
        assert phase < dsc / 2
