"""The cubic least-squares fit must recover polynomials exactly."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.curvefit import fit_polynomial, fit_sequential_times

coeff = st.floats(-10.0, 10.0, allow_nan=False)


class TestExactRecovery:
    @given(st.tuples(coeff, coeff, coeff, coeff))
    def test_recovers_random_cubics(self, coeffs):
        xs = np.array([512.0, 1024.0, 1536.0, 2048.0, 3072.0])
        scaled = xs / xs.max()
        ys = sum(c * scaled**k for k, c in enumerate(coeffs))
        fit = fit_polynomial(xs, ys, degree=3)
        predict_at = np.array([4608.0, 9216.0])
        expected = sum(c * (predict_at / xs.max()) ** k
                       for k, c in enumerate(coeffs))
        assert np.allclose(fit(predict_at), expected, rtol=1e-8, atol=1e-8)

    def test_matmul_like_series(self):
        """A pure O(n^3) series extrapolates exactly."""
        rate = 1.1e8
        xs = np.array([768, 1536, 2304, 3072], dtype=float)
        ys = 2 * xs**3 / rate
        fit = fit_sequential_times(xs, ys)
        assert fit(9216) == pytest.approx(2 * 9216**3 / rate, rel=1e-9)

    def test_scalar_and_array_calls(self):
        fit = fit_polynomial([1, 2, 3, 4], [1, 8, 27, 64], degree=3)
        assert isinstance(fit(5), float)
        out = fit(np.array([5.0, 6.0]))
        assert out.shape == (2,)

    def test_residuals(self):
        fit = fit_polynomial([1, 2, 3, 4, 5], [1, 4, 9, 16, 25], degree=2)
        res = fit.residuals([1, 2, 3], [1, 4, 9])
        assert np.allclose(res, 0.0, atol=1e-9)


class TestValidation:
    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_polynomial([1, 2, 3], [1, 2, 3], degree=3)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            fit_polynomial([1, 2, 3, 4], [1, 2, 3], degree=2)

    def test_all_zero_abscissae(self):
        with pytest.raises(ValueError):
            fit_polynomial([0, 0, 0, 0], [1, 2, 3, 4], degree=3)

    def test_sequential_requires_increasing(self):
        with pytest.raises(ValueError):
            fit_sequential_times([1536, 1024, 2048, 3072], [1, 2, 3, 4])

    def test_sequential_requires_positive(self):
        with pytest.raises(ValueError):
            fit_sequential_times([512, 1024, 2048, 3072], [1, -2, 3, 4])
