"""Every matmul variant must compute exactly C = A @ B.

This is the backbone of the reproduction: the *same* messenger code
whose virtual-time schedule regenerates the paper's tables also
produces the numerically verified product here.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, PartitionError
from repro.matmul import MatmulCase, run_variant, variant_names
from repro.util.validation import assert_allclose

ALL_1D = ["navp-1d-dsc", "navp-1d-pipeline", "navp-1d-phase",
          "scalapack-1d"]
ALL_2D = ["navp-2d-dsc", "navp-2d-pipeline", "navp-2d-phase",
          "mpi-gentleman", "mpi-gentleman-tuned", "mpi-cannon",
          "scalapack-summa", "doall-naive", "doall-replicated"]


class TestAllVariants:
    @pytest.mark.parametrize("variant", ALL_1D)
    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_1d_variants(self, variant, p):
        case = MatmulCase(n=24, ab=2, seed=3)
        result = run_variant(variant, case, geometry=p, trace=False)
        assert_allclose(result.c, case.reference(),
                        what=f"{variant} on {p} PEs")

    @pytest.mark.parametrize("variant", ALL_2D)
    @pytest.mark.parametrize("g", [1, 2, 3])
    def test_2d_variants(self, variant, g):
        case = MatmulCase(n=24, ab=4, seed=4)
        result = run_variant(variant, case, geometry=g, trace=False)
        assert_allclose(result.c, case.reference(),
                        what=f"{variant} on {g}x{g}")

    def test_sequential(self):
        case = MatmulCase(n=32, ab=8)
        result = run_variant("sequential", case)
        assert_allclose(result.c, case.reference())

    @pytest.mark.parametrize("variant", ALL_2D)
    def test_2d_nonsquare_blocks_per_pe(self, variant):
        """Several algorithmic blocks per distribution block."""
        case = MatmulCase(n=36, ab=3, seed=5)
        result = run_variant(variant, case, geometry=3, trace=False)
        assert_allclose(result.c, case.reference(), what=variant)

    @settings(max_examples=12, deadline=None)
    @given(
        st.sampled_from(["navp-1d-phase", "navp-2d-pipeline",
                         "navp-2d-phase", "mpi-gentleman"]),
        st.integers(1, 4),   # blocks per distribution block per axis
        st.integers(1, 3),   # grid order
        st.integers(1, 5),   # algorithmic block order
        st.integers(0, 10),  # seed
    )
    def test_random_geometries(self, variant, per_db, g, ab, seed):
        n = g * per_db * ab
        case = MatmulCase(n=n, ab=ab, seed=seed)
        result = run_variant(variant, case, geometry=g, trace=False)
        assert_allclose(result.c, case.reference(), what=variant)

    def test_float32(self):
        case = MatmulCase(n=24, ab=4, dtype=np.float32)
        result = run_variant("navp-2d-phase", case, geometry=3, trace=False)
        assert_allclose(result.c, case.reference(), rtol=1e-4)


class TestShadowMode:
    @pytest.mark.parametrize("variant", ALL_1D + ALL_2D)
    def test_shadow_runs_and_returns_no_c(self, variant):
        geometry = 3
        case = MatmulCase(n=48, ab=8, shadow=True)
        result = run_variant(variant, case, geometry=geometry, trace=False)
        assert result.c is None
        assert result.time > 0

    def test_shadow_time_equals_real_time(self):
        """The virtual schedule must not depend on the data mode."""
        real = MatmulCase(n=48, ab=8, seed=1)
        shadow = MatmulCase(n=48, ab=8, shadow=True)
        for variant, g in [("navp-1d-phase", 3), ("navp-2d-pipeline", 3),
                           ("mpi-gentleman", 3), ("scalapack-summa", 3)]:
            t_real = run_variant(variant, real, geometry=g, trace=False).time
            t_shadow = run_variant(variant, shadow, geometry=g,
                                   trace=False).time
            assert t_real == pytest.approx(t_shadow, rel=1e-12), variant

    def test_shadow_reference_rejected(self):
        with pytest.raises(ConfigurationError):
            MatmulCase(n=8, ab=2, shadow=True).reference()


class TestCaseValidation:
    def test_block_must_divide(self):
        with pytest.raises(PartitionError):
            MatmulCase(n=10, ab=3)

    def test_unknown_variant(self):
        with pytest.raises(ConfigurationError, match="unknown variant"):
            run_variant("navp-3d", MatmulCase(n=8, ab=2))

    def test_variant_names_complete(self):
        names = variant_names()
        for expected in ALL_1D + ALL_2D + ["sequential"]:
            assert expected in names

    def test_geometry_must_divide(self):
        with pytest.raises(PartitionError):
            run_variant("navp-1d-dsc", MatmulCase(n=8, ab=2), geometry=3)

    def test_gflops_property(self):
        case = MatmulCase(n=24, ab=4)
        result = run_variant("sequential", case)
        assert result.gflops == pytest.approx(
            2 * 24**3 / result.time / 1e9)
