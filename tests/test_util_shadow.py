"""ShadowArray must mirror NumPy's shape semantics exactly.

The whole simulation strategy rests on algorithms behaving identically
over shadows and real arrays; the property tests here drive random
slicing/arithmetic through both and compare the resulting shapes.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.shadow import ShadowArray, is_shadow, shadow_like, shadow_zeros

dims = st.integers(1, 12)


@st.composite
def shape2d(draw):
    return (draw(dims), draw(dims))


@st.composite
def slice_for(draw, dim):
    start = draw(st.integers(0, dim))
    stop = draw(st.integers(0, dim))
    step = draw(st.integers(1, 3))
    return slice(start, stop, step)


class TestMetadata:
    def test_basic(self):
        s = ShadowArray((4, 6), np.float32)
        assert s.shape == (4, 6)
        assert s.ndim == 2
        assert s.size == 24
        assert s.nbytes == 96
        assert s.dtype == np.float32

    def test_int_shape(self):
        assert ShadowArray(5).shape == (5,)

    def test_transpose(self):
        assert ShadowArray((2, 7)).T.shape == (7, 2)

    def test_negative_shape_rejected(self):
        with pytest.raises(ValueError):
            ShadowArray((-1, 3))

    def test_copy_and_astype(self):
        s = ShadowArray((3, 3), np.float32)
        assert s.copy().shape == (3, 3)
        assert s.astype(np.float64).dtype == np.float64

    def test_helpers(self):
        assert is_shadow(shadow_zeros((2, 2)))
        assert not is_shadow(np.zeros((2, 2)))
        real = np.zeros((3, 5), dtype=np.float64)
        assert shadow_like(real).shape == (3, 5)
        assert shadow_like(real).dtype == np.float64

    def test_fill_is_noop(self):
        ShadowArray((2, 2)).fill(1.0)


class TestIndexingParity:
    @given(shape2d(), st.data())
    def test_slices_match_numpy(self, shape, data):
        real = np.zeros(shape, dtype=np.float32)
        shadow = ShadowArray(shape, np.float32)
        s0 = data.draw(slice_for(shape[0]))
        s1 = data.draw(slice_for(shape[1]))
        assert shadow[s0, s1].shape == real[s0, s1].shape

    @given(shape2d(), st.data())
    def test_int_index_drops_dim(self, shape, data):
        real = np.zeros(shape, dtype=np.float32)
        shadow = ShadowArray(shape, np.float32)
        i = data.draw(st.integers(-shape[0], shape[0] - 1))
        assert shadow[i].shape == real[i].shape

    def test_out_of_bounds(self):
        with pytest.raises(IndexError):
            ShadowArray((3, 3))[5]

    def test_too_many_indices(self):
        with pytest.raises(IndexError):
            ShadowArray((3, 3))[1, 1, 1]

    def test_negative_step_rejected(self):
        with pytest.raises(TypeError):
            ShadowArray((4,))[::-1]

    def test_setitem_validates_shapes(self):
        s = ShadowArray((4, 4))
        s[0:2, :] = ShadowArray((2, 4))   # ok
        s[0:2, :] = ShadowArray((1, 4))   # broadcastable
        with pytest.raises(ValueError):
            s[0:2, :] = ShadowArray((3, 4))


class TestArithmeticParity:
    @given(st.integers(1, 8), st.integers(1, 8), st.integers(1, 8))
    def test_matmul_shapes(self, m, k, n):
        out = ShadowArray((m, k)) @ ShadowArray((k, n))
        assert out.shape == (m, n)

    def test_matmul_mismatch(self):
        with pytest.raises(ValueError):
            ShadowArray((2, 3)) @ ShadowArray((4, 2))

    def test_matmul_requires_2d(self):
        with pytest.raises(TypeError):
            ShadowArray((4,)) @ ShadowArray((4,))

    @given(shape2d())
    def test_add_same_shape(self, shape):
        assert (ShadowArray(shape) + ShadowArray(shape)).shape == shape

    def test_broadcasting(self):
        a = ShadowArray((3, 1))
        b = ShadowArray((1, 4))
        assert (a + b).shape == (3, 4)
        assert (a * b).shape == (3, 4)

    def test_broadcast_mismatch(self):
        with pytest.raises(ValueError):
            ShadowArray((3, 2)) + ShadowArray((3, 4))

    def test_scalar_ops(self):
        s = ShadowArray((2, 5))
        assert (s * 2.0).shape == (2, 5)
        assert (1.0 + s).shape == (2, 5)

    def test_iadd_keeps_identity(self):
        s = ShadowArray((4, 4))
        t = s
        s += ShadowArray((4, 4))
        assert s is t

    def test_iadd_shape_mismatch(self):
        s = ShadowArray((4, 4))
        with pytest.raises(ValueError):
            s += ShadowArray((5, 4))


class TestAlgorithmParity:
    """The exact operation mix the matmul carriers perform."""

    def test_strip_update(self):
        c = ShadowArray((48, 16))
        mA = ShadowArray((4, 48))
        b = ShadowArray((48, 16))
        c[8:12, :] = mA @ b  # must not raise

    def test_block_accumulate(self):
        c = ShadowArray((16, 16))
        c += ShadowArray((16, 4)) @ ShadowArray((4, 16))
