"""Property-based testing of the IR stack with randomly generated
programs.

A small independent evaluator executes programs directly by recursion
over the tree (no continuations, no fabrics); hypothesis then generates
random navigational programs — nested loops, branches, arithmetic,
node reads/writes, hops — and every execution path of the real stack
must agree with it:

* the continuation interpreter (``Interp.next_action`` driving),
* the same interpreter with the continuation pickled at every step
  (what process migration does),
* ``IRMessenger`` on the SimFabric,
* ``IRMessenger`` on the ThreadFabric.
"""

from __future__ import annotations

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import Grid1D, SimFabric, ThreadFabric
from repro.machine import FAST_TEST_MACHINE
from repro.navp import ir
from repro.navp.interp import Interp, IRMessenger
from repro.navp.kernels import get_kernel

PLACES = 3

# ---------------------------------------------------------------------------
# reference evaluator: direct recursion, no continuations
# ---------------------------------------------------------------------------


def ref_eval(expr, env, node_vars):
    if isinstance(expr, ir.Const):
        return expr.value
    if isinstance(expr, ir.Var):
        return env[expr.name]
    if isinstance(expr, ir.Bin):
        left = ref_eval(expr.left, env, node_vars)
        right = ref_eval(expr.right, env, node_vars)
        return ir._BIN_OPS[expr.op](left, right)
    if isinstance(expr, ir.NodeGet):
        key = tuple(ref_eval(e, env, node_vars) for e in expr.idx)
        store = node_vars[expr.name]
        if not expr.idx:
            return store
        return store[key[0] if len(key) == 1 else key]
    if isinstance(expr, ir.Index):
        base = ref_eval(expr.base, env, node_vars)
        key = tuple(ref_eval(e, env, node_vars) for e in expr.idx)
        return base[key[0] if len(key) == 1 else key]
    raise AssertionError(expr)


def ref_run(program: ir.Program, places: dict, start=(0,), env=None):
    """Execute directly; returns final per-place node vars."""
    state = {"at": start}
    env = dict(env or {})

    def run_body(body):
        for stmt in body:
            node_vars = places[state["at"]]
            if isinstance(stmt, ir.For):
                count = ref_eval(stmt.count, env, node_vars)
                for i in range(count):
                    env[stmt.var] = i
                    run_body(stmt.body)
            elif isinstance(stmt, ir.If):
                if ref_eval(stmt.cond, env, node_vars):
                    run_body(stmt.then)
                else:
                    run_body(stmt.orelse)
            elif isinstance(stmt, ir.Assign):
                env[stmt.var] = ref_eval(stmt.expr, env, node_vars)
            elif isinstance(stmt, ir.NodeSet):
                key = tuple(ref_eval(e, env, node_vars) for e in stmt.idx)
                value = ref_eval(stmt.expr, env, node_vars)
                if not stmt.idx:
                    node_vars[stmt.name] = value
                else:
                    node_vars.setdefault(stmt.name, {})[
                        key[0] if len(key) == 1 else key] = value
            elif isinstance(stmt, ir.ComputeStmt):
                argvals = tuple(ref_eval(e, env, node_vars)
                                for e in stmt.args)
                env[stmt.out] = get_kernel(stmt.kernel).fn(*argvals)
            elif isinstance(stmt, ir.HopStmt):
                coord = tuple(ref_eval(e, env, node_vars)
                              for e in stmt.place)
                state["at"] = coord
            else:
                raise AssertionError(stmt)

    run_body(program.body)
    return places


# ---------------------------------------------------------------------------
# random program generation
# ---------------------------------------------------------------------------

_COUNTER = [0]


@st.composite
def int_expr(draw, loop_vars, depth=0):
    """An integer-valued expression over in-scope loop variables."""
    options = ["const"]
    if loop_vars:
        options.append("var")
    if depth < 2:
        options.append("bin")
    kind = draw(st.sampled_from(options))
    if kind == "const":
        return ir.Const(draw(st.integers(0, 7)))
    if kind == "var":
        return ir.Var(draw(st.sampled_from(sorted(loop_vars))))
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(int_expr(loop_vars, depth + 1))
    right = draw(int_expr(loop_vars, depth + 1))
    return ir.Bin(op, left, right)


@st.composite
def place_expr(draw, loop_vars):
    """An expression guaranteed to evaluate into [0, PLACES)."""
    inner = draw(int_expr(loop_vars))
    # |expr| % PLACES: the generator may produce negatives via '-'
    squared = ir.Bin("*", inner, inner)
    return ir.Bin("%", squared, ir.Const(PLACES))


@st.composite
def statements(draw, loop_vars, depth):
    n = draw(st.integers(1, 3 if depth else 4))
    out = []
    for _ in range(n):
        choices = ["assign", "nodeset", "hop", "compute"]
        if depth < 2:
            choices += ["for", "if"]
        kind = draw(st.sampled_from(choices))
        if kind == "for":
            var = f"v{len(loop_vars)}_{depth}"
            body = draw(statements(loop_vars | {var}, depth + 1))
            out.append(ir.For(var, ir.Const(draw(st.integers(0, 3))),
                              tuple(body)))
        elif kind == "if":
            cond = ir.Bin("==",
                          ir.Bin("%", draw(int_expr(loop_vars)),
                                 ir.Const(2)),
                          ir.Const(0))
            then = draw(statements(loop_vars, depth + 1))
            orelse = draw(statements(loop_vars, depth + 1)) \
                if draw(st.booleans()) else ()
            out.append(ir.If(cond, tuple(then), tuple(orelse)))
        elif kind == "assign":
            out.append(ir.Assign(
                draw(st.sampled_from(["a", "b", "c"])),
                draw(int_expr(loop_vars))))
        elif kind == "nodeset":
            out.append(ir.NodeSet(
                "out", (draw(int_expr(loop_vars)),),
                draw(int_expr(loop_vars))))
        elif kind == "hop":
            out.append(ir.HopStmt((draw(place_expr(loop_vars)),)))
        elif kind == "compute":
            out.append(ir.ComputeStmt(
                "copy", (draw(int_expr(loop_vars)),),
                out=draw(st.sampled_from(["a", "b", "c"]))))
    return out


@st.composite
def programs(draw):
    body = draw(statements(frozenset(), 0))
    _COUNTER[0] += 1
    return ir.register_program(
        ir.Program(f"random-prog-{_COUNTER[0]}", tuple(body)),
        replace=True)


def fresh_places():
    return {(j,): {"seed": j} for j in range(PLACES)}


def run_with_interp(program, migrate_every_step=False):
    places = fresh_places()
    interp = Interp(program.name, env={"a": 0, "b": 0, "c": 0})
    at = (0,)
    while True:
        action = interp.next_action(places[at])
        if action is None:
            return places
        if migrate_every_step:
            snap = pickle.loads(pickle.dumps(interp.agent_snapshot()))
            interp = Interp.from_snapshot(snap)
        kind = action[0]
        if kind == "hop":
            at = action[1]
        elif kind == "compute":
            _, kname, argvals, out, _ck = action
            interp.env[out] = get_kernel(kname).fn(*argvals)
        else:
            raise AssertionError(action)


def run_on_fabric(program, fabric_cls):
    fabric = fabric_cls(Grid1D(PLACES), machine=FAST_TEST_MACHINE)
    for coord, node_vars in fresh_places().items():
        fabric.load(coord, **node_vars)
    fabric.inject((0,), IRMessenger(program.name,
                                    env={"a": 0, "b": 0, "c": 0}))
    result = fabric.run()
    return {coord: dict(node_vars)
            for coord, node_vars in result.places.items()}


class TestRandomPrograms:
    @settings(max_examples=60, deadline=None)
    @given(programs())
    def test_interpreter_matches_reference(self, program):
        expected = ref_run(program, fresh_places(),
                           env={"a": 0, "b": 0, "c": 0})
        assert run_with_interp(program) == expected

    @settings(max_examples=40, deadline=None)
    @given(programs())
    def test_pickled_continuations_match_reference(self, program):
        expected = ref_run(program, fresh_places(),
                           env={"a": 0, "b": 0, "c": 0})
        assert run_with_interp(program, migrate_every_step=True) == expected

    @settings(max_examples=30, deadline=None)
    @given(programs())
    def test_sim_fabric_matches_reference(self, program):
        expected = ref_run(program, fresh_places(),
                           env={"a": 0, "b": 0, "c": 0})
        assert run_on_fabric(program, SimFabric) == expected

    @settings(max_examples=15, deadline=None)
    @given(programs())
    def test_thread_fabric_matches_reference(self, program):
        expected = ref_run(program, fresh_places(),
                           env={"a": 0, "b": 0, "c": 0})
        assert run_on_fabric(program, ThreadFabric) == expected
