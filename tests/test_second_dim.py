"""The hierarchical step: deriving Figure 11 from the 1-D phased suite."""

import pytest

from repro.errors import TransformError
from repro.fabric import Grid2D, SimFabric, ThreadFabric
from repro.fabric.process import ProcessFabric
from repro.machine import FAST_TEST_MACHINE, SUN_BLADE_100
from repro.navp import ir
from repro.navp.interp import IRMessenger
from repro.transform import (
    SecondDimSpec,
    assemble_c,
    derive_chain,
    layout_second_dim,
    second_dim,
)
from repro.util.validation import assert_allclose, random_matrix

V = ir.Var
C = ir.Const


@pytest.fixture(scope="module")
def suite3():
    chain = derive_chain(3)
    return second_dim(chain.phased, SecondDimSpec(g=3))


def _run(suite, g, ab, fabric_kind="sim", machine=None, seed=81):
    a = random_matrix(g * ab, seed)
    b = random_matrix(g * ab, seed + 1)
    layout = layout_second_dim(a, b, SecondDimSpec(g=g))
    if fabric_kind == "process":
        fabric = ProcessFabric(Grid2D(g), timeout=90.0)
    else:
        cls = SimFabric if fabric_kind == "sim" else ThreadFabric
        fabric = cls(Grid2D(g),
                     machine=machine or FAST_TEST_MACHINE)
    for coord, node_vars in layout.items():
        fabric.load(coord, **node_vars)
    if fabric_kind == "process":
        fabric.inject((0, 0), suite.main.name)
    else:
        fabric.inject((0, 0), IRMessenger(suite.main.name))
    result = fabric.run()
    return assemble_c(result.places, g, ab), a @ b, result


class TestStructure:
    def test_row_carrier_lifted_into_its_row(self, suite3):
        tour = suite3.row_carrier.body[1]
        hop = tour.body[0]
        assert hop.place[0] == V("mi")          # confined to grid row mi
        assert isinstance(tour.body[1], ir.WaitStmt)  # EP guard

    def test_reads_redirected_to_the_dropped_copy(self, suite3):
        from repro.transform.rewrite import collect

        def mentions_b_store(stmt):
            if not isinstance(stmt, ir.ComputeStmt):
                return False
            return any(
                isinstance(arg, ir.NodeGet) and arg.name == "B"
                for arg in stmt.args
            )

        assert not collect(suite3.row_carrier.body, mentions_b_store)

    def test_producer_schedule_is_the_swapped_sigma(self, suite3):
        producer_tour = suite3.col_carrier.body[1]
        hop = producer_tour.body[0]
        # (((g-1) - mj) + mi) % g — sigma with mi and mj swapped
        expected = ir.Bin(
            "%", ir.Bin("+", ir.Bin("-", C(2), V("mj")), V("mi")), C(3))
        assert hop.place == (expected, V("mj"))
        assert isinstance(producer_tour.body[1], ir.NodeSet)
        assert isinstance(producer_tour.body[2], ir.SignalStmt)

    def test_main_walks_the_antidiagonal(self, suite3):
        loop = suite3.main.body[0]
        assert isinstance(loop.body[0], ir.HopStmt)
        injected = {s.program for s in loop.body
                    if isinstance(s, ir.InjectStmt)}
        assert injected == {suite3.row_carrier.name,
                            suite3.col_carrier.name}


class TestSemantics:
    @pytest.mark.parametrize("g", [2, 3, 4])
    def test_exact_product_on_sim(self, g):
        chain = derive_chain(g)
        suite = second_dim(chain.phased, SecondDimSpec(g=g))
        c, want, _result = _run(suite, g, ab=6)
        assert_allclose(c, want, what=f"second-dim g={g}")

    def test_on_threads(self, suite3):
        c, want, _result = _run(suite3, 3, ab=8, fabric_kind="thread")
        assert_allclose(c, want)

    def test_on_processes(self, suite3):
        c, want, _result = _run(suite3, 3, ab=8, fabric_kind="process")
        assert_allclose(c, want)

    def test_timing_close_to_handcoded_fig11(self, suite3):
        """The derived suite's virtual time matches the hand-written
        Figure 11 IR within a modest band at matching granularity."""
        from repro.matmul.ir2d import build_fig11, run_ir2d_suite

        g, ab = 3, 64
        _c, _w, derived = _run(suite3, g, ab=ab, fabric_kind="sim",
                               machine=SUN_BLADE_100)
        a = random_matrix(g * ab, 91)
        b = random_matrix(g * ab, 92)
        hand = build_fig11(g, a, b, ab=ab)
        _c2, hand_result = run_ir2d_suite(hand, "sim",
                                          machine=SUN_BLADE_100)
        assert derived.time == pytest.approx(hand_result.time, rel=0.35)


class TestGuards:
    def test_requires_tour_starting_with_hop(self):
        bad_carrier = ir.register_program(ir.Program("sd-bad-carrier", (
            ir.For("mj", C(3), (ir.Assign("x", C(1)),)),
        ), params=("mi",)), replace=True)
        bad_main = ir.register_program(
            ir.Program("sd-bad-main", ()), replace=True)
        from repro.transform.pipeline import PipelinedSuite

        with pytest.raises(TransformError, match="hop"):
            second_dim(PipelinedSuite(main=bad_main, carrier=bad_carrier),
                       SecondDimSpec(g=3))

    def test_requires_1d_tour(self, suite3):
        """Applying it twice is refused: the tour is already 2-D."""
        from repro.transform.pipeline import PipelinedSuite

        with pytest.raises(TransformError, match="1-D"):
            second_dim(
                PipelinedSuite(main=suite3.main,
                               carrier=suite3.row_carrier),
                SecondDimSpec(g=3))
