"""Fast-path engine guarantees: dispatch table, immediate deque,
failure propagation, O(1) accounting, and zero-cost tracing.

These tests pin the *semantics* the optimization work must preserve;
``tests/test_table_goldens.py`` pins the resulting numbers.
"""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.fabric import desim
from repro.fabric.desim import (
    PERF_STATS,
    Resource,
    Semaphore,
    SimProcess,
    Simulator,
    Timeout,
    Trigger,
)
from repro.fabric.sim import SimFabric
from repro.fabric.topology import Grid1D
from repro.fabric.trace import TraceLog
from repro.matmul.kinds import MatmulCase
from repro.matmul.runner import run_variant


class TestDispatchTable:
    """Every waitable type must route through the type-keyed table."""

    def test_timeout(self):
        sim = Simulator()
        seen = []

        def proc():
            yield Timeout(1.5)
            seen.append(sim.now)

        sim.spawn(proc())
        assert sim.run() == 1.5
        assert seen == [1.5]

    def test_resource_acquire(self):
        sim = Simulator()
        res = sim.resource(1)
        order = []

        def proc(tag):
            yield res.acquire()
            order.append((tag, sim.now))
            yield Timeout(1.0)
            res.release()

        sim.spawn(proc("a"))
        sim.spawn(proc("b"))
        sim.run()
        assert order == [("a", 0.0), ("b", 1.0)]

    def test_semaphore_acquire(self):
        sim = Simulator()
        sem = sim.semaphore(0)
        seen = []

        def waiter():
            yield sem.acquire()
            seen.append(sim.now)

        def signaler():
            yield Timeout(2.0)
            sem.release()

        sim.spawn(waiter())
        sim.spawn(signaler())
        sim.run()
        assert seen == [2.0]

    def test_trigger_wait(self):
        sim = Simulator()
        trig = sim.trigger()
        got = []

        def waiter():
            value = yield trig
            got.append(value)

        def firer():
            yield Timeout(1.0)
            trig.fire("payload")

        sim.spawn(waiter())
        sim.spawn(firer())
        sim.run()
        assert got == ["payload"]

    def test_process_join(self):
        sim = Simulator()

        def child():
            yield Timeout(3.0)
            return 42

        def parent(target):
            result = yield target
            assert sim.now == 3.0
            return result

        target = sim.spawn(child())
        joined = sim.spawn(parent(target))
        sim.run()
        assert joined.result == 42

    def test_waitable_subclass_dispatches_like_base(self):
        class SlowTimeout(Timeout):
            pass

        sim = Simulator()

        def proc():
            yield SlowTimeout(2.0)

        sim.spawn(proc())
        assert sim.run() == 2.0
        # the subclass is now cached in the dispatch table
        assert SlowTimeout in desim._DISPATCH

    def test_unsupported_yield_fails_with_process_name(self):
        sim = Simulator()

        def proc():
            yield "not a waitable"

        sim.spawn(proc(), name="offender")
        with pytest.raises(SimulationError, match="offender.*unsupported"):
            sim.run()

    def test_acquire_token_is_shared(self):
        # acquire() hands back the resource's interned token: cheap and
        # safe because _Acquire is immutable.
        sim = Simulator()
        res = sim.resource(2)
        assert res.acquire() is res.acquire()
        sem = sim.semaphore(1)
        assert sem.acquire() is sem.acquire()


class TestFailureStopsDraining:
    def test_failure_halts_event_draining(self):
        """A process exception must stop the run loop immediately, not
        after the queue drains — later events must never execute."""
        sim = Simulator()
        executed = []

        def bomb():
            yield Timeout(1.0)
            raise RuntimeError("boom")

        def background(tag, delay):
            yield Timeout(delay)
            executed.append(tag)

        sim.spawn(background("before", 0.5))
        sim.spawn(bomb())
        sim.spawn(background("after", 2.0))
        with pytest.raises(SimulationError, match="boom"):
            sim.run()
        assert executed == ["before"]

    def test_failure_beats_same_time_immediates(self):
        sim = Simulator()
        executed = []

        def bomb():
            yield Timeout(1.0)
            raise RuntimeError("kapow")

        def chain():
            yield Timeout(1.0)
            # schedules a zero-delay wakeup that must never run, because
            # the bomb (spawned first) fails at the same timestamp
            yield Timeout(0.0)
            executed.append("chain")

        sim.spawn(bomb())
        sim.spawn(chain())
        with pytest.raises(SimulationError, match="kapow"):
            sim.run()
        assert executed == []


class TestAccounting:
    def test_alive_count_tracks_spawn_and_finish(self):
        sim = Simulator()

        def proc(delay):
            yield Timeout(delay)

        sim.spawn(proc(1.0))
        sim.spawn(proc(2.0))
        assert sim.alive_count() == 2
        sim.run(until=1.5)
        assert sim.alive_count() == 1
        sim.run()
        assert sim.alive_count() == 0

    def test_events_executed_counts_run_events(self):
        sim = Simulator()

        def proc():
            for _ in range(5):
                yield Timeout(1.0)

        sim.spawn(proc())
        before = PERF_STATS["events"]
        sim.run()
        # 1 initial resume + 5 timeout wakeups
        assert sim.events_executed == 6
        assert PERF_STATS["events"] - before == 6

    def test_deadlock_detail_capped_at_20(self):
        sim = Simulator()
        sem = sim.semaphore(0)

        def stuck(i):
            yield sem.acquire()

        for i in range(25):
            sim.spawn(stuck(i), name=f"stuck{i}")
        with pytest.raises(DeadlockError) as err:
            sim.run()
        message = str(err.value)
        assert "25 process(es) blocked" in message
        assert "(+5 more)" in message
        assert message.count("waiting on") == 20


class TestDeterminism:
    def _run_once(self):
        case = MatmulCase(n=1024, ab=128, shadow=True)
        result = run_variant("navp-2d-phase", case, trace=True)
        return result.time, [repr(e) for e in result.trace.events]

    def test_two_runs_byte_identical(self):
        t1, trace1 = self._run_once()
        t2, trace2 = self._run_once()
        assert t1.hex() == t2.hex()
        assert trace1 == trace2


class TestZeroCostTracing:
    def _fabric(self, trace, monkeypatch=None):
        fabric = SimFabric(Grid1D(2), trace=trace)

        class M:
            name = "m"

            def main(self):
                yield self.hop((1,))
                yield self.compute(fn=lambda: 7, flops=1e6, kind="navp")
                yield self.signal_event("EP", 0)
                yield self.wait_event("EP", 0)

            def hop(self, coord):
                from repro.fabric import effects as fx
                return fx.Hop(coord)

            def compute(self, **kw):
                from repro.fabric import effects as fx
                return fx.Compute(**kw)

            def signal_event(self, name, *args):
                from repro.fabric import effects as fx
                return fx.SignalEvent(name, args)

            def wait_event(self, name, *args):
                from repro.fabric import effects as fx
                return fx.WaitEvent(name, args)

        fabric.inject((0,), M())
        return fabric

    def test_trace_false_records_nothing_and_never_calls_recorder(
            self, monkeypatch):
        def exploding_record(self, **kw):  # pragma: no cover - must not run
            raise AssertionError("record() called on a trace=False run")

        monkeypatch.setattr(TraceLog, "record", exploding_record)
        fabric = self._fabric(trace=False)
        result = fabric.run()
        assert result.time > 0
        assert len(result.trace.events) == 0

    def test_trace_true_still_records(self):
        fabric = self._fabric(trace=True)
        result = fabric.run()
        kinds = {e.kind for e in result.trace.events}
        assert {"hop", "compute"} <= kinds

    def test_disabled_tracelog_record_is_noop(self):
        log = TraceLog(enabled=False)
        log.record(t0=0.0, t1=1.0, place=0, actor="x", kind="compute")
        assert len(log) == 0
