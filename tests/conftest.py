"""Shared fixtures: machines and matmul cases sized for fast tests."""

from __future__ import annotations

import pytest

from repro.machine import FAST_TEST_MACHINE, SUN_BLADE_100
from repro.matmul import MatmulCase


@pytest.fixture
def paper_machine():
    """The calibrated SUN Blade 100 model."""
    return SUN_BLADE_100


@pytest.fixture
def test_machine():
    """Slow flops, fast network: compute-dominated, easy to reason about."""
    return FAST_TEST_MACHINE


@pytest.fixture
def small_case():
    """A real (non-shadow) case divisible by 2, 3 and 4 PE geometries."""
    return MatmulCase(n=48, ab=4, seed=101)


@pytest.fixture
def paper_case_shadow():
    """Table 1/4's smallest row, in shadow mode."""
    return MatmulCase(n=1536, ab=128, shadow=True)
