"""Dependence analyzer edge cases (the transform/deps blind spots).

Covers the cases the old structural rules missed or over-rejected:
reads through ``Index`` on carried agent variables, loop bounds that
reference node variables, the wavefront ``D[r-1, c]`` flow dependence,
and commutative key normalization (``k+1`` vs ``1+k``).
"""

import pytest

from repro.analysis.deps import (
    FLOW,
    OUTPUT,
    analyze_loop,
    carried_write_diagnostics,
    loop_diagnostics,
)
from repro.errors import TransformError
from repro.navp import ir
from repro.transform.deps import (
    check_carries_read_only,
    check_loop_independent,
)

V = ir.Var
C = ir.Const


def _loop(body, var="i", count=C(4), name="deps-case", params=()):
    return ir.Program(name, (ir.For(var, count, tuple(body)),),
                      params=tuple(params))


class TestWavefrontRejection:
    """The ``D[r-1, c]`` case: keyed by the loop variable, still carried."""

    def _wavefront(self):
        prev = ir.NodeGet("D", (ir.Bin("-", V("r"), C(1)), V("c")))
        return _loop([
            ir.NodeSet("D", (V("r"), V("c")),
                       ir.Bin("+", prev, C(1))),
        ], var="r", name="wavefront-row", params=("c",))

    def test_flow_dependence_detected(self):
        analysis = analyze_loop(self._wavefront(), "r")
        carried = analysis.carried
        assert len(carried) == 1
        dep = carried[0]
        assert dep.kind == FLOW
        assert dep.var == "D"
        # the affine engine solves the exact distance: the read at
        # iteration r touches the entry written at iteration r-1
        assert dep.vector.distance == 1
        assert dep.vector.direction == "<"
        assert dep.vector.exact

    def test_diagnosed_and_gated(self):
        report = loop_diagnostics(self._wavefront(), "r")
        assert [d.category for d in report] == ["carried-dependence"]
        with pytest.raises(TransformError, match="dependence"):
            check_loop_independent(self._wavefront(), "r")


class TestCommutativeKeys:
    def test_k_plus_1_matches_1_plus_k(self):
        prog = _loop([
            ir.NodeSet("X", (ir.Bin("+", V("k"), C(1)),), C(0)),
            ir.Assign("y", ir.NodeGet("X", (ir.Bin("+", C(1), V("k")),))),
        ], var="k")
        assert loop_diagnostics(prog, "k").ok
        check_loop_independent(prog, "k")  # must not raise

    def test_non_commutative_keys_still_differ(self):
        prog = _loop([
            ir.NodeSet("X", (ir.Bin("-", V("k"), C(1)),), C(0)),
            ir.Assign("y", ir.NodeGet("X", (ir.Bin("-", C(1), V("k")),))),
        ], var="k")
        assert [d.category for d in loop_diagnostics(prog, "k")] \
            == ["carried-dependence"]


class TestLoopBoundsReadingNodeVars:
    """For counts are expressions; node reads inside them must count."""

    def test_bound_read_is_summarized(self):
        prog = _loop([
            ir.For("j", ir.NodeGet("bound", (V("i"),)), (
                ir.Assign("y", V("j")),
            )),
        ])
        analysis = analyze_loop(prog, "i")
        reads = [a for s in analysis.summaries for a in s.node_reads]
        assert [a.var for a in reads] == ["bound"]

    def test_bound_against_unkeyed_write_is_carried(self):
        prog = _loop([
            ir.For("j", ir.NodeGet("bound", ()), (
                ir.NodeSet("bound", (V("i"),), V("j")),
            )),
        ])
        report = loop_diagnostics(prog, "i")
        assert "carried-dependence" in [d.category for d in report]

    def test_bound_matching_write_key_is_local(self):
        prog = _loop([
            ir.NodeSet("bound", (V("i"),), C(7)),
            ir.For("j", ir.NodeGet("bound", (V("i"),)), (
                ir.Assign("y", V("j")),
            )),
        ])
        assert loop_diagnostics(prog, "i").ok


class TestAgentVariables:
    def test_index_read_of_preloop_carry_is_not_flagged(self):
        # the pipelined-carrier shape: mA picked up before the tour
        # loop, read through Index inside it — legal, loop-invariant.
        prog = ir.Program("carrier-like", (
            ir.Assign("mA", ir.NodeGet("A", (V("mi"),))),
            ir.For("mj", C(3), (
                ir.HopStmt((V("mj"),)),
                ir.ComputeStmt("gemm",
                               (ir.Index(V("mA"), (V("mj"),)),
                                ir.NodeGet("B", (V("mj"),))),
                               out="t"),
                ir.NodeSet("Cv", (V("mj"),), V("t")),
            )),
        ), params=("mi",))
        analysis = analyze_loop(prog, "mj")
        uses = {v for s in analysis.summaries for v in s.agent_uses}
        assert "mA" in uses  # the Index read is seen...
        assert loop_diagnostics(prog, "mj").ok  # ...but not flagged

    def test_accumulator_rezeroed_each_iteration_is_legal(self):
        prog = _loop([
            ir.Assign("t", C(0)),
            ir.ComputeStmt("gemm", (V("t"), ir.NodeGet("B", (V("i"),))),
                           out="t"),
            ir.NodeSet("Cv", (V("i"),), V("t")),
        ])
        assert loop_diagnostics(prog, "i").ok

    def test_read_modify_write_without_reinit_is_carried(self):
        prog = _loop([
            ir.ComputeStmt("gemm", (V("t"), ir.NodeGet("B", (V("i"),))),
                           out="t"),
            ir.NodeSet("Cv", (V("i"),), V("t")),
        ])
        report = loop_diagnostics(prog, "i")
        assert [d.category for d in report] == ["carried-dependence"]
        assert "agent variable 't'" in report[0].message


class TestWriteCollisions:
    def test_unkeyed_write_collides(self):
        prog = _loop([
            ir.NodeSet("acc", (), ir.Bin("+", ir.NodeGet("acc", ()),
                                         V("i"))),
        ])
        report = loop_diagnostics(prog, "i")
        assert "write-collision" in [d.category for d in report]
        assert any("collide" in d.message for d in report)

    def test_differing_write_keys_collide(self):
        prog = _loop([
            ir.NodeSet("X", (V("i"),), C(0)),
            ir.NodeSet("X", (ir.Bin("+", V("i"), C(1)),), C(1)),
        ])
        analysis = analyze_loop(prog, "i")
        assert any(d.kind == OUTPUT and d.carried
                   for d in analysis.dependences)
        assert any("collide" in d.message
                   for d in loop_diagnostics(prog, "i"))


class TestIfNestedReads:
    def test_read_inside_branch_is_seen(self):
        prog = _loop([
            ir.NodeSet("W", (V("i"),), C(0)),
            ir.If(ir.Bin("==", V("i"), C(0)), (
                ir.Assign("y", ir.NodeGet("W", ())),
            )),
        ])
        report = loop_diagnostics(prog, "i")
        assert "carried-dependence" in [d.category for d in report]
        # the diagnostic points into the then-branch
        flagged = [d for d in report
                   if d.category == "carried-dependence"]
        assert any(isinstance(step, tuple) and step[1] == "then"
                   for d in flagged for step in d.path)


class TestCarriedWrites:
    def test_stale_carry_refused(self):
        prog = _loop([
            ir.NodeSet("A", (V("i"),), C(0)),
        ])
        report = carried_write_diagnostics(prog, "i", ["A"])
        assert [d.category for d in report] == ["stale-carry"]
        with pytest.raises(TransformError, match="stale"):
            check_carries_read_only(prog, "i", ["A"])

    def test_read_only_carry_passes(self):
        prog = _loop([
            ir.Assign("mA", ir.NodeGet("A", (V("i"),))),
        ])
        assert carried_write_diagnostics(prog, "i", ["A"]).ok
        check_carries_read_only(prog, "i", ["A"])  # must not raise
