"""The zero-copy data plane: codec, multi-buffer wire, coalescing.

Bottom-up property coverage of the PR-7 data plane:

* :mod:`repro.fabric.payload` — out-of-band buffer extraction, the
  in-band threshold, view-only byte accounting, zero-copy aliasing;
* multi-buffer frames over :class:`repro.fabric.wire.FrameSocket` —
  dribbled 1-byte delivery, truncated buffer tables, version skew
  (a VERSION-1 peer is refused loudly), bound enforcement;
* hop coalescing end to end — a burst workload's frame count drops by
  the batch factor while results and per-hop accounting are unchanged,
  and a fault-plan chaos run over coalesced frames still converges to
  the golden answer.
"""

import socket as socket_mod
import struct
import threading

import numpy as np
import pytest

from repro.fabric import Grid1D, payload
from repro.fabric.socket import SocketFabric
from repro.fabric.wire import (
    FRAME_CMD,
    FRAME_RUN,
    HEADER,
    MAGIC,
    MAX_BUFFERS,
    MAX_FRAME,
    VERSION,
    FrameSocket,
    WireClosed,
    WireError,
    encode_frame,
    frame_nbytes,
)
from repro.navp import ir
from repro.navp.interp import IRMessenger
from repro.resilience.faults import FaultPlan
from repro.wavefront.irprog import build_wavefront_ir
from repro.wavefront.navp import _gather, _layout
from repro.wavefront.problem import WavefrontCase

V = ir.Var
C = ir.Const

# enough float64 elements to clear the out-of-band threshold
_BIG = payload.OOB_THRESHOLD // 8 * 2


def _pair():
    a, b = socket_mod.socketpair()
    return FrameSocket(a), FrameSocket(b)


def _bg(fn, *args):
    """Run a send in a thread — a socketpair's kernel buffer is smaller
    than an out-of-band frame, so send and recv must overlap."""
    t = threading.Thread(target=fn, args=args, daemon=True)
    t.start()
    return t


class TestPayloadCodec:
    def test_large_block_goes_out_of_band(self):
        arr = np.arange(_BIG, dtype=np.float64)
        frame, buffers = payload.encode({"A": arr})
        assert len(buffers) == 1
        assert buffers[0].nbytes == arr.nbytes
        # the frame itself holds structure only, not the block bytes
        assert len(frame) < 256

    def test_small_block_stays_in_band(self):
        arr = np.arange(8, dtype=np.float64)
        frame, buffers = payload.encode({"A": arr})
        assert buffers == []
        out = payload.decode(frame)
        np.testing.assert_array_equal(out["A"], arr)

    def test_roundtrip_rebuilds_equal_arrays(self):
        obj = {"A": np.arange(_BIG, dtype=np.float64),
               "B": np.ones((3, _BIG // 4), dtype=np.float64),
               "k": 7, "name": "blk"}
        out = payload.decode(*payload.encode(obj))
        assert out["k"] == 7 and out["name"] == "blk"
        np.testing.assert_array_equal(out["A"], obj["A"])
        np.testing.assert_array_equal(out["B"], obj["B"])

    def test_encode_side_is_zero_copy(self):
        """The out-of-band buffer aliases the source array's memory."""
        arr = np.arange(_BIG, dtype=np.float64)
        _frame, buffers = payload.encode(arr)
        before = arr[0]
        arr[0] = -1.0
        view = np.frombuffer(buffers[0], dtype=np.float64)
        assert view[0] == -1.0  # same memory, not a copy
        arr[0] = before

    def test_decode_over_mutable_buffers_is_writable(self):
        """The wire hands freshly allocated bytearray-backed views;
        arrays rebuilt over them must be writable in place."""
        arr = np.arange(_BIG, dtype=np.float64)
        frame, buffers = payload.encode(arr)
        received = [memoryview(bytearray(b)) for b in buffers]
        out = payload.decode(frame, received)
        out[0] = 42.0  # would raise on a read-only reconstruction
        assert out[0] == 42.0

    def test_contiguous_view_ships_sliced_bytes_only(self):
        base = np.zeros((64, _BIG // 16), dtype=np.float64)
        band = base[:4]  # contiguous row band
        cost = payload.encoded_nbytes(band)
        assert band.nbytes <= cost < base.nbytes // 4

    def test_strided_view_degrades_to_copy_of_slice(self):
        """A column slice is not contiguous: numpy's reducer copies it
        — but only the sliced bytes, never the base array."""
        base = np.zeros((_BIG // 16, 64), dtype=np.float64)
        col = base[:, :2]
        cost = payload.encoded_nbytes(col)
        assert cost < base.nbytes // 8
        out = payload.decode(*payload.encode(col))
        np.testing.assert_array_equal(out, col)

    def test_nbytes_counts_frame_plus_buffers(self):
        arr = np.arange(_BIG, dtype=np.float64)
        frame, buffers = payload.encode(arr)
        assert payload.nbytes(frame, buffers) == len(frame) + arr.nbytes
        assert payload.encoded_nbytes(arr) == payload.nbytes(
            frame, buffers)


class TestMultiBufferWire:
    def test_multibuffer_roundtrip(self):
        left, right = _pair()
        try:
            obj = {"A": np.arange(_BIG, dtype=np.float64),
                   "B": np.full(_BIG, 2.5)}
            frame, buffers = payload.encode(obj)
            assert len(buffers) == 2
            sizes = []
            t = _bg(lambda: sizes.append(
                left.send(FRAME_RUN, frame, gen=3, buffers=buffers)))
            got = right.recv()
            t.join()
            assert sizes == [frame_nbytes(frame, buffers)]
            assert got.gen == 3 and len(got.buffers) == 2
            out = payload.decode(got.payload, got.buffers)
            np.testing.assert_array_equal(out["A"], obj["A"])
            np.testing.assert_array_equal(out["B"], obj["B"])
        finally:
            left.close()
            right.close()

    def test_dribbled_multibuffer_frame_reassembles(self):
        """TCP may deliver any byte split — including single bytes
        straddling the buffer table and buffer segments."""
        a, b = socket_mod.socketpair()
        right = FrameSocket(b)
        try:
            arr = np.arange(payload.OOB_THRESHOLD // 8 + 16,
                            dtype=np.float64)
            frame, buffers = payload.encode(("x", arr))
            data = encode_frame(FRAME_RUN, frame, gen=1, buffers=buffers)
            step = 1 if len(data) < 4096 else 473  # odd prime stride

            def dribble():
                for i in range(0, len(data), step):
                    a.sendall(data[i:i + step])

            t = _bg(dribble)
            got = right.recv()
            t.join()
            out = payload.decode(got.payload, got.buffers)
            np.testing.assert_array_equal(out[1], arr)
        finally:
            a.close()
            right.close()

    def test_truncated_buffer_table_is_wire_closed(self):
        """EOF inside the buffer table (or a buffer segment) must be a
        loud close, never a silent short frame."""
        a, b = socket_mod.socketpair()
        right = FrameSocket(b)
        try:
            arr = np.arange(_BIG, dtype=np.float64)
            frame, buffers = payload.encode(arr)
            data = encode_frame(FRAME_RUN, frame, buffers=buffers)
            a.sendall(data[:HEADER.size + 4])  # half the buffer table
            a.close()
            with pytest.raises(WireClosed):
                right.recv()
        finally:
            right.close()

    def test_truncated_buffer_segment_is_wire_closed(self):
        a, b = socket_mod.socketpair()
        right = FrameSocket(b)
        try:
            arr = np.arange(_BIG, dtype=np.float64)
            frame, buffers = payload.encode(arr)
            data = encode_frame(FRAME_RUN, frame, buffers=buffers)

            def cut_short():
                a.sendall(data[:-100])  # buffer segment cut short
                a.close()

            t = _bg(cut_short)
            with pytest.raises(WireClosed):
                right.recv()
            t.join()
        finally:
            right.close()

    def test_version1_peer_is_refused_loudly(self):
        """An old single-buffer peer (VERSION 1, no buffer-count
        field) is rejected at its first frame, never half-parsed."""
        old_header = struct.Struct("!4sBBHdI")
        a, b = socket_mod.socketpair()
        right = FrameSocket(b)
        try:
            a.sendall(old_header.pack(MAGIC, 1, FRAME_CMD, 0, 0.0, 10)
                      + b"x" * 10)
            with pytest.raises(WireError, match="upgraded together"):
                right.recv()
        finally:
            a.close()
            right.close()

    def test_absurd_buffer_count_is_rejected(self):
        a, b = socket_mod.socketpair()
        right = FrameSocket(b)
        try:
            a.sendall(HEADER.pack(MAGIC, VERSION, FRAME_CMD, 0, 0.0,
                                  0, MAX_BUFFERS + 1))
            with pytest.raises(WireError, match="buffer count"):
                right.recv()
        finally:
            a.close()
            right.close()

    def test_absurd_buffer_total_is_rejected(self):
        """Payload within bounds but buffer table pushing the frame
        over MAX_FRAME is refused before any allocation."""
        a, b = socket_mod.socketpair()
        right = FrameSocket(b)
        try:
            a.sendall(HEADER.pack(MAGIC, VERSION, FRAME_CMD, 0, 0.0,
                                  16, 1))
            a.sendall(struct.pack("!Q", MAX_FRAME))
            with pytest.raises(WireError, match="exceeds"):
                right.recv()
        finally:
            a.close()
            right.close()

    def test_send_rejects_too_many_buffers(self):
        left, right = _pair()
        try:
            with pytest.raises(WireError, match="buffers"):
                left.send(FRAME_RUN, b"",
                          buffers=[b"x"] * (MAX_BUFFERS + 1))
        finally:
            left.close()
            right.close()

    def test_empty_payload_with_buffers(self):
        left, right = _pair()
        try:
            left.send(FRAME_RUN, b"", buffers=[b"abc", b"defg"])
            got = right.recv()
            assert got.payload == b""
            assert [bytes(b) for b in got.buffers] == [b"abc", b"defg"]
        finally:
            left.close()
            right.close()


def _register_burst(n_children: int):
    """A parent at PE 0 emits a burst of children that hop to PE 1 —
    the traffic shape coalescing exists for."""
    child = ir.register_program(ir.Program("dp-burst-child", (
        ir.HopStmt((C(1),)),
        ir.NodeSet("tally", (), ir.Bin("+", ir.NodeGet("tally"), C(1))),
    )), replace=True)
    ir.register_program(ir.Program("dp-burst", (
        ir.For("i", C(n_children), (
            ir.InjectStmt(child.name, ()),
        )),
    )), replace=True)


class TestCoalescing:
    def _run(self, n, coalesce):
        _register_burst(n)
        fabric = SocketFabric(Grid1D(2), timeout=60.0, trace=True,
                              window=2 * n, coalesce=coalesce,
                              coalesce_delay_s=0.05)
        fabric.load((1,), tally=0)
        fabric.inject((0,), "dp-burst")
        return fabric.run()

    def test_coalescing_cuts_frames_at_least_3x(self):
        """The same burst, coalesced 8-per-frame vs one frame per hop:
        ≥ 3x fewer data frames on the wire, identical results and
        identical per-hop accounting."""
        n = 24
        batched = self._run(n, coalesce=8)
        single = self._run(n, coalesce=1)
        assert batched.places[(1,)]["tally"] == n
        assert single.places[(1,)]["tally"] == n
        hops_b = batched.trace.hops_sent().get(0, 0)
        hops_s = single.trace.hops_sent().get(0, 0)
        assert hops_b == hops_s == n  # coalescing never changes hops
        frames_b = batched.trace.frames_sent().get(0, 0)
        frames_s = single.trace.frames_sent().get(0, 0)
        assert frames_s >= n
        assert frames_b * 3 <= frames_s, (
            f"coalescing shipped {frames_b} frames vs {frames_s} "
            f"uncoalesced — less than the required 3x reduction")
        assert batched.trace.max_coalesced_batch() > 1

    def test_coalescing_respects_credit_window(self):
        """Batching must not loosen the mailbox bound: every hop in a
        batch holds its own credit."""
        n, w = 16, 4
        _register_burst(n)
        fabric = SocketFabric(Grid1D(2), timeout=60.0, trace=True,
                              window=w, coalesce=8)
        fabric.load((1,), tally=0)
        fabric.inject((0,), "dp-burst")
        result = fabric.run()
        assert result.places[(1,)]["tally"] == n
        hwm = result.trace.mailbox_hwm()
        assert hwm[1] <= w, (
            f"mailbox high-water {hwm[1]} exceeds window {w} "
            f"under coalescing")

    def test_chaos_over_coalesced_frames_converges(self):
        """Randomized faults (SIGKILL, drops, a duplicate) over a
        coalescing resilient run: the journal is per-hop, so replay
        re-coalesces deterministically and converges to golden."""
        P = 2
        case = WavefrontCase(n=16, b=4)
        main, _carrier = build_wavefront_ir(P, case.nblocks, case.b)
        plan = FaultPlan.random(47, places=P, crashes=1, drops=2,
                                duplicates=1, dup_kind="hop",
                                horizon=0.3)
        fabric = SocketFabric(Grid1D(P), timeout=90.0, faults=plan,
                              checkpoint_every=4, max_restarts=2,
                              trace=True, coalesce=4)
        _layout(fabric, case, P)
        fabric.inject((0,), IRMessenger(main.name))
        result = fabric.run()
        d = _gather(result, case, P)
        assert np.allclose(d, case.reference()), (
            "wavefront diverged from golden under faults + coalescing")
        assert not fabric.lost
