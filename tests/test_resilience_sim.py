"""Fault injection on the virtual-time fabric.

The central contract: with recovery ON, injected faults are *masked* —
the fault and its repair appear in the trace, but the simulated
timeline and every result stay bit-exact (compared through
``float.hex``). With recovery OFF, the same plan genuinely destroys
messengers and node state.
"""

import pytest

from repro.errors import DeadlockError
from repro.fabric import Grid1D, SimFabric
from repro.fabric import effects as fx
from repro.navp import Messenger, ir
from repro.navp.interp import IRMessenger
from repro.resilience import Crash, FaultPlan, MessageFault, SlowNode
from repro.resilience.faults import STATS
from repro.resilience.recovery import RecoveryPolicy

V = ir.Var
C = ir.Const


def _register_tour(hops=4):
    ir.register_program(ir.Program("resil-tour", (
        ir.Assign("acc", C(0)),
        ir.For("i", C(hops), (
            ir.HopStmt((V("i"),)),
            ir.Assign("acc", ir.Bin("+", V("acc"), ir.NodeGet("chunk"))),
            ir.NodeSet("mark", (), V("acc")),
        )),
    ), ()), replace=True)


def _run_tour(**fabric_kw):
    _register_tour()
    fabric = SimFabric(Grid1D(4), trace=True, use_cache_model=False,
                       **fabric_kw)
    for j in range(4):
        fabric.load((j,), chunk=10 ** j)
    fabric.inject((0,), IRMessenger("resil-tour"))
    result = fabric.run()
    marks = [result.places[(j,)].get("mark") for j in range(4)]
    return result, marks


def _reset_stats():
    for key in STATS:
        STATS[key] = 0


class TestMaskedFaults:
    def test_empty_plan_builds_no_resilience_state(self):
        fabric = SimFabric(Grid1D(2), faults=FaultPlan())
        assert fabric._resil is None
        assert fabric.checkpoints is None

    def test_masked_drop_is_bit_exact(self):
        clean, marks = _run_tour()
        assert marks == [1, 11, 111, 1111]
        _reset_stats()
        plan = FaultPlan(faults=(
            MessageFault(action="drop", kind="hop", nth=2),))
        faulted, fmarks = _run_tour(faults=plan)
        assert fmarks == marks
        assert faulted.time.hex() == clean.time.hex()
        assert STATS == {"fired": 1, "masked": 1, "lost": 0}
        assert len(faulted.trace.faults()) == 1
        kinds = [e.kind for e in faulted.trace.recoveries()]
        assert "retry" in kinds

    def test_masked_crash_is_bit_exact_and_checkpointed(self):
        clean, marks = _run_tour()
        _reset_stats()
        plan = FaultPlan(faults=(Crash(place=2, at_hop=2),))
        faulted, fmarks = _run_tour(faults=plan)
        assert fmarks == marks
        assert faulted.time.hex() == clean.time.hex()
        kinds = {e.kind for e in faulted.trace.events}
        assert {"fault", "checkpoint", "restore"} <= kinds

    def test_crash_repair_event_ordering(self):
        """The repair protocol is snapshot, then fail, then restore."""
        plan = FaultPlan(faults=(Crash(place=2, at_hop=2),))
        faulted, _marks = _run_tour(faults=plan)
        events = [e.kind for e in faulted.trace.events
                  if e.kind in ("checkpoint", "fault", "restore")]
        assert events == ["checkpoint", "fault", "restore"]

    def test_masked_duplicate_is_deduplicated(self):
        clean, marks = _run_tour()
        _reset_stats()
        plan = FaultPlan(faults=(
            MessageFault(action="duplicate", kind="hop", nth=2),))
        faulted, fmarks = _run_tour(faults=plan)
        assert fmarks == marks
        assert faulted.time.hex() == clean.time.hex()

    def test_retry_cost_perturbs_time(self):
        """A lossy-link model with real retransmit cost slows the run."""
        clean, _ = _run_tour()
        plan = FaultPlan(faults=(
            MessageFault(action="drop", kind="hop", nth=2),))
        faulted, marks = _run_tour(
            faults=plan,
            recovery=RecoveryPolicy(retry_cost_s=0.001))
        assert marks == [1, 11, 111, 1111]
        assert faulted.time > clean.time

    def test_delay_fault_perturbs_time(self):
        clean, _ = _run_tour()
        plan = FaultPlan(faults=(
            MessageFault(action="delay", kind="hop", nth=2,
                         seconds=0.01),))
        faulted, marks = _run_tour(faults=plan)
        assert marks == [1, 11, 111, 1111]
        assert faulted.time >= clean.time + 0.01

    def test_slow_node_stretches_compute(self):
        ir.register_program(ir.Program("resil-slow", (
            ir.HopStmt((C(1),)),
            ir.ComputeStmt("gemm_acc", (ir.NodeGet("c"), ir.NodeGet("a"),
                                        ir.NodeGet("b")), out="r"),
            ir.NodeSet("c", (), V("r")),
        ), ()), replace=True)
        import numpy as np

        def run(plan=None):
            fabric = SimFabric(Grid1D(2), trace=False,
                               use_cache_model=False, faults=plan)
            fabric.load((1,), a=np.ones((8, 8)), b=np.ones((8, 8)),
                        c=np.zeros((8, 8)))
            fabric.inject((0,), IRMessenger("resil-slow"))
            return fabric.run()

        clean = run()
        slowed = run(FaultPlan(faults=(SlowNode(place=1, factor=4.0),)))
        assert slowed.time > clean.time

    def test_same_plan_same_traces(self):
        plan = FaultPlan(faults=(
            MessageFault(action="drop", kind="hop", nth=2),
            Crash(place=3, at_hop=3),
        ))
        first, _ = _run_tour(faults=plan)
        second, _ = _run_tour(faults=plan)
        assert first.trace.events == second.trace.events
        assert first.time.hex() == second.time.hex()


class TestUnmaskedFaults:
    def test_dropped_hop_destroys_the_messenger(self):
        _reset_stats()
        plan = FaultPlan(faults=(
            MessageFault(action="drop", kind="hop", nth=3),))
        result, marks = _run_tour(faults=plan, recovery=False)
        # the first HopStmt is co-hosted (not a transfer), so nth=3 is
        # the leg into place 3: three legs done, then lost in flight
        assert marks == [1, 11, 111, None]
        assert STATS["lost"] == 1
        assert result.trace.lost_bytes() > 0

    def test_deadlock_report_names_the_casualty(self):
        ir.register_program(ir.Program("resil-producer", (
            ir.HopStmt((C(1),)),
            ir.SignalStmt("EP", (), C(1)),
        ), ()), replace=True)
        ir.register_program(ir.Program("resil-consumer", (
            ir.WaitStmt("EP", ()),
            ir.NodeSet("got", (), C(1)),
        ), ()), replace=True)
        plan = FaultPlan(faults=(
            MessageFault(action="drop", kind="hop", nth=1),))
        fabric = SimFabric(Grid1D(2), trace=False, use_cache_model=False,
                           faults=plan, recovery=False)
        fabric.inject((0,), IRMessenger("resil-producer"))
        fabric.inject((1,), IRMessenger("resil-consumer"))
        with pytest.raises(DeadlockError) as err:
            fabric.run()
        text = str(err.value)
        assert "recovery disabled" in text
        assert "resil-producer" in text

    def test_unmasked_crash_wipes_node_state(self):
        plan = FaultPlan(faults=(Crash(place=1, at_hop=1),))
        _result, marks = _run_tour(faults=plan, recovery=False)
        # place 1 crashed before the messenger landed there
        assert marks[0] == 1
        assert marks[1] is None


class TestSendFaults:
    class _Sender(Messenger):
        def main(self):
            yield fx.Send(dst=(1,), tag="x", payload=42, nbytes=64)

    class _Receiver(Messenger):
        def main(self):
            msg = yield fx.Recv(src=(0,), tag="x")
            self.vars["got"] = msg.payload

    def _run_pair(self, plan=None, recovery=True):
        fabric = SimFabric(Grid1D(2), trace=True, use_cache_model=False,
                           faults=plan, recovery=recovery)
        fabric.inject((0,), self._Sender())
        fabric.inject((1,), self._Receiver())
        return fabric.run()

    def test_masked_send_drop_is_bit_exact(self):
        clean = self._run_pair()
        plan = FaultPlan(faults=(
            MessageFault(action="drop", kind="send", nth=1),))
        faulted = self._run_pair(plan)
        assert faulted.places[(1,)]["got"] == 42
        assert faulted.time.hex() == clean.time.hex()
        assert len(faulted.trace.faults()) == 1

    def test_duplicate_send_is_deduplicated(self):
        clean = self._run_pair()
        plan = FaultPlan(faults=(
            MessageFault(action="duplicate", kind="send", nth=1),))
        faulted = self._run_pair(plan)
        assert faulted.places[(1,)]["got"] == 42
        assert faulted.time.hex() == clean.time.hex()

    def test_unmasked_send_drop_deadlocks_receiver(self):
        plan = FaultPlan(faults=(
            MessageFault(action="drop", kind="send", nth=1),))
        with pytest.raises(DeadlockError):
            self._run_pair(plan, recovery=False)
