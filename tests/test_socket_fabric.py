"""SocketFabric: real TCP transport, flow control, failure detection.

Three layers of coverage, bottom up:

* the framed wire protocol (:mod:`repro.fabric.wire`) over a local
  socketpair — roundtrips, partial delivery, loud desync errors;
* the phi-accrual failure detector as a pure unit;
* the fabric itself — migration over TCP, generator rejection,
  credit-window backpressure bounding the receiver mailbox, soft
  hop deadlines, and SIGKILL recovery through heartbeat loss.

Scale is kept small: every fabric test forks worker processes and
opens real sockets.
"""

import pickle
import socket as socket_mod
import time

import pytest

from repro.errors import ConfigurationError, FabricError
from repro.fabric import Grid1D, make_fabric
from repro.fabric.socket import PhiAccrualDetector, SocketFabric
from repro.fabric.wire import (
    FRAME_CMD,
    FRAME_RUN,
    HEADER,
    MAGIC,
    MAX_FRAME,
    VERSION,
    FrameSocket,
    WireClosed,
    WireError,
    encode_frame,
    frame_nbytes,
)
from repro.navp import ir
from repro.navp.kernels import KERNELS, register_kernel
from repro.navp.messenger import Messenger
from repro.resilience.faults import Crash, FaultPlan

V = ir.Var
C = ir.Const


def register(name, body, params=()):
    return ir.register_program(
        ir.Program(name, tuple(body), tuple(params)), replace=True)


def _pair():
    a, b = socket_mod.socketpair()
    return FrameSocket(a), FrameSocket(b)


class TestWire:
    def test_roundtrip_preserves_header_and_payload(self):
        left, right = _pair()
        try:
            payload = pickle.dumps(("run", [1, 2, 3]))
            n = left.send(FRAME_RUN, payload, gen=7, deadline=123.5)
            assert n == frame_nbytes(payload) == HEADER.size + len(payload)
            frame = right.recv()
            assert frame.kind == FRAME_RUN
            assert frame.gen == 7
            assert frame.deadline == 123.5
            assert pickle.loads(frame.payload) == ("run", [1, 2, 3])
        finally:
            left.close()
            right.close()

    def test_recv_reassembles_dribbled_bytes(self):
        """TCP may deliver any byte split; recv buffers until whole."""
        a, b = socket_mod.socketpair()
        right = FrameSocket(b)
        try:
            data = encode_frame(FRAME_CMD, b"x" * 100, gen=3)
            for i in range(0, len(data), 7):
                a.sendall(data[i:i + 7])
            frame = right.recv()
            assert frame.gen == 3
            assert frame.payload == b"x" * 100
        finally:
            a.close()
            right.close()

    def test_two_frames_in_one_burst(self):
        a, b = socket_mod.socketpair()
        right = FrameSocket(b)
        try:
            a.sendall(encode_frame(FRAME_CMD, b"first")
                      + encode_frame(FRAME_CMD, b"second"))
            assert right.recv().payload == b"first"
            assert right.recv().payload == b"second"
        finally:
            a.close()
            right.close()

    def test_bad_magic_is_a_loud_error(self):
        a, b = socket_mod.socketpair()
        right = FrameSocket(b)
        try:
            junk = b"HTTP" + encode_frame(FRAME_CMD, b"")[4:]
            a.sendall(junk)
            with pytest.raises(WireError, match="magic"):
                right.recv()
        finally:
            a.close()
            right.close()

    def test_version_skew_is_a_loud_error(self):
        a, b = socket_mod.socketpair()
        right = FrameSocket(b)
        try:
            a.sendall(HEADER.pack(MAGIC, 99, FRAME_CMD, 0, 0.0, 0, 0))
            with pytest.raises(WireError, match="version"):
                right.recv()
        finally:
            a.close()
            right.close()

    def test_absurd_length_is_rejected_before_allocation(self):
        a, b = socket_mod.socketpair()
        right = FrameSocket(b)
        try:
            a.sendall(HEADER.pack(MAGIC, VERSION, FRAME_CMD, 0, 0.0,
                                  MAX_FRAME + 1, 0))
            with pytest.raises(WireError, match="exceeds"):
                right.recv()
        finally:
            a.close()
            right.close()

    def test_eof_mid_stream_is_wire_closed(self):
        a, b = socket_mod.socketpair()
        right = FrameSocket(b)
        try:
            a.sendall(encode_frame(FRAME_CMD, b"y" * 50)[:20])
            a.close()
            with pytest.raises(WireClosed):
                right.recv()
        finally:
            right.close()


class TestPhiAccrual:
    def test_suspicion_grows_with_silence(self):
        det = PhiAccrualDetector(now=0.0, expected=0.1)
        assert det.phi(0.05) < det.phi(0.5) < det.phi(5.0)
        assert det.phi(5.0) > 8.0  # dead to many nines

    def test_beats_keep_suspicion_low(self):
        det = PhiAccrualDetector(now=0.0, expected=0.1)
        t = 0.0
        for _ in range(20):
            t += 0.1
            det.beat(t)
        assert det.phi(t + 0.1) < 1.0

    def test_mean_adapts_to_observed_cadence(self):
        det = PhiAccrualDetector(now=0.0, expected=0.01)
        t = 0.0
        for _ in range(50):
            t += 0.2  # beats are 20x slower than expected
            det.beat(t)
        # the EWMA has learned the slow cadence: a 0.2s gap is normal
        assert det.phi(t + 0.2) < 2.0


class TestSocketMigration:
    def test_state_travels_over_tcp(self):
        register("sk-tour", [
            ir.Assign("acc", C(0)),
            ir.For("i", C(3), (
                ir.HopStmt((V("i"),)),
                ir.Assign("acc", ir.Bin("+", V("acc"),
                                        ir.NodeGet("chunk"))),
            )),
            ir.NodeSet("total", (), V("acc")),
        ])
        fabric = SocketFabric(Grid1D(3), timeout=60.0)
        for j in range(3):
            fabric.load((j,), chunk=10 ** j)
        fabric.inject((0,), "sk-tour")
        result = fabric.run()
        assert result.places[(2,)]["total"] == 111
        for j in range(3):
            assert result.places[(j,)]["chunk"] == 10 ** j

    def test_make_fabric_knows_socket(self):
        fabric = make_fabric("socket", Grid1D(2), trace=False)
        assert isinstance(fabric, SocketFabric)

    def test_generator_messengers_are_rejected_clearly(self):
        class Tourist(Messenger):
            def main(self):
                yield self.hop((1,))

        fabric = SocketFabric(Grid1D(2))
        with pytest.raises(ConfigurationError, match="IR messengers only"):
            fabric.inject((0,), Tourist())

    def test_window_must_be_positive(self):
        with pytest.raises(FabricError, match="window"):
            SocketFabric(Grid1D(2), window=0)


def _register_slow_bump():
    if "slow_bump" not in KERNELS:
        def _slow_bump(x):
            time.sleep(0.02)
            return x + 1
        register_kernel("slow_bump", _slow_bump)


def _fanout_programs(n_children: int):
    """A parent at PE 0 floods PE 1 with hopping children."""
    register("sk-flood-child", [
        ir.HopStmt((C(1),)),
        ir.ComputeStmt("slow_bump", (ir.NodeGet("tally"),), out="t"),
        ir.NodeSet("tally", (), V("t")),
    ])
    register("sk-flood", [
        ir.For("i", C(n_children), (
            ir.InjectStmt("sk-flood-child", ()),
        )),
    ])


class TestBackpressure:
    def test_credit_window_bounds_receiver_mailbox(self):
        """With window=w, a slow PE's inbox never exceeds w frames."""
        _register_slow_bump()
        n, w = 16, 4
        _fanout_programs(n)
        fabric = SocketFabric(Grid1D(2), timeout=60.0, trace=True, window=w)
        fabric.load((1,), tally=0)
        fabric.inject((0,), "sk-flood")
        result = fabric.run()
        assert result.places[(1,)]["tally"] == n
        assert result.trace.transport(), "no transport stats recorded"
        hwm = result.trace.mailbox_hwm()
        assert hwm.get(1, 0) >= 1
        assert hwm[1] <= w, (
            f"mailbox high-water {hwm[1]} exceeds the credit window {w}")
        # the sender really had to wait for credits at least once
        waits = result.trace._transport_stat("credit_waits")
        assert waits.get(0, 0) >= 1

    def test_soft_deadlines_count_late_frames(self):
        """An impossible per-hop deadline marks every arrival late —
        but frames are still delivered (soft deadlines)."""
        _register_slow_bump()
        n = 4
        _fanout_programs(n)
        fabric = SocketFabric(Grid1D(2), timeout=60.0, trace=True,
                              hop_deadline_s=-1.0)
        fabric.load((1,), tally=0)
        fabric.inject((0,), "sk-flood")
        result = fabric.run()
        assert result.places[(1,)]["tally"] == n
        assert result.trace.deadline_misses() == n


class TestRecovery:
    def test_sigkill_is_detected_and_replayed(self):
        """A real SIGKILL: heartbeat loss -> respawn -> replay."""
        register("sk-relay", [
            ir.Assign("acc", C(0)),
            ir.For("i", C(4), (
                ir.HopStmt((ir.Bin("%", V("i"), C(2)),)),
                ir.Assign("acc", ir.Bin("+", V("acc"), C(1))),
            )),
            ir.NodeSet("hops", (), V("acc")),
        ])
        plan = FaultPlan(faults=(Crash(place=1, at_hop=2),))
        fabric = SocketFabric(Grid1D(2), timeout=90.0, faults=plan,
                              trace=True)
        fabric.inject((0,), "sk-relay")
        result = fabric.run()
        assert result.places[(1,)]["hops"] == 4
        assert sum(fabric.restarts.values()) == 1
        notes = [e.note for e in result.trace.events]
        assert any("SIGKILLed" in n for n in notes)
        assert any("respawned" in n for n in notes)
