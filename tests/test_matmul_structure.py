"""Structural properties of the algorithms: hop routes, carrier counts,
pipeline protocol, Gentleman's staggering arithmetic."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.fabric import Grid1D, Grid2D, SimFabric
from repro.machine import FAST_TEST_MACHINE
from repro.matmul import MatmulCase, run_variant
from repro.matmul.gentleman import stagger_single_step
from repro.matmul.navp2d import ACarrier2D
from repro.mpi import Comm, run_spmd
from repro.util.blocks import to_block_grid


class TestCarrierRoutes:
    def test_phase_1d_reverse_staggered_first_stops(self):
        """Carriers from PE q start their tour at PE (P-1-q) % P."""
        case = MatmulCase(n=48, ab=8, shadow=True)
        result = run_variant("navp-1d-phase", case, geometry=3)
        hops = [e for e in result.trace.of_kind("hop")
                if e.actor.startswith("PhaseRowCarrier")]
        first_hop = {}
        for e in hops:
            first_hop.setdefault(e.actor, e)
        # strips per PE = 2; carriers born at q go first to 2-q
        for e in first_hop.values():
            assert (e.src_place + e.place) % 3 == 2

    def test_carrier_counts(self):
        case = MatmulCase(n=48, ab=4, shadow=True)
        r1 = run_variant("navp-1d-pipeline", case, geometry=3)
        assert r1.details["carriers"] == 12  # n/ab strips
        r2 = run_variant("navp-2d-pipeline", case, geometry=3)
        assert r2.details["a_carriers"] == 3 * 12
        assert r2.details["b_carriers"] == 3 * 12

    def test_2d_rows_stay_in_their_row(self):
        """ACarriers only ever visit PEs of their own grid row."""
        case = MatmulCase(n=24, ab=4, shadow=True)
        result = run_variant("navp-2d-phase", case, geometry=2)
        for e in result.trace.of_kind("hop"):
            if e.actor.startswith("ACarrier"):
                # Grid2D(2) index: row = index // 2
                src_row = e.src_place // 2
                dst_row = e.place // 2
                assert src_row == dst_row


class TestPipelineProtocol:
    def test_b_slot_tag_mismatch_raises(self):
        """A corrupted B slot must be detected, not silently consumed."""
        fabric = SimFabric(Grid2D(1), machine=FAST_TEST_MACHINE)
        case = MatmulCase(n=8, ab=8)
        a, b = case.operands()
        fabric.load((0, 0), A=a, C=case.zeros((8, 8)),
                    Bslot=(99, b))  # wrong k tag pre-parked
        fabric.signal_initial((0, 0), "EP", 0)
        carrier = ACarrier2D(row=0, k=0, shift=0, case=case, g=1,
                             pick_local=True)
        fabric.inject((0, 0), carrier)
        with pytest.raises(Exception, match="slot"):
            fabric.run()

    def test_ep_ec_alternation_counts(self):
        """Every B park is matched by exactly one consume."""
        case = MatmulCase(n=24, ab=4, shadow=True)
        result = run_variant("navp-2d-pipeline", case, geometry=3)
        # run completed without deadlock -> handshake balanced; and C
        # was fully accumulated (checked in shadow: all carriers done)
        assert result.time > 0


class TestGentlemanStaggering:
    @pytest.mark.parametrize("g,a", [(2, 2), (3, 2), (3, 4), (4, 3)])
    def test_positions_match_the_skew(self, g, a):
        """After single-step staggering, rank (i,j) must hold exactly the
        A blocks Gentleman's skew assigns it."""
        nb = g * a
        ab = 2
        n = nb * ab

        # label each block with its global (gi, gj)
        full = np.zeros((n, n))
        for gi in range(nb):
            for gj in range(nb):
                full[gi * ab : (gi + 1) * ab, gj * ab : (gj + 1) * ab] = (
                    gi * nb + gj)

        collected = {}

        def program(comm):
            i, j = comm.coord
            grid = to_block_grid(
                full[i * a * ab : (i + 1) * a * ab,
                     j * a * ab : (j + 1) * a * ab], ab)
            staggered = yield from stagger_single_step(
                comm, grid, a, g, "A", block_row_shift=False)
            collected[(i, j)] = [
                [int(blk[0, 0]) for blk in row] for row in staggered
            ]

        run_spmd(Grid2D(g), program, machine=FAST_TEST_MACHINE)

        for i in range(g):
            for j in range(g):
                for x in range(a):
                    for y in range(a):
                        gi = i * a + x
                        gj_staggered = j * a + y
                        # block now at column gj' came from (gi, gj'+gi)
                        origin_gj = (gj_staggered + gi) % nb
                        assert collected[(i, j)][x][y] == gi * nb + origin_gj

    def test_round_count(self):
        case = MatmulCase(n=24, ab=4, shadow=True)
        result = run_variant("mpi-gentleman", case, geometry=3)
        assert result.details["rounds"] == 6  # n/ab

    def test_cannon_round_count(self):
        case = MatmulCase(n=24, ab=4, shadow=True)
        result = run_variant("mpi-cannon", case, geometry=3)
        assert result.details["rounds"] == 3  # G
