"""ProcessFabric: migration across real OS processes.

Kept deliberately small-scale (each test forks worker processes); the
heavier end-to-end coverage of transformed programs on processes lives
in test_transform_chain.py and the real_processes example.
"""

import numpy as np
import pytest

from repro.errors import DeadlockError, FabricError
from repro.fabric import Grid1D
from repro.fabric.process import ProcessFabric
from repro.navp import ir

V = ir.Var
C = ir.Const


def register(name, body, params=()):
    return ir.register_program(
        ir.Program(name, tuple(body), tuple(params)), replace=True)


class TestMigration:
    def test_state_travels_data_stays(self):
        """Node variables stay in their process; agent state migrates."""
        register("pf-tour", [
            ir.Assign("acc", C(0)),
            ir.For("i", C(3), (
                ir.HopStmt((V("i"),)),
                ir.Assign("acc", ir.Bin("+", V("acc"),
                                        ir.NodeGet("chunk"))),
            )),
            ir.NodeSet("total", (), V("acc")),
        ])
        fabric = ProcessFabric(Grid1D(3), timeout=60.0)
        for j in range(3):
            fabric.load((j,), chunk=10 ** j)
        fabric.inject((0,), "pf-tour")
        result = fabric.run()
        assert result.places[(2,)]["total"] == 111
        # node data never moved
        for j in range(3):
            assert result.places[(j,)]["chunk"] == 10 ** j

    def test_numpy_agent_payloads(self):
        register("pf-array", [
            ir.Assign("m", ir.NodeGet("block")),
            ir.HopStmt((C(1),)),
            ir.ComputeStmt("gemm_acc",
                           (ir.NodeGet("acc"), V("m"), ir.NodeGet("other")),
                           out="r"),
            ir.NodeSet("result", (), V("r")),
        ])
        a = np.arange(4.0).reshape(2, 2)
        b = np.eye(2)
        fabric = ProcessFabric(Grid1D(2), timeout=60.0)
        fabric.load((0,), block=a)
        fabric.load((1,), other=b, acc=np.zeros((2, 2)))
        fabric.inject((0,), "pf-array")
        result = fabric.run()
        assert np.array_equal(result.places[(1,)]["result"], a)


class TestEventsAndInjection:
    def test_inject_and_events_within_a_worker(self):
        register("pf-child", [
            ir.NodeSet("child_ran", (), C(True)),
            ir.SignalStmt("done"),
        ], params=("mi",))
        register("pf-parent", [
            ir.InjectStmt("pf-child", (("mi", C(1)),)),
            ir.WaitStmt("done"),
            ir.NodeSet("parent_done", (), C(True)),
        ])
        fabric = ProcessFabric(Grid1D(1), timeout=60.0)
        fabric.inject((0,), "pf-parent")
        result = fabric.run()
        assert result.places[(0,)]["child_ran"]
        assert result.places[(0,)]["parent_done"]

    def test_termination_with_grandchildren(self):
        """Parental accounting must track spawn chains across hops."""
        register("pf-leaf", [
            ir.HopStmt((C(0),)),
            ir.NodeSet("leaves", (V("mi"),), C(True)),
        ], params=("mi",))
        register("pf-mid", [
            ir.HopStmt((C(1),)),
            ir.InjectStmt("pf-leaf", (("mi", V("mi")),)),
        ], params=("mi",))
        register("pf-root", [
            ir.For("i", C(3), (
                ir.InjectStmt("pf-mid", (("mi", V("i")),)),
            )),
        ])
        fabric = ProcessFabric(Grid1D(2), timeout=60.0)
        fabric.inject((0,), "pf-root")
        result = fabric.run()
        assert set(result.places[(0,)]["leaves"]) == {0, 1, 2}

    def test_signal_initial(self):
        register("pf-waiter", [
            ir.WaitStmt("EC"),
            ir.NodeSet("ok", (), C(True)),
        ])
        fabric = ProcessFabric(Grid1D(1), timeout=60.0)
        fabric.signal_initial((0,), "EC")
        fabric.inject((0,), "pf-waiter")
        assert fabric.run().places[(0,)]["ok"]


class TestFailureModes:
    def test_deadlock_times_out(self):
        register("pf-stuck", [ir.WaitStmt("never")])
        fabric = ProcessFabric(Grid1D(1), timeout=3.0)
        fabric.inject((0,), "pf-stuck")
        with pytest.raises(DeadlockError):
            fabric.run()

    def test_worker_error_surfaces(self):
        register("pf-bad", [
            ir.Assign("x", ir.NodeGet("missing_var")),
        ])
        fabric = ProcessFabric(Grid1D(1), timeout=30.0)
        fabric.inject((0,), "pf-bad")
        with pytest.raises(FabricError, match="missing_var"):
            fabric.run()

    def test_no_messengers_rejected(self):
        fabric = ProcessFabric(Grid1D(1))
        with pytest.raises(FabricError):
            fabric.run()
