"""Crash recovery on real OS processes: SIGKILL a worker mid-run and
the run still completes with the right answer."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ResilienceError
from repro.fabric import Grid1D, Grid2D
from repro.fabric.factory import FABRIC_KINDS, make_fabric
from repro.fabric.process import ProcessFabric
from repro.matmul.ir2d import build_fig11
from repro.navp import Messenger, ir
from repro.resilience import Crash, FaultPlan
from repro.util.validation import random_matrix

V = ir.Var
C = ir.Const


def _matmul_fabric(plan=None, **kw):
    a, b = random_matrix(16, 220), random_matrix(16, 221)
    suite = build_fig11(2, a, b)
    fabric = ProcessFabric(Grid2D(2), timeout=60.0, faults=plan,
                           trace=True, **kw)
    for coord, node_vars in suite.layout.items():
        fabric.load(coord, **node_vars)
    for coord, event, args, count in suite.initial_signals:
        fabric.signal_initial(coord, event, *args, count=count)
    fabric.inject((0, 0), suite.entry.name)
    return fabric, a, b


def _assemble(result, g=2, ab=8):
    c = np.empty((g * ab, g * ab))
    for (i, j), node_vars in result.places.items():
        c[i * ab:(i + 1) * ab, j * ab:(j + 1) * ab] = node_vars["C"]
    return c


class TestCrashRecovery:
    def test_matmul_survives_sigkill_of_a_worker(self):
        """The acceptance scenario: a worker is really SIGKILLed
        mid-run; respawn + journal replay completes the product."""
        plan = FaultPlan(faults=(Crash(place=1, at_hop=2),),
                         name="kill-worker-1")
        fabric, a, b = _matmul_fabric(plan)
        result = fabric.run()
        assert np.allclose(_assemble(result), a @ b)
        assert fabric.restarts[1] == 1
        assert [e.note for e in result.trace.faults()] == [
            "worker 1 SIGKILLed"]
        respawns = [e for e in result.trace.recoveries()
                    if e.kind == "respawn"]
        assert len(respawns) == 1 and respawns[0].place == 1

    def test_checkpoints_bound_the_replay(self):
        plan = FaultPlan(faults=(Crash(place=0, at_hop=4),))
        fabric, a, b = _matmul_fabric(plan, checkpoint_every=2)
        result = fabric.run()
        assert np.allclose(_assemble(result), a @ b)
        assert len(result.trace.checkpoints()) > 0
        assert fabric.restarts[0] == 1

    def test_recovery_disabled_fails_fast(self):
        plan = FaultPlan(faults=(Crash(place=1, at_hop=2),))
        fabric, _a, _b = _matmul_fabric(plan, recovery=False)
        with pytest.raises(ResilienceError, match="recovery is disabled"):
            fabric.run()

    def test_respawn_budget_is_enforced(self):
        plan = FaultPlan(faults=(Crash(place=1, at_hop=2),))
        fabric, _a, _b = _matmul_fabric(plan, max_restarts=0)
        with pytest.raises(ResilienceError, match="respawn budget"):
            fabric.run()

    def test_supervised_run_without_faults_is_clean(self):
        fabric, a, b = _matmul_fabric(None, supervise=True)
        result = fabric.run()
        assert np.allclose(_assemble(result), a @ b)
        assert sum(fabric.restarts.values()) == 0
        assert result.trace.faults() == []


class TestFactoryPromotion:
    def test_process_is_a_fabric_kind(self):
        assert FABRIC_KINDS == ("sim", "thread", "process", "socket")

    def test_make_fabric_builds_and_runs_ir(self):
        ir.register_program(ir.Program("factory-tour", (
            ir.Assign("acc", C(0)),
            ir.For("i", C(2), (
                ir.HopStmt((V("i"),)),
                ir.Assign("acc", ir.Bin("+", V("acc"), C(1))),
                ir.NodeSet("mark", (), V("acc")),
            )),
        ), ()), replace=True)
        fabric = make_fabric("process", Grid1D(2), trace=False)
        assert isinstance(fabric, ProcessFabric)
        fabric.inject((0,), "factory-tour")
        result = fabric.run()
        assert result.places[(1,)]["mark"] == 2

    def test_generator_messengers_are_rejected_clearly(self):
        class Tourist(Messenger):
            def main(self):
                yield self.hop((1,))

        fabric = make_fabric("process", Grid1D(2), trace=False)
        with pytest.raises(ConfigurationError, match="IR messengers only"):
            fabric.inject((0,), Tourist())

    def test_ir_messenger_instances_are_accepted(self):
        from repro.navp.interp import IRMessenger

        ir.register_program(ir.Program("factory-one-hop", (
            ir.HopStmt((C(1),)),
            ir.NodeSet("here", (), C(1)),
        ), ()), replace=True)
        fabric = make_fabric("process", Grid1D(2), trace=False)
        fabric.inject((0,), IRMessenger("factory-one-hop"))
        result = fabric.run()
        assert result.places[(1,)]["here"] == 1
