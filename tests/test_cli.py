"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_variant_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "no-such-variant"])

    def test_table_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "5"])


class TestCommands:
    def test_variants(self, capsys):
        assert main(["variants"]) == 0
        out = capsys.readouterr().out
        assert "navp-2d-phase" in out
        assert "mpi-gentleman" in out

    def test_run_shadow(self, capsys):
        code = main(["run", "navp-1d-phase", "--n", "1536",
                     "--geometry", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_run_real_verifies(self, capsys):
        code = main(["run", "navp-2d-pipeline", "--n", "24", "--ab", "4",
                     "--geometry", "3", "--real"])
        assert code == 0
        assert "verified vs NumPy" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        out = capsys.readouterr().out
        assert "9216" in out
        assert "all passed" in out

    def test_staggering(self, capsys):
        assert main(["staggering", "--max-n", "8"]) == 0
        out = capsys.readouterr().out
        assert "reverse" in out

    def test_wavefront(self, capsys):
        code = main(["wavefront", "--n", "512", "--block", "64",
                     "--pes", "2"])
        assert code == 0
        assert "pipelined" in capsys.readouterr().out

    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        assert "all Figure 1 claims hold" in capsys.readouterr().out

    def test_datascan(self, capsys):
        assert main(["datascan", "--pes", "4", "--items", "20000"]) == 0
        out = capsys.readouterr().out
        assert "navp-scan" in out
        assert "x over shipping" in out

    def test_report_quick(self, capsys):
        assert main(["report", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "reproduction checks passed" in out
        assert "FAILED" not in out
