"""Topologies: coordinates, node maps, neighbours."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.fabric.topology import Grid1D, Grid2D, Topology


class TestGrid1D:
    def test_coords_and_index(self):
        grid = Grid1D(3)
        assert grid.coords == ((0,), (1,), (2,))
        assert grid.index((1,)) == 1
        assert len(grid) == 3

    def test_node_map(self):
        grid = Grid1D(4)
        assert grid.node(2) == (2,)
        with pytest.raises(TopologyError):
            grid.node(4)
        with pytest.raises(TopologyError):
            grid.node(-1)

    @given(st.integers(1, 16), st.integers(0, 15))
    def test_ring_neighbours_inverse(self, p, j):
        grid = Grid1D(p)
        j = j % p
        assert grid.west(*grid.east(j)) == (j,)
        assert grid.east(*grid.west(j)) == (j,)

    def test_normalize_accepts_ints(self):
        grid = Grid1D(3)
        assert grid.normalize(2) == (2,)
        assert grid.normalize((2,)) == (2,)
        with pytest.raises(TopologyError):
            grid.normalize(3)

    def test_needs_at_least_one(self):
        with pytest.raises(TopologyError):
            Grid1D(0)


class TestGrid2D:
    def test_square_default(self):
        grid = Grid2D(3)
        assert grid.rows == grid.cols == 3
        assert len(grid) == 9

    def test_rectangular(self):
        grid = Grid2D(2, 5)
        assert len(grid) == 10
        assert (1, 4) in grid
        assert (2, 0) not in grid

    def test_index_row_major(self):
        grid = Grid2D(3)
        assert grid.index((0, 0)) == 0
        assert grid.index((1, 0)) == 3
        assert grid.index((2, 2)) == 8

    def test_node_map(self):
        grid = Grid2D(3)
        assert grid.node(2, 1) == (2, 1)
        with pytest.raises(TopologyError):
            grid.node(3, 0)

    @given(st.integers(1, 6), st.integers(1, 6), st.integers(0, 35))
    def test_torus_neighbours_inverse(self, rows, cols, seed):
        grid = Grid2D(rows, cols)
        i, j = seed % rows, (seed // 6) % cols
        assert grid.north(*grid.south(i, j)) == (i, j)
        assert grid.west(*grid.east(i, j)) == (i, j)

    def test_gentleman_shift_directions(self):
        """A moves west, B moves north (Figure 16 semantics)."""
        grid = Grid2D(3)
        assert grid.west(0, 0) == (0, 2)   # wraps
        assert grid.north(0, 1) == (2, 1)  # wraps

    def test_invalid(self):
        with pytest.raises(TopologyError):
            Grid2D(0, 3)


class TestTopologyBase:
    def test_duplicate_coords_rejected(self):
        with pytest.raises(TopologyError):
            Topology([(0,), (0,)])

    def test_unknown_coord(self):
        grid = Grid1D(2)
        with pytest.raises(TopologyError):
            grid.index((5,))
