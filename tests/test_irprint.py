"""IR pretty-printer: the derived programs must read like the figures."""

from repro.navp import ir
from repro.transform import derive_chain
from repro.viz import format_program

V = ir.Var
C = ir.Const


class TestFormatting:
    def test_figure2_reads_like_the_paper(self):
        chain = derive_chain(3)
        text = format_program(chain.sequential)
        assert "for mi in 0..3-1:" in text
        assert "t = gemm_acc(t, A[mi][k], B[k, mj])" in text
        assert "C[mi, mj] = t" in text

    def test_figure5_hop_and_pickup(self):
        chain = derive_chain(3)
        text = format_program(chain.dsc)
        assert "hop(node[mj])" in text
        assert "if (mj == 0):" in text
        assert "mA = A[mi]" in text
        # the A reads were redirected to the agent variable
        assert "A[mi][k]" not in text

    def test_figure7_injection_loop(self):
        chain = derive_chain(3)
        text = format_program(chain.pipelined.main)
        assert text.splitlines()[0] == "program mm-seq-3-dsc-pipe"
        assert "inject(mm-rowcarrier-3(mi=mi))" in text
        carrier = format_program(chain.pipelined.carrier)
        assert carrier.splitlines()[0] == "program mm-rowcarrier-3(mi)"

    def test_figure9_reverse_stagger_schedule(self):
        chain = derive_chain(3)
        text = format_program(chain.phased.carrier)
        assert "hop(node[(((2 - mi) + mj) % 3)])" in text

    def test_events_and_counted_signals(self):
        program = ir.Program("fmt-ev", (
            ir.WaitStmt("EP", (V("k"),)),
            ir.SignalStmt("EC", (), C(3)),
        ))
        text = format_program(program)
        assert "waitEvent(EP[k])" in text
        assert "signalEvent(EC[]) x3" in text

    def test_if_else(self):
        program = ir.Program("fmt-if", (
            ir.If(ir.Bin("==", V("x"), C(0)),
                  (ir.Assign("y", C(1)),),
                  (ir.Assign("y", C(2)),)),
        ))
        text = format_program(program)
        assert "else:" in text
