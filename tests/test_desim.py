"""The discrete-event kernel: clock, resources, semaphores, triggers,
determinism, and failure modes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeadlockError, SimulationError
from repro.fabric.desim import Resource, Semaphore, Simulator, Timeout, Trigger


class TestClockAndTimeouts:
    def test_sequential_timeouts(self):
        sim = Simulator()
        log = []

        def proc():
            yield Timeout(1.0)
            log.append(sim.now)
            yield Timeout(2.5)
            log.append(sim.now)

        sim.spawn(proc())
        assert sim.run() == 3.5
        assert log == [1.0, 3.5]

    def test_spawn_delay(self):
        sim = Simulator()
        seen = []

        def proc(tag):
            seen.append((tag, sim.now))
            yield Timeout(0.0)

        sim.spawn(proc("late"), delay=5.0)
        sim.spawn(proc("early"))
        sim.run()
        assert seen == [("early", 0.0), ("late", 5.0)]

    def test_fifo_tiebreak_at_equal_times(self):
        """Events at the same instant fire in scheduling order."""
        sim = Simulator()
        order = []

        def proc(tag):
            yield Timeout(1.0)
            order.append(tag)

        for tag in range(5):
            sim.spawn(proc(tag))
        sim.run()
        assert order == list(range(5))

    def test_run_until(self):
        sim = Simulator()

        def proc():
            yield Timeout(10.0)

        sim.spawn(proc())
        assert sim.run(until=3.0) == 3.0
        assert sim.alive_count() == 1
        assert sim.run() == 10.0

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-0.1)

    def test_process_return_value(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            return 42

        p = sim.spawn(proc())
        sim.run()
        assert p.result == 42
        assert not p.alive

    def test_join_another_process(self):
        sim = Simulator()
        log = []

        def worker():
            yield Timeout(2.0)
            return "done"

        def waiter(w):
            value = yield w
            log.append((sim.now, value))

        w = sim.spawn(worker())
        sim.spawn(waiter(w))
        sim.run()
        assert log == [(2.0, "done")]


class TestResources:
    def test_serializes_at_capacity(self):
        sim = Simulator()
        res = sim.resource(1)
        spans = []

        def proc():
            yield res.acquire()
            t0 = sim.now
            yield Timeout(1.0)
            res.release()
            spans.append((t0, sim.now))

        for _ in range(3):
            sim.spawn(proc())
        sim.run()
        assert spans == [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]

    def test_capacity_two_overlaps(self):
        sim = Simulator()
        res = sim.resource(2)
        done = []

        def proc():
            yield res.acquire()
            yield Timeout(1.0)
            res.release()
            done.append(sim.now)

        for _ in range(4):
            sim.spawn(proc())
        sim.run()
        assert done == [1.0, 1.0, 2.0, 2.0]

    def test_fifo_grant_order(self):
        sim = Simulator()
        res = sim.resource(1)
        order = []

        def holder():
            yield res.acquire()
            yield Timeout(1.0)
            res.release()

        def waiter(tag, delay):
            yield Timeout(delay)
            yield res.acquire()
            order.append(tag)
            res.release()

        sim.spawn(holder())
        sim.spawn(waiter("first", 0.1))
        sim.spawn(waiter("second", 0.2))
        sim.run()
        assert order == ["first", "second"]

    def test_release_idle_raises(self):
        sim = Simulator()
        res = sim.resource(1)
        with pytest.raises(SimulationError):
            res.release()

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), 0)

    def test_waiting_count(self):
        sim = Simulator()
        res = sim.resource(1)

        def holder():
            yield res.acquire()
            yield Timeout(5.0)
            res.release()

        def waiter():
            yield res.acquire()
            res.release()

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run(until=1.0)
        assert res.waiting() == 1


class TestSemaphores:
    def test_signal_then_wait(self):
        sim = Simulator()
        sem = sim.semaphore(1)
        log = []

        def proc():
            yield sem.acquire()
            log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [0.0]

    def test_wait_then_signal(self):
        sim = Simulator()
        sem = sim.semaphore(0)
        log = []

        def consumer():
            yield sem.acquire()
            log.append(sim.now)

        def producer():
            yield Timeout(2.0)
            sem.release()

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert log == [2.0]

    def test_counting_semantics(self):
        """Each signal enables exactly one waiter (the EP/EC need)."""
        sim = Simulator()
        sem = sim.semaphore(0)
        woken = []

        def consumer(tag):
            yield sem.acquire()
            woken.append(tag)

        def producer():
            yield Timeout(1.0)
            sem.release()
            yield Timeout(1.0)
            sem.release(2)

        for tag in range(3):
            sim.spawn(consumer(tag))
        sim.spawn(producer())
        sim.run()
        assert woken == [0, 1, 2]

    def test_release_count_validation(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.semaphore(0).release(0)
        with pytest.raises(SimulationError):
            Semaphore(sim, initial=-1)

    def test_fifo_wakeup(self):
        sim = Simulator()
        sem = sim.semaphore(0)
        order = []

        def consumer(tag, delay):
            yield Timeout(delay)
            yield sem.acquire()
            order.append(tag)

        sim.spawn(consumer("a", 0.1))
        sim.spawn(consumer("b", 0.2))

        def producer():
            yield Timeout(1.0)
            sem.release(2)

        sim.spawn(producer())
        sim.run()
        assert order == ["a", "b"]


class TestTriggers:
    def test_broadcast_with_value(self):
        sim = Simulator()
        trig = sim.trigger()
        got = []

        def waiter():
            value = yield trig
            got.append((sim.now, value))

        def firer():
            yield Timeout(3.0)
            trig.fire("payload")

        sim.spawn(waiter())
        sim.spawn(waiter())
        sim.spawn(firer())
        sim.run()
        assert got == [(3.0, "payload"), (3.0, "payload")]

    def test_wait_after_fire_is_immediate(self):
        sim = Simulator()
        trig = sim.trigger()
        trig.fire(7)
        got = []

        def waiter():
            value = yield trig
            got.append(value)

        sim.spawn(waiter())
        sim.run()
        assert got == [7]

    def test_double_fire_rejected(self):
        trig = Trigger(Simulator())
        trig.fire()
        with pytest.raises(SimulationError):
            trig.fire()


class TestFailureModes:
    def test_deadlock_detected_and_named(self):
        sim = Simulator()
        sem = sim.semaphore(0)

        def stuck():
            yield sem.acquire()

        sim.spawn(stuck(), name="starving")
        with pytest.raises(DeadlockError, match="starving"):
            sim.run()

    def test_process_exception_propagates(self):
        sim = Simulator()

        def boom():
            yield Timeout(1.0)
            raise ValueError("kapow")

        sim.spawn(boom(), name="bomb")
        with pytest.raises(SimulationError, match="kapow") as exc_info:
            sim.run()
        assert isinstance(exc_info.value.__cause__, ValueError)

    def test_unsupported_yield(self):
        sim = Simulator()

        def bad():
            yield "a string"

        sim.spawn(bad())
        with pytest.raises(SimulationError, match="unsupported"):
            sim.run()


class TestDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.floats(0.0, 5.0, allow_nan=False),
                              st.integers(0, 2)),
                    min_size=1, max_size=20))
    def test_same_workload_same_schedule(self, work):
        """Two runs of the same random workload produce identical logs."""

        def run_once():
            sim = Simulator()
            res = sim.resource(1)
            log = []

            def proc(tag, delay, kind):
                yield Timeout(delay)
                if kind == 0:
                    yield res.acquire()
                    yield Timeout(0.5)
                    res.release()
                elif kind == 1:
                    yield Timeout(delay)
                log.append((tag, round(sim.now, 9)))

            for tag, (delay, kind) in enumerate(work):
                sim.spawn(proc(tag, delay, kind))
            sim.run()
            return log

        assert run_once() == run_once()
