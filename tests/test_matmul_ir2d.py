"""The 2-D matmul stages as IR, across all three fabrics."""

import numpy as np
import pytest

from repro.matmul.ir2d import (
    build_fig11,
    build_fig13,
    build_fig15,
    run_ir2d_suite,
)
from repro.util.validation import assert_allclose, random_matrix

BUILDERS = [build_fig11, build_fig13, build_fig15]


@pytest.fixture(scope="module")
def operands():
    a = random_matrix(24, 201)
    b = random_matrix(24, 202)
    return a, b, a @ b


class TestSimFabric:
    @pytest.mark.parametrize("builder", BUILDERS)
    @pytest.mark.parametrize("g", [2, 3])
    def test_correct(self, builder, g):
        a = random_matrix(g * 8, 210)
        b = random_matrix(g * 8, 211)
        suite = builder(g, a, b)
        c, _result = run_ir2d_suite(suite, "sim")
        assert_allclose(c, a @ b, what=f"{suite.name} g={g}")

    def test_fig15_natural_layout(self, operands):
        a, b, _ref = operands
        suite = build_fig15(3, a, b)
        for (i, j), node_vars in suite.layout.items():
            assert np.array_equal(
                node_vars["A"], a[i * 8 : (i + 1) * 8, j * 8 : (j + 1) * 8])
            assert not node_vars["C"].any()

    def test_fig13_antidiagonal_layout(self, operands):
        a, b, _ref = operands
        suite = build_fig13(3, a, b)
        assert "Arow" in suite.layout[(2, 0)]
        assert "Arow" not in suite.layout[(0, 0)]
        assert set(suite.layout[(2, 0)]["Arow"]) == {0, 1, 2}

    def test_fig13_initial_ec_everywhere(self, operands):
        a, b, _ref = operands
        suite = build_fig13(2, a, b)
        assert len(suite.initial_signals) == 4
        assert all(sig[1] == "EC" for sig in suite.initial_signals)

    def test_programs_registered(self, operands):
        from repro.navp import ir

        a, b, _ref = operands
        suite = build_fig15(3, a, b)
        for program in suite.programs:
            assert ir.get_program(program.name) == program


class TestThreadFabric:
    @pytest.mark.parametrize("builder", BUILDERS)
    def test_correct(self, builder, operands):
        a, b, ref = operands
        suite = builder(3, a, b)
        c, _result = run_ir2d_suite(suite, "thread")
        assert_allclose(c, ref, what=f"{suite.name} threads")


class TestProcessFabric:
    @pytest.mark.parametrize("builder", BUILDERS)
    def test_correct_on_real_processes(self, builder):
        a = random_matrix(16, 220)
        b = random_matrix(16, 221)
        suite = builder(2, a, b)
        c, result = run_ir2d_suite(suite, "process")
        assert_allclose(c, a @ b, what=f"{suite.name} processes")
        assert result.time > 0
