"""Static data-race detection (analysis.races).

The contract under test: every seeded corpus race is caught, with the
expected variables and nothing else; every golden paper program —
matmul chains, 2-D figures, the wavefront pipeline — verifies clean;
and the transformations refuse to emit a suite the analyzer rejects.
"""

import pytest

from repro.analysis import visitor
from repro.analysis.corpus import RACY_CORPUS, run_case
from repro.analysis.lint import _injected_names, seed_paper_programs
from repro.analysis.races import analyze_races, race_diagnostics
from repro.cli import main
from repro.errors import TransformError
from repro.navp import ir
from repro.transform.deps import check_race_free

V = ir.Var
C = ir.Const


def _case(name):
    return next(c for c in RACY_CORPUS if c.name == name)


class TestRacyCorpus:
    def test_the_five_seeded_defects(self):
        assert sorted(c.name for c in RACY_CORPUS) == [
            "bad-dropped-wait", "bad-key-alias",
            "bad-nonaffine-alias", "bad-reduction-order",
            "bad-unsignaled-write"]

    @pytest.mark.parametrize("case", RACY_CORPUS, ids=lambda c: c.name)
    def test_flagged_as_data_race(self, case):
        report = run_case(case)
        assert report.errors
        assert all(d.category == "data-race" for d in report)

    @pytest.mark.parametrize("case", RACY_CORPUS, ids=lambda c: c.name)
    def test_exactly_the_seeded_variables_race(self, case):
        analysis = analyze_races(
            case.registry[case.root], registry=case.registry,
            primed=case.primed)
        assert {race.a.var for race in analysis.races} \
            == set(case.racy_vars)

    def test_dropped_wait_needs_priming_knowledge(self):
        # the producer's wait(EC) *looks* like an ordering edge; only
        # knowing EC receives setup-time signals reveals that the token
        # it consumes carries no ordering at all
        case = _case("bad-dropped-wait")
        root = case.registry[case.root]
        assert analyze_races(root, registry=case.registry).ok
        assert not analyze_races(root, registry=case.registry,
                                 primed=case.primed).ok

    def test_commutative_keys_normalize_alike(self):
        # the bad-key-alias defense: k+1 and 1+k are the same entry
        a = visitor.normalize_key((ir.Bin("+", V("k"), C(1)),))
        b = visitor.normalize_key((ir.Bin("+", C(1), V("k")),))
        assert a == b


class TestPaperProgramsClean:
    @pytest.fixture(scope="class", autouse=True)
    def seeded(self):
        seed_paper_programs(3)

    def test_every_root_verifies_race_free(self):
        injected = _injected_names(ir.REGISTRY)
        roots = [name for name in sorted(ir.REGISTRY)
                 if name not in injected
                 and not name.startswith("random-prog")]
        assert roots  # the seeding registered something
        for name in roots:
            report = race_diagnostics(ir.get_program(name))
            assert not report.errors, (name, report.errors)


def _wavefront_registry(drop_wait: bool):
    """The pipelined wavefront carrier, optionally minus its wait."""
    prev = ir.Bin("-", V("mr"), C(1))
    then = (ir.Assign("top", ir.NodeGet("bottom", (prev,))),)
    if not drop_wait:
        then = (ir.WaitStmt("BDONE", (prev,)),) + then
    carrier = ir.Program("wf-edit-carrier", (
        ir.Assign("medge", C(None)),
        ir.For("c", C(3), (
            ir.HopStmt((V("c"),)),
            ir.If(ir.Bin("<", C(0), V("mr")),
                  then=then,
                  orelse=(ir.Assign("top", C(None)),)),
            ir.ComputeStmt(
                "wf_block",
                (ir.NodeGet("W"), V("top"), V("medge"), V("mr"), C(4)),
                out="res"),
            ir.NodeSet("D", (V("mr"),), ir.Index(V("res"), (C(0),))),
            ir.NodeSet("bottom", (V("mr"),),
                       ir.Index(V("res"), (C(1),))),
            ir.Assign("medge", ir.Index(V("res"), (C(2),))),
            ir.SignalStmt("BDONE", (V("mr"),)),
        )),
    ), params=("mr",))
    pipe = ir.Program("wf-edit-pipe", (
        ir.HopStmt((C(0),)),
        ir.For("r", C(4), (
            ir.InjectStmt(carrier.name, (("mr", V("r")),)),
        )),
    ))
    return {carrier.name: carrier, pipe.name: pipe}, pipe.name


class TestWavefrontChain:
    def test_keyed_handshake_proves_the_chain_ordered(self):
        registry, root = _wavefront_registry(drop_wait=False)
        assert analyze_races(registry[root], registry=registry).ok

    def test_dropping_the_wait_surfaces_the_chain_race(self):
        registry, root = _wavefront_registry(drop_wait=True)
        analysis = analyze_races(registry[root], registry=registry)
        assert analysis.races
        assert {race.a.var for race in analysis.races} == {"bottom"}
        assert {race.kind for race in analysis.races} == {"read-write"}


class TestTransformGate:
    def test_racy_suite_is_rejected(self):
        case = _case("bad-unsignaled-write")
        with pytest.raises(TransformError) as exc:
            check_race_free(case.registry[case.root],
                            registry=case.registry)
        assert "race on node variable" in str(exc.value)

    def test_derived_pipeline_passes_the_gate(self):
        # pipelining()/phase_shift() run this gate themselves; calling
        # it again directly documents the post-condition
        from repro.transform.examples import derive_full_chain
        derive_full_chain(3)
        assert check_race_free(ir.get_program("mm-seq-3-dsc-pipe")) is None
        assert check_race_free(ir.get_program("mm-seq-3-dsc-phase")) is None


def test_cli_lint_all_with_races(capsys):
    assert main(["lint", "--all", "--races"]) == 0
    assert "0 error(s)" in capsys.readouterr().out
