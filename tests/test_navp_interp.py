"""The IR interpreter: evaluation, control flow, actions, continuations."""

import pickle

import numpy as np
import pytest

from repro.errors import ConfigurationError, FabricError
from repro.fabric import Grid1D, SimFabric, ThreadFabric
from repro.machine import FAST_TEST_MACHINE
from repro.navp import ir
from repro.navp.interp import Interp, IRMessenger
from repro.navp.kernels import KERNELS, get_kernel, register_kernel

V = ir.Var
C = ir.Const


def register(name, body, params=()):
    return ir.register_program(
        ir.Program(name, tuple(body), tuple(params)), replace=True)


class TestEval:
    def setup_method(self):
        register("eval-dummy", [])
        self.interp = Interp("eval-dummy", env={"x": 5, "d": {2: "two"}})

    def test_const_var_bin(self):
        node_vars = {}
        expr = ir.Bin("+", V("x"), C(3))
        assert self.interp.eval(expr, node_vars) == 8
        assert self.interp.eval(ir.Bin("%", C(7), C(3)), node_vars) == 1
        assert self.interp.eval(ir.Bin("//", C(7), C(2)), node_vars) == 3
        assert self.interp.eval(ir.Bin("==", V("x"), C(5)), node_vars)

    def test_unbound_var(self):
        with pytest.raises(FabricError, match="unbound"):
            self.interp.eval(V("nope"), {})

    def test_nodeget_single_and_tuple_keys(self):
        node_vars = {"A": {1: "one"}, "B": {(0, 1): "pair"}}
        assert self.interp.eval(ir.NodeGet("A", (C(1),)), node_vars) == "one"
        assert self.interp.eval(
            ir.NodeGet("B", (C(0), C(1))), node_vars) == "pair"

    def test_nodeget_whole_var(self):
        node_vars = {"A": "everything"}
        assert self.interp.eval(ir.NodeGet("A"), node_vars) == "everything"

    def test_nodeget_missing_var(self):
        with pytest.raises(FabricError, match="absent"):
            self.interp.eval(ir.NodeGet("Z", (C(0),)), {})

    def test_index(self):
        expr = ir.Index(V("d"), (C(2),))
        assert self.interp.eval(expr, {}) == "two"


class TestControlFlow:
    def _drain(self, program_name, env=None, node_vars=None):
        interp = Interp(program_name, env)
        node_vars = node_vars if node_vars is not None else {}
        actions = []
        while True:
            action = interp.next_action(node_vars)
            if action is None:
                return actions, interp, node_vars
            actions.append(action)
            if action[0] == "compute":
                _, kname, argvals, out, _ = action
                interp.env[out] = get_kernel(kname).fn(*argvals)

    def test_loop_unrolls(self):
        register("cf-loop", [
            ir.For("i", C(3), (ir.HopStmt((V("i"),)),)),
        ])
        actions, _, _ = self._drain("cf-loop")
        assert actions == [("hop", (0,)), ("hop", (1,)), ("hop", (2,))]

    def test_zero_trip_loop(self):
        register("cf-zero", [
            ir.For("i", C(0), (ir.HopStmt((C(9),)),)),
            ir.NodeSet("done", (), C(True)),
        ])
        actions, _, node_vars = self._drain("cf-zero")
        assert actions == []
        assert node_vars["done"] is True

    def test_nested_loops(self):
        register("cf-nest", [
            ir.For("i", C(2), (
                ir.For("j", C(2), (
                    ir.NodeSet("out", (V("i"), V("j")), C(1)),
                )),
            )),
        ])
        _, _, node_vars = self._drain("cf-nest")
        assert set(node_vars["out"]) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_if_branches(self):
        register("cf-if", [
            ir.For("i", C(3), (
                ir.If(ir.Bin("==", V("i"), C(1)),
                      then=(ir.NodeSet("t", (V("i"),), C("then")),),
                      orelse=(ir.NodeSet("t", (V("i"),), C("else")),)),
            )),
        ])
        _, _, node_vars = self._drain("cf-if")
        assert node_vars["t"] == {0: "else", 1: "then", 2: "else"}

    def test_wait_signal_inject_actions(self):
        register("cf-child", [])
        register("cf-fx", [
            ir.WaitStmt("EP", (C(1),)),
            ir.SignalStmt("EC", (C(1),), count=C(2)),
            ir.InjectStmt("cf-child", (("mi", C(7)),)),
        ])
        actions, _, _ = self._drain("cf-fx")
        assert actions == [
            ("wait", "EP", (1,)),
            ("signal", "EC", (1,), 2),
            ("inject", "cf-child", {"mi": 7}),
        ]

    def test_assign_and_compute(self):
        register("cf-compute", [
            ir.Assign("a", C(3)),
            ir.ComputeStmt("copy", (V("a"),), out="b"),
            ir.NodeSet("out", (), V("b")),
        ])
        actions, _, node_vars = self._drain("cf-compute")
        assert actions[0][0] == "compute"
        assert node_vars["out"] == 3


class TestContinuations:
    def test_snapshot_roundtrip_mid_loop(self):
        """Pickling the continuation mid-run must not change behavior."""
        register("cont-prog", [
            ir.For("i", C(4), (
                ir.HopStmt((V("i"),)),
                ir.NodeSet("seen", (V("i"),), V("i")),
            )),
        ])

        def run(migrate_each_step):
            interp = Interp("cont-prog")
            node_vars = {}
            while True:
                action = interp.next_action(node_vars)
                if action is None:
                    return node_vars
                if migrate_each_step:
                    snap = pickle.loads(
                        pickle.dumps(interp.agent_snapshot()))
                    interp = Interp.from_snapshot(snap)

        assert run(False) == run(True)

    def test_snapshot_contains_only_data(self):
        register("cont-data", [ir.Assign("x", C(1))])
        interp = Interp("cont-data", env={"arr": np.arange(4.0)})
        snap = interp.agent_snapshot()
        blob = pickle.dumps(snap)
        clone = Interp.from_snapshot(pickle.loads(blob))
        assert clone.program == "cont-data"
        assert np.array_equal(clone.env["arr"], np.arange(4.0))

    def test_done_property(self):
        register("cont-empty", [])
        interp = Interp("cont-empty")
        assert not interp.done
        assert interp.next_action({}) is None
        assert interp.done

    def test_unknown_program_rejected_eagerly(self):
        with pytest.raises(ConfigurationError):
            Interp("never-registered")


class TestKernels:
    def test_gemm_acc(self):
        kernel = get_kernel("gemm_acc")
        t = np.zeros((2, 2))
        a = np.eye(2)
        b = np.full((2, 2), 3.0)
        out = kernel.fn(t, a, b)
        assert np.array_equal(out, b)
        assert kernel.flops(t, a, b) == 2 * 2 * 2 * 2

    def test_zeros_from(self):
        kernel = get_kernel("zeros_from")
        ref = np.ones((3, 4))
        out = kernel.fn(ref)
        assert out.shape == (3, 4) and not out.any()

    def test_zeros_from_shadow(self):
        from repro.util.shadow import ShadowArray
        out = get_kernel("zeros_from").fn(ShadowArray((2, 5)))
        assert out.shape == (2, 5)

    def test_unknown_kernel(self):
        with pytest.raises(ConfigurationError):
            get_kernel("no-kernel")

    def test_duplicate_registration_rejected(self):
        assert "copy" in KERNELS
        with pytest.raises(ConfigurationError):
            register_kernel("copy", lambda x: x)


class TestIRMessengerOnFabrics:
    def _program(self):
        return register("irm-prog", [
            ir.For("i", C(3), (
                ir.HopStmt((V("i"),)),
                ir.ComputeStmt("copy", (ir.NodeGet("val"),), out="m"),
                ir.NodeSet("collected", (V("i"),), V("m")),
            )),
        ])

    @pytest.mark.parametrize("fabric_cls", [SimFabric, ThreadFabric])
    def test_runs_on_both_fabrics(self, fabric_cls):
        self._program()
        fabric = fabric_cls(Grid1D(3), machine=FAST_TEST_MACHINE)
        for j in range(3):
            fabric.load((j,), val=j * 10)
        fabric.inject((0,), IRMessenger("irm-prog"))
        result = fabric.run()
        for j in range(3):
            assert result.places[(j,)]["collected"][j] == j * 10
