"""The navigational IR: construction, registry, paths, picklability."""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.navp import ir

V = ir.Var
C = ir.Const


def tiny_program(name="tiny"):
    return ir.Program(name, body=(
        ir.For("i", C(2), (
            ir.HopStmt((V("i"),)),
            ir.If(ir.Bin("==", V("i"), C(0)), (
                ir.Assign("x", C(10)),
            )),
            ir.NodeSet("out", (V("i"),), V("x")),
        )),
    ))


class TestExpressions:
    def test_bin_validates_op(self):
        with pytest.raises(ConfigurationError):
            ir.Bin("**", C(1), C(2))

    def test_reprs_read_like_pseudocode(self):
        expr = ir.Bin("%", ir.Bin("+", V("mi"), V("mj")), C(3))
        assert repr(expr) == "((mi + mj) % 3)"
        assert repr(ir.NodeGet("B", (V("k"), V("mj")))) == "B[k, mj]"
        assert repr(ir.Index(V("mA"), (V("k"),))) == "mA[k]"

    def test_expressions_are_hashable_values(self):
        assert V("x") == V("x")
        assert V("x") != V("y")
        assert ir.NodeGet("A", (V("i"),)) == ir.NodeGet("A", (V("i"),))


class TestRegistry:
    def test_register_and_get(self):
        program = tiny_program("reg-test-1")
        ir.register_program(program, replace=True)
        assert ir.get_program("reg-test-1") is program

    def test_identical_reregistration_ok(self):
        program = tiny_program("reg-test-2")
        ir.register_program(program, replace=True)
        ir.register_program(tiny_program("reg-test-2"))  # equal: fine

    def test_conflicting_registration_rejected(self):
        ir.register_program(tiny_program("reg-test-3"), replace=True)
        other = ir.Program("reg-test-3", body=())
        with pytest.raises(ConfigurationError):
            ir.register_program(other)

    def test_replace(self):
        ir.register_program(tiny_program("reg-test-4"), replace=True)
        other = ir.Program("reg-test-4", body=())
        ir.register_program(other, replace=True)
        assert ir.get_program("reg-test-4") is other

    def test_unknown_program(self):
        with pytest.raises(ConfigurationError):
            ir.get_program("no-such-program")


class TestPaths:
    def test_root_body(self):
        program = tiny_program()
        assert ir.body_at(program, ()) == program.body

    def test_descend_for_and_if(self):
        program = tiny_program()
        loop_body = ir.body_at(program, (0,))
        assert isinstance(loop_body[0], ir.HopStmt)
        then = ir.body_at(program, (0, (1, "then")))
        assert isinstance(then[0], ir.Assign)

    def test_bad_paths(self):
        program = tiny_program()
        with pytest.raises(ConfigurationError):
            ir.body_at(program, (1,))  # index 1 isn't a For at root...
        with pytest.raises((ConfigurationError, IndexError)):
            ir.body_at(program, (0, 5))

    def test_node_at(self):
        program = tiny_program()
        assert isinstance(ir.node_at(program, (0,), 2), ir.NodeSet)


class TestPicklability:
    def test_programs_pickle(self):
        program = tiny_program("pickle-test")
        clone = pickle.loads(pickle.dumps(program))
        assert clone == program

    def test_statements_are_immutable(self):
        stmt = ir.Assign("x", C(1))
        with pytest.raises(AttributeError):
            stmt.var = "y"
