"""Unit coverage for the controller seams the serve daemon reuses.

The job service leans on three pieces of :mod:`repro.fabric.
controller` / :mod:`repro.resilience.recovery` machinery that until
now were only exercised through whole-fabric runs. Pin their contracts
directly: ``CreditGate.reset`` (reconnect semantics), ``RecoveryPolicy.
jittered_delays`` (bounds and reproducibility), and
``Supervisor.authorize_respawn`` (budget exhaustion).
"""

import pytest

from repro.errors import ResilienceError
from repro.fabric.controller import CreditGate, Supervisor
from repro.resilience.recovery import RecoveryPolicy


class TestCreditGateReset:
    def _gate(self, window=2, coalesce=8):
        sent = []
        gate = CreditGate(window, coalesce,
                          lambda dst, batch: sent.append((dst, batch)))
        return gate, sent

    def test_reset_forgets_outstanding_and_pending(self):
        """After a respawn the replacement worker owes nothing: the
        window reopens and queued payloads vanish (they are all in the
        journal, which the caller replays)."""
        gate, sent = self._gate(window=2)
        for p in ("p0", "p1", "p2", "p3"):
            gate.push(0, p)
        assert gate.outstanding[0] == 2          # window exhausted
        assert list(gate.pending[0]) == ["p2", "p3"]
        gate.reset(0)
        assert gate.outstanding[0] == 0
        assert not gate.pending[0]
        # the reopened window accepts a full replay immediately
        gate.push(0, "r0", flush=False)
        gate.push(0, "r1", flush=False)
        gate.pump(0)
        assert [b for _d, b in sent][-1] == ["r0", "r1"]

    def test_reset_is_per_destination(self):
        gate, _sent = self._gate(window=1)
        gate.push(0, "a")
        gate.push(1, "b")
        gate.push(1, "c")        # queued: window 1 exhausted toward 1
        gate.reset(1)
        assert gate.outstanding[0] == 1          # untouched
        assert gate.outstanding[1] == 0
        assert not gate.pending[1]

    def test_credit_after_reset_does_not_go_negative(self):
        """A stale credit from the dead worker's generation must not
        open the window wider than ``window``."""
        gate, sent = self._gate(window=1)
        gate.push(0, "a")
        gate.reset(0)
        gate.credit(0)                           # stale: already 0
        assert gate.outstanding[0] == 0
        gate.push(0, "b")
        gate.push(0, "c")
        assert gate.outstanding[0] == 1          # window still 1
        assert len(sent) == 2                    # "a" then "b", not "c"


class TestJitteredDelays:
    def test_bounds_and_growth(self):
        """Every jittered delay stays within (0, ceiling] while the
        ceilings grow exponentially."""
        policy = RecoveryPolicy(max_retries=6, backoff_s=0.02,
                                backoff_factor=2.0)
        ceilings = policy.delays()
        assert ceilings == [0.02 * 2.0 ** i for i in range(6)]
        for seed in range(20):
            jittered = policy.jittered_delays(seed)
            assert len(jittered) == 6
            for got, ceiling in zip(jittered, ceilings):
                assert 0.0 < got <= ceiling
                assert got >= 0.1 * ceiling      # full-jitter floor

    def test_seed_reproducible_and_decorrelated(self):
        policy = RecoveryPolicy(max_retries=4)
        assert policy.jittered_delays(7) == policy.jittered_delays(7)
        assert policy.jittered_delays(7) != policy.jittered_delays(8)

    def test_zero_retries_is_empty(self):
        assert RecoveryPolicy(max_retries=0).jittered_delays(1) == []


class TestRespawnBudget:
    def test_budget_exhaustion_raises(self):
        sup = Supervisor(RecoveryPolicy(), max_restarts=2)
        assert sup.authorize_respawn(0) == 1
        assert sup.authorize_respawn(0) == 2
        with pytest.raises(ResilienceError, match="exhausted"):
            sup.authorize_respawn(0)

    def test_budget_is_per_host(self):
        sup = Supervisor(RecoveryPolicy(), max_restarts=1)
        assert sup.authorize_respawn(0) == 1
        assert sup.authorize_respawn(1) == 1     # other host unaffected
        with pytest.raises(ResilienceError):
            sup.authorize_respawn(0)

    def test_disabled_recovery_refuses_any_respawn(self):
        sup = Supervisor(RecoveryPolicy(enabled=False), max_restarts=5)
        with pytest.raises(ResilienceError, match="disabled"):
            sup.authorize_respawn(0)

    def test_checkpoint_truncates_replay(self):
        """The recovery script replays only journal entries newer than
        the committed checkpoint."""
        sup = Supervisor(RecoveryPolicy(), max_restarts=1)
        sup.journal(0, ("run", "old"))
        cid = sup.begin_checkpoint([0])
        sup.commit_checkpoint(0, cid, {"state": 1})
        sup.journal(0, ("run", "new"))
        state, replay = sup.recovery_script(0)
        assert state == {"state": 1}
        assert replay == [("run", "new")]
