"""Teardown on exception paths: no orphans after a failed run.

Regression tests for the distributed fabrics' cleanup contract: when a
run *fails* (a worker hits an error mid-protocol), every worker
process must still exit and the controller's listener must close —
a failed job must not leak orphaned processes into the caller's
process table or keep 127.0.0.1 ports bound. This is what lets a
long-lived daemon (repro serve) survive thousands of failed jobs.

The forced failure is a hop to a coordinate outside the topology: the
executing worker raises MigrationError, reports it, and the
controller turns that into a FabricError — with workers mid-protocol
(the other host is idle in its mailbox wait).
"""

import multiprocessing as mp
import time

import pytest

from repro.errors import FabricError
from repro.fabric import Grid1D, make_fabric
from repro.navp import ir

C = ir.Const


@pytest.fixture()
def bad_hop_program():
    return ir.register_program(
        ir.Program("teardown-bad-hop",
                   body=(ir.HopStmt((C(7),)),)),  # (7,) not in Grid1D(2)
        replace=True)


def _assert_no_children(deadline_s: float = 10.0) -> None:
    end = time.monotonic() + deadline_s
    while time.monotonic() < end:
        kids = mp.active_children()   # also joins finished children
        if not kids:
            return
        time.sleep(0.05)
    raise AssertionError(
        f"orphaned worker process(es) after failed run: "
        f"{[k.name for k in mp.active_children()]}")


@pytest.mark.parametrize("kind", ["process", "socket"])
def test_failed_plain_run_leaves_no_orphans(kind, bad_hop_program):
    fabric = make_fabric(kind, Grid1D(2), trace=False, timeout=30.0)
    fabric.inject((0,), bad_hop_program.name)
    with pytest.raises(FabricError):
        fabric.run()
    _assert_no_children()


@pytest.mark.parametrize("kind", ["process", "socket"])
def test_failed_resilient_run_leaves_no_orphans(kind, bad_hop_program):
    """The resilient path has more to leak — journals, respawned
    generations, the supervisor — and must still reap everything."""
    fabric = make_fabric(kind, Grid1D(2), trace=False, timeout=30.0,
                         supervise=True, max_restarts=1)
    fabric.inject((0,), bad_hop_program.name)
    with pytest.raises(FabricError):
        fabric.run()
    _assert_no_children()


def test_socket_listener_closed_after_failure(bad_hop_program):
    """The bound control port must be released on the failure path."""
    fabric = make_fabric("socket", Grid1D(2), trace=False, timeout=30.0)
    fabric.inject((0,), bad_hop_program.name)
    with pytest.raises(FabricError):
        fabric.run()
    assert fabric._listener.fileno() == -1      # closed, port released
    _assert_no_children()
