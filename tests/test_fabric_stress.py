"""Stress and robustness: many messengers, deep pipelines, policies."""

import numpy as np
import pytest

from repro.fabric import Grid1D, Grid2D, SimFabric, ThreadFabric
from repro.fabric.desim import Resource, Simulator, Timeout
from repro.errors import SimulationError
from repro.machine import FAST_TEST_MACHINE
from repro.navp import Messenger


class _Worker(Messenger):
    """Random-route worker accumulating into per-place counters."""

    def __init__(self, route, wid):
        self.route = route
        self.wid = wid

    def main(self):
        for coord in self.route:
            yield self.hop(coord)
            counts = self.vars.setdefault("counts", {})

            def bump(counts=counts):
                counts[self.wid] = counts.get(self.wid, 0) + 1

            yield self.compute(bump, flops=10)


def _routes(n_workers, hops, places, seed=0):
    rng = np.random.default_rng(seed)
    return [
        [(int(rng.integers(places)),) for _ in range(hops)]
        for _ in range(n_workers)
    ]


class TestManyMessengers:
    @pytest.mark.parametrize("fabric_cls", [SimFabric, ThreadFabric])
    def test_200_workers_all_complete(self, fabric_cls):
        places = 5
        routes = _routes(200, 8, places, seed=3)
        fabric = fabric_cls(Grid1D(places), machine=FAST_TEST_MACHINE)
        for wid, route in enumerate(routes):
            fabric.inject(route[0], _Worker(route, wid))
        result = fabric.run()
        total = sum(
            sum(result.places[(j,)].get("counts", {}).values())
            for j in range(places)
        )
        assert total == 200 * 8

    def test_sim_and_thread_agree_on_counts(self):
        places = 4
        routes = _routes(60, 6, places, seed=9)

        def run(fabric_cls):
            fabric = fabric_cls(Grid1D(places),
                                machine=FAST_TEST_MACHINE)
            for wid, route in enumerate(routes):
                fabric.inject(route[0], _Worker(route, wid))
            result = fabric.run()
            return {
                j: dict(sorted(result.places[(j,)].get("counts",
                                                       {}).items()))
                for j in range(places)
            }

        assert run(SimFabric) == run(ThreadFabric)

    def test_deep_event_chain(self):
        """1000-stage producer/consumer chain through one event table."""
        depth = 1000

        class Stage(Messenger):
            def __init__(self, k):
                self.k = k

            def main(self):
                yield self.wait_event("stage", self.k)
                yield self.signal_event("stage", self.k + 1)

        fabric = SimFabric(Grid1D(1), machine=FAST_TEST_MACHINE)
        for k in range(depth):
            fabric.inject((0,), Stage(k))

        class Kick(Messenger):
            def main(self):
                yield self.signal_event("stage", 0)

        class Last(Messenger):
            def main(self):
                yield self.wait_event("stage", depth)
                self.vars["done"] = True

        fabric.inject((0,), Last())
        fabric.inject((0,), Kick())
        result = fabric.run()
        assert result.places[(0,)]["done"]

    def test_big_grid(self):
        """A 10x10 simulated grid with a sweep messenger per row."""
        grid = Grid2D(10)

        class RowSweep(Messenger):
            def __init__(self, i):
                self.i = i

            def main(self):
                for j in range(10):
                    yield self.hop((self.i, j))
                    self.vars["visited"] = True

        fabric = SimFabric(grid, machine=FAST_TEST_MACHINE)
        for i in range(10):
            fabric.inject((i, 0), RowSweep(i))
        result = fabric.run()
        assert all(result.places[c].get("visited")
                   for c in grid.coords)


class TestResourcePolicies:
    def _grant_order(self, policy):
        sim = Simulator()
        res = Resource(sim, 1, policy=policy)
        order = []

        def holder():
            yield res.acquire()
            yield Timeout(1.0)
            res.release()

        def waiter(tag, delay):
            yield Timeout(delay)
            yield res.acquire()
            order.append(tag)
            res.release()

        sim.spawn(holder())
        for tag, delay in (("a", 0.1), ("b", 0.2), ("c", 0.3)):
            sim.spawn(waiter(tag, delay))
        sim.run()
        return order

    def test_fifo_vs_lifo(self):
        assert self._grant_order("fifo") == ["a", "b", "c"]
        assert self._grant_order("lifo") == ["c", "b", "a"]

    def test_unknown_policy(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), 1, policy="priority")

    def test_lifo_fabric_still_correct(self):
        from repro.matmul import MatmulCase
        from repro.matmul.layouts import gather_c_2d, layout_2d_natural
        from repro.matmul.navp2d import _PhaseInjector2D
        from repro.util.validation import assert_allclose

        case = MatmulCase(n=24, ab=4, seed=13)
        fabric = SimFabric(Grid2D(3), machine=FAST_TEST_MACHINE,
                           cpu_policy="lifo")
        layout_2d_natural(fabric, case, 3)
        fabric.inject((0, 0), _PhaseInjector2D(case, 3))
        result = fabric.run()
        assert_allclose(gather_c_2d(result, case, 3), case.reference())


class TestSensitivityUnit:
    def test_calibrated_point_passes_all_claims(self):
        from repro.perfmodel import evaluate_claims
        from repro.machine import SUN_BLADE_100

        verdicts = evaluate_claims(SUN_BLADE_100)
        assert all(verdicts.values()), verdicts

    def test_perturbation_set_is_labelled(self):
        from repro.perfmodel import default_perturbations

        labels = [p.label for p in default_perturbations()]
        assert "calibrated" in labels
        assert len(labels) == len(set(labels)) >= 8
