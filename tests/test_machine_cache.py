"""Block-LRU cache model: mechanism and invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine.cache import (
    LRUBlockCache,
    cache_factors,
    misses_per_block_op,
    trace_mpi_gentleman,
    trace_navp,
    trace_sequential,
)

keys = st.integers(0, 15)


class TestLRU:
    def test_cold_misses_then_hits(self):
        cache = LRUBlockCache(4)
        assert not cache.access("a")
        assert cache.access("a")
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_order_is_lru(self):
        cache = LRUBlockCache(2)
        cache.access("a")
        cache.access("b")
        cache.access("a")        # refresh a; b is now LRU
        cache.access("c")        # evicts b
        assert cache.access("a")
        assert not cache.access("b")

    def test_capacity_one(self):
        cache = LRUBlockCache(1)
        cache.access("x")
        cache.access("y")
        assert not cache.access("x")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUBlockCache(0)

    def test_miss_rate_empty(self):
        assert LRUBlockCache(2).miss_rate == 0.0

    @given(st.lists(keys, max_size=200), st.integers(1, 8))
    def test_counters_consistent(self, trace, capacity):
        cache = LRUBlockCache(capacity).run(trace)
        assert cache.hits + cache.misses == len(trace)
        assert cache.misses >= len(set(trace)) - capacity
        assert cache.misses >= min(len(set(trace)), 1) if trace else True

    @given(st.lists(keys, min_size=1, max_size=200), st.integers(1, 8))
    def test_bigger_cache_never_worse(self, trace, capacity):
        """LRU is a stack algorithm: misses decrease with capacity."""
        small = LRUBlockCache(capacity).run(trace)
        large = LRUBlockCache(capacity + 1).run(trace)
        assert large.misses <= small.misses

    @given(st.lists(keys, min_size=1, max_size=100))
    def test_infinite_cache_misses_once_per_key(self, trace):
        cache = LRUBlockCache(1000).run(trace)
        assert cache.misses == len(set(trace))


class TestTraces:
    def test_trace_lengths(self):
        a = 4
        assert len(list(trace_sequential(a))) == a * a * (2 * a + 1)
        # navp: 3 accesses per op plus one flush mark per (k, i)
        assert len(list(trace_navp(a))) == a * a * (3 * a + 1)
        assert len(list(trace_mpi_gentleman(a))) == 3 * a * a * a

    def test_mpi_blocks_are_fresh_every_round(self):
        keys = list(trace_mpi_gentleman(2, rounds=2))
        a_keys = {k for k in keys if k[0] == "A"}
        assert len(a_keys) == 8  # 2 rounds x 4 positions, all distinct

    def test_navp_carried_block_repeats(self):
        keys = [k for k in trace_navp(3, rounds=1) if k[0] == "mA"]
        assert len(set(keys)) == 3  # one per (k=0, i)
        assert len(keys) == 9


class TestFactors:
    def test_normalization(self):
        factors = cache_factors()
        assert factors["sequential"] == 1.0

    def test_mpi_worst(self):
        factors = cache_factors()
        assert factors["mpi"] > factors["navp"] >= 1.0

    def test_capacity_derivation(self):
        factors = cache_factors(ab=128, elem_size=4, l2_bytes=256 * 1024)
        assert factors["capacity_blocks"] == 4

    def test_capacity_helps_reuse_patterns_only(self):
        """A huge cache makes the reusing patterns nearly miss-free,
        but the MPI pattern still pays — its blocks are fresh from the
        network every round by construction."""
        factors = cache_factors(ab=8, elem_size=4, l2_bytes=256 * 1024,
                                tile_blocks=4)
        misses = factors["misses"]
        assert misses["sequential"] <= 1.0
        assert misses["navp"] <= 1.1
        assert misses["mpi"] >= 2.0

    def test_miss_ordering(self):
        misses = cache_factors()["misses"]
        assert misses["sequential"] <= misses["navp"] + 0.2
        assert misses["navp"] < misses["mpi"]

    def test_misses_per_block_op_requires_positive_ops(self):
        with pytest.raises(ValueError):
            misses_per_block_op([], 4, 0)
