"""The shared IR visitor: exhaustiveness, path compatibility, the
extension point, and key normalization."""

import pytest

from repro.analysis import visitor
from repro.errors import AnalysisError
from repro.navp import ir

V = ir.Var
C = ir.Const


def _sample_program() -> ir.Program:
    return ir.Program("vis-sample", (
        ir.Assign("x", C(1)),
        ir.For("i", C(3), (
            ir.HopStmt((V("i"),)),
            ir.If(ir.Bin("==", V("i"), C(0)), (
                ir.Assign("y", ir.NodeGet("A", (V("i"),))),
            ), (
                ir.NodeSet("B", (V("i"),), V("x")),
            )),
            ir.ComputeStmt("copy", (ir.Index(V("y"), (C(0),)),),
                           out="z"),
        )),
        ir.InjectStmt("other", (("p", V("x")),)),
        ir.WaitStmt("E", (V("x"),)),
        ir.SignalStmt("E", (V("x"),), C(2)),
    ))


class TestExprWalking:
    def test_walk_expr_visits_every_node(self):
        expr = ir.Bin("+", ir.NodeGet("A", (V("i"),)),
                      ir.Index(V("m"), (C(0),)))
        kinds = [type(e).__name__ for e in visitor.walk_expr(expr)]
        assert kinds == ["Bin", "NodeGet", "Var", "Index", "Var",
                        "Const"]

    def test_uses_var(self):
        expr = ir.Index(V("m"), (ir.Bin("+", V("k"), C(1)),))
        assert visitor.uses_var(expr, "k")
        assert visitor.uses_var(expr, "m")
        assert not visitor.uses_var(expr, "j")

    def test_map_expr_is_bottom_up(self):
        seen = []
        expr = ir.Bin("+", V("a"), C(1))
        visitor.map_expr(lambda e: seen.append(e) or e, expr)
        # children before parents
        assert seen[-1] == expr

    def test_map_expr_rebuilds(self):
        expr = ir.Bin("+", V("a"), V("a"))
        out = visitor.map_expr(
            lambda e: C(5) if e == V("a") else e, expr)
        assert out == ir.Bin("+", C(5), C(5))

    def test_unknown_expr_type_raises(self):
        class Weird(ir.Expr):
            pass

        with pytest.raises(AnalysisError, match="register"):
            list(visitor.walk_expr(Weird()))


class TestStmtWalking:
    def test_walk_stmts_paths_compose_with_body_at(self):
        prog = _sample_program()
        for path, stmt in visitor.walk_stmts(prog.body):
            assert ir.body_at(prog, path[:-1])[path[-1]] is stmt

    def test_walk_stmts_covers_if_branches(self):
        prog = _sample_program()
        stmts = [s for _p, s in visitor.walk_stmts(prog.body)]
        assert any(isinstance(s, ir.NodeSet) for s in stmts)
        assert any(isinstance(s, ir.Assign) and s.var == "y"
                   for s in stmts)

    def test_map_stmt_exprs_reaches_every_statement_kind(self):
        prog = _sample_program()
        renamed = [visitor.map_stmt_exprs(
            lambda e: V("q") if e == V("x") else e, s)
            for s in prog.body]
        rebuilt = ir.Program("vis-renamed", tuple(renamed))
        uses = set()
        for _p, stmt in visitor.walk_stmts(rebuilt.body):
            for e in visitor.stmt_exprs(stmt):
                uses |= visitor.var_names(e)
        assert "x" not in uses
        assert "q" in uses

    def test_find_unique_loop(self):
        prog = _sample_program()
        path, loop = visitor.find_unique_loop(prog, "i")
        assert path == (1,)
        assert loop.var == "i"
        with pytest.raises(AnalysisError):
            visitor.find_unique_loop(prog, "zz")


class TestNormalization:
    def test_commutative_operands_ordered(self):
        a = ir.Bin("+", V("k"), C(1))
        b = ir.Bin("+", C(1), V("k"))
        assert visitor.normalize(a) == visitor.normalize(b)

    def test_non_commutative_untouched(self):
        a = ir.Bin("-", V("k"), C(1))
        b = ir.Bin("-", C(1), V("k"))
        assert visitor.normalize(a) != visitor.normalize(b)
        assert visitor.normalize(a) == a

    def test_normalization_is_recursive(self):
        a = ir.Bin("%", ir.Bin("+", V("mj"), V("mi")), C(3))
        b = ir.Bin("%", ir.Bin("+", V("mi"), V("mj")), C(3))
        assert visitor.normalize(a) == visitor.normalize(b)


class TestExtensionPoint:
    def test_registered_statement_participates_everywhere(self):
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Barrier(ir.Stmt):
            tag: ir.Expr

        with pytest.raises(AnalysisError):
            list(visitor.walk_stmts((Barrier(V("x")),)))

        visitor.register_stmt_type(
            Barrier,
            exprs=lambda s: (s.tag,),
            bodies=lambda s: (),
            rebuild=lambda s, exprs, bodies: Barrier(exprs[0]),
        )
        try:
            body = (Barrier(V("x")),)
            assert [s for _p, s in visitor.walk_stmts(body)] == [body[0]]
            out = visitor.map_stmt_exprs(
                lambda e: V("y") if e == V("x") else e, body[0])
            assert out == Barrier(V("y"))
        finally:
            del visitor._STMT_RULES[Barrier]
