"""The wavefront case study: correctness, events, pipeline behaviour,
and the dependence-driven limits of the transformations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeadlockError, TransformError
from repro.machine import FAST_TEST_MACHINE
from repro.navp import ir
from repro.transform import check_loop_independent
from repro.util.validation import assert_allclose
from repro.wavefront import (
    WavefrontCase,
    pipeline_time_model,
    reference_solve,
    run_dsc_wavefront,
    run_mpi_wavefront,
    run_pipelined_wavefront,
    run_sequential_wavefront,
    solve_block,
)

V = ir.Var
C = ir.Const


class TestBlockKernel:
    def test_whole_table_as_one_block(self):
        case = WavefrontCase(n=8, b=8)
        w = case.weights()
        assert np.allclose(solve_block(w), reference_solve(w))

    def test_block_composition(self):
        """Solving 2x2 blocks with boundary passing equals the whole."""
        case = WavefrontCase(n=8, b=4)
        w = case.weights()
        full = reference_solve(w)
        top_left = solve_block(w[:4, :4])
        top_right = solve_block(w[:4, 4:], left=top_left[:, -1])
        bottom_left = solve_block(w[4:, :4], top=top_left[-1, :])
        bottom_right = solve_block(w[4:, 4:], top=top_right[-1, :],
                                   left=bottom_left[:, -1])
        assert np.allclose(top_left, full[:4, :4])
        assert np.allclose(top_right, full[:4, 4:])
        assert np.allclose(bottom_left, full[4:, :4])
        assert np.allclose(bottom_right, full[4:, 4:])

    @given(st.integers(1, 4), st.integers(1, 4), st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_defining_recurrence_holds(self, bi, bj, seed):
        """Every interior cell satisfies D = w + min(up, left); the
        first row and column are running sums."""
        rng = np.random.default_rng(seed)
        w = rng.random((bi * 2, bj * 2))
        out = solve_block(w)
        assert np.allclose(out[0, :], np.cumsum(w[0, :]))
        assert np.allclose(out[:, 0], np.cumsum(w[:, 0]))
        for i in range(1, out.shape[0]):
            for j in range(1, out.shape[1]):
                assert out[i, j] == pytest.approx(
                    w[i, j] + min(out[i - 1, j], out[i, j - 1]))
        assert (out >= w - 1e-12).all()

    def test_shadow(self):
        from repro.util.shadow import ShadowArray

        out = solve_block(ShadowArray((4, 6)))
        assert out.shape == (4, 6)


class TestCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_dsc(self, p):
        case = WavefrontCase(n=24, b=4)
        result = run_dsc_wavefront(case, p)
        assert_allclose(result.d, case.reference(), what=f"dsc p={p}")

    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_pipelined(self, p):
        case = WavefrontCase(n=24, b=4)
        result = run_pipelined_wavefront(case, p)
        assert_allclose(result.d, case.reference(), what=f"pipe p={p}")

    @pytest.mark.parametrize("p", [2, 3])
    def test_mpi(self, p):
        case = WavefrontCase(n=24, b=4)
        result = run_mpi_wavefront(case, p)
        assert_allclose(result.d, case.reference(), what=f"mpi p={p}")

    def test_sequential(self):
        case = WavefrontCase(n=16, b=4)
        result = run_sequential_wavefront(case)
        assert_allclose(result.d, case.reference())

    def test_on_thread_fabric(self):
        case = WavefrontCase(n=24, b=4)
        result = run_pipelined_wavefront(case, 3, fabric="thread")
        assert_allclose(result.d, case.reference())


class TestSynchronization:
    def test_events_make_injection_order_irrelevant(self):
        """The BDONE handshake is what enforces the dependence: inject
        the carriers in REVERSE row order. With events the result is
        still exact (carriers wait for their predecessors); stripping
        the events corrupts the table (rows compute against missing
        top boundaries)."""
        from repro.fabric import Grid1D, SimFabric
        from repro.wavefront.navp import (
            RowCarrierWavefront,
            _BlockRowVisit,
            _Injector,
            _gather,
            _layout,
        )
        from repro.wavefront.problem import block_flops

        class RacyCarrier(RowCarrierWavefront):
            def main(self):  # identical tour, no wait_event
                case, p, r = self._wf_case, self._p, self.r
                flops = block_flops(case.b, case.n // p)
                for c in range(p):
                    yield self.hop((c,))
                    self.medge = yield _BlockRowVisit.compute(
                        self, r, self.medge, flops)
                    yield self.signal_event("BDONE", r)

        case = WavefrontCase(n=24, b=4)

        def run_reversed(carrier_cls):
            fabric = SimFabric(Grid1D(3), machine=FAST_TEST_MACHINE)
            _layout(fabric, case, 3)
            carriers = [carrier_cls(r, case, 3)
                        for r in reversed(range(case.nblocks))]
            fabric.inject((0,), _Injector(carriers))
            return _gather(fabric.run(), case, 3)

        guarded = run_reversed(RowCarrierWavefront)
        assert np.allclose(guarded, case.reference())
        racy = run_reversed(RacyCarrier)
        assert not np.allclose(racy, case.reference())

    def test_deadlock_if_prior_row_missing(self):
        """A lone carrier for row 1 waits forever on BDONE(0)."""
        from repro.fabric import Grid1D, SimFabric
        from repro.wavefront.navp import RowCarrierWavefront, _layout

        case = WavefrontCase(n=12, b=4)
        fabric = SimFabric(Grid1D(3), machine=FAST_TEST_MACHINE)
        _layout(fabric, case, 3)
        fabric.inject((0,), RowCarrierWavefront(1, case, 3))
        with pytest.raises(DeadlockError):
            fabric.run()


class TestTimingShape:
    def test_pipeline_matches_fill_model(self):
        case = WavefrontCase(n=2048, b=64, shadow=True)
        for p in (2, 4, 8):
            sim = run_pipelined_wavefront(case, p, trace=False).time
            model = pipeline_time_model(case, p)
            assert sim == pytest.approx(model, rel=0.1), p

    def test_pipelining_improves_on_dsc(self):
        case = WavefrontCase(n=2048, b=64, shadow=True)
        dsc = run_dsc_wavefront(case, 4, trace=False).time
        pipe = run_pipelined_wavefront(case, 4, trace=False).time
        assert pipe < dsc / 2

    def test_speedup_tracks_fill_formula(self):
        """speedup ~= R*p / (R + p - 1) for R block rows on p PEs."""
        case = WavefrontCase(n=2048, b=64, shadow=True)
        seq = run_sequential_wavefront(case, trace=False).time
        r_blocks = case.nblocks
        for p in (2, 4):
            pipe = run_pipelined_wavefront(case, p, trace=False).time
            ideal = r_blocks * p / (r_blocks + p - 1)
            assert seq / pipe == pytest.approx(ideal, rel=0.12)

    def test_navp_pipeline_tracks_mpi(self):
        """For wavefronts the two paradigms coincide structurally."""
        case = WavefrontCase(n=2048, b=64, shadow=True)
        pipe = run_pipelined_wavefront(case, 4, trace=False).time
        mpi = run_mpi_wavefront(case, 4, trace=False).time
        assert pipe == pytest.approx(mpi, rel=0.15)


class TestTransformRefusal:
    """The framework must refuse what the dependences forbid."""

    def _wavefront_ir(self):
        # fine-grained wavefront: D(r,c) = w(r,c) + min over D(r-1,c),
        # D(r,c-1) — expressed only as far as the dependence shape needs
        return ir.register_program(ir.Program("wf-seq-ir", (
            ir.For("r", C(4), (
                ir.For("c", C(4), (
                    ir.ComputeStmt(
                        "copy",
                        (ir.NodeGet("D", (ir.Bin("-", V("r"), C(1)),
                                          V("c"))),),
                        out="up"),
                    ir.NodeSet("D", (V("r"), V("c")), V("up")),
                )),
            )),
        )), replace=True)

    def test_row_loop_not_pipelinable(self):
        """check_loop_independent catches the D[r-1] flow dependence."""
        program = self._wavefront_ir()
        with pytest.raises(TransformError, match="dependence"):
            check_loop_independent(program, "r")

    def test_matmul_loop_still_passes(self):
        from repro.transform import sequential_program

        check_loop_independent(sequential_program(3, name="wf-mm"), "mi")
