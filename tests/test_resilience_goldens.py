"""The headline resilience guarantee: every pinned table time stays
bit-exact while faults are being injected and repaired underneath.

This runs the same four table builders as ``test_table_goldens.py``,
but inside an ambient ``injected(...)`` context whose plan crashes a
node and drops hops in every fabric the builders construct. With
recovery enabled the faults are *masked*: they fire (asserted via the
global STATS counters) yet no golden cell moves by a single bit.
"""

import json
from pathlib import Path

import pytest

from repro.perfmodel import tables
from repro.resilience import Crash, FaultPlan, MessageFault, injected
from repro.resilience.faults import STATS

GOLDEN_PATH = Path(__file__).parent / "goldens" / "table_times.json"

_BUILDERS = {
    "table1": tables.build_table1,
    "table2": tables.build_table2,
    "table3": tables.build_table3,
    "table4": tables.build_table4,
}

# every simulated run loses its 2nd and 5th cross-host hop and has
# place 1 crash after two forwarded hops — all repaired under the hood
_PLAN = FaultPlan(
    faults=(
        MessageFault(action="drop", kind="hop", every=3),
        Crash(place=1, at_hop=2),
    ),
    name="goldens-under-fire",
)


@pytest.fixture(scope="module")
def goldens():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("table", sorted(_BUILDERS))
def test_table_times_bit_identical_under_faults(table, goldens):
    recorded = goldens[table]
    for key in STATS:
        STATS[key] = 0
    with injected(_PLAN, recovery=True):
        comparison = _BUILDERS[table]()
    assert STATS["fired"] > 0, "plan never fired — injection not reaching " \
        "the builders' fabrics"
    assert STATS["lost"] == 0
    seen = {}
    for row in comparison.rows:
        prefix = f"n{row.n}/ab{row.ab}"
        seen[f"{prefix}/sequential"] = row.seq_model.hex()
        for variant, cell in row.cells.items():
            seen[f"{prefix}/{variant}"] = cell.model_time.hex()
    assert seen == recorded
