"""Bit-exact pinning of every Table 1-4 model time.

The goldens in ``tests/goldens/table_times.json`` were recorded from
the engine before the fast-path overhaul (slotted DES core, immediate
event deque, coalesced Compute effects, interned shadow arrays). The
optimizations are only admissible because they are *identities* on the
simulated schedule: every virtual end time of every cell must stay
bit-for-bit equal (compared through ``float.hex`` so no tolerance can
hide a drift).

If a deliberate model change invalidates these numbers, re-record with::

    PYTHONPATH=src python tests/record_table_goldens.py
"""

import json
from pathlib import Path

import pytest

from repro.perfmodel import tables

GOLDEN_PATH = Path(__file__).parent / "goldens" / "table_times.json"

_BUILDERS = {
    "table1": tables.build_table1,
    "table2": tables.build_table2,
    "table3": tables.build_table3,
    "table4": tables.build_table4,
}


@pytest.fixture(scope="module")
def goldens():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("table", sorted(_BUILDERS))
def test_table_times_bit_identical(table, goldens):
    recorded = goldens[table]
    comparison = _BUILDERS[table]()
    seen = {}
    for row in comparison.rows:
        prefix = f"n{row.n}/ab{row.ab}"
        seen[f"{prefix}/sequential"] = row.seq_model.hex()
        for variant, cell in row.cells.items():
            seen[f"{prefix}/{variant}"] = cell.model_time.hex()
    assert seen == recorded


def test_goldens_cover_all_tables(goldens):
    assert sorted(goldens) == sorted(_BUILDERS)
    # 98 cells were pinned at record time; a shrinking golden file means
    # someone regenerated it against a smaller sweep.
    assert sum(len(v) for v in goldens.values()) == 98
