"""Staggering analysis — Section 5 item 3 as properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.matmul.staggering import (
    cycles_of,
    forward_cycle_length,
    forward_stagger_permutation,
    phases_for_permutation,
    phases_for_scheme,
    reverse_stagger_permutation,
    schedule_permutation_phases,
    staggering_comparison,
)

orders = st.integers(2, 24)
permutations = st.permutations(list(range(8)))


class TestMaps:
    @given(orders, st.integers(0, 23))
    def test_forward_is_a_cyclic_shift(self, n, row):
        row = row % n
        perm = forward_stagger_permutation(n, row)
        assert sorted(perm) == list(range(n))
        for j in range(n):
            assert perm[j] == (j - row) % n

    @given(orders, st.integers(0, 23))
    def test_reverse_is_an_involution(self, n, row):
        """Applying reverse staggering twice is the identity — this is
        why it never needs more than two phases."""
        row = row % n
        perm = reverse_stagger_permutation(n, row)
        assert sorted(perm) == list(range(n))
        for j in range(n):
            assert perm[perm[j]] == j

    @given(orders, st.integers(0, 23))
    def test_forward_cycle_length_formula(self, n, row):
        row = row % n
        cycles = cycles_of(forward_stagger_permutation(n, row))
        lengths = {len(c) for c in cycles}
        assert lengths == {forward_cycle_length(n, row)}


class TestPhaseCounts:
    @given(orders)
    def test_reverse_never_exceeds_two(self, n):
        assert phases_for_scheme(n, "reverse") <= 2

    @given(orders)
    def test_forward_three_unless_power_of_two(self, n):
        expected = 2 if (n & (n - 1)) == 0 else 3
        assert phases_for_scheme(n, "forward") == expected

    def test_paper_grids(self):
        """On the paper's 3x3 grid: forward 3 phases, reverse 2."""
        assert phases_for_scheme(3, "forward") == 3
        assert phases_for_scheme(3, "reverse") == 2

    def test_identity_needs_none(self):
        assert phases_for_permutation(list(range(5))) == 0

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            phases_for_scheme(4, "sideways")

    def test_non_permutation_rejected(self):
        with pytest.raises(ConfigurationError):
            phases_for_permutation([0, 0, 1])

    def test_comparison_rows(self):
        rows = staggering_comparison([3, 4])
        assert rows == [(3, 3, 2), (4, 2, 2)]


class TestSchedules:
    @given(permutations)
    def test_schedule_is_valid_and_optimal(self, perm):
        """For ANY permutation: the schedule moves every non-fixed
        entry exactly once, no PE is used twice in a phase, and the
        phase count matches the cycle-parity closed form."""
        phases = schedule_permutation_phases(perm)
        assert len(phases) == phases_for_permutation(perm)
        moved = []
        for phase in phases:
            endpoints = [x for pair in phase for x in pair]
            assert len(set(endpoints)) == len(endpoints)
            moved.extend(phase)
        expected = sorted((j, perm[j]) for j in range(len(perm))
                          if perm[j] != j)
        assert sorted(moved) == expected

    @given(orders, st.integers(0, 23))
    def test_both_schemes_schedule_consistently(self, n, row):
        row = row % n
        for build in (forward_stagger_permutation,
                      reverse_stagger_permutation):
            perm = build(n, row)
            phases = schedule_permutation_phases(perm)
            assert len(phases) == phases_for_permutation(perm)
