"""Text tables, validation helpers, and the error hierarchy."""

import numpy as np
import pytest

from repro import errors
from repro.util.texttable import format_value, render_table
from repro.util.validation import assert_allclose, random_matrix, relative_error


class TestTextTable:
    def test_alignment_and_separator(self):
        out = render_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = out.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].split() == ["1", "2.50"]

    def test_title_and_groups(self):
        out = render_table(
            ["n", "t", "sp"],
            [[1536, 65.44, 1.0]],
            title="Table X",
            group_headers=[("", 1), ("Sequential", 2)],
        )
        assert out.splitlines()[0] == "Table X"
        assert "Sequential" in out.splitlines()[1]

    def test_group_span_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1, 2]], group_headers=[("x", 1)])

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_wide_group_label_widens_columns(self):
        out = render_table(["a", "b"], [[1, 2]],
                           group_headers=[("a very long group label", 2)])
        group_row = out.splitlines()[0]
        assert "a very long group label" in group_row

    def test_format_value(self):
        assert format_value(None) == ""
        assert format_value(1.23456, 3) == "1.235"
        assert format_value("x") == "x"
        assert format_value(7) == "7"


class TestValidation:
    def test_relative_error_zero(self):
        a = np.ones((4, 4))
        assert relative_error(a, a) == 0.0

    def test_relative_error_zero_reference(self):
        assert relative_error(np.ones(3), np.zeros(3)) == pytest.approx(
            np.sqrt(3.0))

    def test_assert_allclose_raises(self):
        with pytest.raises(errors.VerificationError):
            assert_allclose(np.ones((2, 2)), np.zeros((2, 2)) + 2.0)

    def test_assert_allclose_returns_error(self):
        err = assert_allclose(np.ones(3) + 1e-14, np.ones(3))
        assert err < 1e-12

    def test_random_matrix_deterministic(self):
        a = random_matrix(8, 42)
        b = random_matrix(8, 42)
        c = random_matrix(8, 43)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert np.abs(a).max() <= 1.0

    def test_random_matrix_dtype(self):
        assert random_matrix(4, 0, dtype=np.float32).dtype == np.float32


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.ConfigurationError, errors.TopologyError,
        errors.PartitionError, errors.FabricError, errors.DeadlockError,
        errors.NonLocalEventError, errors.MigrationError,
        errors.ProtocolError, errors.SimulationError,
        errors.TransformError, errors.VerificationError,
    ])
    def test_all_are_repro_errors(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_specific_parents(self):
        assert issubclass(errors.TopologyError, errors.ConfigurationError)
        assert issubclass(errors.PartitionError, errors.ConfigurationError)
        assert issubclass(errors.DeadlockError, errors.FabricError)
        assert issubclass(errors.ProtocolError, errors.FabricError)
