"""SPMD baselines on the thread fabric: same numerics, real threads."""

import pytest

from repro.matmul import (
    MatmulCase,
    run_cannon,
    run_doall,
    run_doall_replicated,
    run_gentleman,
    run_gentleman_tuned,
    run_summa,
)
from repro.util.validation import assert_allclose
from repro.wavefront import WavefrontCase, run_mpi_wavefront


@pytest.mark.parametrize("runner", [
    run_gentleman, run_gentleman_tuned, run_cannon, run_summa,
    run_doall, run_doall_replicated,
])
def test_matmul_spmd_on_threads(runner):
    case = MatmulCase(n=24, ab=4, seed=31)
    result = runner(case, 2, fabric="thread")
    assert_allclose(result.c, case.reference(),
                    what=f"{result.variant} on threads")


def test_gentleman_3x3_on_threads():
    case = MatmulCase(n=36, ab=3, seed=32)
    result = run_gentleman(case, 3, fabric="thread")
    assert_allclose(result.c, case.reference())


def test_wavefront_mpi_runs_on_sim_only_api():
    """The wavefront MPI baseline keeps its own signature (sim)."""
    case = WavefrontCase(n=16, b=4)
    result = run_mpi_wavefront(case, 2)
    import numpy as np

    assert np.allclose(result.d, case.reference())
