"""Cross-fabric parity: same numerics on every execution substrate.

Two layers:

* the SPMD generator baselines run on real threads (generator frames
  can't cross address spaces, so thread is as far as they go);
* the IR suites — the Table 3 NavP program (fig 11) and the Gentleman
  schedule restated as carriers — run on *all four* fabrics, and must
  produce bit-identical matrices and identical logical-transfer counts
  whether the hop is a virtual-time event, a queue put, a pickled
  mp.Queue message, or a length-prefixed TCP frame.
"""

import numpy as np
import pytest

from repro.fabric import FABRIC_KINDS
from repro.matmul import (
    MatmulCase,
    build_fig11,
    build_gentleman_ir,
    run_cannon,
    run_doall,
    run_doall_replicated,
    run_gentleman,
    run_gentleman_tuned,
    run_ir2d_suite,
    run_summa,
)
from repro.util.validation import assert_allclose
from repro.wavefront import WavefrontCase, run_mpi_wavefront


@pytest.mark.parametrize("runner", [
    run_gentleman, run_gentleman_tuned, run_cannon, run_summa,
    run_doall, run_doall_replicated,
])
def test_matmul_spmd_on_threads(runner):
    case = MatmulCase(n=24, ab=4, seed=31)
    result = runner(case, 2, fabric="thread")
    assert_allclose(result.c, case.reference(),
                    what=f"{result.variant} on threads")


def test_gentleman_3x3_on_threads():
    case = MatmulCase(n=36, ab=3, seed=32)
    result = run_gentleman(case, 3, fabric="thread")
    assert_allclose(result.c, case.reference())


@pytest.mark.parametrize("build", [build_fig11, build_gentleman_ir],
                         ids=["navp-fig11", "gentleman-ir"])
def test_ir_suites_identical_on_all_fabrics(build):
    """Table 3 pairing: bit-identical results + transfer counts."""
    g = 2
    golden = None
    counts = {}
    for kind in FABRIC_KINDS:
        suite = build(g)
        c, result = run_ir2d_suite(suite, kind, trace=True)
        if golden is None:
            golden = c
        else:
            assert np.array_equal(c, golden), (
                f"{suite.name} on {kind} differs bitwise from sim")
        counts[kind] = result.trace.message_count()
    assert len(set(counts.values())) == 1, (
        f"logical transfer counts diverge across fabrics: {counts}")


def test_wavefront_mpi_runs_on_sim_only_api():
    """The wavefront MPI baseline keeps its own signature (sim)."""
    case = WavefrontCase(n=16, b=4)
    result = run_mpi_wavefront(case, 2)
    import numpy as np

    assert np.allclose(result.d, case.reference())
