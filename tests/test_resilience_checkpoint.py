"""Checkpoint stores, coordinated cuts, and resume-from-cut."""

import pytest

from repro.errors import FabricError, ResilienceError
from repro.fabric import Grid1D, SimFabric
from repro.navp import ir
from repro.navp.interp import IRMessenger
from repro.resilience import (
    ConsistentCut,
    DiskStore,
    MemoryStore,
    resume_from_cut,
)

V = ir.Var
C = ir.Const


def _register_scale_tour():
    """Hop the ring, writing mark = 7 * (place index + 1) everywhere."""
    ir.register_program(ir.Program("ckpt-tour", (
        ir.Assign("acc", C(0)),
        ir.For("i", C(4), (
            ir.HopStmt((V("i"),)),
            ir.Assign("acc", ir.Bin("+", V("acc"), C(7))),
            ir.NodeSet("mark", (), V("acc")),
        )),
    ), ()), replace=True)


def _build(store=None):
    _register_scale_tour()
    fabric = SimFabric(Grid1D(4), trace=False, use_cache_model=False,
                       checkpoint_store=store)
    return fabric


class TestStores:
    def test_memory_store_round_trip_and_latest(self):
        store = MemoryStore()
        assert store.latest() is None
        store.save("a", {"x": 1})
        store.save("b", {"x": 2})
        assert store.keys() == ["a", "b"]
        assert store.load("a") == {"x": 1}
        assert store.latest() == {"x": 2}

    def test_memory_store_copies_payloads(self):
        store = MemoryStore()
        payload = {"xs": [1, 2]}
        store.save("k", payload)
        payload["xs"].append(3)
        first = store.load("k")
        assert first["xs"] == [1, 2]
        first["xs"].append(9)  # mutating a loaded copy is also safe
        assert store.load("k")["xs"] == [1, 2]

    def test_disk_store_round_trip(self, tmp_path):
        store = DiskStore(str(tmp_path / "ckpts"))
        cut = ConsistentCut(time=1.5, places={0: {"x": 1}}, label="t")
        store.save("cut:1", cut)
        store.save("cut:2", ConsistentCut(time=2.5))
        # a fresh handle reads the same index and payloads
        again = DiskStore(str(tmp_path / "ckpts"))
        assert again.keys() == ["cut:1", "cut:2"]
        loaded = again.load("cut:1")
        assert (loaded.time, loaded.places, loaded.label) == (
            1.5, {0: {"x": 1}}, "t")
        assert again.latest().time == 2.5

    def test_disk_store_missing_key(self, tmp_path):
        store = DiskStore(str(tmp_path))
        with pytest.raises(ResilienceError):
            store.load("never-saved")

    def test_disk_store_save_is_fsynced(self, tmp_path, monkeypatch):
        """save returns only after the bundle and index line are
        fsync'd: the serve ledger writes a ``ckpt`` record advertising
        the cut, and that record must never outlive it."""
        import os

        synced = []
        real_fsync = os.fsync

        def counting_fsync(fd):
            synced.append(fd)
            real_fsync(fd)

        monkeypatch.setattr("repro.resilience.checkpoint.os.fsync",
                            counting_fsync)
        store = DiskStore(str(tmp_path / "ckpts"))
        store.save("cut:1", ConsistentCut(time=1.0))
        assert len(synced) >= 2   # payload file + index append (+ dir)
        assert DiskStore(str(tmp_path / "ckpts")).load("cut:1").time == 1.0


class TestScheduledCuts:
    def test_cut_captures_mid_flight_messenger(self):
        fabric = _build(MemoryStore())
        clean_end = None
        # find a time strictly inside the run first
        probe = _build(MemoryStore())
        probe.inject((0,), IRMessenger("ckpt-tour"))
        clean_end = probe.run().time
        mid = clean_end / 2

        fabric.schedule_snapshot(mid, label="mid")
        fabric.inject((0,), IRMessenger("ckpt-tour"))
        result = fabric.run()
        assert result.time.hex() == clean_end.hex()  # observing is free

        cut = fabric.checkpoints.load(f"cut:{mid:.9f}:mid")
        assert cut.time == mid
        assert len(cut.messengers) == 1
        ((place_index, snap, _pending),) = tuple(cut.messengers.values())
        assert isinstance(snap, tuple)  # (program, env, stack)
        assert 0 <= place_index < 4

    def test_snapshot_after_inject_without_resilience_raises(self):
        fabric = _build()  # no store, no plan
        fabric.inject((0,), IRMessenger("ckpt-tour"))
        with pytest.raises(FabricError):
            fabric.schedule_snapshot(0.001)

    def test_resume_from_cut_reproduces_final_state(self):
        probe = _build(MemoryStore())
        probe.inject((0,), IRMessenger("ckpt-tour"))
        final = probe.run()
        expected = {j: final.places[(j,)].get("mark") for j in range(4)}
        assert expected == {0: 7, 1: 14, 2: 21, 3: 28}

        fabric = _build(MemoryStore())
        fabric.schedule_snapshot(final.time / 2, label="mid")
        fabric.inject((0,), IRMessenger("ckpt-tour"))
        fabric.run()
        cut = fabric.checkpoints.latest()

        # roll a FRESH fabric forward from the cut: same final state
        fresh = _build()
        resumed = resume_from_cut(fresh, cut).run()
        got = {j: resumed.places[(j,)].get("mark") for j in range(4)}
        assert got == expected

    def test_resume_preserves_completed_prefix(self):
        """State written before the cut comes from the cut, not re-run."""
        probe = _build(MemoryStore())
        probe.inject((0,), IRMessenger("ckpt-tour"))
        final = probe.run()

        fabric = _build(MemoryStore())
        fabric.schedule_snapshot(final.time / 2, label="mid")
        fabric.inject((0,), IRMessenger("ckpt-tour"))
        fabric.run()
        cut = fabric.checkpoints.latest()
        # at mid-run, at least one mark is already in the cut's places
        marked = [i for i, vars_ in cut.places.items() if "mark" in vars_]
        assert marked, "cut captured no progress — pick a later time"
