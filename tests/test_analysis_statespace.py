"""The explicit-state engine: trace extraction and exploration."""

import pytest

from repro.analysis.statespace import (
    OPAQUE,
    AbstractionError,
    Explorer,
    extract_system,
    extract_traces,
    signal_totals,
)
from repro.navp import ir

V = ir.Var
C = ir.Const


def _prog(name, body, params=()):
    return ir.Program(name, tuple(body), tuple(params))


def _reg(*programs):
    return {p.name: p for p in programs}


class TestExtraction:
    def test_hops_waits_signals_become_ops(self):
        reg = _reg(_prog("t", (
            ir.HopStmt((C(1),)),
            ir.WaitStmt("E", (C(2),)),
            ir.SignalStmt("F", (), C(1)),
            ir.HopStmt((C(0),)),
        )))
        (trace,) = extract_traces("t", reg)
        kinds = [op[0] for op in trace.ops]
        assert kinds == ["hop", "wait", "signal", "hop"]
        hop0 = trace.ops[0]
        assert hop0[1] == (0,) and hop0[2] == (1,)
        # the wait key carries the host where the wait happens
        assert trace.ops[1][1] == ((1,), "E", (2,))
        assert trace.ops[3][2] == (0,)

    def test_concrete_for_loop_unrolls(self):
        reg = _reg(_prog("t", (
            ir.For("i", C(3), (
                ir.SignalStmt("E", (V("i"),), C(1)),
            )),
        )))
        (trace,) = extract_traces("t", reg)
        keys = [op[1] for op in trace.ops]
        assert [k[2] for k in keys] == [(0,), (1,), (2,)]

    def test_concrete_if_takes_one_branch(self):
        reg = _reg(_prog("t", (
            ir.If(ir.Bin("==", C(1), C(1)),
                  (ir.SignalStmt("THEN", (), C(1)),),
                  (ir.SignalStmt("ELSE", (), C(1)),)),
        )))
        (trace,) = extract_traces("t", reg)
        assert [op[1][1] for op in trace.ops] == ["THEN"]

    def test_compute_output_is_opaque_and_rejected_in_coords(self):
        # a hop coordinate fed by a compute result escapes the
        # abstraction — the checker must refuse, not guess
        reg = _reg(_prog("t", (
            ir.ComputeStmt("copy", (C(1),), out="x"),
            ir.HopStmt((V("x"),)),
        )))
        with pytest.raises(AbstractionError):
            extract_traces("t", reg)

    def test_opaque_sentinel_is_not_an_int(self):
        assert not isinstance(OPAQUE, int)

    def test_inject_spawns_child_trace(self):
        child = _prog("child", (ir.WaitStmt("GO", ()),), ())
        main = _prog("main", (
            ir.HopStmt((C(1),)),
            ir.InjectStmt("child"),
            ir.SignalStmt("DONE", (), C(1)),
        ))
        traces, roots = extract_system([("main", (0,), {})],
                                       _reg(main, child))
        assert len(traces) == 2
        assert roots == [0]
        spawn = traces[0].ops[1]
        assert spawn[0] == "spawn" and spawn[1] == 1
        assert traces[1].spawner == 0
        # the child starts where its parent stood when it injected
        assert traces[1].ops[0][1] == ((1,), "GO", ())

    def test_unbound_param_is_unsupported(self):
        reg = _reg(_prog("t", (ir.HopStmt((V("p"),)),), params=("p",)))
        with pytest.raises(AbstractionError):
            extract_traces("t", reg)

    def test_env_binds_params(self):
        reg = _reg(_prog("t", (ir.HopStmt((V("p"),)),), params=("p",)))
        (trace,) = extract_traces("t", reg, env={"p": 2})
        assert trace.ops[0][2] == (2,)


def _explore(registry, roots, **kw):
    traces, indices = extract_system(roots, registry)
    pending = kw.pop("initial_pending", None)
    return Explorer(traces, indices, pending, **kw).explore()


class TestExplorer:
    def test_clean_handshake_completes(self):
        reg = _reg(
            _prog("p", (ir.SignalStmt("E", (), C(1)),)),
            _prog("c", (ir.WaitStmt("E", ()),)),
        )
        res = _explore(reg, [("p", (0,), {}), ("c", (0,), {})])
        assert res.complete
        assert res.deadlock is None
        assert res.terminals >= 1

    def test_never_signaled_wait_deadlocks_with_schedule(self):
        reg = _reg(_prog("w", (ir.WaitStmt("NEVER", ()),)))
        res = _explore(reg, [("w", (0,), {})])
        assert res.deadlock is not None
        assert "NEVER" in res.deadlock.describe()

    def test_exploration_is_deterministic(self):
        reg = _reg(
            _prog("a", (ir.SignalStmt("X", (), C(1)),
                        ir.WaitStmt("Y", ()),)),
            _prog("b", (ir.SignalStmt("Y", (), C(1)),
                        ir.WaitStmt("X", ()),)),
        )
        roots = [("a", (0,), {}), ("b", (0,), {})]
        r1 = _explore(reg, roots)
        r2 = _explore(reg, roots)
        assert (r1.states, r1.transitions) == (r2.states, r2.transitions)
        assert r1.deadlock is None

    def test_por_never_expands_more_than_naive(self):
        reg = _reg(
            _prog("a", (ir.SignalStmt("X", (), C(1)),)),
            _prog("b", (ir.SignalStmt("Y", (), C(1)),)),
            _prog("c", (ir.WaitStmt("X", ()), ir.WaitStmt("Y", ()))),
        )
        res = _explore(reg, [("a", (0,), {}), ("b", (0,), {}),
                             ("c", (0,), {})])
        assert res.complete
        assert res.reduction_factor >= 1.0

    def test_lazy_hosts_find_exact_mailbox_peak(self):
        # three messengers hop into host 1; with retirement lazy there,
        # all three can be in the mailbox at once
        progs = [_prog(f"m{i}", (ir.HopStmt((C(1),)),)) for i in range(3)]
        reg = _reg(*progs)
        roots = [(p.name, (0,), {}) for p in progs]
        eager = _explore(reg, roots)
        lazy = _explore(reg, roots, lazy_hosts=frozenset({(1,)}))
        assert lazy.peaks.get((1,)) == 3
        # the eager pass retires immediately — it underestimates
        assert eager.peaks.get((1,), 0) <= lazy.peaks[(1,)]

    def test_gated_window_deadlock_invisible_ungated(self):
        # two hoppers each way at window=1: one send fills each window,
        # the second sender blocks its whole host worker in emit_hop,
        # and neither in-flight hop can retire into a stuck worker —
        # mutual credit starvation. Without the gate every schedule
        # completes.
        px = _prog("g-px", (ir.HopStmt((C(1),)),))
        qx = _prog("g-qx", (ir.HopStmt((C(0),)),))
        reg = _reg(px, qx)
        roots = [("g-px", (0,), {}), ("g-px", (0,), {}),
                 ("g-qx", (1,), {}), ("g-qx", (1,), {})]
        ungated = _explore(reg, roots)
        assert ungated.deadlock is None and ungated.complete
        gated = _explore(reg, roots, window=1, gated=True)
        assert gated.deadlock is not None
        assert "credit window exhausted" in gated.deadlock.describe()
        # a window of 2 admits both hops at once: no starvation
        relaxed = _explore(reg, roots, window=2, gated=True)
        assert relaxed.deadlock is None and relaxed.complete

    def test_state_cap_reports_incomplete(self):
        # distinct hoppers racing into a lazy host branch on retirement
        # order — enough states to trip a cap of 1
        progs = [_prog(f"cap{i}", (ir.HopStmt((C(0),)),
                                   ir.SignalStmt(f"S{i}", (), C(1))))
                 for i in range(3)]
        reg = _reg(*progs)
        traces, indices = extract_system(
            [(p.name, (1,), {}) for p in progs], reg)
        res = Explorer(traces, indices, lazy_hosts=frozenset({(0,)}),
                       max_states=1).explore()
        assert not res.complete
        assert res.reason


class TestSignalTotals:
    def test_totals_net_out_waits(self):
        reg = _reg(
            _prog("p", (ir.SignalStmt("E", (), C(2)),)),
            _prog("c", (ir.WaitStmt("E", ()),)),
        )
        traces, _ = extract_system([("p", (0,), {}), ("c", (0,), {})],
                                   reg)
        totals = signal_totals(traces)
        assert totals[((0,), "E", ())] == 1
