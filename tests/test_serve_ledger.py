"""The durable control plane, unit level: ledger edge cases (torn
tails, rotation, compaction, group commit), replay semantics, the
structured/legacy error-reply classification, the stale addr-file
probe, and in-process daemon restarts on one state dir (terminal
history recovered, idempotent submit deduped across the restart,
abandoned jobs re-run to the same golden digest).

The full out-of-process story — SIGKILL the daemon binary mid-stream,
restart it, SIGTERM drain — lives in tests/test_serve_restart.py.
"""

import json
import os
import subprocess
import sys
import threading
import time
from contextlib import contextmanager

import pytest

from repro.errors import AdmissionError, LedgerError, ServeError
from repro.serve import JobLedger, ServeService, replay_ledger
from repro.serve.client import _classify, resolve_addr
from repro.serve.jobs import JobSpec


def _adm(jid, seq, key=None, **spec):
    spec = {"program": "navp-2d-dsc", "g": 2, "seed": seq, "ab": 4,
            "workers": 1, "tenant": "t", "priority": 0, "key": key,
            **spec}
    return {"t": "admitted", "jid": jid, "seq": seq, "spec": spec,
            "key": key}


def _done(jid, state="completed", **kw):
    return {"t": "done", "jid": jid, "state": state, "reason": "",
            "digest": "d" * 64, "ok": True, "wall_s": 0.1,
            "restarts": 0, **kw}


class TestLedgerRoundtrip:
    def test_lifecycle_replay(self, tmp_path):
        led = JobLedger(str(tmp_path))
        first = led.open()
        assert first.jobs == {}
        assert first.clean_close is True   # nothing to recover = clean
        led.append(_adm("j0", 0, key="k0"))
        led.append({"t": "dispatched", "jid": "j0"})
        led.append({"t": "ckpt", "jid": "j0", "cid": 3})
        led.append(_adm("j1", 1))
        led.append(_done("j0"))
        led.close()

        replay = replay_ledger(str(tmp_path))
        assert replay.clean_close is True
        assert replay.torn_records == 0
        assert replay.max_seq == 1
        j0, j1 = replay.jobs["j0"], replay.jobs["j1"]
        assert j0.terminal and j0.state == "completed"
        assert j0.digest == "d" * 64 and j0.ok is True
        assert j0.last_cid == 3 and j0.key == "k0"
        assert not j1.terminal and j1.state == "pending"
        assert replay.by_key() == {"k0": "j0"}

    def test_unclean_session_detected_and_recovered(self, tmp_path):
        led = JobLedger(str(tmp_path))
        led.open()
        led.append(_adm("j0", 0))
        # no close(): the daemon was SIGKILLed
        led2 = JobLedger(str(tmp_path))
        replay = led2.open()
        assert replay.clean_close is False
        assert replay.sessions == 1
        assert replay.jobs["j0"].state == "pending"
        led2.close()
        assert replay_ledger(str(tmp_path)).clean_close is True

    def test_closed_ledger_drops_appends(self, tmp_path):
        led = JobLedger(str(tmp_path))
        led.open()
        led.close()
        assert led.append(_adm("j9", 9)) is False
        assert led.stats()["dropped_after_close"] == 1
        assert "j9" not in replay_ledger(str(tmp_path)).jobs

    def test_bad_records_raise(self, tmp_path):
        led = JobLedger(str(tmp_path))
        led.open()
        led.append({"t": "dispatched", "jid": "never-admitted"})
        led.close()
        with pytest.raises(LedgerError, match="never-admitted"):
            replay_ledger(str(tmp_path))


class TestTornTail:
    def _segment(self, tmp_path):
        paths = sorted(p for p in os.listdir(tmp_path)
                       if p.startswith("wal-"))
        return os.path.join(tmp_path, paths[-1])

    def test_torn_final_record_dropped(self, tmp_path):
        led = JobLedger(str(tmp_path))
        led.open()
        led.append(_adm("j0", 0))
        led.close()
        with open(self._segment(tmp_path), "a", encoding="utf-8") as fh:
            fh.write('{"t":"admitted","jid":"j1","se')   # crash mid-write
        replay = replay_ledger(str(tmp_path))
        assert replay.torn_records == 1
        assert list(replay.jobs) == ["j0"]
        # the torn tail also cost us the close record's finality?
        # no — the close was complete; only the half record is dropped
        assert replay.clean_close is True

    def test_torn_tail_in_an_old_segment_tolerated(self, tmp_path):
        led = JobLedger(str(tmp_path))
        led.open()
        led.append(_adm("j0", 0))
        with open(self._segment(tmp_path), "a", encoding="utf-8") as fh:
            fh.write('{"t":"adm')    # session 1 died mid-append
        led2 = JobLedger(str(tmp_path))
        replay = led2.open()         # session 2 opens a NEW segment
        assert replay.torn_records == 1
        led2.append(_adm("j1", 1))
        led2.close()
        replay = replay_ledger(str(tmp_path))
        assert replay.torn_records == 1
        assert set(replay.jobs) == {"j0", "j1"}

    def test_torn_tail_in_a_sealed_segment_raises(self, tmp_path):
        """A rotated-away segment was fsync'd before its session moved
        on — a half line at its end is corruption (the successor starts
        with an ordinary record, not a new session's open), not a
        forgivable crash tail."""
        led = JobLedger(str(tmp_path), segment_max=2)
        led.open()
        for i in range(4):
            led.append(_adm(f"j{i}", i))
        led.close()
        segs = sorted(p for p in os.listdir(tmp_path)
                      if p.startswith("wal-"))
        assert len(segs) >= 3
        with open(os.path.join(tmp_path, segs[1]), "a",
                  encoding="utf-8") as fh:
            fh.write('{"t":"adm')
        with pytest.raises(LedgerError, match="sealed segment"):
            replay_ledger(str(tmp_path))

    def test_interior_corruption_raises(self, tmp_path):
        led = JobLedger(str(tmp_path))
        led.open()
        led.append(_adm("j0", 0))
        led.close()
        with open(self._segment(tmp_path), "a", encoding="utf-8") as fh:
            fh.write("GARBAGE NOT JSON\n")
            fh.write(json.dumps(_adm("j1", 1)) + "\n")
        with pytest.raises(LedgerError, match="not a torn tail"):
            replay_ledger(str(tmp_path))


class TestRotationAndCompaction:
    def test_rotation_seals_segments(self, tmp_path):
        led = JobLedger(str(tmp_path), segment_max=4)
        led.open()
        for i in range(10):
            led.append(_adm(f"j{i}", i))
        led.close()
        assert led.rotations >= 2
        assert replay_ledger(str(tmp_path)).segments >= 3
        assert len(replay_ledger(str(tmp_path)).jobs) == 10

    def test_compaction_replays_identically(self, tmp_path):
        # two sessions, rotation, a mixed population: terminal jobs,
        # a pending one, a running one with a committed checkpoint
        led = JobLedger(str(tmp_path), segment_max=3)
        led.open()
        for i in range(4):
            led.append(_adm(f"j{i}", i, key=f"k{i}"))
        led.append({"t": "dispatched", "jid": "j0"})
        led.append(_done("j0"))
        led.append({"t": "dispatched", "jid": "j1"})
        led.append(_done("j1", state="failed", reason="boom", ok=False))
        led.close()
        led2 = JobLedger(str(tmp_path), segment_max=3)
        led2.open()
        led2.append({"t": "dispatched", "jid": "j2"})
        led2.append({"t": "ckpt", "jid": "j2", "cid": 7})
        led2.close()

        full = replay_ledger(str(tmp_path))
        compactor = JobLedger(str(tmp_path))
        wrote = compactor.compact()
        compacted = replay_ledger(str(tmp_path))

        assert compacted.jobs == full.jobs          # the contract
        assert compacted.clean_close == full.clean_close
        assert compacted.sessions == full.sessions
        assert compacted.segments == 1
        assert wrote == compacted.records < full.records

    def test_open_autocompacts_old_sessions(self, tmp_path):
        for session in range(6):
            led = JobLedger(str(tmp_path), compact_segments=3)
            led.open()
            led.append(_adm(f"j{session}", session))
            led.close()
        led = JobLedger(str(tmp_path), compact_segments=3)
        replay = led.open()
        assert len(replay.jobs) == 6
        led.close()
        # steady state: at most compact_segments closed + 1 live
        assert replay_ledger(str(tmp_path)).segments <= 4
        assert len(replay_ledger(str(tmp_path)).jobs) == 6


class TestGroupCommit:
    def test_concurrent_appends_share_fsyncs(self, tmp_path):
        """With a deliberately slow fsync, threads appending during
        another thread's fsync get covered by the next one — strictly
        fewer fsyncs than appends, every record still durable."""
        calls = []

        def slow_fsync(fd):
            calls.append(fd)
            os.fsync(fd)
            time.sleep(0.002)

        led = JobLedger(str(tmp_path), _fsync_fn=slow_fsync)
        led.open()

        def worker(tid):
            for i in range(10):
                led.append(_adm(f"j{tid}-{i}", tid * 10 + i))

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        led.close()
        stats = led.stats()
        assert stats["appends"] == 8 * 10 + 2      # + open + close
        assert stats["fsyncs"] < stats["appends"]
        assert stats["group_committed"] > 0
        assert len(replay_ledger(str(tmp_path)).jobs) == 80

    def test_group_commit_across_rotation(self, tmp_path):
        """Committers racing a rotation must not fsync a recycled fd
        (spurious EBADF, or syncing the wrong file) — the dup'd
        descriptor keeps the sealed segment alive for the straggler."""
        def slow_fsync(fd):
            os.fsync(fd)
            time.sleep(0.001)

        led = JobLedger(str(tmp_path), segment_max=5,
                        _fsync_fn=slow_fsync)
        led.open()

        def worker(tid):
            for i in range(20):
                led.append(_adm(f"j{tid}-{i}", tid * 20 + i))

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        led.close()
        assert led.rotations > 0
        assert len(replay_ledger(str(tmp_path)).jobs) == 120

    def test_fsync_disabled_never_syncs_in_append(self, tmp_path):
        calls = []
        led = JobLedger(str(tmp_path), fsync=False,
                        _fsync_fn=lambda fd: calls.append(fd))
        led.open()
        led.append(_adm("j0", 0))
        assert calls == []          # append path skipped fsync entirely
        led.close()
        assert calls != []          # close still makes the tail durable


class TestReplyClassification:
    def test_structured_codes(self):
        assert isinstance(_classify(("err", "admission", "queue full")),
                          AdmissionError)
        assert isinstance(_classify(("err", "serve", "unknown job")),
                          ServeError)
        assert isinstance(_classify(("err", "internal", "KeyError: x")),
                          ServeError)
        # classification is by code, never by wording: an admission
        # reason reworded beyond recognition still classifies right
        assert isinstance(_classify(("err", "admission", "nope")),
                          AdmissionError)

    def test_legacy_two_tuples_still_parse(self):
        assert isinstance(_classify(("err", "queue full (64)")),
                          AdmissionError)
        assert isinstance(_classify(("err", "tenant 'a' at its cap")),
                          AdmissionError)
        assert isinstance(_classify(("err", "lost the plot")),
                          ServeError)


class TestAddrFile:
    def test_stale_pid_fails_fast(self, tmp_path):
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        path = tmp_path / "addr"
        path.write_text(f"{proc.pid}:127.0.0.1:45678\n")
        with pytest.raises(ServeError, match="stale addr file"):
            resolve_addr(None, str(path))

    def test_live_pid_resolves(self, tmp_path):
        path = tmp_path / "addr"
        path.write_text(f"{os.getpid()}:127.0.0.1:45678\n")
        assert resolve_addr(None, str(path)) == ("127.0.0.1", 45678)

    def test_legacy_format_resolves_without_probe(self, tmp_path):
        path = tmp_path / "addr"
        path.write_text("127.0.0.1:45678\n")
        assert resolve_addr(None, str(path)) == ("127.0.0.1", 45678)


class TestSpecKey:
    def test_key_round_trips(self):
        spec = JobSpec.from_dict({"program": "p", "key": "abc"})
        assert spec.key == "abc"
        assert JobSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("bad", ["", 7, b"x"])
    def test_bad_keys_rejected(self, bad):
        with pytest.raises(AdmissionError, match="idempotency key"):
            JobSpec.from_dict({"program": "p", "key": bad})


@contextmanager
def durable_serving(state_dir, **kw):
    kw.setdefault("heartbeat_s", 0.02)
    kw.setdefault("mc_admission", False)
    service = ServeService(state_dir=str(state_dir), **kw)
    service.start()
    try:
        yield service
    finally:
        if not service._stopped_evt.is_set():
            service.shutdown(drain=False)


class TestInProcessRestart:
    def test_history_and_dedup_survive_restart(self, tmp_path):
        """Session 1 completes a keyed job and drains; session 2 on the
        same state dir answers status/wait for it and dedups a
        resubmission of the same key instead of running it again."""
        spec = {"program": "navp-2d-dsc", "g": 2, "seed": 0, "ab": 4,
                "workers": 1, "key": "idem-1"}
        with durable_serving(tmp_path, pool_size=1) as svc:
            out = svc.submit(dict(spec))
            jid = out["job"]
            rec = svc.wait_job(jid, timeout=60.0)
            assert rec["state"] == "completed"
            digest = rec["digest"]
            svc.shutdown(drain=True)

        with durable_serving(tmp_path, pool_size=1) as svc2:
            assert svc2.recovery_summary["terminal"] == 1
            assert svc2.recovery_summary["unclean"] is False
            again = svc2.submit(dict(spec))
            assert again == {"job": jid, "state": "completed",
                             "deduped": True}
            rec2 = svc2.status(jid)
            assert rec2["state"] == "completed"
            assert rec2["digest"] == digest
            assert svc2.completed == 1   # recovered, not re-run

    def test_dispatch_gated_on_durable_admitted_record(self, tmp_path):
        """Until the admitted record's fsync returns, the dispatcher
        cannot see the job — so a ``dispatched`` ledger record can
        never land ahead of its ``admitted``, which would poison the
        next boot's replay."""
        with durable_serving(tmp_path, pool_size=1) as svc:
            takeable = []
            orig = svc.ledger.append

            def probing_append(record):
                if record.get("t") == "admitted":
                    with svc._lock:
                        takeable.append(svc.queue.take(99, {}))
                return orig(record)

            svc.ledger.append = probing_append
            out = svc.submit({"program": "navp-2d-dsc", "g": 2,
                              "seed": 0, "ab": 4, "workers": 1})
            assert takeable == [None]   # invisible mid-append
            rec = svc.wait_job(out["job"], timeout=60.0)
            assert rec["state"] == "completed"

    def test_key_reuse_with_different_spec_rejected(self, tmp_path):
        with durable_serving(tmp_path, pool_size=1) as svc:
            svc.submit({"program": "navp-2d-dsc", "workers": 1,
                        "key": "K", "seed": 1})
            with pytest.raises(AdmissionError, match="different spec"):
                svc.submit({"program": "navp-2d-dsc", "workers": 1,
                            "key": "K", "seed": 2})

    def test_abandoned_jobs_rerun_to_golden(self, tmp_path):
        """Session 1 is torn down without draining (running + pending
        jobs abandoned); session 2 re-admits them from the ledger and
        completes every one bit-exact."""
        from tests.test_serve_service import _sim_digest

        golden = {s: _sim_digest("navp-2d-dsc", 2, s, 4)
                  for s in (0, 1, 2)}
        with durable_serving(tmp_path, pool_size=1, tenant_cap=16) as svc:
            jids = {}
            for s in (0, 1, 2):
                out = svc.submit({"program": "navp-2d-dsc", "g": 2,
                                  "seed": s, "ab": 4, "workers": 1,
                                  "key": f"k{s}"})
                jids[s] = out["job"]
            svc.shutdown(drain=False)   # abandon whatever is in flight

        with durable_serving(tmp_path, pool_size=1, tenant_cap=16,
                             job_timeout_s=60.0) as svc2:
            summary = svc2.recovery_summary
            assert (summary["requeued"] + summary["resumed"]
                    + summary["terminal"]) == 3
            for s, jid in jids.items():
                rec = svc2.wait_job(jid, timeout=90.0)
                assert rec["state"] == "completed", rec
                assert rec["digest"] == golden[s], (s, jid)
            status = svc2.status()
            assert status["durability"]["recovered"] == summary
            svc2.shutdown(drain=True)

        # three sessions of history, cleanly closed, all terminal
        replay = replay_ledger(str(tmp_path / "wal"))
        assert replay.clean_close is True
        assert all(j.terminal for j in replay.jobs.values())
