"""End-to-end transformation chain: semantics, improvement, processes."""

import pytest

from repro.fabric import Grid1D
from repro.fabric.process import ProcessFabric
from repro.machine import FAST_TEST_MACHINE, SUN_BLADE_100
from repro.transform import (
    assemble_c,
    derive_chain,
    layout_dsc,
    layout_phase,
    layout_sequential,
    run_stage,
    verify_chain,
)
from repro.util.validation import assert_allclose, random_matrix


class TestSemanticPreservation:
    @pytest.mark.parametrize("nb,ab", [(2, 4), (3, 8), (4, 4), (5, 3)])
    def test_all_stages_exact(self, nb, ab):
        chain = derive_chain(nb)
        report = verify_chain(chain, ab=ab)
        assert len(report) == 4
        assert all(err < 1e-12 for _name, _t, err in report)

    def test_chain_on_thread_fabric(self):
        chain = derive_chain(3)
        report = verify_chain(chain, ab=8, fabric="thread")
        assert all(err < 1e-12 for _name, _t, err in report)

    def test_report_renders(self):
        chain = derive_chain(2)
        text = verify_chain(chain, ab=4).render()
        assert "phase-shifted" in text


class TestImprovementLadder:
    def test_each_stage_improves_when_compute_dominates(self):
        """The paper's property (2): every intermediate program is an
        improvement over its predecessor."""
        chain = derive_chain(4)
        report = verify_chain(chain, ab=8, machine=FAST_TEST_MACHINE)
        times = {name: t for name, t, _err in report}
        assert times["pipelined"] < times["dsc"]
        assert times["phase-shifted"] < times["pipelined"]

    def test_dsc_close_to_sequential(self):
        chain = derive_chain(3)
        report = verify_chain(chain, ab=8, machine=FAST_TEST_MACHINE)
        times = {name: t for name, t, _err in report}
        assert times["dsc"] < times["sequential"] * 1.25


class TestLayouts:
    def test_sequential_layout_all_on_node0(self):
        a = random_matrix(12, 0)
        b = random_matrix(12, 1)
        layout = layout_sequential(a, b, 3)
        assert set(layout) == {(0,)}
        assert set(layout[(0,)]["A"]) == {0, 1, 2}
        assert len(layout[(0,)]["B"]) == 9

    def test_dsc_layout_columns(self):
        a = random_matrix(12, 0)
        b = random_matrix(12, 1)
        layout = layout_dsc(a, b, 3)
        assert "A" in layout[(0,)]
        assert "A" not in layout[(1,)]
        for j in range(3):
            keys = set(layout[(j,)]["B"])
            assert keys == {(k, j) for k in range(3)}

    def test_phase_layout_rows(self):
        a = random_matrix(12, 0)
        b = random_matrix(12, 1)
        layout = layout_phase(a, b, 3)
        for i in range(3):
            assert set(layout[(i,)]["A"]) == {i}

    def test_assemble_rejects_incomplete(self):
        with pytest.raises(ValueError, match="missing"):
            assemble_c({(0,): {"C": {(0, 0): random_matrix(4, 0)}}},
                       nb=2, ab=4)


class TestOnProcesses:
    def test_derived_dsc_runs_on_real_processes(self):
        nb, ab = 3, 8
        chain = derive_chain(nb)
        a = random_matrix(nb * ab, 21)
        b = random_matrix(nb * ab, 22)
        fabric = ProcessFabric(Grid1D(nb), timeout=60.0)
        for coord, node_vars in layout_dsc(a, b, nb).items():
            fabric.load(coord, **node_vars)
        fabric.inject((0,), chain.dsc.name)
        result = fabric.run()
        assert_allclose(assemble_c(result.places, nb, ab), a @ b)

    def test_derived_phase_runs_on_real_processes(self):
        nb, ab = 3, 8
        chain = derive_chain(nb)
        a = random_matrix(nb * ab, 23)
        b = random_matrix(nb * ab, 24)
        fabric = ProcessFabric(Grid1D(nb), timeout=60.0)
        for coord, node_vars in layout_phase(a, b, nb).items():
            fabric.load(coord, **node_vars)
        fabric.inject((0,), chain.phased.main.name)
        result = fabric.run()
        assert_allclose(assemble_c(result.places, nb, ab), a @ b)


class TestRunStage:
    def test_timing_consistent_with_handwritten(self):
        """The IR DSC program's modeled time is in the same regime as
        the handwritten Figure 5 messenger at matching granularity."""
        from repro.matmul import MatmulCase, run_dsc_1d

        nb, ab = 3, 64
        chain = derive_chain(nb)
        a = random_matrix(nb * ab, 31)
        b = random_matrix(nb * ab, 32)
        _c, result = run_stage(chain.dsc, layout_dsc(a, b, nb),
                               places=nb, nb=nb, ab=ab,
                               machine=SUN_BLADE_100)
        handwritten = run_dsc_1d(MatmulCase(n=nb * ab, ab=ab), nb,
                                 machine=SUN_BLADE_100)
        assert result.time == pytest.approx(handwritten.time, rel=0.35)
