"""Hop-delivery failure paths on the wall-clock thread fabric, and the
trace ledger's accounting under message loss."""

import pytest

from repro.errors import DeadlockError
from repro.fabric import Grid1D
from repro.fabric.threads import ThreadFabric
from repro.navp import ir
from repro.navp.interp import IRMessenger
from repro.resilience import FaultPlan, MessageFault
from repro.resilience.faults import STATS

V = ir.Var
C = ir.Const


def _register_tour():
    ir.register_program(ir.Program("thr-tour", (
        ir.Assign("acc", C(0)),
        ir.For("i", C(3), (
            ir.HopStmt((V("i"),)),
            ir.Assign("acc", ir.Bin("+", V("acc"), C(1))),
            ir.NodeSet("mark", (), V("acc")),
        )),
    ), ()), replace=True)


def _run(plan=None, recovery=True):
    _register_tour()
    fabric = ThreadFabric(Grid1D(3), trace=True, faults=plan,
                          recovery=recovery)
    fabric.inject((0,), IRMessenger("thr-tour"))
    result = fabric.run(timeout=30.0)
    marks = [result.places[(j,)].get("mark") for j in range(3)]
    return fabric, result, marks


def _reset_stats():
    for key in STATS:
        STATS[key] = 0


class TestHopFailurePaths:
    def test_masked_drop_is_retried_to_success(self):
        _reset_stats()
        plan = FaultPlan(faults=(
            MessageFault(action="drop", kind="hop", nth=1),))
        fabric, result, marks = _run(plan)
        assert marks == [1, 2, 3]
        assert fabric.lost == []
        assert STATS["fired"] == 1 and STATS["masked"] == 1
        assert len(result.trace.faults()) == 1
        assert [e.kind for e in result.trace.recoveries()] == ["retry"]

    def test_unmasked_drop_destroys_the_messenger(self):
        _reset_stats()
        plan = FaultPlan(faults=(
            MessageFault(action="drop", kind="hop", nth=2),))
        fabric, result, marks = _run(plan, recovery=False)
        # completed through place 1, lost on the hop into place 2
        assert marks == [1, 2, None]
        assert fabric.lost == ["thr-tour"]
        assert STATS["lost"] == 1

    def test_deadlock_report_names_casualties(self):
        ir.register_program(ir.Program("thr-producer", (
            ir.HopStmt((C(1),)),
            ir.SignalStmt("EP", (), C(1)),
        ), ()), replace=True)
        ir.register_program(ir.Program("thr-consumer", (
            ir.WaitStmt("EP", ()),
            ir.NodeSet("got", (), C(1)),
        ), ()), replace=True)
        plan = FaultPlan(faults=(
            MessageFault(action="drop", kind="hop", nth=1),))
        fabric = ThreadFabric(Grid1D(2), faults=plan, recovery=False)
        fabric.inject((0,), IRMessenger("thr-producer"))
        fabric.inject((1,), IRMessenger("thr-consumer"))
        with pytest.raises(DeadlockError) as err:
            fabric.run(timeout=3.0)
        text = str(err.value)
        assert "recovery disabled" in text
        assert "thr-producer" in text

    def test_empty_plan_has_no_runtime(self):
        fabric = ThreadFabric(Grid1D(2), faults=FaultPlan())
        assert fabric._runtime is None


class TestLedgerAccountingUnderLoss:
    def test_fault_events_excluded_from_movement_ledger(self):
        """A dropped transfer moved nothing: bytes_moved/message_count
        skip fault events; lost_bytes reports what was destroyed."""
        plan = FaultPlan(faults=(
            MessageFault(action="drop", kind="hop", nth=2),))
        _fabric, result, _marks = _run(plan, recovery=False)
        faults = result.trace.faults()
        assert len(faults) == 1 and faults[0].nbytes > 0
        assert result.trace.lost_bytes() == faults[0].nbytes
        # the ledger only counts transfers that really crossed
        moved = result.trace.bytes_moved()
        assert moved > 0
        assert all(e.kind != "fault"
                   for e in result.trace.events if e.nbytes > 0
                   and e.kind in ("hop", "send"))
        assert result.trace.message_count() == sum(
            1 for e in result.trace.events
            if e.nbytes > 0 and e.kind != "fault")

    def test_masked_run_ledger_matches_clean_run(self):
        """With recovery on, the retried hop is eventually delivered,
        so the movement ledger equals the clean run's (the fault event
        carries no nbytes — nothing was lost)."""
        _fabric, clean, _ = _run()
        plan = FaultPlan(faults=(
            MessageFault(action="drop", kind="hop", nth=1),))
        _fabric2, masked, marks = _run(plan)
        assert marks == [1, 2, 3]
        assert masked.trace.bytes_moved() == clean.trace.bytes_moved()
        assert masked.trace.message_count() == clean.trace.message_count()
        assert masked.trace.lost_bytes() == 0
