"""Data-movement accounting."""

import pytest

from repro.fabric.trace import TraceLog
from repro.matmul import MatmulCase
from repro.matmul.analysis import (
    expected_bytes,
    measure_movement,
    movement_table,
)


class TestTraceLedger:
    def _log(self):
        log = TraceLog()
        log.record(t0=0, t1=1, place=1, actor="m", kind="hop",
                   src_place=0, nbytes=100)
        log.record(t0=1, t1=2, place=2, actor="m", kind="send",
                   src_place=1, nbytes=50)
        log.record(t0=2, t1=3, place=2, actor="m", kind="hop",
                   src_place=2, nbytes=0)  # co-hosted: free
        log.record(t0=0, t1=4, place=0, actor="m", kind="compute")
        return log

    def test_bytes_moved(self):
        assert self._log().bytes_moved() == 150

    def test_message_count_excludes_free_moves(self):
        assert self._log().message_count() == 2

    def test_bytes_by_place(self):
        log = self._log()
        assert log.bytes_by_place("in") == {1: 100, 2: 50}
        assert log.bytes_by_place("out") == {0: 100, 1: 50}


class TestMovementReports:
    @pytest.fixture(scope="class")
    def case(self):
        # large enough that block payloads dwarf the per-hop state
        # bytes; at toy sizes the 512 B control overhead distorts the
        # volume comparisons
        return MatmulCase(n=384, ab=32, shadow=True)

    def test_pipeline_is_leanest_1d(self, case):
        reports = {r.variant: r for r in movement_table(
            ["navp-1d-dsc", "navp-1d-pipeline", "navp-1d-phase"],
            case, 3)}
        assert (reports["navp-1d-pipeline"].total_bytes
                < reports["navp-1d-phase"].total_bytes)
        assert (reports["navp-1d-pipeline"].total_bytes
                < reports["navp-1d-dsc"].total_bytes)

    def test_navp_phase_moves_less_than_gentleman(self, case):
        phase = measure_movement("navp-2d-phase", case, 3)
        gentleman = measure_movement("mpi-gentleman", case, 3)
        assert phase.total_bytes < gentleman.total_bytes

    def test_closed_forms_track_measurements(self, case):
        for variant in ("navp-1d-dsc", "navp-1d-pipeline",
                        "navp-2d-phase", "mpi-gentleman"):
            measured = measure_movement(variant, case, 3).total_bytes
            expected = expected_bytes(variant, case.n, case.ab, 3)
            assert 0.7 <= measured / expected <= 1.1, variant

    def test_derived_metrics(self, case):
        report = measure_movement("navp-1d-pipeline", case, 3)
        assert report.bytes_per_flop == pytest.approx(
            report.total_bytes / (2 * case.n**3))
        assert report.mean_message_bytes == pytest.approx(
            report.total_bytes / report.messages)

    def test_unknown_variant_closed_form(self):
        with pytest.raises(KeyError):
            expected_bytes("doall-naive", 96, 8, 3)

    def test_movement_independent_of_shadow_mode(self):
        shadow = measure_movement(
            "navp-1d-phase", MatmulCase(n=48, ab=8, shadow=True), 3)
        real = measure_movement(
            "navp-1d-phase", MatmulCase(n=48, ab=8), 3)
        assert shadow.total_bytes == real.total_bytes
        assert shadow.messages == real.messages
