"""The MPI-like substrate: point-to-point, collectives, SPMD launch."""

import pytest

from repro.errors import ConfigurationError, DeadlockError
from repro.fabric import Grid1D, Grid2D
from repro.machine import FAST_TEST_MACHINE
from repro.mpi import Comm, run_spmd


class TestCommBasics:
    def test_rank_and_size(self):
        comm = Comm(Grid2D(2, 3), (1, 2))
        assert comm.rank == 5
        assert comm.size == 6
        assert comm.coord == (1, 2)

    def test_ring_exchange(self):
        """Each rank sends right, receives from left."""

        def program(comm):
            p = comm.size
            j = comm.coord[0]
            right = ((j + 1) % p,)
            left = ((j - 1) % p,)
            req = yield comm.irecv(src=left, tag="ring")
            yield comm.send(right, "ring", payload=j)
            msg = yield comm.wait(req)
            comm.vars["from_left"] = msg.payload

        result = run_spmd(Grid1D(4), program, machine=FAST_TEST_MACHINE)
        for j in range(4):
            assert result.places[(j,)]["from_left"] == (j - 1) % 4

    def test_deadlock_detection(self):
        """Everyone receives and nobody sends: caught by the fabric."""

        def program(comm):
            yield comm.recv(tag="never")

        with pytest.raises(DeadlockError):
            run_spmd(Grid1D(2), program, machine=FAST_TEST_MACHINE)


class TestCollectives:
    def test_bcast_row(self):
        def program(comm):
            i, j = comm.coord
            row = [(i, jj) for jj in range(3)]
            payload = f"row{i}" if j == 0 else None
            value = yield from comm.bcast(row, (i, 0), ("b", i), payload)
            comm.vars["got"] = value

        result = run_spmd(Grid2D(2, 3), program, machine=FAST_TEST_MACHINE)
        for i in range(2):
            for j in range(3):
                assert result.places[(i, j)]["got"] == f"row{i}"

    def test_bcast_root_must_be_member(self):
        def program(comm):
            yield from comm.bcast([(0,)], (1,), "t", None)

        with pytest.raises(Exception, match="root"):
            run_spmd(Grid1D(2), program, machine=FAST_TEST_MACHINE)

    def test_barrier_synchronizes(self):
        """No rank leaves the barrier before the slowest arrives."""
        def program(comm):
            j = comm.coord[0]
            # rank 2 is slow
            yield comm.compute(None, flops=(3e6 if j == 2 else 1e3))
            yield from comm.barrier([(k,) for k in range(3)], tag=0)
            comm.vars["left_at"] = None  # marker set after barrier

        result = run_spmd(Grid1D(3), program, machine=FAST_TEST_MACHINE,
                          trace=True)
        # all ranks complete; virtual completion time is bounded below by
        # the slow rank's compute
        assert result.time >= 3e6 / FAST_TEST_MACHINE.flop_rate

    def test_vars_bound_to_place(self):
        def setup(fabric):
            for j in range(2):
                fabric.load((j,), local=j * 100)

        def program(comm):
            comm.vars["double"] = comm.vars["local"] * 2
            if False:
                yield  # make it a generator

        result = run_spmd(Grid1D(2), program, machine=FAST_TEST_MACHINE,
                          setup=setup)
        assert result.places[(0,)]["double"] == 0
        assert result.places[(1,)]["double"] == 200


class TestTiming:
    def test_messages_cost_time(self):
        def program(comm):
            j = comm.coord[0]
            if j == 0:
                yield comm.send((1,), "big", payload=None, nbytes=10**6)
            else:
                yield comm.recv(src=(0,), tag="big")

        result = run_spmd(Grid1D(2), program, machine=FAST_TEST_MACHINE)
        expected = FAST_TEST_MACHINE.network.message_time(10**6)
        assert result.time == pytest.approx(expected, rel=0.05)
