"""Fault plans: validation, JSON round trip, deterministic matching."""

import pytest

from repro.errors import FaultPlanError
from repro.resilience import (
    Crash,
    FaultPlan,
    MessageFault,
    PlanRuntime,
    SlowNode,
    ambient,
    injected,
)


class TestSpecValidation:
    def test_crash_needs_exactly_one_trigger(self):
        with pytest.raises(FaultPlanError):
            Crash(place=0)
        with pytest.raises(FaultPlanError):
            Crash(place=0, at_time=0.5, at_hop=3)
        Crash(place=0, at_time=0.5)
        Crash(place=(1, 2), at_hop=3)

    def test_crash_rejects_bad_values(self):
        with pytest.raises(FaultPlanError):
            Crash(place=0, at_time=-1.0)
        with pytest.raises(FaultPlanError):
            Crash(place=0, at_hop=0)
        with pytest.raises(FaultPlanError):
            Crash(place="north", at_time=0.5)

    def test_message_fault_vocabulary_is_closed(self):
        with pytest.raises(FaultPlanError):
            MessageFault(action="corrupt")
        with pytest.raises(FaultPlanError):
            MessageFault(kind="rpc")
        with pytest.raises(FaultPlanError):
            MessageFault(nth=0)
        with pytest.raises(FaultPlanError):
            MessageFault(action="delay")  # needs seconds > 0

    def test_slow_node_factor_positive(self):
        with pytest.raises(FaultPlanError):
            SlowNode(place=0, factor=0.0)

    def test_plan_rejects_foreign_specs(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(faults=("drop the third hop",))

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan(faults=(Crash(place=0, at_hop=1),))


class TestJsonRoundTrip:
    def test_round_trip_preserves_every_spec(self, tmp_path):
        plan = FaultPlan(
            faults=(
                Crash(place=(0, 1), at_time=0.25),
                Crash(place=2, at_hop=7),
                MessageFault(action="drop", kind="hop", nth=3),
                MessageFault(action="duplicate", kind="send",
                             src=(0, 0), dst=(1, 1), tag="col", every=5),
                MessageFault(action="delay", kind="any", seconds=0.01),
                SlowNode(place=1, factor=3.0, from_time=0.1),
            ),
            seed=42,
            name="round-trip",
        )
        path = tmp_path / "plan.json"
        plan.to_file(path)
        assert FaultPlan.from_file(path) == plan

    def test_bad_json_is_a_plan_error(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json("{not json")
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json('{"no_faults_key": []}')
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json('{"faults": [{"type": "meteor"}]}')
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json(
                '{"faults": [{"type": "crash", "bogus_field": 1}]}')

    def test_random_plans_are_seed_deterministic(self):
        a = FaultPlan.random(11, places=9, crashes=2, drops=3,
                             duplicates=1, slow=1)
        b = FaultPlan.random(11, places=9, crashes=2, drops=3,
                             duplicates=1, slow=1)
        assert a == b
        assert a != FaultPlan.random(12, places=9, crashes=2, drops=3,
                                     duplicates=1, slow=1)


class TestPlanRuntime:
    @staticmethod
    def _runtime(*faults, places=4):
        plan = FaultPlan(faults=tuple(faults))
        return PlanRuntime(
            plan, lambda p: p if isinstance(p, int) and p < places else None)

    def test_nth_fires_exactly_once(self):
        rt = self._runtime(MessageFault(action="drop", kind="hop", nth=3))
        hits = [rt.message_action("hop", 0, 1) for _ in range(6)]
        assert [h is not None for h in hits] == [
            False, False, True, False, False, False]

    def test_every_fires_periodically(self):
        rt = self._runtime(MessageFault(action="drop", kind="send", every=2))
        hits = [rt.message_action("send", 0, 1) for _ in range(6)]
        assert [h is not None for h in hits] == [
            False, True, False, True, False, True]

    def test_kind_and_endpoint_filters(self):
        rt = self._runtime(
            MessageFault(action="drop", kind="send", dst=2, nth=1))
        assert rt.message_action("hop", 0, 2) is None
        assert rt.message_action("send", 0, 1) is None  # wrong dst
        assert rt.message_action("send", 0, 2) is not None

    def test_specs_naming_absent_places_are_inert(self):
        # A plan written for a bigger topology applies safely here.
        rt = self._runtime(
            MessageFault(action="drop", dst=99, nth=1),
            Crash(place=50, at_time=0.0),
            SlowNode(place=77, factor=9.0),
        )
        assert rt.message_action("hop", 0, 1) is None
        assert rt.due_crashes(1e9) == []
        assert rt.slow_factor(0, 1.0) == 1.0

    def test_due_crashes_pop_in_trigger_order(self):
        rt = self._runtime(
            Crash(place=1, at_time=0.5),
            Crash(place=0, at_time=0.2),
            Crash(place=2, at_hop=3),
        )
        assert rt.due_crashes(0.1) == []
        first = rt.due_crashes(0.3)
        assert [(s.place, i) for s, i in first] == [(0, 0)]
        for _ in range(3):
            rt.note_hop()
        due = rt.due_crashes(0.6)
        assert {index for _spec, index in due} == {1, 2}
        assert rt.pending_crashes() == 0

    def test_slow_factor_compounds_from_onset(self):
        rt = self._runtime(
            SlowNode(place=1, factor=2.0, from_time=0.5),
            SlowNode(place=1, factor=3.0, from_time=0.0),
        )
        assert rt.slow_factor(1, 0.1) == 3.0
        assert rt.slow_factor(1, 0.9) == 6.0
        assert rt.slow_factor(0, 0.9) == 1.0


class TestAmbientContext:
    def test_injected_scopes_the_plan(self):
        plan = FaultPlan(faults=(Crash(place=0, at_hop=1),))
        assert ambient() == (None, True)
        with injected(plan, recovery=False):
            assert ambient() == (plan, False)
            with injected(plan):  # nesting restores the outer pair
                assert ambient() == (plan, True)
            assert ambient() == (plan, False)
        assert ambient() == (None, True)
