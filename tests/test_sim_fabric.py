"""SimFabric: cost arithmetic, contention, events, messaging, failure."""

import pytest

from repro.errors import DeadlockError, FabricError
from repro.fabric import Grid1D, Grid2D, SimFabric
from repro.fabric import effects as fx
from repro.machine import SUN_BLADE_100, MachineSpec, NetworkSpec
from repro.navp import Messenger


def plain_machine(**net_kw):
    """A machine with zeroed overheads for exact cost arithmetic."""
    return MachineSpec(
        flop_rate=1e6,
        elem_size=4,
        hop_state_bytes=0,
        inject_overhead_s=0.0,
        event_overhead_s=0.0,
        network=NetworkSpec(
            bandwidth_Bps=net_kw.pop("bandwidth_Bps", 1e6),
            latency_s=net_kw.pop("latency_s", 0.01),
            small_message_bytes=net_kw.pop("small_message_bytes", 0),
        ),
    )


class _Hopper(Messenger):
    def __init__(self, route, nbytes):
        self._route = route
        self._nbytes = nbytes

    def main(self):
        for coord in self._route:
            yield self.hop(coord, nbytes=self._nbytes)


class _Computer(Messenger):
    def __init__(self, flops, fn=None):
        self._flops = flops
        self._fn = fn

    def main(self):
        yield self.compute(self._fn, flops=self._flops)


class TestHopCosts:
    def test_uncontended_hop_is_latency_plus_wire(self):
        fabric = SimFabric(Grid1D(2), machine=plain_machine())
        fabric.inject((0,), _Hopper([(1,)], nbytes=10_000))
        result = fabric.run()
        assert result.time == pytest.approx(0.01 + 0.01)

    def test_local_hop_is_cheap(self):
        fabric = SimFabric(Grid1D(2), machine=plain_machine())
        fabric.inject((0,), _Hopper([(0,)], nbytes=10_000))
        result = fabric.run()
        assert result.time == pytest.approx(SimFabric.LOCAL_HOP_SECONDS)

    def test_small_message_bypass(self):
        machine = plain_machine(small_message_bytes=2048)
        fabric = SimFabric(Grid1D(2), machine=machine)
        fabric.inject((0,), _Hopper([(1,)], nbytes=512))
        result = fabric.run()
        assert result.time == pytest.approx(0.01)  # latency only

    def test_sender_nic_contention_serializes(self):
        """Two big hops out of the same PE share its outbound NIC."""
        fabric = SimFabric(Grid1D(3), machine=plain_machine())
        fabric.inject((0,), _Hopper([(1,)], nbytes=10_000))
        fabric.inject((0,), _Hopper([(2,)], nbytes=10_000))
        result = fabric.run()
        # second wire start waits 0.01; arrival 0.01+0.01+0.01
        assert result.time == pytest.approx(0.03)

    def test_receiver_nic_contention_serializes(self):
        fabric = SimFabric(Grid1D(3), machine=plain_machine())
        fabric.inject((0,), _Hopper([(2,)], nbytes=10_000))
        fabric.inject((1,), _Hopper([(2,)], nbytes=10_000))
        result = fabric.run()
        assert result.time == pytest.approx(0.03)

    def test_agent_payload_charged_automatically(self):
        import numpy as np

        class Carrier(Messenger):
            def __init__(self):
                self.mA = np.zeros(250, dtype=np.float64)  # 1000 model bytes

            def main(self):
                yield self.hop((1,))

        machine = plain_machine()
        fabric = SimFabric(Grid1D(2), machine=machine)
        fabric.inject((0,), Carrier())
        result = fabric.run()
        assert result.time == pytest.approx(0.01 + 0.001)


class TestComputeCosts:
    def test_flops_to_seconds(self):
        fabric = SimFabric(Grid1D(1), machine=plain_machine(),
                           use_cache_model=False)
        fabric.inject((0,), _Computer(flops=5e5))
        assert fabric.run().time == pytest.approx(0.5)

    def test_cpu_serializes_messengers(self):
        fabric = SimFabric(Grid1D(1), machine=plain_machine(),
                           use_cache_model=False)
        fabric.inject((0,), _Computer(flops=1e6))
        fabric.inject((0,), _Computer(flops=1e6))
        assert fabric.run().time == pytest.approx(2.0)

    def test_fn_executes_and_returns(self):
        log = []

        class M(Messenger):
            def main(self):
                value = yield self.compute(lambda: 41 + 1, flops=1)
                log.append(value)

        fabric = SimFabric(Grid1D(1), machine=plain_machine())
        fabric.inject((0,), M())
        fabric.run()
        assert log == [42]

    def test_cache_kind_factor_applied(self):
        fabric = SimFabric(Grid2D(1), machine=SUN_BLADE_100,
                           use_cache_model=True)
        flops = SUN_BLADE_100.flop_rate  # exactly 1 second at factor 1

        class M(Messenger):
            def main(self):
                yield self.compute(None, flops=flops, kind="mpi")

        fabric.inject((0, 0), M())
        t_mpi = fabric.run().time
        assert t_mpi > 1.0  # the mpi factor is > 1

    def test_cache_model_disabled(self):
        fabric = SimFabric(Grid2D(1), machine=SUN_BLADE_100,
                           use_cache_model=False)
        flops = SUN_BLADE_100.flop_rate

        class M(Messenger):
            def main(self):
                yield self.compute(None, flops=flops, kind="mpi")

        fabric.inject((0, 0), M())
        assert fabric.run().time == pytest.approx(1.0)


class TestEvents:
    def test_producer_consumer(self):
        order = []

        class Producer(Messenger):
            def main(self):
                yield self.compute(None, flops=1e6)
                self.vars["data"] = "ready"
                yield self.signal_event("EP")

        class Consumer(Messenger):
            def main(self):
                yield self.wait_event("EP")
                order.append(self.vars["data"])

        fabric = SimFabric(Grid1D(1), machine=plain_machine())
        fabric.inject((0,), Consumer())
        fabric.inject((0,), Producer())
        fabric.run()
        assert order == ["ready"]

    def test_events_are_place_local(self):
        """A signal at node 0 must not release a waiter at node 1."""
        fabric = SimFabric(Grid1D(2), machine=plain_machine())

        class Signaler(Messenger):
            def main(self):
                yield self.signal_event("E")

        class Waiter(Messenger):
            def main(self):
                yield self.wait_event("E")

        fabric.inject((0,), Signaler())
        fabric.inject((1,), Waiter())
        with pytest.raises(DeadlockError):
            fabric.run()

    def test_counting_not_sticky(self):
        """One signal wakes exactly one of two waiters."""
        fabric = SimFabric(Grid1D(1), machine=plain_machine())

        class Waiter(Messenger):
            def main(self):
                yield self.wait_event("E")

        class Signaler(Messenger):
            def main(self):
                yield self.signal_event("E")

        fabric.inject((0,), Waiter())
        fabric.inject((0,), Waiter())
        fabric.inject((0,), Signaler())
        with pytest.raises(DeadlockError):
            fabric.run()

    def test_signal_count_releases_batch(self):
        fabric = SimFabric(Grid1D(1), machine=plain_machine())
        done = []

        class Waiter(Messenger):
            def main(self):
                yield self.wait_event("E", 1, 2)
                done.append(1)

        class Signaler(Messenger):
            def main(self):
                yield self.signal_event("E", 1, 2, count=2)

        fabric.inject((0,), Waiter())
        fabric.inject((0,), Waiter())
        fabric.inject((0,), Signaler())
        fabric.run()
        assert done == [1, 1]

    def test_signal_initial(self):
        fabric = SimFabric(Grid1D(1), machine=plain_machine())
        fabric.signal_initial((0,), "EC")
        done = []

        class Waiter(Messenger):
            def main(self):
                yield self.wait_event("EC")
                done.append(True)

        fabric.inject((0,), Waiter())
        fabric.run()
        assert done == [True]


class TestMessaging:
    def test_send_recv(self):
        got = []

        class Sender(Messenger):
            def main(self):
                yield fx.Send(dst=(1,), tag="t", payload=123, nbytes=100)

        class Receiver(Messenger):
            def main(self):
                msg = yield fx.Recv(src=(0,), tag="t")
                got.append((msg.src, msg.payload))

        fabric = SimFabric(Grid1D(2), machine=plain_machine())
        fabric.inject((0,), Sender())
        fabric.inject((1,), Receiver())
        fabric.run()
        assert got == [((0,), 123)]

    def test_irecv_wait(self):
        got = []

        class Sender(Messenger):
            def main(self):
                yield self.compute(None, flops=1e6)
                yield fx.Send(dst=(1,), tag=7, payload="late", nbytes=64)

        class Receiver(Messenger):
            def main(self):
                request = yield fx.IRecv(src=(0,), tag=7)
                yield self.compute(None, flops=5e5)  # overlap
                msg = yield fx.WaitRequest(request=request)
                got.append(msg.payload)

        fabric = SimFabric(Grid1D(2), machine=plain_machine())
        fabric.inject((0,), Sender())
        fabric.inject((1,), Receiver())
        fabric.run()
        assert got == ["late"]

    def test_any_source(self):
        got = []

        class Sender(Messenger):
            def main(self):
                yield fx.Send(dst=(1,), tag="x", payload=self.here,
                              nbytes=64)

        class Receiver(Messenger):
            def main(self):
                msg = yield fx.Recv(tag="x")
                got.append(msg.payload)

        fabric = SimFabric(Grid1D(2), machine=plain_machine())
        fabric.inject((0,), Sender())
        fabric.inject((1,), Receiver())
        fabric.run()
        assert got == [(0,)]

    def test_tag_matching_keeps_order_per_tag(self):
        got = []

        class Sender(Messenger):
            def main(self):
                yield fx.Send(dst=(1,), tag="a", payload=1, nbytes=64)
                yield fx.Send(dst=(1,), tag="b", payload=2, nbytes=64)

        class Receiver(Messenger):
            def main(self):
                msg_b = yield fx.Recv(tag="b")
                msg_a = yield fx.Recv(tag="a")
                got.extend([msg_b.payload, msg_a.payload])

        fabric = SimFabric(Grid1D(2), machine=plain_machine())
        fabric.inject((0,), Sender())
        fabric.inject((1,), Receiver())
        fabric.run()
        assert got == [2, 1]

    def test_local_send(self):
        got = []

        class SelfTalker(Messenger):
            def main(self):
                yield fx.Send(dst=(0,), tag="loop", payload=9, nbytes=1000)
                msg = yield fx.Recv(tag="loop")
                got.append(msg.payload)

        fabric = SimFabric(Grid1D(1), machine=plain_machine())
        fabric.inject((0,), SelfTalker())
        result = fabric.run()
        assert got == [9]
        assert result.time < 0.001  # pointer swap, not a network trip


class TestLifecycle:
    def test_inject_after_run_rejected(self):
        fabric = SimFabric(Grid1D(1), machine=plain_machine())
        fabric.inject((0,), _Computer(flops=1))
        fabric.run()
        with pytest.raises(FabricError):
            fabric.inject((0,), _Computer(flops=1))

    def test_messenger_exception_wrapped(self):
        class Bad(Messenger):
            def main(self):
                yield self.compute(None, flops=1)
                raise RuntimeError("inner failure")

        fabric = SimFabric(Grid1D(1), machine=plain_machine())
        fabric.inject((0,), Bad())
        with pytest.raises(Exception, match="inner failure"):
            fabric.run()

    def test_unknown_effect_rejected(self):
        class Weird(Messenger):
            def main(self):
                yield object()

        fabric = SimFabric(Grid1D(1), machine=plain_machine())
        fabric.inject((0,), Weird())
        with pytest.raises(Exception):
            fabric.run()

    def test_result_get(self):
        class Writer(Messenger):
            def main(self):
                self.vars["out"] = 5
                yield self.compute(None, flops=1)

        fabric = SimFabric(Grid1D(2), machine=plain_machine())
        fabric.inject((1,), Writer())
        result = fabric.run()
        assert result.get(1, "out") == 5
        assert result.get((1,), "out") == 5

    def test_unique_names(self):
        fabric = SimFabric(Grid1D(1), machine=plain_machine())
        a, b = _Computer(flops=1), _Computer(flops=1)
        fabric.inject((0,), a)
        fabric.inject((0,), b)
        fabric.run()
        assert a._name != b._name
