"""Unit and property tests for block partitioning helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.util.blocks import (
    Blocking,
    block_slices,
    block_view,
    check_divides,
    from_block_grid,
    strip_cols,
    strip_rows,
    to_block_grid,
)


class TestCheckDivides:
    def test_accepts_divisible(self):
        check_divides(128, 32)

    def test_rejects_nondivisible(self):
        with pytest.raises(PartitionError):
            check_divides(100, 32)

    @pytest.mark.parametrize("n,b", [(0, 4), (4, 0), (-8, 2), (8, -2)])
    def test_rejects_nonpositive(self, n, b):
        with pytest.raises(PartitionError):
            check_divides(n, b)


class TestBlockViews:
    def test_block_slices(self):
        si, sj = block_slices(2, 1, 8)
        assert (si.start, si.stop) == (16, 24)
        assert (sj.start, sj.stop) == (8, 16)

    def test_block_view_is_a_view(self):
        a = np.arange(64.0).reshape(8, 8)
        blk = block_view(a, 1, 1, 4)
        assert np.shares_memory(blk, a)
        blk[0, 0] = -1.0
        assert a[4, 4] == -1.0

    def test_strip_rows_and_cols(self):
        a = np.arange(36.0).reshape(6, 6)
        assert np.array_equal(strip_rows(a, 1, 2), a[2:4, :])
        assert np.array_equal(strip_cols(a, 2, 2), a[:, 4:6])

    @given(st.integers(1, 6), st.integers(1, 6), st.integers(0, 5),
           st.integers(0, 5))
    def test_blocks_tile_the_matrix(self, bi, bj, i, j):
        """Every element belongs to exactly the block its indices say."""
        n = 6 * max(bi, bj)
        a = np.arange(float(n * n)).reshape(n, n)
        b = n // 6
        blk = block_view(a, i, j, b)
        assert blk.shape == (b, b)
        assert blk[0, 0] == a[i * b, j * b]


class TestBlockGrid:
    def test_roundtrip(self):
        a = np.arange(144.0).reshape(12, 12)
        grid = to_block_grid(a, 4)
        out = np.zeros_like(a)
        from_block_grid(grid, out)
        assert np.array_equal(out, a)

    def test_rotation_is_pointer_swap(self):
        """Shifting the nested-list representation copies no elements."""
        a = np.arange(64.0).reshape(8, 8)
        grid = to_block_grid(a, 4)
        first = grid[0][0]
        grid[0] = grid[0][1:] + [grid[0][0]]
        assert grid[0][-1] is first

    def test_rejects_nondivisible(self):
        with pytest.raises(PartitionError):
            to_block_grid(np.zeros((10, 10)), 4)

    def test_from_empty_grid_rejected(self):
        with pytest.raises(PartitionError):
            from_block_grid([], np.zeros((4, 4)))


class TestBlocking:
    def test_derived_quantities(self):
        blocking = Blocking(n=1536, grid=3, ab=128)
        assert blocking.db == 512
        assert blocking.blocks_per_db == 4
        assert blocking.nblocks == 12

    def test_invalid_combinations(self):
        with pytest.raises(PartitionError):
            Blocking(n=100, grid=3, ab=10)
        with pytest.raises(PartitionError):
            Blocking(n=96, grid=3, ab=10)

    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
    def test_owner_local_global_roundtrip(self, grid, per_db, ab):
        blocking = Blocking(n=grid * per_db * ab, grid=grid, ab=ab)
        for idx in range(blocking.nblocks):
            owner = blocking.owner(idx)
            local = blocking.local_index(idx)
            assert 0 <= owner < grid
            assert 0 <= local < blocking.blocks_per_db
            assert blocking.global_index(owner, local) == idx

    def test_out_of_range(self):
        blocking = Blocking(n=24, grid=3, ab=4)
        with pytest.raises(PartitionError):
            blocking.owner(6)
        with pytest.raises(PartitionError):
            blocking.local_index(-1)
        with pytest.raises(PartitionError):
            blocking.global_index(3, 0)
        with pytest.raises(PartitionError):
            blocking.global_index(0, 2)
