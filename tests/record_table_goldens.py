"""Re-record tests/goldens/table_times.json from the current engine.

Run only after a *deliberate* model change (new cost term, calibration
update); for pure performance work the goldens must not move. Usage::

    PYTHONPATH=src python tests/record_table_goldens.py
"""

import json
from pathlib import Path

from repro.perfmodel import tables


def record() -> dict:
    out: dict = {}
    builders = {
        "table1": tables.build_table1,
        "table2": tables.build_table2,
        "table3": tables.build_table3,
        "table4": tables.build_table4,
    }
    for name, build in builders.items():
        cells: dict = {}
        for row in build().rows:
            prefix = f"n{row.n}/ab{row.ab}"
            cells[f"{prefix}/sequential"] = row.seq_model.hex()
            for variant, cell in row.cells.items():
                cells[f"{prefix}/{variant}"] = cell.model_time.hex()
        out[name] = cells
    return out


if __name__ == "__main__":
    path = Path(__file__).parent / "goldens" / "table_times.json"
    goldens = record()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(goldens, indent=1, sort_keys=True) + "\n")
    n = sum(len(v) for v in goldens.values())
    print(f"recorded {n} cells -> {path}")
