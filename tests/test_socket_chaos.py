"""Chaos soak: the socket fabric converges under randomized faults.

Each seed derives a deterministic :meth:`FaultPlan.random` mix — a real
``SIGKILL``, wire-level frame drops, a duplicated frame — and runs the
IR wavefront pipeline over real TCP under it. The run must still
converge to the golden answer within the respawn budget: crashes are
detected by heartbeat loss, the journal replays the destroyed state,
``(mid, hop)`` dedup masks the duplicates, and drops are retransmitted.

Fault specs that never come due on a given run (a drop ordinal beyond
the hop count, a crash after completion) are intentionally inert —
the sweep asserts convergence, not that every fault fired.
"""

import numpy as np
import pytest

from repro.fabric import Grid1D
from repro.fabric.socket import SocketFabric
from repro.navp.interp import IRMessenger
from repro.resilience.faults import FaultPlan
from repro.wavefront.irprog import build_wavefront_ir
from repro.wavefront.navp import _gather, _layout
from repro.wavefront.problem import WavefrontCase

P = 2
MAX_RESTARTS = 2
CI_SEEDS = (7, 23, 101, 404)


def _chaos_run(seed: int):
    case = WavefrontCase(n=16, b=4)
    main, _carrier = build_wavefront_ir(P, case.nblocks, case.b)
    plan = FaultPlan.random(seed, places=P, crashes=1, drops=2,
                            duplicates=1, dup_kind="hop", horizon=0.3)
    fabric = SocketFabric(Grid1D(P), timeout=90.0, faults=plan,
                          checkpoint_every=4,
                          max_restarts=MAX_RESTARTS, trace=True)
    _layout(fabric, case, P)
    fabric.inject((0,), IRMessenger(main.name))
    result = fabric.run()
    return case, fabric, result


@pytest.mark.parametrize("seed", CI_SEEDS)
def test_wavefront_converges_under_chaos(seed):
    case, fabric, result = _chaos_run(seed)
    d = _gather(result, case, P)
    assert np.allclose(d, case.reference()), (
        f"seed {seed}: wavefront diverged from golden under faults")
    assert sum(fabric.restarts.values()) <= MAX_RESTARTS * P
    assert not fabric.lost, "recovery was on; nothing may be lost"


def test_chaos_run_is_observable(recwarn):
    """The trace tells the recovery story for a seed that crashes."""
    case, fabric, result = _chaos_run(CI_SEEDS[0])
    kinds = {e.kind for e in result.trace.events}
    # every chaos run records hops; runs whose crash came due also
    # record the fault and the respawn that healed it
    assert "hop" in kinds
    if sum(fabric.restarts.values()):
        assert "respawn" in kinds
        notes = " ".join(e.note for e in result.trace.events)
        assert "SIGKILLed" in notes
        assert "respawned" in notes
