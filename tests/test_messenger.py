"""The Messenger programming surface."""

import pytest

from repro.errors import FabricError
from repro.fabric import Grid1D, SimFabric
from repro.fabric import effects as fx
from repro.machine import FAST_TEST_MACHINE
from repro.navp import Messenger


class TestEffectBuilders:
    def test_hop_normalizes_coord(self):
        m = Messenger()
        assert m.hop(2) == fx.Hop(coord=(2,), nbytes=None)
        assert m.hop((1, 2)) == fx.Hop(coord=(1, 2), nbytes=None)
        assert m.hop((3,), nbytes=10).nbytes == 10

    def test_event_builders(self):
        m = Messenger()
        assert m.wait_event("EP", 1, 2) == fx.WaitEvent("EP", (1, 2))
        sig = m.signal_event("EC", 3, count=2)
        assert sig == fx.SignalEvent("EC", (3,), 2)

    def test_compute_defaults_to_navp_kind(self):
        eff = Messenger().compute(None, flops=10.0)
        assert eff.kind == "navp"
        assert eff.flops == 10.0

    def test_inject_wraps(self):
        child = Messenger()
        assert Messenger().inject(child).messenger is child

    def test_delay(self):
        assert Messenger().delay(0.5).seconds == 0.5


class TestUnboundAccess:
    def test_vars_requires_fabric(self):
        with pytest.raises(FabricError):
            Messenger().vars

    def test_here_requires_fabric(self):
        with pytest.raises(FabricError):
            Messenger().here

    def test_machine_requires_fabric(self):
        with pytest.raises(FabricError):
            Messenger().machine

    def test_repr_unbound(self):
        assert "unbound" in repr(Messenger())


class TestBoundContext:
    def test_here_and_machine_update_on_hop(self):
        seen = []

        class Walker(Messenger):
            def main(self):
                seen.append(self.here)
                assert self.machine is FAST_TEST_MACHINE
                yield self.hop((1,))
                seen.append(self.here)

        fabric = SimFabric(Grid1D(2), machine=FAST_TEST_MACHINE)
        fabric.inject((0,), Walker())
        fabric.run()
        assert seen == [(0,), (1,)]

    def test_vars_follow_location(self):
        values = []

        class Reader(Messenger):
            def main(self):
                for j in range(3):
                    yield self.hop((j,))
                    values.append(self.vars["tag"])

        fabric = SimFabric(Grid1D(3), machine=FAST_TEST_MACHINE)
        for j in range(3):
            fabric.load((j,), tag=f"pe{j}")
        fabric.inject((0,), Reader())
        fabric.run()
        assert values == ["pe0", "pe1", "pe2"]

    def test_abstract_main(self):
        with pytest.raises(NotImplementedError):
            Messenger().main()
