"""The serve job model, admission queue, and program catalog — pure
units, no processes or sockets."""

import pytest

from repro.errors import AdmissionError
from repro.serve.catalog import (IR_CATALOG, REJECT_STATUSES,
                                 admission_verdict, build_job_suite,
                                 get_entry, program_names)
from repro.serve.jobs import JobRecord, JobSpec
from repro.serve.queue import JobQueue


def _rec(seq, tenant="t", priority=0, workers=2, **kw) -> JobRecord:
    spec = JobSpec(program="navp-2d-dsc", tenant=tenant,
                   priority=priority, workers=workers, **kw)
    return JobRecord(jid=f"j{seq}", spec=spec, seq=seq)


class TestJobSpec:
    def test_roundtrip(self):
        spec = JobSpec(program="navp-2d-dsc", g=3, seed=7, ab=4,
                       workers=3, tenant="alice", priority=2)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("raw,match", [
        ({"program": "x", "g": 1}, "g must be"),
        ({"program": "x", "ab": 0}, "ab must be"),
        ({"program": "x", "workers": 0}, "workers must be"),
        ({"program": "x", "g": 2, "workers": 5}, "1..4"),
        ({"program": "x", "tenant": ""}, "tenant"),
        ({"program": "x", "nonsense": 1}, "unknown job spec field"),
        ({}, "needs a 'program'"),
        ("not-a-dict", "must be a mapping"),
    ])
    def test_validation_rejects(self, raw, match):
        with pytest.raises(AdmissionError, match=match):
            JobSpec.from_dict(raw)


class TestAdmission:
    def test_depth_bound(self):
        q = JobQueue(max_depth=2, tenant_cap=10)
        for i in range(2):
            assert q.admit_reason(_rec(i), {}) is None
            q.push(_rec(i))
        reason = q.admit_reason(_rec(3), {})
        assert reason is not None and "queue full" in reason

    def test_tenant_cap_counts_pending_plus_running(self):
        q = JobQueue(max_depth=100, tenant_cap=3)
        q.push(_rec(0, tenant="a"))
        q.push(_rec(1, tenant="a"))
        # 2 pending + 1 running == cap -> the fourth is refused
        reason = q.admit_reason(_rec(2, tenant="a"), {"a": 1})
        assert reason is not None and "'a'" in reason
        # another tenant is unaffected
        assert q.admit_reason(_rec(3, tenant="b"), {"a": 1}) is None


class TestDispatchOrder:
    def test_priority_wins(self):
        q = JobQueue()
        q.push(_rec(0, priority=0))
        q.push(_rec(1, priority=5))
        assert q.take(4, {}).seq == 1

    def test_tenant_fairness_among_equal_priority(self):
        """The tenant with fewer running jobs dispatches first, even
        if the busy tenant submitted earlier."""
        q = JobQueue()
        q.push(_rec(0, tenant="busy"))
        q.push(_rec(1, tenant="idle"))
        assert q.take(4, {"busy": 3}).spec.tenant == "idle"

    def test_fifo_within_tenant(self):
        q = JobQueue()
        q.push(_rec(1, tenant="a"))
        q.push(_rec(0, tenant="a"))
        assert q.take(4, {}).seq == 0

    def test_backfill_skips_wide_jobs(self):
        """A job wider than the free workers does not block a narrow
        job behind it."""
        q = JobQueue()
        q.push(_rec(0, workers=4, g=3))
        q.push(_rec(1, workers=1))
        assert q.take(2, {}).seq == 1
        assert q.take(2, {}) is None             # the wide one waits
        assert q.take(4, {}).seq == 0

    def test_cancel_all_drains(self):
        q = JobQueue()
        q.push(_rec(0))
        q.push(_rec(1))
        assert [r.seq for r in q.cancel_all()] == [0, 1]
        assert len(q) == 0


class TestCatalog:
    def test_catalog_covers_the_four_ir_programs(self):
        assert program_names() == ("mpi-gentleman", "navp-2d-dsc",
                                   "navp-2d-phase", "navp-2d-pipeline")

    def test_unknown_program_is_an_admission_error(self):
        with pytest.raises(AdmissionError, match="unknown program"):
            get_entry("nonesuch")

    def test_build_job_suite_is_deterministic(self):
        _s1, a1, b1 = build_job_suite("navp-2d-dsc", 2, seed=9, ab=4)
        _s2, a2, b2 = build_job_suite("navp-2d-dsc", 2, seed=9, ab=4)
        assert (a1 == a2).all() and (b1 == b2).all()
        _s3, a3, _b3 = build_job_suite("navp-2d-dsc", 2, seed=10, ab=4)
        assert not (a1 == a3).all()

    def test_admission_verdict_rejects_the_fig15_deadlock(self):
        """PR 8's headline find — the Figure 15 protocol deadlock at
        g=3 — is exactly what admission control must refuse."""
        verdict = admission_verdict("navp-2d-phase", 3)
        assert verdict.status in REJECT_STATUSES

    def test_admission_verdict_admits_fig11(self):
        verdict = admission_verdict("navp-2d-dsc", 2)
        assert verdict.status not in REJECT_STATUSES

    def test_admission_verdict_is_cached(self):
        one = admission_verdict("navp-2d-dsc", 2)
        again = admission_verdict("navp-2d-dsc", 2)
        assert one is again                      # lru_cache hit

    def test_every_entry_builds(self):
        for name in IR_CATALOG:
            suite, a, _b = build_job_suite(name, 2, seed=1, ab=2)
            assert suite.g == 2
            assert a.shape == (4, 4)
            assert suite.programs                # ships a closure
