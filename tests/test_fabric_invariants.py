"""Conservation laws and safety invariants of the simulation fabric."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import Grid1D, Grid2D, SimFabric
from repro.fabric.desim import Resource, Simulator, Timeout
from repro.machine import SUN_BLADE_100
from repro.matmul import MatmulCase, run_variant
from repro.navp import ir
from repro.navp.interp import Interp


class TestComputeConservation:
    """Total traced compute time must equal total charged flops/rate
    (adjusted by cache factors) — virtual time cannot leak."""

    @pytest.mark.parametrize("variant,geometry,kind", [
        ("navp-1d-dsc", 3, "navp"),
        ("navp-1d-phase", 3, "navp"),
        ("navp-2d-pipeline", 3, "navp"),
        ("scalapack-summa", 3, "sequential"),
    ])
    def test_busy_time_equals_charged_flops(self, variant, geometry, kind):
        from repro.machine import cache_factors

        case = MatmulCase(n=1536, ab=128, shadow=True)
        result = run_variant(variant, case, geometry=geometry,
                             machine=SUN_BLADE_100)
        busy = sum(result.trace.busy_time("compute").values())
        # total useful flops of the product, at the variant's block-LRU
        # cache factor — not a flop more, not a flop less
        factor = cache_factors(elem_size=SUN_BLADE_100.elem_size)[kind]
        expected = SUN_BLADE_100.flops_time(2.0 * case.n**3) * factor
        assert busy == pytest.approx(expected, rel=1e-9)

    def test_mpi_carries_its_cache_penalty(self):
        case = MatmulCase(n=1536, ab=128, shadow=True)
        result = run_variant("mpi-gentleman", case, geometry=3,
                             machine=SUN_BLADE_100)
        busy = sum(result.trace.busy_time("compute").values())
        base = SUN_BLADE_100.flops_time(2.0 * case.n**3)
        factor = busy / base
        assert 1.02 <= factor <= 1.06  # the block-LRU mpi factor

    def test_makespan_bounds(self):
        """Makespan is at least busy/P and at most the serial total."""
        case = MatmulCase(n=1536, ab=128, shadow=True)
        result = run_variant("navp-2d-phase", case, geometry=3,
                             machine=SUN_BLADE_100)
        busy = sum(result.trace.busy_time("compute").values())
        assert busy / 9 <= result.time <= busy * 1.5


class TestResourceSafety:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 4),
           st.lists(st.tuples(st.floats(0.0, 2.0, allow_nan=False),
                              st.floats(0.01, 1.0, allow_nan=False)),
                    min_size=1, max_size=25))
    def test_capacity_never_exceeded(self, capacity, jobs):
        """Instrumented occupancy stays within capacity under random
        concurrent acquire/hold/release workloads."""
        sim = Simulator()
        res = Resource(sim, capacity)
        peak = [0]

        def proc(delay, hold):
            yield Timeout(delay)
            yield res.acquire()
            peak[0] = max(peak[0], res.in_use)
            assert res.in_use <= capacity
            yield Timeout(hold)
            res.release()

        for delay, hold in jobs:
            sim.spawn(proc(delay, hold))
        sim.run()
        assert res.in_use == 0              # everything released
        assert peak[0] <= capacity
        if len(jobs) >= capacity:
            assert peak[0] >= 1

    def test_nic_occupancy_during_contention(self):
        """The matmul runs leave every resource idle at the end."""
        case = MatmulCase(n=96, ab=8, shadow=True)
        from repro.matmul.navp2d import _PhaseInjector2D
        from repro.matmul.layouts import layout_2d_natural

        fabric = SimFabric(Grid2D(3), machine=SUN_BLADE_100)
        layout_2d_natural(fabric, case, 3)
        fabric.inject((0, 0), _PhaseInjector2D(case, 3))
        fabric.run()
        for place in fabric.places:
            assert place.cpu.in_use == 0
            assert place.nic_in.in_use == 0
            assert place.nic_out.in_use == 0
            for sem in place.events.values():
                assert sem.waiting() == 0


class TestContinuationThroughBranches:
    def test_pickle_inside_if_body(self):
        """A continuation parked inside an If region must resume there
        after a pickle round-trip (the process-fabric path)."""
        import pickle

        ir.register_program(ir.Program("inv-if-hop", (
            ir.For("i", ir.Const(4), (
                ir.If(ir.Bin("==", ir.Bin("%", ir.Var("i"), ir.Const(2)),
                             ir.Const(0)),
                      then=(
                          ir.HopStmt((ir.Const(1),)),
                          ir.NodeSet("even", (ir.Var("i"),),
                                     ir.Const(True)),
                      ),
                      orelse=(
                          ir.HopStmt((ir.Const(0),)),
                          ir.NodeSet("odd", (ir.Var("i"),),
                                     ir.Const(True)),
                      )),
            )),
        )), replace=True)

        places = {(0,): {}, (1,): {}}
        interp = Interp("inv-if-hop")
        at = (0,)
        while True:
            action = interp.next_action(places[at])
            if action is None:
                break
            assert action[0] == "hop"
            at = action[1]
            # migrate: pickle exactly at the point inside the branch
            interp = Interp.from_snapshot(
                pickle.loads(pickle.dumps(interp.agent_snapshot())))
        assert places[(1,)]["even"] == {0: True, 2: True}
        assert places[(0,)]["odd"] == {1: True, 3: True}
