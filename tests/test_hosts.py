"""Logical-node virtualization: mapping, cost semantics, correctness."""

import pytest

from repro.errors import ConfigurationError
from repro.fabric import Grid1D, Grid2D, SimFabric, ThreadFabric
from repro.fabric.hosts import block_hosts, cyclic_hosts, resolve_hosts
from repro.fabric.process import ProcessFabric
from repro.machine import FAST_TEST_MACHINE, SUN_BLADE_100
from repro.matmul.ir2d import build_fig15, run_ir2d_suite
from repro.navp import Messenger
from repro.util.validation import assert_allclose, random_matrix


class TestMappings:
    def test_identity_default(self):
        mapping = resolve_hosts(Grid1D(3), None)
        assert sorted(mapping.values()) == [0, 1, 2]

    def test_block_hosts(self):
        mapping = block_hosts(Grid1D(6), 3)
        assert [mapping[(j,)] for j in range(6)] == [0, 0, 1, 1, 2, 2]

    def test_cyclic_hosts(self):
        mapping = cyclic_hosts(Grid1D(6), 3)
        assert [mapping[(j,)] for j in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_callable_spec(self):
        mapping = resolve_hosts(Grid2D(2), lambda c: c[0])
        assert mapping[(0, 1)] == 0
        assert mapping[(1, 0)] == 1

    def test_dense_required(self):
        with pytest.raises(ConfigurationError, match="dense"):
            resolve_hosts(Grid1D(2), {(0,): 0, (1,): 2})

    def test_complete_required(self):
        with pytest.raises(ConfigurationError, match="misses"):
            resolve_hosts(Grid1D(3), {(0,): 0, (1,): 0})

    def test_host_count_bounds(self):
        with pytest.raises(ConfigurationError):
            block_hosts(Grid1D(3), 4)
        with pytest.raises(ConfigurationError):
            cyclic_hosts(Grid1D(3), 0)


class _Tour(Messenger):
    def __init__(self, route, flops=0.0):
        self._route = route
        self._flops = flops

    def main(self):
        for coord in self._route:
            yield self.hop(coord, nbytes=100_000)
            if self._flops:
                yield self.compute(None, flops=self._flops)
        self.vars["done"] = True


class TestSimSemantics:
    def test_cohosted_hops_are_local(self):
        fabric = SimFabric(Grid1D(4), machine=SUN_BLADE_100,
                           hosts=block_hosts(Grid1D(4), 2))
        fabric.inject((0,), _Tour([(1,)]))  # 0 and 1 share host 0
        local = fabric.run().time
        fabric2 = SimFabric(Grid1D(4), machine=SUN_BLADE_100,
                            hosts=block_hosts(Grid1D(4), 2))
        fabric2.inject((0,), _Tour([(2,)]))  # crosses to host 1
        remote = fabric2.run().time
        assert local == pytest.approx(SimFabric.LOCAL_HOP_SECONDS)
        assert remote > 100 * local

    def test_cohosted_places_share_cpu(self):
        """Two messengers computing at different logical nodes of one
        host serialize; on separate hosts they overlap."""

        def run(hosts):
            fabric = SimFabric(Grid1D(2), machine=FAST_TEST_MACHINE,
                               hosts=hosts, use_cache_model=False)
            fabric.inject((0,), _Tour([(0,)], flops=1e6))
            fabric.inject((1,), _Tour([(1,)], flops=1e6))
            return fabric.run().time

        shared = run({(0,): 0, (1,): 0})
        separate = run(None)
        assert shared == pytest.approx(2 * separate, rel=0.05)

    def test_node_vars_stay_per_logical_node(self):
        fabric = SimFabric(Grid1D(2), machine=FAST_TEST_MACHINE,
                           hosts={(0,): 0, (1,): 0})
        fabric.load((0,), tag="a")
        fabric.load((1,), tag="b")

        class Reader(Messenger):
            def main(self):
                self.vars["seen"] = self.vars["tag"]
                yield self.hop((1,))
                self.vars["seen"] = self.vars["tag"]

        fabric.inject((0,), Reader())
        result = fabric.run()
        assert result.places[(0,)]["seen"] == "a"
        assert result.places[(1,)]["seen"] == "b"

    def test_more_hosts_never_slower(self):
        """Fine-grained fig15 on 1, 3 and 9 hosts: time decreases."""
        times = {}
        for n_hosts in (1, 3, 9):
            a = random_matrix(3 * 64, 301)
            b = random_matrix(3 * 64, 302)
            suite = build_fig15(3, a, b, ab=64)
            from repro.fabric.topology import Grid2D as G2

            fabric = SimFabric(G2(3), machine=SUN_BLADE_100,
                               hosts=block_hosts(G2(3), n_hosts))
            for coord, node_vars in suite.layout.items():
                fabric.load(coord, **node_vars)
            from repro.navp.interp import IRMessenger

            fabric.inject((0, 0), IRMessenger(suite.entry.name))
            result = fabric.run()
            times[n_hosts] = result.time
            c = _gather_c(result, 3, 64)
            assert_allclose(c, a @ b, what=f"fig15 on {n_hosts} hosts")
        assert times[9] < times[3] < times[1]
        # 9 logical nodes on one host serialize all compute; at this
        # problem size communication takes part of the win back
        assert times[1] > 3 * times[9]


def _gather_c(result, g, ab):
    import numpy as np

    c = np.empty((g * ab, g * ab))
    for (i, j), node_vars in result.places.items():
        c[i * ab : (i + 1) * ab, j * ab : (j + 1) * ab] = node_vars["C"]
    return c


class TestThreadSemantics:
    def test_correct_with_two_hosts(self):
        from repro.matmul import MatmulCase
        from repro.matmul.navp1d import run_phase_1d

        # run on the thread fabric with an explicit virtualized build
        a = random_matrix(24, 310)
        b = random_matrix(24, 311)
        fabric = ThreadFabric(Grid1D(4), hosts=block_hosts(Grid1D(4), 2))
        case = MatmulCase(n=24, ab=2, seed=77)
        from repro.matmul.layouts import gather_c_1d, layout_1d_a_row_strips
        from repro.matmul.navp1d import _PhaseInjector1D, PhaseRowCarrier1D

        layout_1d_a_row_strips(fabric, case, 4)
        by_owner = {}
        for mi in range(case.nblocks):
            owner = mi // (case.nblocks // 4)
            by_owner.setdefault(owner, []).append(
                PhaseRowCarrier1D(mi, owner, case, 4))
        fabric.inject((0,), _PhaseInjector1D(by_owner))
        result = fabric.run()
        assert_allclose(gather_c_1d(result, case, 4), case.reference())


class TestProcessSemantics:
    def test_ir2d_on_fewer_processes(self):
        """9 logical PEs on 3 OS processes, full 2-D phase matmul."""
        a = random_matrix(24, 320)
        b = random_matrix(24, 321)
        suite = build_fig15(3, a, b)
        from repro.fabric.topology import Grid2D as G2

        fabric = ProcessFabric(G2(3), timeout=90.0,
                               hosts=block_hosts(G2(3), 3))
        for coord, node_vars in suite.layout.items():
            fabric.load(coord, **node_vars)
        for coord, event, args, count in suite.initial_signals:
            fabric.signal_initial(coord, event, *args, count=count)
        fabric.inject((0, 0), suite.entry.name)
        result = fabric.run()
        assert_allclose(_gather_c(result, 3, 8), a @ b)
