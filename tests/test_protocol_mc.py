"""The protocol model checker: verdicts, paper programs, cross-validation.

The acceptance contract this file pins down:

* every liveness corpus case gets its intended verdict;
* the paper's winning programs VERIFY quickly, with exact mailbox
  peaks far under the socket window (explored-state counts are pinned
  as a regression guard on the abstraction);
* the checker's headline finding — the Figure 15 phase-shifted
  protocol has a reachable deadlock — reproduces dynamically on
  SimFabric with a single delayed hop;
* DEADLOCK verdicts come with schedules, and fabrics quote the
  verdict inside their DeadlockError messages.
"""

import json

import pytest

from repro.analysis.corpus import LIVENESS_CORPUS
from repro.analysis.lint import (
    paper_mc_contexts,
    root_entry_coord,
    seed_paper_programs,
)
from repro.analysis.protocol_mc import (
    DEFAULT_WINDOW,
    model_check,
    runtime_deadlock_hint,
)
from repro.errors import DeadlockError, TransformError
from repro.navp import ir


@pytest.fixture(scope="module")
def paper():
    seed_paper_programs(3)
    from repro.matmul.irgentleman import build_gentleman_ir
    build_gentleman_ir(3)
    return paper_mc_contexts(3)


def _case(name):
    return next(c for c in LIVENESS_CORPUS if c.name == name)


def _check(case, **kw):
    kw.setdefault("window", case.window if case.window is not None
                  else DEFAULT_WINDOW)
    return model_check(case.root, case.registry, entry=case.entry,
                       places=case.places,
                       initial_signals=case.initial_signals, **kw)


class TestCorpusVerdicts:
    def test_credit_starvation_is_gated_only(self):
        res = _check(_case("bad-credit-window"))
        assert res.status == "CREDIT-DEADLOCK"
        assert res.deadlock_free is True          # ungated semantics
        assert res.gated_deadlock_free is False   # window=1 semantics
        assert res.counterexample_regime == "gated"
        assert "credit" in res.counterexample.describe()

    def test_token_steal_deadlocks_with_schedule(self):
        res = _check(_case("bad-token-steal"))
        assert res.status == "DEADLOCK"
        assert res.deadlock_free is False
        text = res.counterexample.describe()
        assert "stuck:" in text and "DONE" in text

    def test_hidden_cycle_deadlocks(self):
        res = _check(_case("bad-hidden-cycle"))
        assert res.status == "DEADLOCK"
        assert res.counterexample is not None

    def test_orphan_leak_flagged(self):
        res = _check(_case("bad-orphan-signal"))
        assert res.status == "ORPHANS"
        assert res.deadlock_free is True
        assert res.orphans and res.orphans[0][1] == 1  # one token over

    def test_clean_control_verifies(self):
        res = _check(_case("good-mc-clean"))
        assert res.status == "VERIFIED"
        assert res.ok
        assert res.bounded is True

    def test_schedules_serialize(self):
        res = _check(_case("bad-hidden-cycle"))
        payload = res.to_json()
        assert payload["status"] == "DEADLOCK"
        assert payload["counterexample"]["blocked"]
        json.dumps(payload)  # must be JSON-clean end to end


# Pinned explored-state counts: the DFS is deterministic, so drift
# here means the abstraction or the reduction changed — re-justify
# and re-pin, don't relax.
PINNED = {
    "mm-seq-3-dsc-phase": (4, 32, 3),
    "wf-pipe-3x4b4": (5, 50, 4),
    "gent-main-3": (28, 626, 6),
    "fig11-main-3": (7, 40, 2),
}


class TestPaperProgramsVerified:
    @pytest.mark.parametrize("name", sorted(PINNED))
    def test_verified_with_pinned_statespace(self, name, paper):
        threads, total_states, mailbox = PINNED[name]
        ctx = paper.get(name, {})
        res = model_check(
            name,
            entry=ctx.get("entry",
                          root_entry_coord(ir.get_program(name))),
            initial_signals=ctx.get("initial_signals", ()),
            deadline_s=10.0)
        assert res.status == "VERIFIED", res.summary()
        assert res.threads == threads
        assert res.stats["total_states"] == total_states
        assert res.max_mailbox_depth == mailbox
        assert res.bounded is True and mailbox <= res.window
        # all peaks clear the window, so the gated semantics is
        # provably identical to the ungated one — no Pass C needed
        assert res.gate_transparent is True

    def test_por_actually_reduces(self, paper):
        res = model_check("gent-main-3", entry=(0, 0))
        assert res.stats["reduction_factor"] > 2.0


class TestFig15Finding:
    """The checker's headline: Figure 15 is only deadlock-free by luck.

    The phase-shifted 2-D protocol keeps a one-slot EC/EP[k] handshake
    per place; a B-carrier with the wrong k grabbing the free slot out
    of order creates a cyclic wait. Uniform hop timing hides it —
    delaying a single hop exposes it.
    """

    def test_static_deadlock_with_schedule(self, paper):
        ctx = paper["fig15-main-3"]
        res = model_check("fig15-main-3", entry=ctx["entry"],
                          initial_signals=ctx["initial_signals"])
        assert res.status == "DEADLOCK"
        text = res.counterexample.describe()
        assert "stuck:" in text

    def test_fig13_ordering_inconclusive_under_caps(self, paper):
        # fig13's k-ordered handshake fans into a far larger state
        # space; under lint's default caps the honest answer is
        # INCONCLUSIVE, not VERIFIED and not DEADLOCK
        ctx = paper["fig13-main-3"]
        res = model_check("fig13-main-3", entry=ctx["entry"],
                          initial_signals=ctx["initial_signals"],
                          max_states=5_000, deadline_s=2.0)
        assert res.status == "INCONCLUSIVE"

    def test_single_delayed_hop_reproduces_on_sim(self, paper):
        from dataclasses import replace

        from repro.machine.presets import FAST_TEST_MACHINE
        from repro.matmul.ir2d import build_fig15, run_ir2d_suite
        from repro.resilience import FaultPlan, MessageFault
        from repro.resilience.faults import injected

        zero = replace(FAST_TEST_MACHINE, inject_overhead_s=0.0,
                       event_overhead_s=0.0)
        plan = FaultPlan(faults=(MessageFault(
            action="delay", kind="hop", nth=5, seconds=0.05),))
        with pytest.raises(DeadlockError) as err:
            with injected(plan, recovery=False):
                run_ir2d_suite(build_fig15(3), "sim", machine=zero)
        # the fabric's post-mortem quotes the static verdict
        assert "reachable in the program itself" in str(err.value)


class TestCrossValidation:
    """Static verdict vs fuzzed SimFabric schedules, per corpus case."""

    def _fuzz(self, name, seeds=tuple(range(20))):
        from repro.fabric.fuzz import fuzz_deadlocks
        return fuzz_deadlocks(_case(name), seeds=seeds)

    def test_hidden_cycle_deadlocks_every_schedule(self):
        deadlocked, clean = self._fuzz("bad-hidden-cycle",
                                       seeds=tuple(range(5)))
        assert not clean

    def test_token_steal_is_schedule_dependent(self):
        deadlocked, clean = self._fuzz("bad-token-steal")
        assert deadlocked, "DEADLOCK verdict must reproduce dynamically"
        assert clean, "the steal depends on the schedule"

    @pytest.mark.parametrize("name", ["bad-credit-window",
                                      "bad-orphan-signal",
                                      "good-mc-clean"])
    def test_ungated_clean_cases_never_deadlock(self, name):
        # bad-credit-window's verdict is gated-only — SimFabric has no
        # credit window, so running clean here *is* the confirmation
        deadlocked, _clean = self._fuzz(name, seeds=tuple(range(10)))
        assert not deadlocked


class TestRuntimeHints:
    def test_sim_deadlock_quotes_reachable_verdict(self):
        from repro.fabric.fuzz import run_corpus_case
        with pytest.raises(DeadlockError) as err:
            run_corpus_case(_case("bad-hidden-cycle"))
        assert "reachable in the program itself" in str(err.value)

    def test_fault_deadlock_exonerates_the_program(self):
        from repro.fabric import Grid1D, SimFabric
        from repro.navp.interp import IRMessenger
        from repro.resilience import FaultPlan, MessageFault

        C = ir.Const
        ir.register_program(ir.Program("mc-hint-producer", (
            ir.HopStmt((C(1),)),
            ir.SignalStmt("EP", (), C(1)),
        ), ()), replace=True)
        ir.register_program(ir.Program("mc-hint-consumer", (
            ir.WaitStmt("EP", ()),
        ), ()), replace=True)
        plan = FaultPlan(faults=(
            MessageFault(action="drop", kind="hop", nth=1),))
        fabric = SimFabric(Grid1D(2), trace=False, faults=plan,
                           recovery=False)
        fabric.inject((0,), IRMessenger("mc-hint-producer"))
        fabric.inject((1,), IRMessenger("mc-hint-consumer"))
        with pytest.raises(DeadlockError) as err:
            fabric.run()
        text = str(err.value)
        assert "statically proven deadlock-free" in text
        assert "suspect the fabric or fault layer" in text

    def test_thread_fabric_quotes_verdict(self):
        from repro.fabric import Grid1D
        from repro.fabric.threads import ThreadFabric
        from repro.navp.interp import IRMessenger

        ir.register_program(ir.Program("mc-hint-stuck", (
            ir.WaitStmt("NEVER", ()),
        ), ()), replace=True)
        fabric = ThreadFabric(Grid1D(2), trace=False)
        fabric.inject((0,), IRMessenger("mc-hint-stuck"))
        with pytest.raises(DeadlockError) as err:
            fabric.run(timeout=1.0)
        assert "reachable in the program itself" in str(err.value)

    def test_controller_hint_uses_shipped_closure(self):
        from repro.fabric import Grid1D
        from repro.fabric.socket import SocketFabric

        ir.register_program(ir.Program("mc-hint-stuck", (
            ir.WaitStmt("NEVER", ()),
        ), ()), replace=True)
        fabric = SocketFabric(Grid1D(2))
        fabric.inject((0,), "mc-hint-stuck")
        hint = fabric._mc_hint(window=fabric.window)
        assert "reachable in the program itself" in hint

    def test_hint_is_silent_without_roots(self):
        assert runtime_deadlock_hint([], ()) is None


class TestPlannerGate:
    def test_deadlocking_winner_is_refused(self):
        from repro.plan.planner import _mc_gate

        prog = ir.register_program(ir.Program("mc-gate-bad", (
            ir.WaitStmt("NEVER", ()),
        ), ()), replace=True)
        with pytest.raises(TransformError) as err:
            _mc_gate(prog)
        assert "failed protocol model checking" in str(err.value)

    def test_verified_winner_reports_stats(self, paper):
        from repro.plan.planner import _mc_gate

        out = _mc_gate(ir.get_program("mm-seq-3-dsc-phase"))
        assert out["protocol_mc"] == "VERIFIED"
        assert out["protocol_mc_states"] == PINNED[
            "mm-seq-3-dsc-phase"][1]


class TestLintCLI:
    def test_verified_roots_exit_zero(self, paper, capsys):
        from repro.cli import main

        code = main(["lint", "mm-seq-3-dsc-phase", "wf-pipe-3x4b4",
                     "--protocol-mc", "--json"])
        out = json.loads(capsys.readouterr().out)
        assert code == 0
        mc = out["protocol_mc"]
        assert mc["mm-seq-3-dsc-phase"]["status"] == "VERIFIED"
        assert mc["wf-pipe-3x4b4"]["status"] == "VERIFIED"
        assert mc["wf-pipe-3x4b4"]["stats"]["total_states"] == PINNED[
            "wf-pipe-3x4b4"][1]

    def test_fig15_fails_lint_with_counterexample(self, paper, capsys):
        from repro.cli import main

        code = main(["lint", "fig15-main-3", "--protocol-mc", "--json"])
        out = json.loads(capsys.readouterr().out)
        assert code == 1
        verdict = out["protocol_mc"]["fig15-main-3"]
        assert verdict["status"] == "DEADLOCK"
        assert verdict["counterexample"]["steps"]
        assert any(d["category"] == "protocol-deadlock"
                   for d in out["diagnostics"])
