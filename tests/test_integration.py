"""Cross-cutting integration: fabric parity, public API, examples."""

import pathlib
import subprocess
import sys

import pytest

import repro
from repro.matmul import MatmulCase, run_variant
from repro.util.validation import assert_allclose

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


class TestFabricParity:
    """Identical numerics from the sim and thread fabrics."""

    @pytest.mark.parametrize("variant,g", [
        ("navp-1d-dsc", 3),
        ("navp-1d-pipeline", 3),
        ("navp-1d-phase", 3),
        ("navp-2d-dsc", 2),
        ("navp-2d-pipeline", 2),
        ("navp-2d-phase", 2),
    ])
    def test_same_product(self, variant, g):
        case = MatmulCase(n=24, ab=4, seed=9)
        from repro.matmul import navp1d, navp2d

        runner = {
            "navp-1d-dsc": navp1d.run_dsc_1d,
            "navp-1d-pipeline": navp1d.run_pipelined_1d,
            "navp-1d-phase": navp1d.run_phase_1d,
            "navp-2d-dsc": navp2d.run_dsc_2d,
            "navp-2d-pipeline": navp2d.run_pipelined_2d,
            "navp-2d-phase": navp2d.run_phase_2d,
        }[variant]
        sim = runner(case, g, fabric="sim")
        thread = runner(case, g, fabric="thread")
        reference = case.reference()
        assert_allclose(sim.c, reference, what=f"{variant} sim")
        assert_allclose(thread.c, reference, what=f"{variant} thread")

    def test_spmd_on_threads(self):
        from repro.matmul.gentleman import gentleman_rank
        from repro.fabric import Grid2D
        from repro.matmul.layouts import gather_c_2d, layout_2d_natural
        from repro.mpi import run_spmd

        case = MatmulCase(n=24, ab=4, seed=10)
        result = run_spmd(
            Grid2D(2), gentleman_rank(case, 2),
            setup=lambda fab: layout_2d_natural(fab, case, 2),
            fabric="thread",
        )
        assert_allclose(gather_c_2d(result, case, 2), case.reference())


class TestPublicAPI:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_readme_quickstart_snippet(self):
        case = repro.MatmulCase(n=1536, ab=128, shadow=True)
        result = repro.run_variant("navp-2d-phase", case, geometry=3)
        assert 6.0 < result.time < 11.0

    def test_make_fabric(self):
        from repro import Grid1D, make_fabric

        assert type(make_fabric("sim", Grid1D(2))).__name__ == "SimFabric"
        assert type(make_fabric("thread", Grid1D(2))).__name__ == \
            "ThreadFabric"
        with pytest.raises(repro.ConfigurationError):
            make_fabric("quantum", Grid1D(2))

    def test_version(self):
        assert repro.__version__


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "transform_demo.py",
    "real_processes.py",
    "data_aggregation.py",
    "wavefront_pipeline.py",
])
def test_example_scripts_run(script):
    """The fast examples must execute cleanly end to end."""
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=180,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]


def test_incremental_example_small():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "incremental_matmul.py"),
         "384", "32"],
        capture_output=True, text=True, timeout=180,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "stage 6" in proc.stdout
