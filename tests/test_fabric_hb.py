"""Dynamic happens-before race checking (fabric.hb).

Unit tests pin each merge point of the NavP execution model — inject,
hop, signal→wait, resource handoff — as an edge the vector clocks must
(or, for primed tokens, must *not*) carry. Integration tests run real
fabrics with ``race_check=True``: the racy corpus must be caught, the
golden Figure-13 pipeline must come back clean, and a deadlocked run
must explain itself with the static protocol prediction.
"""

import pytest

from repro.analysis.corpus import CORPUS, RACY_CORPUS, installed
from repro.errors import DeadlockError
from repro.fabric.fuzz import run_corpus_case
from repro.fabric.hb import HBTracker, RaceAccess
from repro.fabric.sim import SimFabric
from repro.fabric.topology import Grid1D, Grid2D
from repro.machine import FAST_TEST_MACHINE
from repro.navp.interp import IRMessenger


def _meta(actor, write):
    return RaceAccess(actor=actor, program=None, site=None, write=write)


def _write(hb, tid, var="x", key=None, place=0):
    hb.on_access(tid, place, var, key, True, _meta(f"t{tid}", True))


class TestMergePoints:
    def test_unrelated_writes_race(self):
        hb = HBTracker()
        t0, t1 = hb.new_thread(), hb.new_thread()
        _write(hb, t0)
        _write(hb, t1)
        assert len(hb.races) == 1
        assert hb.races[0].kind == "write-write"

    def test_injection_establishes_order(self):
        hb = HBTracker()
        t0 = hb.new_thread()
        _write(hb, t0)
        t1 = hb.new_thread(parent=t0)  # child born with parent's clock
        _write(hb, t1)
        assert hb.races == []

    def test_signal_wait_establishes_order(self):
        hb = HBTracker()
        t0, t1 = hb.new_thread(), hb.new_thread()
        key = (0, "E", ())
        _write(hb, t0)
        hb.on_signal(t0, key)
        hb.on_wait(t1, key)
        _write(hb, t1)
        assert hb.races == []

    def test_hop_carries_the_clock(self):
        # the clock travels with the continuation: an access made
        # *before* the hop is covered by a signal sent *after* it
        hb = HBTracker()
        t0, t1 = hb.new_thread(), hb.new_thread()
        _write(hb, t0, place=0)
        hb.on_hop(t0)  # arrive somewhere else
        hb.on_signal(t0, (1, "E", ()))
        hb.on_wait(t1, (1, "E", ()))
        _write(hb, t1, place=0)
        assert hb.races == []

    def test_hop_opens_a_fresh_epoch(self):
        hb = HBTracker()
        t0 = hb.new_thread()
        before = hb._clocks[t0][t0]
        hb.on_hop(t0)
        assert hb._clocks[t0][t0] == before + 1

    def test_primed_token_carries_no_order(self):
        # a setup-time signal enqueues the empty clock *ahead* of any
        # in-program snapshot, so the waiter learns nothing — exactly
        # the bad-dropped-wait corpus defect
        hb = HBTracker()
        key = (0, "E", ())
        hb.prime(key)
        t0, t1 = hb.new_thread(), hb.new_thread()
        _write(hb, t0)
        hb.on_signal(t0, key)  # queued behind the primed token
        hb.on_wait(t1, key)    # consumes the primed (empty) token
        _write(hb, t1)
        assert len(hb.races) == 1

    def test_resource_handoff_establishes_order(self):
        hb = HBTracker()
        t0, t1 = hb.new_thread(), hb.new_thread()
        _write(hb, t0)
        hb.on_release(t0, "cpu@host0")
        hb.on_acquire(t1, "cpu@host0")
        _write(hb, t1)
        assert hb.races == []

    def test_whole_variable_conflicts_with_every_entry(self):
        hb = HBTracker()
        t0, t1 = hb.new_thread(), hb.new_thread()
        hb.on_access(t0, 0, "x", (3,), True, _meta("a", True))
        hb.on_access(t1, 0, "x", None, False, _meta("b", False))
        assert len(hb.races) == 1
        assert hb.races[0].kind == "read-write"

    def test_disjoint_entries_do_not_conflict(self):
        hb = HBTracker()
        t0, t1 = hb.new_thread(), hb.new_thread()
        hb.on_access(t0, 0, "x", (3,), True, _meta("a", True))
        hb.on_access(t1, 0, "x", (4,), True, _meta("b", True))
        assert hb.races == []

    def test_duplicate_pairs_reported_once(self):
        hb = HBTracker()
        t0, t1 = hb.new_thread(), hb.new_thread()
        meta_a, meta_b = _meta("a", True), _meta("b", False)
        hb.on_access(t0, 0, "x", None, True, meta_a)
        hb.on_access(t1, 0, "x", None, False, meta_b)
        hb.on_access(t1, 0, "x", None, False, meta_b)
        assert len(hb.races) == 1


class TestFabricRuns:
    def test_corpus_race_found_dynamically(self):
        case = next(c for c in RACY_CORPUS
                    if c.name == "bad-unsignaled-write")
        found = set()
        for seed in range(8):
            for race in run_corpus_case(case, perturb_seed=seed):
                found.add(race.var)
            if set(case.racy_vars) <= found:
                break
        assert set(case.racy_vars) <= found

    def test_golden_pipeline_runs_clean(self):
        # Figure 13's full handshake (with its primed EC events) must
        # produce zero dynamic findings
        from repro.matmul.ir2d import build_fig13
        suite = build_fig13(3)
        fabric = SimFabric(Grid2D(3), machine=FAST_TEST_MACHINE,
                           trace=False, race_check=True)
        for coord, node_vars in suite.layout.items():
            fabric.load(coord, **node_vars)
        for coord, event, args, count in suite.initial_signals:
            fabric.signal_initial(coord, event, *args, count=count)
        fabric.inject((0, 0), IRMessenger(suite.entry.name))
        fabric.run()
        assert fabric.hb.races == []

    def test_deadlock_error_cites_static_prediction(self):
        case = next(c for c in CORPUS if c.name == "bad-unmatched-wait")
        with installed(case):
            fabric = SimFabric(Grid1D(1), machine=FAST_TEST_MACHINE,
                               trace=False)
            fabric.inject((0,), IRMessenger(case.root))
            with pytest.raises(DeadlockError) as exc:
                fabric.run()
        message = str(exc.value)
        assert "static protocol analysis" in message
        assert "unmatched-wait" in message
