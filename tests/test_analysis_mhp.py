"""The may-happen-in-parallel thread-segment graph (analysis.mhp).

A small hand-built closure exercises each primitive the race detector
relies on: thread-class replication, segment construction at wait /
signal / inject cut points, injection-order edges, usable signal→wait
edges, and the two-copy rule for a replicated class queried against
itself.
"""

import pytest

from repro.analysis.mhp import build_mhp
from repro.navp import ir

V = ir.Var
C = ir.Const


def _registry():
    waiter = ir.Program("mhp-waiter", (
        ir.WaitStmt("GO"),
        ir.NodeSet("wout", (C(0),), C(1)),
    ))
    signaler = ir.Program("mhp-signaler", (
        ir.NodeSet("sout", (C(0),), C(1)),
        ir.SignalStmt("GO"),
    ))
    carrier = ir.Program("mhp-carrier", (
        ir.NodeSet("z", (V("mi"),), C(1)),
    ), params=("mi",))
    main = ir.Program("mhp-main", (
        ir.HopStmt((C(0),)),
        ir.NodeSet("x", (C(0),), C(0)),
        ir.InjectStmt(waiter.name),
        ir.InjectStmt(signaler.name),
        ir.For("i", C(3), (
            ir.InjectStmt(carrier.name, bindings=(("mi", V("i")),)),
        )),
    ))
    return {p.name: p for p in (waiter, signaler, carrier, main)}


@pytest.fixture(scope="module")
def analysis():
    registry = _registry()
    return build_mhp(registry["mhp-main"], registry)


def _pos(analysis, thread, var):
    """Pre-order position of the write to ``var`` in ``thread``."""
    for s in analysis.summaries[thread]:
        if any(acc.var == var for acc in s.node_writes):
            return s.pos
    raise AssertionError(f"no write of {var!r} in {thread}")


class TestThreadClasses:
    def test_root_is_singleton(self, analysis):
        root = analysis.threads["mhp-main"]
        assert root.parent is None
        assert not root.replicated
        assert root.depth == 0

    def test_straight_line_children_are_singletons(self, analysis):
        for name in ("mhp-waiter", "mhp-signaler"):
            child = analysis.threads[name]
            assert child.parent == "mhp-main"
            assert not child.replicated

    def test_loop_injection_replicates(self, analysis):
        carrier = analysis.threads["mhp-carrier"]
        assert carrier.replicated
        assert carrier.repl_params == frozenset({"mi"})

    def test_unknown_child_recorded_missing(self):
        main = ir.Program("mhp-lonely", (ir.InjectStmt("mhp-nowhere"),))
        analysis = build_mhp(main, {main.name: main})
        assert analysis.missing == {"mhp-nowhere"}


class TestSegments:
    def test_injects_close_segments(self, analysis):
        closers = [seg.closer for seg in analysis.segments["mhp-main"]]
        assert closers == [
            ("inject", "mhp-waiter"),
            ("inject", "mhp-signaler"),
            ("inject", "mhp-carrier"),
            None,
        ]

    def test_wait_opens_a_segment(self, analysis):
        segments = analysis.segments["mhp-waiter"]
        assert segments[-1].opener == ("wait", "GO")

    def test_signal_closes_a_segment(self, analysis):
        closers = [seg.closer for seg in analysis.segments["mhp-signaler"]]
        assert ("signal", "GO") in closers


class TestOrdered:
    def test_injection_orders_parent_past_before_child(self, analysis):
        a = _pos(analysis, "mhp-main", "x")
        b = _pos(analysis, "mhp-waiter", "wout")
        assert analysis.ordered("mhp-main", a, "mhp-waiter", b)

    def test_child_never_precedes_parent_past(self, analysis):
        a = _pos(analysis, "mhp-main", "x")
        b = _pos(analysis, "mhp-waiter", "wout")
        assert not analysis.ordered("mhp-waiter", b, "mhp-main", a)

    def test_usable_signal_edge_orders_across_siblings(self, analysis):
        a = _pos(analysis, "mhp-signaler", "sout")
        b = _pos(analysis, "mhp-waiter", "wout")
        assert analysis.ordered(
            "mhp-signaler", a, "mhp-waiter", b,
            usable_events=frozenset({"GO"}))

    def test_unusable_event_carries_no_edge(self, analysis):
        a = _pos(analysis, "mhp-signaler", "sout")
        b = _pos(analysis, "mhp-waiter", "wout")
        assert not analysis.ordered("mhp-signaler", a, "mhp-waiter", b)

    def test_replicated_class_not_ordered_with_itself(self, analysis):
        # program order inside one instance must not be mistaken for an
        # ordering between instances: the path must cross an inject or
        # signal edge, and the carrier has neither
        pos = _pos(analysis, "mhp-carrier", "z")
        assert not analysis.ordered("mhp-carrier", pos, "mhp-carrier", pos)
