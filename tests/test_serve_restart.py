"""Daemon crash-recovery, out of process: the acceptance drill for the
durable control plane.

The headline test SIGKILLs the real daemon binary mid-stream under two
concurrent tenants, restarts it on the same ``--state-dir`` and port,
and proves (a) the surviving client reconnects transparently, (b)
idempotent resubmission of every key returns the original jids with
zero duplicate runs, and (c) every job converges bit-exact to its
sim-fabric golden. A second drill SIGTERMs a draining daemon and
checks the ledger closes cleanly with no orphan processes.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import ServeError
from repro.serve import replay_ledger
from repro.serve.client import ServeClient, resolve_addr
from tests.test_serve_service import _sim_digest

_SRC = str(Path(__file__).parent.parent / "src")


def _spawn_daemon(state_dir, addr_file, port=0, pool=2):
    """Start ``repro serve`` as a real subprocess; returns (proc, addr)
    once the daemon has written its pid:host:port file."""
    if os.path.exists(addr_file):
        os.unlink(addr_file)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--pool", str(pool), "--port", str(port),
         "--state-dir", str(state_dir), "--addr-file", str(addr_file),
         "--no-mc-admission", "--job-timeout", "60"],
        env={**os.environ, "PYTHONPATH": _SRC},
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if os.path.exists(addr_file) and os.path.getsize(addr_file):
            return proc, resolve_addr(None, str(addr_file))
        if proc.poll() is not None:
            raise AssertionError(
                f"daemon died during startup:\n{proc.stdout.read()}")
        time.sleep(0.1)
    proc.kill()
    raise AssertionError("daemon never wrote its addr file")


def _await_exit(proc, timeout=60.0) -> int:
    try:
        return proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise AssertionError(
            f"daemon did not exit in {timeout}s:\n{proc.stdout.read()}")


def _no_strays(state_dir, deadline_s=20.0) -> None:
    """No process on the box still references our unique state dir —
    the daemon and every (forked, same-cmdline) pool worker are gone."""
    needle = str(state_dir).encode()
    end = time.monotonic() + deadline_s
    while True:
        strays = []
        for pid in os.listdir("/proc"):
            if not pid.isdigit() or int(pid) == os.getpid():
                continue
            try:
                with open(f"/proc/{pid}/cmdline", "rb") as fh:
                    if needle in fh.read():
                        strays.append(pid)
            except OSError:
                continue
        if not strays:
            return
        if time.monotonic() > end:
            raise AssertionError(f"stray process(es) after daemon "
                                 f"death: {strays}")
        time.sleep(0.2)


@pytest.fixture()
def goldens():
    return {s: _sim_digest("navp-2d-dsc", 2, s, 4) for s in range(8)}


class TestDaemonSigkillRestart:
    def test_jobs_converge_bit_exact_with_zero_duplicates(
            self, tmp_path, goldens):
        state = tmp_path / "state"
        addr_file = tmp_path / "addr"
        proc, addr = _spawn_daemon(state, addr_file)
        restarted = None
        client = ServeClient(addr, timeout=120.0)
        try:
            submits = {}   # seed -> (key, jid)
            for s in range(8):
                key = f"drill-{s}"
                out = client.submit_info(
                    "navp-2d-dsc", idempotency_key=key, g=2, seed=s,
                    ab=4, workers=1,
                    tenant=("alice" if s % 2 else "bob"))
                submits[s] = (key, out["job"])
                assert not out.get("deduped")

            # SIGKILL mid-stream: some jobs running, some still queued
            os.kill(proc.pid, signal.SIGKILL)
            _await_exit(proc, timeout=20.0)
            _no_strays(state)   # workers self-terminate on daemon death

            # the addr file is now a tombstone and says so
            with pytest.raises(ServeError, match="stale addr file"):
                resolve_addr(None, str(addr_file))

            # restart on the SAME port + state dir; the same client
            # object reconnects through its jittered-backoff loop
            restarted, _ = _spawn_daemon(state, addr_file, port=addr[1])
            status = client.status()
            assert client.reconnects >= 1
            recovered = status["durability"]["recovered"]
            assert recovered["unclean"] is True
            assert (recovered["terminal"] + recovered["requeued"]
                    + recovered["resumed"]) == 8

            # exactly-once: resubmitting every key after the ambiguous
            # failure returns the original jids, runs nothing twice
            for s, (key, jid) in submits.items():
                out = client.submit_info(
                    "navp-2d-dsc", idempotency_key=key, g=2, seed=s,
                    ab=4, workers=1,
                    tenant=("alice" if s % 2 else "bob"))
                assert out["job"] == jid, (s, out)
                assert out["deduped"] is True

            for s, (_key, jid) in submits.items():
                rec = client.wait(jid, timeout=120.0)
                assert rec["state"] == "completed", (s, rec)
                assert rec["digest"] == goldens[s], (
                    f"seed {s}: digest drifted across the restart")

            status = client.status()
            assert status["completed"] == 8   # zero duplicate runs
            assert status["failed"] == 0
        finally:
            client.close()
            for p in (proc, restarted):
                if p is not None and p.poll() is None:
                    p.kill()
                    p.wait(timeout=20.0)
        _no_strays(state)


class TestDaemonSigtermDrain:
    def test_drain_closes_ledger_cleanly(self, tmp_path, goldens):
        state = tmp_path / "state"
        addr_file = tmp_path / "addr"
        proc, addr = _spawn_daemon(state, addr_file)
        try:
            with ServeClient(addr, reconnect=False) as client:
                jids = [client.submit("navp-2d-dsc", g=2, seed=s, ab=4,
                                      workers=1) for s in (0, 1)]
                for s, jid in zip((0, 1), jids):
                    rec = client.wait(jid, timeout=90.0)
                    assert rec["state"] == "completed"
                    assert rec["digest"] == goldens[s]
            os.kill(proc.pid, signal.SIGTERM)
            assert _await_exit(proc, timeout=60.0) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=20.0)
        _no_strays(state)
        replay = replay_ledger(str(state / "wal"))
        assert replay.clean_close is True     # drain flushed + marked
        assert replay.torn_records == 0
        assert len(replay.jobs) == 2
        assert all(j.terminal for j in replay.jobs.values())

    def test_sigterm_preserves_pending_for_next_session(self, tmp_path):
        """Drain mode finishes running jobs but *preserves* queued ones
        — they are already durable, and the next session re-admits
        them instead of failing them."""
        state = tmp_path / "state"
        addr_file = tmp_path / "addr"
        proc, addr = _spawn_daemon(state, addr_file, pool=1)
        restarted = None
        try:
            with ServeClient(addr) as client:
                jids = [client.submit("navp-2d-dsc", g=2, seed=s, ab=4,
                                      workers=1, idempotency_key=f"p{s}")
                        for s in range(4)]
                os.kill(proc.pid, signal.SIGTERM)   # most still queued
                assert _await_exit(proc, timeout=90.0) == 0

                restarted, _ = _spawn_daemon(state, addr_file,
                                             port=addr[1], pool=1)
                for jid in jids:
                    rec = client.wait(jid, timeout=120.0)
                    assert rec["state"] == "completed", rec
                status = client.status()
                assert status["failed"] == 0      # nothing cancelled
                assert status["completed"] == 4
        finally:
            for p in (proc, restarted):
                if p is not None and p.poll() is None:
                    p.kill()
                    p.wait(timeout=20.0)
        _no_strays(state)
