"""The affine dependence engine: forms, distance vectors, disjointness."""

import pytest

from repro.analysis.affine import Affine, affine_of
from repro.analysis.distance import dependence_between, keys_never_equal
from repro.navp import ir

V = ir.Var
C = ir.Const


def add(a, b):
    return ir.Bin("+", a, b)


def sub(a, b):
    return ir.Bin("-", a, b)


def mul(a, b):
    return ir.Bin("*", a, b)


def mod(a, b):
    return ir.Bin("%", a, b)


class TestAffineOf:
    def test_const_and_var(self):
        assert affine_of(C(7)) == Affine((), 7)
        assert affine_of(V("i")) == Affine((("i", 1),), 0)

    def test_linear_combination(self):
        form = affine_of(add(mul(C(2), V("i")), sub(V("j"), C(3))))
        assert form.coeff("i") == 2
        assert form.coeff("j") == 1
        assert form.const == -3

    def test_syntactic_variants_normalize(self):
        # (1+i)-1 and i are the same form: what key equality cannot see
        assert affine_of(sub(add(C(1), V("i")), C(1))) \
            == affine_of(V("i"))

    def test_cancelling_terms_drop_out(self):
        assert affine_of(sub(V("i"), V("i"))) == Affine((), 0)

    def test_nonlinear_rejected(self):
        assert affine_of(mul(V("i"), V("j"))) is None
        assert affine_of(mod(V("i"), V("m"))) is None

    def test_bool_consts_rejected(self):
        assert affine_of(C(True)) is None


class TestDependenceBetween:
    def test_identical_keys_pin_distance_zero(self):
        vec = dependence_between((V("i"),), (V("i"),), "i")
        assert (vec.distance, vec.direction, vec.exact) == (0, "=", True)
        assert not vec.carried

    def test_offset_normalization_is_distance_zero(self):
        # X[(1+i)-1] vs X[i]: the good-affine-offset corpus case
        vec = dependence_between((sub(add(C(1), V("i")), C(1)),),
                                 (V("i"),), "i")
        assert vec.distance == 0 and not vec.carried

    def test_shifted_key_pins_forward_distance(self):
        # write bottom[r], read bottom[r-1]: the wavefront R6 shape
        vec = dependence_between((V("r"),), (sub(V("r"), C(1)),), "r")
        assert (vec.distance, vec.direction) == (1, "<")
        assert vec.carried and vec.exact

    def test_gcd_proves_evens_meet_no_odds(self):
        assert dependence_between((mul(C(2), V("i")),),
                                  (add(mul(C(2), V("i")), C(1)),),
                                  "i") is None

    def test_coupled_subscripts_infeasible(self):
        # X[i+1, i] vs X[i, i]: dim pins +1 and 0 — contradiction
        assert dependence_between((add(V("i"), C(1)), V("i")),
                                  (V("i"), V("i")), "i") is None

    def test_scaled_read_stays_conservative(self):
        # X[2i] write vs X[i] read: feasible at varying distances
        vec = dependence_between((mul(C(2), V("i")),), (V("i"),), "i")
        assert vec.direction == "*" and not vec.exact

    def test_nonaffine_key_stays_conservative(self):
        vec = dependence_between((mod(V("i"), V("m")),),
                                 (mod(V("i"), V("m")),), "i")
        assert vec.direction == "*" and not vec.exact

    def test_arity_mismatch_stays_conservative(self):
        vec = dependence_between((V("i"),), (V("i"), C(0)), "i")
        assert vec.direction == "*"

    def test_bound_discards_out_of_range_distance(self):
        # distance +5 cannot happen inside a 4-iteration loop
        assert dependence_between((V("i"),), (sub(V("i"), C(5)),),
                                  "i", bound=4) is None

    def test_fixed_symbol_cancels(self):
        # X[i+k] vs X[i+k] with k a parameter: still distance 0
        vec = dependence_between((add(V("i"), V("k")),),
                                 (add(V("i"), V("k")),), "i")
        assert vec.distance == 0

    def test_free_symbol_does_not_cancel(self):
        # the same syntactic key, but j takes independent values at
        # each access (an inner-loop variable): no pin survives
        vec = dependence_between((add(V("i"), V("j")),),
                                 (add(V("i"), V("j")),), "i",
                                 free_vars=frozenset({"j"}))
        assert vec.carried and vec.direction == "*"


class TestModularSchedules:
    """The congruence extension that legalizes phase-shifted tours."""

    def test_identical_schedule_key_pins_zero_within_bound(self):
        # C[mi, (2-mi+mj) % 3] against itself over mj, trip count 3:
        # d ≡ 0 (mod 3) and |d| < 3 leaves only d = 0
        key = (V("mi"), mod(add(sub(C(2), V("mi")), V("mj")), C(3)))
        vec = dependence_between(key, key, "mj", bound=3)
        assert (vec.distance, vec.carried) == (0, False)

    def test_without_bound_only_the_congruence_is_known(self):
        key = (mod(V("i"), C(4)),)
        vec = dependence_between(key, key, "i")
        assert vec.direction == "*" and "modulo 4" in vec.reason

    def test_congruence_against_larger_bound_is_inexact(self):
        # trip count 8 admits d in {-4, 0, 4}: carried, not pinned
        key = (mod(V("i"), C(4)),)
        vec = dependence_between(key, key, "i", bound=8)
        assert vec.distance is None and vec.carried

    def test_mixed_moduli_stay_conservative(self):
        vec = dependence_between((mod(V("i"), C(3)),),
                                 (mod(V("i"), C(4)),), "i")
        assert vec.direction == "*"

    def test_congruence_with_unreachable_residue_is_independent(self):
        # X[(2i) % 4] against X[(2i+1) % 4]: the residues differ in
        # parity, so no iteration pair can collide
        vec = dependence_between((mod(mul(C(2), V("i")), C(4)),),
                                 (mod(add(mul(C(2), V("i")), C(1)),
                                      C(4)),), "i")
        assert vec is None


class TestKeysNeverEqual:
    def test_distinct_constants_disjoint(self):
        assert keys_never_equal((C(0),), (C(1),))

    def test_same_variable_not_disjoint_across_threads(self):
        # Var("k") on each side belongs to a different messenger: the
        # cross-thread test must not assume they are equal
        assert not keys_never_equal((add(V("k"), C(1)),),
                                    (add(C(1), V("k")),))

    def test_gcd_obstruction_disjoint(self):
        assert keys_never_equal((mul(C(2), V("i")),),
                                (add(mul(C(2), V("j")), C(1)),))

    def test_nonaffine_not_disjoint(self):
        assert not keys_never_equal((mod(V("i"), V("m")),), (C(0),))
