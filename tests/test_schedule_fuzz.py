"""Schedule fuzzing (fabric.fuzz) and its cross-validation contract.

A perturbation seed permutes same-virtual-time event order and nothing
else, so: the same seed must reproduce the same run bit-for-bit; the
golden pipelines must be invariant across seeds (all 98 pinned table
cells included); and fuzzing the racy corpus must reproduce each
seeded race dynamically without ever observing one the static analyzer
failed to predict (``dynamic ⊆ static``).
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.fabric.desim import perturbed
from repro.fabric.fuzz import fuzz_corpus, fuzz_golden_suites
from repro.machine import FAST_TEST_MACHINE
from repro.matmul import MatmulCase
from repro.matmul.navp1d import run_pipelined_1d
from repro.perfmodel import tables

GOLDEN_PATH = Path(__file__).parent / "goldens" / "table_times.json"

_BUILDERS = {
    "table1": tables.build_table1,
    "table2": tables.build_table2,
    "table3": tables.build_table3,
    "table4": tables.build_table4,
}


def test_same_seed_reproduces_the_same_schedule():
    case = MatmulCase(n=12, ab=4)
    runs = []
    for _ in range(2):
        with perturbed(7):
            runs.append(run_pipelined_1d(case, 3,
                                         machine=FAST_TEST_MACHINE,
                                         trace=False))
    assert np.array_equal(runs[0].c, runs[1].c)
    assert runs[0].time == runs[1].time


def test_golden_suites_schedule_invariant():
    for check in fuzz_golden_suites(g=3, seeds=(0, 1, 2)):
        assert check.ok, check.describe()


def test_corpus_cross_validation():
    for result in fuzz_corpus(seeds=range(10)):
        assert result.reproduced, result.describe()
        assert not result.unpredicted, result.describe()


@pytest.mark.parametrize("table", sorted(_BUILDERS))
def test_table_goldens_bit_exact_under_fuzzed_schedule(table):
    # the strongest determinism statement the repo can make: every
    # pinned model time survives a shuffled event schedule unchanged
    recorded = json.loads(GOLDEN_PATH.read_text())[table]
    with perturbed(3):
        comparison = _BUILDERS[table]()
    seen = {}
    for row in comparison.rows:
        prefix = f"n{row.n}/ab{row.ab}"
        seen[f"{prefix}/sequential"] = row.seq_model.hex()
        for variant, cell in row.cells.items():
            seen[f"{prefix}/{variant}"] = cell.model_time.hex()
    assert seen == recorded


def test_cli_fuzz_schedules_smoke(capsys):
    assert main(["fuzz-schedules", "--smoke"]) == 0
    assert "all schedule-fuzzing checks passed" in capsys.readouterr().out
