"""Wait/signal protocol checking over injection closures."""

from repro.analysis.lint import seed_paper_programs
from repro.analysis.protocol import (
    analyze_protocol,
    inject_closure,
    protocol_diagnostics,
)
from repro.navp import ir

V = ir.Var
C = ir.Const


def _registry(*programs):
    return {p.name: p for p in programs}


class TestClosure:
    def test_closure_follows_injects_transitively(self):
        leaf = ir.Program("pr-leaf", (ir.SignalStmt("E"),))
        mid = ir.Program("pr-mid", (ir.InjectStmt("pr-leaf"),))
        root = ir.Program("pr-root", (ir.InjectStmt("pr-mid"),
                                      ir.InjectStmt("pr-ghost")))
        programs, missing = inject_closure(
            root, _registry(root, mid, leaf))
        assert [p.name for p in programs] == ["pr-root", "pr-mid",
                                              "pr-leaf"]
        assert missing == {"pr-ghost"}

    def test_missing_program_warned(self):
        root = ir.Program("pr-root2", (ir.InjectStmt("pr-nowhere"),))
        report = protocol_diagnostics(root, _registry(root))
        assert [(d.severity, d.category) for d in report] \
            == [("warning", "unknown-program")]


class TestUnmatchedWait:
    def test_deadlocked_wait_is_an_error(self):
        waiter = ir.Program("pr-waiter", (ir.WaitStmt("go"),))
        root = ir.Program("pr-spawn", (ir.InjectStmt("pr-waiter"),))
        report = protocol_diagnostics(root, _registry(root, waiter))
        errs = report.errors
        assert [d.category for d in errs] == ["unmatched-wait"]
        assert errs[0].program == "pr-waiter"
        assert "block forever" in errs[0].message

    def test_signal_elsewhere_in_closure_satisfies_it(self):
        waiter = ir.Program("pr-waiter2", (ir.WaitStmt("go"),))
        root = ir.Program("pr-spawn2", (ir.SignalStmt("go"),
                                        ir.InjectStmt("pr-waiter2")))
        report = protocol_diagnostics(root, _registry(root, waiter))
        assert report.ok

    def test_lone_program_downgraded_to_info(self):
        orphan = ir.Program("pr-orphan", (ir.WaitStmt("EP"),))
        report = protocol_diagnostics(orphan, _registry(orphan))
        assert [d.severity for d in report] == ["info"]
        assert report.ok


class TestSignalCycle:
    def _cycle_suite(self, with_source=False):
        w1 = ir.Program("pr-w1", (ir.WaitStmt("A"), ir.SignalStmt("B")))
        w2 = ir.Program("pr-w2", (ir.WaitStmt("B"), ir.SignalStmt("A")))
        body = [ir.InjectStmt("pr-w1"), ir.InjectStmt("pr-w2")]
        if with_source:
            body.insert(0, ir.SignalStmt("A"))
        root = ir.Program("pr-cyc", tuple(body))
        return root, _registry(root, w1, w2)

    def test_guarded_cycle_warned(self):
        root, registry = self._cycle_suite()
        report = protocol_diagnostics(root, registry)
        cats = [d.category for d in report]
        assert "signal-cycle" in cats
        assert all(d.severity == "warning" for d in report)

    def test_unguarded_signal_breaks_the_cycle(self):
        root, registry = self._cycle_suite(with_source=True)
        report = protocol_diagnostics(root, registry)
        assert "signal-cycle" not in [d.category for d in report]

    def test_sourced_events_computed(self):
        root, registry = self._cycle_suite(with_source=True)
        analysis = analyze_protocol(root, registry)
        assert analysis.sourced == frozenset({"A"})
        assert analysis.events == frozenset({"A", "B"})


class TestPaperSuites:
    def test_fig13_slot_handshake_is_a_cycle_warning(self):
        seed_paper_programs(3)
        report = protocol_diagnostics(ir.get_program("fig13-main-3"))
        assert report.errors == []
        assert "signal-cycle" in [d.category for d in report.warnings]

    def test_fig11_and_fig15_are_clean(self):
        seed_paper_programs(3)
        for name in ("fig11-main-3", "fig15-main-3"):
            report = protocol_diagnostics(ir.get_program(name))
            assert report.ok, f"{name}: {report.render()}"
