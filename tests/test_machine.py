"""Machine spec, calibration, paging model, and cost arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.machine import (
    FAST_TEST_MACHINE,
    MODERN_CLUSTER,
    SUN_BLADE_100,
    MachineSpec,
    MemorySpec,
    NetworkSpec,
    PagingModel,
    matmul_working_set,
)


class TestCalibration:
    """The preset must reproduce the paper's own sequential anchors."""

    def test_flop_rate_from_table1(self):
        t = SUN_BLADE_100.flops_time(2 * 1536**3)
        assert t == pytest.approx(65.44, rel=1e-12)

    @pytest.mark.parametrize("n,paper", [(2304, 219.71), (3072, 520.30)])
    def test_cross_check_unpaged_rows(self, n, paper):
        t = SUN_BLADE_100.flops_time(2 * n**3)
        assert t == pytest.approx(paper, rel=0.01)

    def test_element_size_matches_memory_statement(self):
        """3 * 9216^2 * elem ~ 'about 1GB' (Section 5)."""
        ws = matmul_working_set(9216, SUN_BLADE_100.elem_size)
        assert 0.9e9 < ws < 1.15e9

    def test_network_near_nominal(self):
        net = SUN_BLADE_100.network
        assert 0.8 * 12.5e6 <= net.bandwidth_Bps <= 12.5e6


class TestModernPreset:
    def test_orders_of_magnitude(self):
        assert MODERN_CLUSTER.flop_rate / SUN_BLADE_100.flop_rate > 100
        assert (MODERN_CLUSTER.network.bandwidth_Bps
                / SUN_BLADE_100.network.bandwidth_Bps) > 50

    def test_compute_comm_ratio_comparable(self):
        """Both generations moved together; the ratio changed < 10x,
        which is why the paper's orderings transport (bench ablation)."""

        def ratio(machine):
            return machine.flop_rate / machine.network.bandwidth_Bps

        assert 0.1 < ratio(MODERN_CLUSTER) / ratio(SUN_BLADE_100) < 10


class TestNetworkSpec:
    def test_message_time(self):
        net = NetworkSpec(bandwidth_Bps=1e6, latency_s=0.001)
        assert net.message_time(1000) == pytest.approx(0.002)

    def test_wire_time_zero_bytes(self):
        assert NetworkSpec().wire_time(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkSpec().wire_time(-1)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            NetworkSpec(bandwidth_Bps=0)
        with pytest.raises(ConfigurationError):
            NetworkSpec(latency_s=-1)
        with pytest.raises(ConfigurationError):
            NetworkSpec(small_message_bytes=-1)

    def test_small_message_classification(self):
        net = NetworkSpec(small_message_bytes=2048)
        assert net.is_small(512)
        assert net.is_small(2048)
        assert not net.is_small(2049)


class TestMachineSpec:
    def test_gemm_flops(self):
        assert SUN_BLADE_100.gemm_flops(2, 3, 4) == 48

    def test_gemm_time_with_cache_factor(self):
        base = FAST_TEST_MACHINE.gemm_time(10, 10, 10)
        worse = FAST_TEST_MACHINE.gemm_time(10, 10, 10, cache_factor=1.04)
        assert worse == pytest.approx(base * 1.04)

    def test_matrix_bytes(self):
        assert SUN_BLADE_100.matrix_bytes(10) == 400
        assert SUN_BLADE_100.matrix_bytes(10, 20) == 800

    def test_negative_flops_rejected(self):
        with pytest.raises(ConfigurationError):
            SUN_BLADE_100.flops_time(-1)

    def test_invalid_spec(self):
        with pytest.raises(ConfigurationError):
            MachineSpec(flop_rate=0)
        with pytest.raises(ConfigurationError):
            MachineSpec(elem_size=0)

    def test_with_changes(self):
        faster = SUN_BLADE_100.with_(flop_rate=2e8)
        assert faster.flop_rate == 2e8
        assert faster.network == SUN_BLADE_100.network
        assert SUN_BLADE_100.flop_rate != 2e8  # original untouched


class TestMemorySpec:
    def test_available(self):
        mem = MemorySpec(physical_bytes=100, os_reserved_bytes=30)
        assert mem.available_bytes == 70

    def test_reservation_must_fit(self):
        with pytest.raises(ConfigurationError):
            MemorySpec(physical_bytes=100, os_reserved_bytes=100)


class TestPagingModel:
    def test_no_paging_below_memory(self):
        model = PagingModel()
        assert model.thrash_factor(0) == 1.0
        assert model.thrash_factor(model.memory.available_bytes) == 1.0

    def test_paper_anchor_9216(self):
        """The measured/fitted ratio of Table 2 must be reproduced."""
        model = PagingModel(SUN_BLADE_100.memory)
        ws = matmul_working_set(9216, SUN_BLADE_100.elem_size)
        assert model.thrash_factor(ws) == pytest.approx(2.62, rel=0.02)

    def test_paper_anchor_6144(self):
        model = PagingModel(SUN_BLADE_100.memory)
        ws = matmul_working_set(6144, SUN_BLADE_100.elem_size)
        assert model.thrash_factor(ws) == pytest.approx(
            5055.93 / 4268.16, rel=0.02)

    @given(st.integers(0, 4 * 2**30), st.integers(0, 4 * 2**30))
    def test_monotone(self, ws1, ws2):
        model = PagingModel()
        lo, hi = sorted((ws1, ws2))
        assert model.thrash_factor(lo) <= model.thrash_factor(hi) + 1e-12

    @given(st.integers(0, 8 * 2**30))
    def test_at_least_one(self, ws):
        assert PagingModel().thrash_factor(ws) >= 1.0

    def test_extrapolation_beyond_last_anchor(self):
        model = PagingModel()
        big = model.thrash_factor(8 * 2**30)
        huge = model.thrash_factor(16 * 2**30)
        assert huge > big > 2.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PagingModel().thrash_factor(-1)

    def test_fits(self):
        model = PagingModel()
        assert model.fits(model.memory.available_bytes)
        assert not model.fits(model.memory.available_bytes + 1)

    def test_bad_anchors(self):
        with pytest.raises(ValueError):
            PagingModel(anchors=((1.0, 1.0),))
        with pytest.raises(ValueError):
            PagingModel(anchors=((1.0, 0.5), (2.0, 1.0)))

    def test_working_set_formula(self):
        assert matmul_working_set(100, 4) == 3 * 100 * 100 * 4
        assert matmul_working_set(100, 8, matrices=2) == 2 * 100 * 100 * 8
