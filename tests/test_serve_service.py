"""End-to-end coverage of the serve daemon over real TCP + processes.

The acceptance bar for the subsystem: a daemon completes 100
concurrent submissions across two tenants with bit-exact golden
outputs (sim-fabric digests — cross-fabric parity is established),
survives a worker SIGKILL mid-stream via checkpoint/restart, enforces
admission control, resizes its pool mid-stream, and shuts down
without orphaning a single process.

Scale stays modest per job (g=2..3, tiny blocks): the point is the
*service* machinery, not the numerics.
"""

import hashlib
import json
import multiprocessing as mp
import time
from contextlib import contextmanager

import pytest

from repro.cli import main
from repro.errors import AdmissionError, ServeError
from repro.matmul import run_ir2d_suite
from repro.serve import ServeClient, ServeService, build_job_suite


def _sim_digest(program, g, seed, ab) -> str:
    """The golden: the same (program, shape, seed) run on virtual
    time. Every fabric reproduces it bit-exactly."""
    suite, _a, _b = build_job_suite(program, g, seed, ab)
    c, _res = run_ir2d_suite(suite, "sim")
    return hashlib.sha256(c.tobytes()).hexdigest()


def _assert_no_children(deadline_s: float = 15.0) -> None:
    end = time.monotonic() + deadline_s
    while time.monotonic() < end:
        if not mp.active_children():
            return
        time.sleep(0.05)
    raise AssertionError(
        f"orphaned process(es) after daemon shutdown: "
        f"{[k.name for k in mp.active_children()]}")


@contextmanager
def serving(**kw):
    kw.setdefault("heartbeat_s", 0.02)
    kw.setdefault("job_timeout_s", 60.0)
    service = ServeService(**kw)
    service.start()
    try:
        yield service
    finally:
        service.shutdown(drain=False)
        _assert_no_children()


@pytest.fixture(scope="module")
def goldens():
    shapes = ([("navp-2d-dsc", 2, s, 4) for s in (0, 1, 2)]
              + [("navp-2d-pipeline", 2, s, 4) for s in (3, 4, 5)])
    return {shape: _sim_digest(*shape) for shape in shapes}


class TestHundredJobsTwoTenants:
    def test_converges_bit_exact_through_chaos(self, goldens):
        """100 submissions, 2 tenants, one SIGKILL mid-stream: every
        job converges to its sim-fabric golden digest."""
        shapes = list(goldens)
        with serving(pool_size=6, chaos=True, max_depth=128,
                     tenant_cap=64) as service:
            with ServeClient(service.addr) as client:
                submitted = []   # (jid, shape)
                for i in range(100):
                    program, g, seed, ab = shapes[i % len(shapes)]
                    jid = client.submit(
                        program, g=g, seed=seed, ab=ab, workers=2,
                        tenant=("alice" if i % 2 else "bob"),
                        priority=i % 3)
                    submitted.append((jid, (program, g, seed, ab)))
                # chaos mid-stream: SIGKILL a (preferably leased)
                # worker while the queue is still deep
                assert client.status()["queue"]["depth"] > 0
                client.kill_worker()
                records = {jid: client.wait(jid, timeout=90.0)
                           for jid, _shape in submitted}
                status = client.status()
            for jid, shape in submitted:
                record = records[jid]
                assert record["state"] == "completed", record
                assert record["ok"] is True
                assert record["digest"] == goldens[shape], (
                    f"{jid} {shape}: digest drifted")
            assert status["completed"] == 100
            assert status["failed"] == 0
            assert status["pool"]["respawns"] >= 1   # the kill was real
            assert set(status["tenants_running"]) <= {"alice", "bob"}


class TestSigkillRecovery:
    def test_checkpoint_restart_completes_the_job(self):
        """Kill the worker leased to a running job; the job must
        complete *recovered* — restored from its checkpoint and
        replayed, not restarted from scratch silently. Retries the
        race where the job finishes before the kill lands."""
        golden = _sim_digest("navp-2d-dsc", 3, 42, 6)
        with serving(pool_size=3, chaos=True) as service:
            with ServeClient(service.addr) as client:
                for _attempt in range(8):
                    jid = client.submit("navp-2d-dsc", g=3, seed=42,
                                        ab=6, workers=3)
                    # find a worker actually leased to this job
                    wid = None
                    for _spin in range(200):
                        leases = client.status()["pool"]["leases"]
                        wids = [w for w, j in leases.items() if j == jid]
                        if wids:
                            wid = wids[0]
                            break
                    if wid is not None:
                        try:
                            client.kill_worker(wid)
                        except ServeError:
                            pass   # finished + respawned under us
                    record = client.wait(jid, timeout=60.0)
                    assert record["state"] == "completed", record
                    assert record["digest"] == golden
                    if record["restarts"] > 0:
                        assert record["recovered"] is True
                        return   # recovery demonstrated
        raise AssertionError(
            "no attempt recovered: every kill raced job completion")


class TestAdmissionControl:
    def test_queue_depth_bound(self):
        with serving(pool_size=1, max_depth=1, tenant_cap=50,
                     mc_admission=False) as service:
            with ServeClient(service.addr) as client:
                first = client.submit("navp-2d-dsc", workers=1)
                client.submit("navp-2d-dsc", workers=1)   # pending
                with pytest.raises(AdmissionError, match="queue full"):
                    client.submit("navp-2d-dsc", workers=1)
                client.wait(first, timeout=30.0)

    def test_tenant_cap(self):
        with serving(pool_size=1, max_depth=50, tenant_cap=2,
                     mc_admission=False) as service:
            with ServeClient(service.addr) as client:
                client.submit("navp-2d-dsc", workers=1, tenant="a")
                client.submit("navp-2d-dsc", workers=1, tenant="a")
                with pytest.raises(AdmissionError,
                                   match="in-flight cap"):
                    client.submit("navp-2d-dsc", workers=1, tenant="a")
                # another tenant is unaffected
                client.submit("navp-2d-dsc", workers=1, tenant="b")

    def test_unknown_program_and_oversized_lease(self):
        with serving(pool_size=2, mc_admission=False) as service:
            with ServeClient(service.addr) as client:
                with pytest.raises(AdmissionError,
                                   match="unknown program"):
                    client.submit("nonesuch")
                with pytest.raises(AdmissionError, match="pool has 2"):
                    client.submit("navp-2d-dsc", g=2, workers=4)

    def test_static_deadlock_rejected_at_admission(self):
        """The Figure 15 g=3 protocol deadlock (PR 8's find) is
        refused before it can burn a lease on a timeout."""
        with serving(pool_size=2) as service:
            with ServeClient(service.addr) as client:
                with pytest.raises(AdmissionError,
                                   match="statically rejected"):
                    client.submit("navp-2d-phase", g=3, ab=2)
                assert client.status()["rejected"] == 1


class TestElasticity:
    def test_resize_unlocks_wider_leases(self):
        with serving(pool_size=2, mc_admission=False) as service:
            with ServeClient(service.addr) as client:
                with pytest.raises(AdmissionError):
                    client.submit("navp-2d-dsc", g=2, workers=4)
                assert client.resize(4) == 4
                jid = client.submit("navp-2d-dsc", g=2, workers=4)
                record = client.wait(jid, timeout=30.0)
                assert record["state"] == "completed"
                assert client.resize(2) == 2   # shrink back, idle pool


class TestProtocolEdges:
    def test_unknown_job_and_programs_verb(self):
        with serving(pool_size=1, mc_admission=False) as service:
            with ServeClient(service.addr) as client:
                assert client.programs() == [
                    "mpi-gentleman", "navp-2d-dsc", "navp-2d-phase",
                    "navp-2d-pipeline"]
                with pytest.raises(ServeError, match="unknown job"):
                    client.status("j999")
                with pytest.raises(ServeError, match="unknown job"):
                    client.wait("j999", timeout=0.1)

    def test_chaos_verb_gated(self):
        with serving(pool_size=1, chaos=False,
                     mc_admission=False) as service:
            with ServeClient(service.addr) as client:
                with pytest.raises(ServeError, match="chaos"):
                    client.kill_worker()

    def test_shutdown_cancels_pending(self):
        with serving(pool_size=1, mc_admission=False) as service:
            with ServeClient(service.addr) as client:
                jids = [client.submit("navp-2d-dsc", workers=1)
                        for _ in range(3)]
                summary = client.shutdown(drain=True)
            assert summary["cancelled"] >= 1
            states = {service.jobs[j].state for j in jids}
            assert states <= {"completed", "failed"}
            cancelled = [j for j in jids
                         if service.jobs[j].reason
                         == "cancelled at shutdown"]
            assert len(cancelled) == summary["cancelled"]
        _assert_no_children()


class TestCLI:
    def test_variants_json_matches_the_catalog(self, capsys):
        from repro.serve.catalog import program_names
        assert main(["variants", "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        serveable = {v["name"] for v in out["variants"]
                     if v["serveable"]}
        assert serveable == set(program_names())
        for v in out["variants"]:
            assert v["fabrics"] == (
                ["sim", "thread", "process", "socket"]
                if v["ir"] else ["sim"])

    def test_submit_without_addr_is_usage_error(self, capsys):
        assert main(["submit", "navp-2d-dsc"]) == 2
        assert "--addr" in capsys.readouterr().err

    def test_run_fabric_validates_against_catalog(self, capsys):
        assert main(["run", "doall-naive", "--fabric", "socket"]) == 2
        assert "IR form" in capsys.readouterr().err
