"""Space-time rendering and layout descriptions."""

from repro.fabric.trace import TraceLog
from repro.viz import (
    actor_labels,
    describe_1d_origin,
    describe_1d_phase,
    describe_2d_antidiagonal,
    describe_2d_natural,
    render_figure,
    render_spacetime,
)


def sample_trace():
    log = TraceLog()
    log.record(t0=0.0, t1=2.0, place=0, actor="w0", kind="compute")
    log.record(t0=2.0, t1=4.0, place=1, actor="w0", kind="compute")
    log.record(t0=2.0, t1=4.0, place=0, actor="w1", kind="compute")
    return log


class TestSpacetime:
    def test_labels_in_first_compute_order(self):
        labels = actor_labels(sample_trace())
        assert labels == {"w0": "0", "w1": "1"}

    def test_grid_contents(self):
        out = render_spacetime(sample_trace(), 2, buckets=4)
        lines = out.splitlines()
        assert lines[0].split() == ["time", "PE0", "PE1"]
        # first half: w0 on PE0, PE1 idle
        assert "0" in lines[1] and "." in lines[1]
        # second half: w1 on PE0, w0 on PE1 (skip the time column)
        assert lines[3].split()[1:] == ["1", "0"]
        assert "legend" in lines[-1]

    def test_title(self):
        out = render_spacetime(sample_trace(), 2, buckets=2, title="T")
        assert out.splitlines()[0] == "T"

    def test_empty_trace(self):
        out = render_spacetime(TraceLog(), 2, buckets=4)
        assert "(no activity)" in out

    def test_many_actors_wrap_symbols(self):
        log = TraceLog()
        for i in range(70):
            log.record(t0=float(i), t1=float(i + 1), place=0,
                       actor=f"m{i}", kind="compute")
        labels = actor_labels(log)
        assert len(labels) == 70  # labels repeat but all actors mapped


class TestLayoutDescriptions:
    def test_1d_origin(self):
        placement = describe_1d_origin(3)
        assert "A (entire matrix)" in placement[(0,)]
        assert any("B(*,2)" in item for item in placement[(2,)])

    def test_1d_phase_reverse_order(self):
        placement = describe_1d_phase(3)
        assert any("A(0,*)" in item for item in placement[(2,)])
        assert any("A(2,*)" in item for item in placement[(0,)])

    def test_2d_antidiagonal(self):
        placement = describe_2d_antidiagonal(3)
        assert any("A(2,*)" in item for item in placement[(2, 0)])
        assert any("B(*,0)" in item for item in placement[(2, 0)])
        assert all(any("C(" in item for item in items)
                   for items in placement.values())

    def test_2d_natural(self):
        placement = describe_2d_natural(2)
        assert placement[(1, 0)] == ["A(1,0)", "B(1,0)", "C(1,0)=0"]

    def test_render_figure(self):
        out = render_figure("Figure X", describe_1d_origin(2))
        assert out.splitlines()[0] == "Figure X"
        assert "node(0,)" in out
