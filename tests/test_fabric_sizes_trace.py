"""Payload size modeling and trace bookkeeping."""

import numpy as np
import pytest

from repro.fabric.sizes import agent_nbytes, codec_nbytes, model_nbytes
from repro.fabric.trace import TraceEvent, TraceLog
from repro.machine import SUN_BLADE_100
from repro.navp import Messenger
from repro.util.shadow import ShadowArray


class TestModelNbytes:
    def test_ndarray_uses_model_element_size(self):
        """Costs follow the paper's 4-byte elements even for float64."""
        a = np.zeros((10, 10), dtype=np.float64)
        assert model_nbytes(a, SUN_BLADE_100) == 400

    def test_shadow_matches_real(self):
        real = np.zeros((7, 9), dtype=np.float64)
        shadow = ShadowArray((7, 9), np.float32)
        assert model_nbytes(real, SUN_BLADE_100) == \
            model_nbytes(shadow, SUN_BLADE_100)

    def test_none_is_free(self):
        assert model_nbytes(None, SUN_BLADE_100) == 0

    def test_containers_sum(self):
        a = np.zeros(10)
        assert model_nbytes([a, a], SUN_BLADE_100) == 80
        assert model_nbytes((a,), SUN_BLADE_100) == 40
        assert model_nbytes({"k": a}, SUN_BLADE_100) > 40

    def test_bytes_and_str(self):
        assert model_nbytes(b"abcd", SUN_BLADE_100) == 4
        assert model_nbytes("abcd", SUN_BLADE_100) == 4

    def test_scalars_flat_charge(self):
        assert model_nbytes(7, SUN_BLADE_100) == 16
        assert model_nbytes(3.14, SUN_BLADE_100) == 16

    def test_memoryview_charges_nbytes_not_len(self):
        """Regression: ``len()`` of a non-byte or multi-dimensional
        memoryview is its first-dimension length, which undercharged
        a float64 view by 8x (and a 2-D view by far more)."""
        arr = np.zeros((10, 10), dtype=np.float64)
        assert model_nbytes(memoryview(arr), SUN_BLADE_100) == 800
        flat = memoryview(np.zeros(10, dtype=np.float64))
        assert model_nbytes(flat, SUN_BLADE_100) == 80

    def test_ndarray_view_charges_sliced_elements_only(self):
        base = np.zeros((100, 100), dtype=np.float64)
        view = base[:5]
        assert model_nbytes(view, SUN_BLADE_100) == \
            5 * 100 * SUN_BLADE_100.elem_size


class TestCodecNbytes:
    def test_view_costs_sliced_bytes_not_base(self):
        base = np.zeros((256, 256), dtype=np.float64)
        band = base[:8]  # 16 KiB slice of a 512 KiB base
        cost = codec_nbytes(band)
        assert band.nbytes <= cost < base.nbytes // 8

    def test_matches_wire_framing(self):
        """codec_nbytes is exactly what the socket fabric charges the
        data-movement ledger per hop payload."""
        from repro.fabric import payload

        obj = {"A": np.ones(40_000), "k": 3}
        frame, buffers = payload.encode(obj)
        assert codec_nbytes(obj) == payload.nbytes(frame, buffers)


class _Carrier(Messenger):
    def __init__(self):
        self.mA = np.zeros((4, 100), dtype=np.float64)  # agent: charged
        self.mi = 3                                     # agent: charged
        self._config = np.zeros(10_000)                 # private: free

    def main(self):
        yield self.hop((0,))


class TestAgentNbytes:
    def test_counts_public_attributes_only(self):
        messenger = _Carrier()
        total = agent_nbytes(messenger, SUN_BLADE_100)
        expected = SUN_BLADE_100.hop_state_bytes + 400 * 4 + 16
        assert total == expected


class TestTraceLog:
    def _sample(self):
        log = TraceLog()
        log.record(t0=0.0, t1=1.0, place=0, actor="a", kind="compute")
        log.record(t0=1.0, t1=1.5, place=1, actor="a", kind="hop",
                   src_place=0)
        log.record(t0=0.5, t1=2.0, place=1, actor="b", kind="compute")
        return log

    def test_filters(self):
        log = self._sample()
        assert len(log.of_kind("compute")) == 2
        assert len(log.at_place(1)) == 2
        assert set(log.by_actor()) == {"a", "b"}

    def test_busy_time(self):
        busy = self._sample().busy_time("compute")
        assert busy == {0: 1.0, 1: 1.5}

    def test_first_compute_start(self):
        starts = self._sample().first_compute_start()
        assert starts == {0: 0.0, 1: 0.5}

    def test_makespan(self):
        assert self._sample().makespan() == 2.0
        assert TraceLog().makespan() == 0.0

    def test_disabled_records_nothing(self):
        log = TraceLog(enabled=False)
        log.record(t0=0, t1=1, place=0, actor="x", kind="compute")
        assert len(log) == 0

    def test_event_duration(self):
        event = TraceEvent(t0=1.0, t1=3.5, place=0, actor="x",
                           kind="compute")
        assert event.duration == 2.5

    def test_iteration(self):
        assert len(list(self._sample())) == 3
