"""The extended collective operations of the MPI substrate."""

import operator

import pytest

from repro.fabric import Grid1D, Grid2D
from repro.machine import FAST_TEST_MACHINE
from repro.mpi import run_spmd


def chain(p):
    return [(j,) for j in range(p)]


class TestGatherScatter:
    def test_gather_collects_everything(self):
        def program(comm):
            j = comm.coord[0]
            out = yield from comm.gather(chain(4), (0,), 1, j * j)
            comm.vars["out"] = out

        result = run_spmd(Grid1D(4), program, machine=FAST_TEST_MACHINE)
        assert result.places[(0,)]["out"] == {
            (0,): 0, (1,): 1, (2,): 4, (3,): 9}
        assert result.places[(2,)]["out"] is None

    def test_scatter_distributes(self):
        def program(comm):
            payloads = None
            if comm.coord == (1,):
                payloads = {(j,): f"item{j}" for j in range(3)}
            mine = yield from comm.scatter(chain(3), (1,), 2, payloads)
            comm.vars["mine"] = mine

        result = run_spmd(Grid1D(3), program, machine=FAST_TEST_MACHINE)
        for j in range(3):
            assert result.places[(j,)]["mine"] == f"item{j}"

    def test_scatter_validates_payloads(self):
        def program(comm):
            yield from comm.scatter(chain(2), (0,), 3,
                                    {(0,): 1} if comm.coord == (0,)
                                    else None)

        with pytest.raises(Exception, match="one payload per"):
            run_spmd(Grid1D(2), program, machine=FAST_TEST_MACHINE)

    def test_gather_root_membership(self):
        def program(comm):
            yield from comm.gather([(0,)], (1,), 4, 0)

        with pytest.raises(Exception, match="root"):
            run_spmd(Grid1D(2), program, machine=FAST_TEST_MACHINE)


class TestReduce:
    def test_reduce_sum(self):
        def program(comm):
            j = comm.coord[0]
            total = yield from comm.reduce(chain(4), (0,), 5, j + 1,
                                           operator.add)
            comm.vars["total"] = total

        result = run_spmd(Grid1D(4), program, machine=FAST_TEST_MACHINE)
        assert result.places[(0,)]["total"] == 10
        assert result.places[(3,)]["total"] is None

    def test_allreduce_everyone_gets_it(self):
        def program(comm):
            j = comm.coord[0]
            best = yield from comm.allreduce(chain(5), 6, (j * 7) % 5, max)
            comm.vars["best"] = best

        result = run_spmd(Grid1D(5), program, machine=FAST_TEST_MACHINE)
        for j in range(5):
            assert result.places[(j,)]["best"] == 4

    def test_allreduce_on_grid_rows(self):
        """Independent allreduces per grid row must not interfere."""

        def program(comm):
            i, j = comm.coord
            row = [(i, jj) for jj in range(3)]
            total = yield from comm.allreduce(row, ("row", i), j,
                                              operator.add)
            comm.vars["total"] = total

        result = run_spmd(Grid2D(2, 3), program, machine=FAST_TEST_MACHINE)
        for i in range(2):
            for j in range(3):
                assert result.places[(i, j)]["total"] == 3


class TestSendrecv:
    def test_ring_rotation(self):
        def program(comm):
            p = comm.size
            j = comm.coord[0]
            got = yield from comm.sendrecv(
                ((j + 1) % p,), ((j - 1) % p,), 7, payload=j)
            comm.vars["got"] = got

        result = run_spmd(Grid1D(4), program, machine=FAST_TEST_MACHINE)
        for j in range(4):
            assert result.places[(j,)]["got"] == (j - 1) % 4

    def test_pairwise_swap(self):
        def program(comm):
            j = comm.coord[0]
            other = (1 - j,)
            got = yield from comm.sendrecv(other, other, 8,
                                           payload=f"from{j}")
            comm.vars["got"] = got

        result = run_spmd(Grid1D(2), program, machine=FAST_TEST_MACHINE)
        assert result.places[(0,)]["got"] == "from1"
        assert result.places[(1,)]["got"] == "from0"
