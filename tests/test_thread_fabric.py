"""ThreadFabric: real-thread execution of the same messenger programs."""

import numpy as np
import pytest

from repro.errors import DeadlockError, FabricError
from repro.fabric import Grid1D, Grid2D, ThreadFabric
from repro.fabric import effects as fx
from repro.navp import Messenger


class _Collector(Messenger):
    def __init__(self, route):
        self.route = route
        self.visited = []

    def main(self):
        for coord in self.route:
            yield self.hop(coord)
            self.visited.append(self.here)
        self.vars["visited"] = list(self.visited)


class TestMigration:
    def test_route_followed(self):
        fabric = ThreadFabric(Grid1D(3))
        fabric.inject((0,), _Collector([(1,), (2,), (0,), (2,)]))
        result = fabric.run()
        assert result.places[(2,)]["visited"] == [(1,), (2,), (0,), (2,)]

    def test_agent_vars_survive_pickling(self):
        """Hops round-trip agent variables through pickle by default."""

        class Carrier(Messenger):
            def __init__(self):
                self.mA = np.arange(12.0).reshape(3, 4)
                self.count = 0

            def main(self):
                for j in range(3):
                    yield self.hop((j,))
                    self.count += 1
                self.vars["mA"] = self.mA
                self.vars["count"] = self.count

        fabric = ThreadFabric(Grid1D(3), pickle_hops=True)
        fabric.inject((0,), Carrier())
        result = fabric.run()
        assert np.array_equal(result.places[(2,)]["mA"],
                              np.arange(12.0).reshape(3, 4))
        assert result.places[(2,)]["count"] == 3
        # the first hop (0 -> 0) stays on its host; two cross hosts
        assert fabric.hop_count == 2
        assert fabric.hop_bytes_total > 0

    def test_unpicklable_agent_var_fails_loudly(self):
        class Bad(Messenger):
            def __init__(self):
                self.mf = lambda: None  # lambdas don't pickle

            def main(self):
                yield self.hop((1,))

        fabric = ThreadFabric(Grid1D(2), pickle_hops=True)
        fabric.inject((0,), Bad())
        with pytest.raises(FabricError):
            fabric.run(timeout=10.0)

    def test_pickle_can_be_disabled(self):
        class Bad(Messenger):
            def __init__(self):
                self.mf = lambda: 1

            def main(self):
                yield self.hop((1,))
                self.vars["ok"] = self.mf()

        fabric = ThreadFabric(Grid1D(2), pickle_hops=False)
        fabric.inject((0,), Bad())
        result = fabric.run()
        assert result.places[(1,)]["ok"] == 1


class TestEventsAndInjection:
    def test_producer_consumer_across_injection(self):
        class Parent(Messenger):
            def main(self):
                yield self.inject(Child())
                yield self.wait_event("done")
                self.vars["got"] = self.vars["value"]

        class Child(Messenger):
            def main(self):
                yield self.hop((1,))
                self.mv = self.vars["data"]
                yield self.hop((0,))
                self.vars["value"] = self.mv * 2
                yield self.signal_event("done")

        fabric = ThreadFabric(Grid1D(2))
        fabric.load((1,), data=21)
        fabric.inject((0,), Parent())
        result = fabric.run()
        assert result.places[(0,)]["got"] == 42

    def test_signal_initial(self):
        class Waiter(Messenger):
            def main(self):
                yield self.wait_event("EC")
                self.vars["done"] = True

        fabric = ThreadFabric(Grid2D(2))
        fabric.signal_initial((1, 1), "EC")
        fabric.inject((1, 1), Waiter())
        result = fabric.run()
        assert result.places[(1, 1)]["done"]

    def test_signal_count(self):
        done = []

        class Waiter(Messenger):
            def main(self):
                yield self.wait_event("E")
                done.append(1)

        class Signaler(Messenger):
            def main(self):
                yield self.signal_event("E", count=3)

        fabric = ThreadFabric(Grid1D(1))
        for _ in range(3):
            fabric.inject((0,), Waiter())
        fabric.inject((0,), Signaler())
        fabric.run()
        assert len(done) == 3

    def test_deadlock_times_out(self):
        class Stuck(Messenger):
            def main(self):
                yield self.wait_event("never")

        fabric = ThreadFabric(Grid1D(1))
        fabric.inject((0,), Stuck())
        with pytest.raises(DeadlockError):
            fabric.run(timeout=0.5)


class TestMessaging:
    def test_send_recv_cross_thread(self):
        class Sender(Messenger):
            def main(self):
                yield self.compute(lambda: None, flops=0)
                yield fx.Send(dst=(1,), tag="m", payload={"k": 1})

        class Receiver(Messenger):
            def main(self):
                msg = yield fx.Recv(src=(0,), tag="m")
                self.vars["got"] = msg.payload

        fabric = ThreadFabric(Grid1D(2))
        fabric.inject((0,), Sender())
        fabric.inject((1,), Receiver())
        result = fabric.run()
        assert result.places[(1,)]["got"] == {"k": 1}

    def test_irecv_wait(self):
        class Sender(Messenger):
            def main(self):
                yield fx.Send(dst=(1,), tag=3, payload="x")

        class Receiver(Messenger):
            def main(self):
                request = yield fx.IRecv(src=(0,), tag=3)
                msg = yield fx.WaitRequest(request=request)
                self.vars["got"] = msg.payload

        fabric = ThreadFabric(Grid1D(2))
        fabric.inject((0,), Sender())
        fabric.inject((1,), Receiver())
        result = fabric.run()
        assert result.places[(1,)]["got"] == "x"

    def test_send_payload_pickled_across_places(self):
        """Cross-place payloads are copies, not shared references."""
        payload = {"list": [1, 2, 3]}

        class Sender(Messenger):
            def main(self):
                yield fx.Send(dst=(1,), tag="p", payload=payload)

        class Receiver(Messenger):
            def main(self):
                msg = yield fx.Recv(tag="p")
                self.vars["got"] = msg.payload

        fabric = ThreadFabric(Grid1D(2), pickle_hops=True)
        fabric.inject((0,), Sender())
        fabric.inject((1,), Receiver())
        result = fabric.run()
        got = result.places[(1,)]["got"]
        assert got == payload
        assert got is not payload
        assert got["list"] is not payload["list"]


class TestErrors:
    def test_exception_reported(self):
        class Bad(Messenger):
            def main(self):
                yield self.compute(lambda: None, flops=0)
                raise KeyError("whoops")

        fabric = ThreadFabric(Grid1D(1))
        fabric.inject((0,), Bad())
        with pytest.raises(FabricError, match="whoops"):
            fabric.run(timeout=10.0)

    def test_inject_after_run(self):
        class Noop(Messenger):
            def main(self):
                yield self.compute(lambda: None, flops=0)

        fabric = ThreadFabric(Grid1D(1))
        fabric.inject((0,), Noop())
        fabric.run()
        with pytest.raises(FabricError):
            fabric.inject((0,), Noop())
