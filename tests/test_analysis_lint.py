"""Tier-1 lint gate: ``repro lint --all`` must be error-free over
every registered paper program, and the known-bad corpus must be
fully caught. Also covers diagnostics plumbing and the CLI surface."""

import pytest

from repro.analysis.corpus import CORPUS, verify_corpus
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticReport,
    error,
    info,
    warning,
)
from repro.analysis.lint import lint_registry, seed_paper_programs
from repro.cli import main
from repro.navp import ir
from repro.viz.irprint import format_diagnostic, format_path


class TestDiagnostics:
    def test_severity_validated(self):
        with pytest.raises(ValueError):
            Diagnostic("fatal", "x", "p")

    def test_report_partitions(self):
        report = DiagnosticReport([
            error("a", "p", (), "boom"),
            warning("b", "p", (), "hmm"),
            info("c", "p", (), "fyi"),
        ])
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert not report.ok
        assert DiagnosticReport([warning("b", "p")]).ok
        assert "error[a]" in report.render()

    def test_format_path(self):
        assert format_path(()) == "<program>"
        assert format_path((0, (1, "then"), 2)) == "0 > 1.then > 2"

    def test_format_diagnostic_shows_the_statement(self):
        prog = ir.Program("fmt-prog", (
            ir.NodeSet("X", (ir.Const(0),), ir.Const(1)),
        ))
        diag = error("write-collision", "fmt-prog", (0,), "boom")
        out = format_diagnostic(diag, registry={"fmt-prog": prog})
        head, stmt_line = out.split("\n")
        assert head.startswith("error[write-collision] fmt-prog @ 0:")
        assert stmt_line.strip().startswith("| X")

    def test_format_diagnostic_survives_unknown_program(self):
        diag = error("x", "no-such-prog", (3,), "boom")
        assert "\n" not in format_diagnostic(diag, registry={})


class TestPaperProgramsLintClean:
    """The tier-1 gate: zero errors across the whole paper registry."""

    def test_registry_has_no_errors(self):
        layouts = seed_paper_programs(3)
        names = sorted(n for n in ir.REGISTRY
                       if not n.startswith("random-prog"))
        report = lint_registry(names, layouts=layouts)
        assert report.errors == [], report.render()

    def test_expected_warnings_only(self):
        layouts = seed_paper_programs(3)
        names = sorted(n for n in ir.REGISTRY
                       if not n.startswith("random-prog"))
        report = lint_registry(names, layouts=layouts)
        assert {d.category for d in report.warnings} \
            <= {"signal-cycle"}

    def test_cli_lint_all_exits_zero(self, capsys):
        assert main(["lint", "--all"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out


class TestCorpus:
    def test_every_seeded_defect_caught(self):
        results = verify_corpus()
        assert len(results) == len(CORPUS) >= 5
        for case, report, hit in results:
            assert hit, (f"{case.name} [{case.category}] missed:\n"
                         f"{report.render()}")

    def test_categories_cover_the_required_classes(self):
        assert {c.category for c in CORPUS} >= {
            "write-collision", "stale-carry", "remote-access",
            "unmatched-wait", "signal-cycle",
        }

    def test_corpus_programs_stay_out_of_the_registry(self):
        for case in CORPUS:
            for name in case.registry:
                assert name not in ir.REGISTRY

    def test_cli_corpus_mode(self, capsys):
        assert main(["lint", "--corpus"]) == 0
        out = capsys.readouterr().out
        assert f"{len(CORPUS)}/{len(CORPUS)} corpus checks passed" in out


class TestCliSurface:
    def test_no_programs_and_no_all_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "nothing to lint" in capsys.readouterr().err

    def test_unknown_program_is_usage_error(self, capsys):
        assert main(["lint", "no-such-program"]) == 2
        assert "unknown program" in capsys.readouterr().err

    def test_single_program_with_loop_analysis(self, capsys):
        assert main(["lint", "mm-seq-3-dsc", "--loop", "mi"]) == 0
        out = capsys.readouterr().out
        assert "1 program(s) linted: 0 error(s)" in out
