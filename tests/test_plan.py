"""The transformation planner: rediscovery, goldens, emitted-IR properties."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.errors import TransformError
from repro.machine.presets import get_preset
from repro.navp import ir
from repro.plan import make_plan, plan_to_dict, render_plan
from repro.transform.deps import check_race_free
from repro.transform.keyed_pipeline import KeyedPipelineSpec, keyed_pipeline

GOLDENS = Path(__file__).parent / "goldens" / "plans"

V = ir.Var
C = ir.Const


@pytest.fixture(scope="module")
def sun():
    return get_preset("sun-blade-100")


@pytest.fixture(scope="module")
def matmul_plan(sun):
    return make_plan("navp-matmul", sun, validate=False)


@pytest.fixture(scope="module")
def wavefront_plan(sun):
    return make_plan("navp-wavefront", sun, validate=False)


class TestMatmulRediscovery:
    """The planner must re-derive the paper's Section 3 sequence."""

    def test_sequence_is_the_papers(self, matmul_plan):
        assert matmul_plan.sequence == ("dsc", "pipeline", "phase-shift")

    def test_dsc_follows_the_j_loop(self, matmul_plan):
        stage = matmul_plan.stages[1]
        chosen = [c for c in stage.candidates if c.viable]
        assert [c.subject for c in chosen] == ["mj"]

    def test_dsc_rejections_name_their_reasons(self, matmul_plan):
        stage = matmul_plan.stages[1]
        rejected = {c.subject: c.detail for c in stage.candidates
                    if not c.viable}
        # mi: B[k, mj] would have to be carried but its key varies
        assert "varies inside the tour" in rejected["mi"]
        # k: the product write lives outside the k loop
        assert "outside the 'k' loop" in rejected["k"]

    def test_phase_shift_prefers_reverse_staggering(self, matmul_plan):
        stage = matmul_plan.stages[3]
        chosen = [c for c in stage.candidates if c.viable]
        assert chosen[0].subject == "reverse"
        assert chosen[0].extras["phases"] == 2
        forward = next(c for c in stage.candidates
                       if c.subject == "forward")
        assert forward.extras["phases"] == 3

    def test_predictions_track_the_paper_shape(self, matmul_plan):
        seq, dsc, pipe, phase = [s.predicted_s
                                 for s in matmul_plan.stages]
        # DSC alone is slightly slower than sequential (Table 1);
        # pipelining wins, phase shifting wins more
        assert dsc > seq
        assert pipe < seq
        assert phase < pipe
        assert matmul_plan.speedup > 2.5

    def test_every_stage_emits_registered_programs(self, matmul_plan):
        for stage in matmul_plan.stages:
            for name in stage.programs:
                assert name in ir.REGISTRY


class TestWavefrontRediscovery:
    def test_sequence_is_keyed_pipelining(self, wavefront_plan):
        assert wavefront_plan.sequence == ("keyed-pipeline",)

    def test_plain_pipelining_rejected_with_the_vector(
            self, wavefront_plan):
        stage = wavefront_plan.stages[1]
        plain = next(c for c in stage.candidates
                     if c.transform == "pipeline")
        assert not plain.viable
        assert "distance +1 over 'r'" in plain.detail

    def test_keyed_choice_cites_the_forward_flow(self, wavefront_plan):
        stage = wavefront_plan.stages[1]
        assert "forward flow dependence" in stage.chosen
        assert "'bottom' at distance +1" in stage.chosen

    def test_report_renders(self, wavefront_plan):
        text = render_plan(wavefront_plan, emit_ir=True)
        assert "sequence: sequential -> keyed-pipeline" in text
        assert "wait(bottom-done" in text
        assert "signal(bottom-done" in text


class TestGoldenPlans:
    """Full plans (validation included) are pinned bit-for-bit."""

    @pytest.mark.parametrize("target",
                             ["navp-matmul", "navp-wavefront"])
    def test_plan_matches_golden(self, target, sun):
        got = plan_to_dict(make_plan(target, sun))
        want = json.loads((GOLDENS / f"{target}.json").read_text())
        assert got == want


class TestEmittedIRProperties:
    """The property the plan claims: race-free and bit-identical."""

    def test_matmul_final_ir_race_free_and_bit_identical(
            self, matmul_plan):
        from repro.transform.examples import (
            layout_phase,
            layout_sequential,
        )
        from repro.transform.verify import run_stage
        from repro.util.validation import random_matrix

        nb, ab = 3, 8
        n = nb * ab
        a, b = random_matrix(n, 17), random_matrix(n, 18)
        main = ir.get_program(matmul_plan.final_stage.programs[0])
        check_race_free(main)
        seq = ir.get_program(matmul_plan.stages[0].programs[0])
        c_seq, _ = run_stage(seq, layout_sequential(a, b, nb),
                             1, nb, ab)
        c_phase, _ = run_stage(main, layout_phase(a, b, nb),
                               nb, nb, ab)
        assert np.array_equal(c_seq, c_phase)

    @pytest.mark.parametrize("fabric",
                             ["sim", "thread", "process", "socket"])
    def test_wavefront_ir_bitwise_on_every_fabric(self, fabric):
        from repro.wavefront.irprog import run_wavefront_program
        from repro.wavefront.problem import WavefrontCase, reference_solve

        plan = make_plan("navp-wavefront", get_preset("fast-test"),
                         geometry=2, validate=False)
        main = plan.final_stage.programs[0]
        check_race_free(ir.get_program(main))
        # shape must match the target (the program embeds b): n=32, b=8
        case = WavefrontCase(n=32, b=8, seed=11)
        got = run_wavefront_program(main, case, 2, trace=False,
                                    fabric=fabric)
        assert np.array_equal(got.d, reference_solve(case.weights()))


class TestKeyedPipelineGate:
    def test_backward_dependence_refused(self):
        prog = ir.Program("kp-backward", (
            ir.For("i", C(4), (
                ir.HopStmt((V("i"),)),
                ir.ComputeStmt(
                    "copy",
                    (ir.NodeGet("X", (ir.Bin("+", V("i"), C(1)),)),),
                    out="t"),
                ir.NodeSet("X", (V("i"),), V("t")),
            )),
        ))
        with pytest.raises(TransformError,
                           match="not a forward flow dependence"):
            keyed_pipeline(prog, KeyedPipelineSpec(
                outer="i", carrier_name="kp-backward-carrier",
                inject_at=(C(0),)))

    def test_varying_distance_refused(self):
        prog = ir.Program("kp-varying", (
            ir.For("i", C(4), (
                ir.HopStmt((V("i"),)),
                ir.ComputeStmt("copy", (ir.NodeGet("X", (V("i"),)),),
                               out="t"),
                ir.NodeSet("X", (ir.Bin("*", C(2), V("i")),), V("t")),
            )),
        ))
        with pytest.raises(TransformError,
                           match="not a forward flow"):
            keyed_pipeline(prog, KeyedPipelineSpec(
                outer="i", carrier_name="kp-varying-carrier",
                inject_at=(C(0),)))

    def test_unknown_target_is_a_transform_error(self, sun):
        with pytest.raises(TransformError, match="unknown plan target"):
            make_plan("no-such-target", sun)

    def test_nondividing_geometry_refused(self, sun):
        with pytest.raises(TransformError, match="does not divide"):
            make_plan("navp-wavefront", sun, geometry=5)
