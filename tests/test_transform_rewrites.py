"""The transformation machinery: rewriting utilities, dependence guard,
and the structural output of each transformation."""

import pytest

from repro.errors import TransformError
from repro.navp import ir
from repro.transform import (
    DSCSpec,
    PhaseShiftSpec,
    PipelineSpec,
    check_loop_independent,
    dsc,
    phase_shift,
    pipelining,
    sequential_program,
)
from repro.transform.rewrite import (
    collect,
    find_loops,
    find_unique_loop,
    substitute_expr,
)

V = ir.Var
C = ir.Const


class TestRewriteUtils:
    def test_substitute_expr(self):
        body = (ir.Assign("x", ir.Bin("+", V("a"), V("a"))),)
        out = substitute_expr(body, V("a"), C(5))
        assert out == (ir.Assign("x", ir.Bin("+", C(5), C(5))),)

    def test_substitute_does_not_recurse_into_replacement(self):
        """Replacing mj by an expression containing mj must terminate
        and substitute exactly once (the phase-shift reindexing)."""
        sched = ir.Bin("%", ir.Bin("+", V("mi"), V("mj")), C(3))
        body = (ir.HopStmt((V("mj"),)),)
        out = substitute_expr(body, V("mj"), sched)
        assert out == (ir.HopStmt((sched,)),)

    def test_find_loops_nested(self):
        program = sequential_program(3, name="rw-seq")
        assert len(find_loops(program.body, "k")) == 1
        path, loop = find_unique_loop(program, "mj")
        assert loop.var == "mj"
        assert path == (0, 0)

    def test_find_unique_loop_rejects_missing(self):
        program = sequential_program(3, name="rw-seq2")
        with pytest.raises(TransformError):
            find_unique_loop(program, "zz")

    def test_collect(self):
        program = sequential_program(3, name="rw-seq3")
        computes = collect(program.body,
                           lambda s: isinstance(s, ir.ComputeStmt))
        assert len(computes) == 2  # zeros_from + gemm_acc


class TestDependenceGuard:
    def test_matmul_j_loop_is_independent(self):
        program = sequential_program(3, name="dep-ok")
        check_loop_independent(program, "mj")
        check_loop_independent(program, "mi")

    def test_colliding_writes_rejected(self):
        bad = ir.register_program(ir.Program("dep-bad-write", (
            ir.For("i", C(3), (
                ir.NodeSet("acc", (C(0),), V("i")),  # same key every i
            )),
        )), replace=True)
        with pytest.raises(TransformError, match="collide"):
            check_loop_independent(bad, "i")

    def test_read_after_write_rejected(self):
        bad = ir.register_program(ir.Program("dep-bad-raw", (
            ir.For("i", C(3), (
                ir.Assign("x", ir.NodeGet("acc", (C(0),))),
                ir.NodeSet("acc", (V("i"),), V("x")),
            )),
        )), replace=True)
        with pytest.raises(TransformError, match="dependence"):
            check_loop_independent(bad, "i")

    def test_read_only_node_vars_fine(self):
        ok = ir.register_program(ir.Program("dep-ok-ro", (
            ir.For("i", C(3), (
                ir.Assign("x", ir.NodeGet("B", (C(0),))),
                ir.NodeSet("C", (V("i"),), V("x")),
            )),
        )), replace=True)
        check_loop_independent(ok, "i")


class TestDSCStructure:
    def test_output_matches_figure5(self):
        """The derived DSC program has Figure 5's exact structure."""
        nb = 3
        program = dsc(sequential_program(nb, name="fig5-src"), DSCSpec(
            loop="mj",
            place=(V("mj"),),
            carries={"mA": ir.NodeGet("A", (V("mi"),))},
            pickup_cond=ir.Bin("==", V("mj"), C(0)),
        ), name="fig5-out")

        outer = program.body[0]
        inner = outer.body[0]
        assert isinstance(inner.body[0], ir.HopStmt)       # (4) hop(node(mj))
        assert inner.body[0].place == (V("mj"),)
        pickup = inner.body[1]                             # (5) if mj=0 ...
        assert isinstance(pickup, ir.If)
        assert pickup.then == (
            ir.Assign("mA", ir.NodeGet("A", (V("mi"),))),)
        # every A access in the rest of the body now reads mA
        rest = inner.body[2:]
        node_reads = []

        def visit(expr):
            if isinstance(expr, ir.NodeGet):
                node_reads.append(expr.name)

        for stmt in collect(rest, lambda s: True):
            if isinstance(stmt, ir.ComputeStmt):
                for arg in stmt.args:
                    _walk(arg, visit)
        assert "A" not in node_reads

    def test_carry_source_must_be_node_access(self):
        with pytest.raises(TransformError):
            dsc(sequential_program(3, name="dsc-bad"), DSCSpec(
                loop="mj", place=(V("mj"),),
                carries={"mA": V("x")},
            ))

    def test_written_carry_source_blocks_dsc(self):
        """Carrying a node variable that the loop also writes would let
        the agent copy go stale — DSC must refuse."""
        bad = ir.register_program(ir.Program("dsc-dep-bad", (
            ir.For("mj", C(3), (
                ir.Assign("x", ir.NodeGet("acc", (C(0),))),
                ir.NodeSet("acc", (V("mj"),), V("x")),
            )),
        )), replace=True)
        with pytest.raises(TransformError, match="stale"):
            dsc(bad, DSCSpec(loop="mj", place=(V("mj"),),
                             carries={"m": ir.NodeGet("acc", (C(0),))}))

    def test_dsc_tolerates_dependences_it_preserves(self):
        """DSC is a single thread: loop-carried dependences through node
        state are fine as long as nothing carried is written."""
        chained = ir.register_program(ir.Program("dsc-dep-ok", (
            ir.For("mj", C(3), (
                ir.Assign("x", ir.NodeGet("acc", (ir.Bin("-", V("mj"),
                                                         C(1)),))),
                ir.NodeSet("acc", (V("mj"),), V("x")),
            )),
        )), replace=True)
        out = dsc(chained, DSCSpec(loop="mj", place=(V("mj"),)))
        assert isinstance(out.body[0].body[0], ir.HopStmt)


def _walk(expr, fn):
    fn(expr)
    if isinstance(expr, ir.Bin):
        _walk(expr.left, fn)
        _walk(expr.right, fn)
    elif isinstance(expr, (ir.NodeGet, ir.Index)):
        if isinstance(expr, ir.Index):
            _walk(expr.base, fn)
        for e in expr.idx:
            _walk(e, fn)


class TestPipelineStructure:
    def _dsc(self, nb=3, tag="pl"):
        return dsc(sequential_program(nb, name=f"{tag}-src"), DSCSpec(
            loop="mj", place=(V("mj"),),
            carries={"mA": ir.NodeGet("A", (V("mi"),))},
            pickup_cond=ir.Bin("==", V("mj"), C(0)),
        ), name=f"{tag}-dsc")

    def test_output_matches_figure7(self):
        suite = pipelining(self._dsc(tag="fig7"), PipelineSpec(
            outer="mi", carrier_name="fig7-carrier", inject_at=(C(0),)))
        # main: hop(node(0)); do i: inject(RowCarrier(i))
        assert suite.main.body[0] == ir.HopStmt((C(0),))
        loop = suite.main.body[1]
        assert loop.body == (
            ir.InjectStmt("fig7-carrier", (("mi", V("mi")),)),)
        # carrier: pickup hoisted to line (2), then the tour loop
        assert suite.carrier.params == ("mi",)
        assert suite.carrier.body[0] == ir.Assign(
            "mA", ir.NodeGet("A", (V("mi"),)))
        tour = suite.carrier.body[1]
        assert isinstance(tour.body[0], ir.HopStmt)
        # the pickup conditional is gone
        assert not any(isinstance(s, ir.If) for s in tour.body)

    def test_requires_single_outer_loop(self):
        flat = ir.register_program(ir.Program("pl-flat", (
            ir.Assign("x", C(1)),
            ir.For("mi", C(2), (ir.NodeSet("C", (V("mi"),), V("x")),)),
        )), replace=True)
        with pytest.raises(TransformError):
            pipelining(flat, PipelineSpec(
                outer="mi", carrier_name="pl-c", inject_at=(C(0),)))


class TestPhaseShiftStructure:
    def test_output_matches_figure9(self):
        nb = 3
        program = dsc(sequential_program(nb, name="fig9-src"), DSCSpec(
            loop="mj", place=(V("mj"),),
            carries={"mA": ir.NodeGet("A", (V("mi"),))},
            pickup_cond=ir.Bin("==", V("mj"), C(0)),
        ), name="fig9-dsc")
        suite = pipelining(program, PipelineSpec(
            outer="mi", carrier_name="fig9-carrier", inject_at=(C(0),)))
        sched = ir.Bin("%", ir.Bin("+", ir.Bin("-", C(nb - 1), V("mi")),
                                   V("mj")), C(nb))
        shifted = phase_shift(suite, PhaseShiftSpec(
            start_place=(V("mi"),), schedule=sched, tour="mj"))

        # main: do mi: hop(node(mi)); inject(carrier(mi))   (Figure 9)
        loop = shifted.main.body[0]
        assert loop.body[0] == ir.HopStmt((V("mi"),))
        assert isinstance(loop.body[1], ir.InjectStmt)
        # carrier tour hops node((N-1-mi+mj) % N)
        tour = shifted.carrier.body[1]
        assert tour.body[0] == ir.HopStmt((sched,))

    def test_requires_pipelined_shape(self):
        seq = sequential_program(3, name="ps-bad")
        fake = pipelining.__wrapped__ if hasattr(pipelining, "__wrapped__") \
            else None
        suite_like = type("S", (), {"main": seq, "carrier": seq})()
        with pytest.raises(TransformError):
            phase_shift(suite_like, PhaseShiftSpec(
                start_place=(V("mi"),), schedule=V("mj"), tour="mj"))
