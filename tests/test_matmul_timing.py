"""Timing shapes on the calibrated machine — the paper's claims as tests."""

import pytest

from repro.matmul import MatmulCase, run_variant, sequential_time_model
from repro.perfmodel import predict


@pytest.fixture(scope="module")
def table_row():
    """Times for the n=1536, ab=128 row on 3 PEs / 3x3 (paper's Tables 1/4)."""
    case = MatmulCase(n=1536, ab=128, shadow=True)
    variants = [
        "navp-1d-dsc", "navp-1d-pipeline", "navp-1d-phase", "scalapack-1d",
        "navp-2d-dsc", "navp-2d-pipeline", "navp-2d-phase",
        "mpi-gentleman", "mpi-gentleman-tuned", "mpi-cannon",
        "scalapack-summa", "doall-naive",
    ]
    times = {
        v: run_variant(v, case, geometry=3, trace=False).time
        for v in variants
    }
    times["sequential"], _ = sequential_time_model(1536)
    return times


class TestIncrementalImprovement:
    """Section 2: every intermediate program improves on its predecessor."""

    def test_1d_chain(self, table_row):
        t = table_row
        assert t["navp-1d-dsc"] > t["navp-1d-pipeline"] > t["navp-1d-phase"]

    def test_2d_chain(self, table_row):
        t = table_row
        assert t["navp-2d-dsc"] > t["navp-2d-pipeline"] > t["navp-2d-phase"]

    def test_second_dimension_improves_on_first(self, table_row):
        assert table_row["navp-2d-dsc"] < table_row["navp-1d-phase"]


class TestDSCBehaviour:
    def test_dsc_near_sequential(self, table_row):
        """1-D DSC is marginally slower than sequential (speedup ~0.96)."""
        ratio = table_row["sequential"] / table_row["navp-1d-dsc"]
        assert 0.90 <= ratio <= 1.0

    def test_dsc_trace_never_overlaps(self):
        """The single DSC thread computes on one PE at a time."""
        case = MatmulCase(n=48, ab=8, shadow=True)
        result = run_variant("navp-1d-dsc", case, geometry=3)
        events = sorted(result.trace.of_kind("compute"),
                        key=lambda e: e.t0)
        for first, second in zip(events, events[1:]):
            assert second.t0 >= first.t1 - 1e-12


class TestPhaseShifting:
    def test_all_pes_start_promptly(self):
        case = MatmulCase(n=1536, ab=128, shadow=True)
        result = run_variant("navp-1d-phase", case, geometry=3)
        starts = result.trace.first_compute_start()
        assert len(starts) == 3
        assert max(starts.values()) < 0.05 * result.time

    def test_pipelined_starts_staircase(self):
        case = MatmulCase(n=1536, ab=128, shadow=True)
        result = run_variant("navp-1d-pipeline", case, geometry=3)
        starts = result.trace.first_compute_start()
        assert starts[0] < starts[1] < starts[2]

    def test_phase_beats_mpi(self, table_row):
        """The paper's headline comparison (Tables 3-4)."""
        assert table_row["navp-2d-phase"] < table_row["mpi-gentleman"]

    def test_phase_competitive_with_scalapack(self, table_row):
        ratio = table_row["navp-2d-phase"] / table_row["scalapack-summa"]
        assert 0.85 <= ratio <= 1.1

    def test_tuning_closes_the_mpi_gap(self, table_row):
        """Section 5's concession, quantified: overlapping the edge
        exchange (isend + interior-first compute) makes Gentleman
        competitive — "faster than a straightforward implementation ...
        and competitive with a highly tuned version"."""
        straightforward = table_row["mpi-gentleman"]
        tuned = table_row["mpi-gentleman-tuned"]
        phase = table_row["navp-2d-phase"]
        assert tuned < straightforward
        assert phase < straightforward
        assert abs(tuned - phase) / phase < 0.10  # competitive


class TestSpeedupBands:
    """Modeled speedups must land in the paper's ranges."""

    @pytest.mark.parametrize("variant,low,high", [
        ("navp-1d-pipeline", 2.2, 2.9),
        ("navp-1d-phase", 2.5, 3.0),
        ("navp-2d-dsc", 4.3, 6.6),
        ("navp-2d-pipeline", 6.4, 8.3),
        ("navp-2d-phase", 7.2, 8.9),
        ("mpi-gentleman", 5.4, 8.6),
        ("scalapack-summa", 6.1, 8.8),
    ])
    def test_band(self, table_row, variant, low, high):
        speedup = table_row["sequential"] / table_row[variant]
        assert low <= speedup <= high, (variant, speedup)


class TestScaling:
    def test_bigger_problems_scale_cubically(self):
        """Modeled time grows ~n^3 for the parallel variants too."""
        t = {}
        for n in (1536, 3072):
            case = MatmulCase(n=n, ab=128, shadow=True)
            t[n] = run_variant("navp-2d-phase", case, geometry=3,
                               trace=False).time
        assert t[3072] / t[1536] == pytest.approx(8.0, rel=0.15)

    def test_more_pes_help_1d(self):
        case = MatmulCase(n=1536, ab=128, shadow=True)
        t2 = run_variant("navp-1d-phase", case, geometry=2,
                         trace=False).time
        t4 = run_variant("navp-1d-phase", case, geometry=4,
                         trace=False).time
        assert t4 < t2 / 1.6

    def test_analytic_agreement(self):
        """DES within 15% of the closed forms across variants."""
        case = MatmulCase(n=2304, ab=128, shadow=True)
        for variant in ("navp-1d-phase", "navp-2d-pipeline",
                        "navp-2d-phase", "mpi-gentleman"):
            sim = run_variant(variant, case, geometry=3, trace=False).time
            closed = predict(variant, 2304, 128, 3)
            assert 0.85 <= sim / closed <= 1.15, variant


class TestDeterminism:
    def test_repeat_runs_identical(self):
        case = MatmulCase(n=1536, ab=128, shadow=True)
        times = {
            run_variant("navp-2d-pipeline", case, geometry=3,
                        trace=False).time
            for _ in range(3)
        }
        assert len(times) == 1
