"""The ``repro bench`` harness: smoke run, snapshot schema, regression
detection, and the ``repro lint --all`` gate that shares the CI tier.

The smoke bench doubles as the tier-1 performance gate: it must finish
well under 60 seconds and exit cleanly, so a broken engine (or a
benchmark that silently ballooned) fails CI rather than landing.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.perf.report import (
    SCHEMA,
    compare_benches,
    find_previous,
    load_bench,
    make_snapshot,
    write_bench,
)
from repro.perf.suite import BENCHES, run_suite


class TestSmokeBench:
    def test_cli_smoke_under_60s(self, tmp_path, capsys):
        t0 = time.perf_counter()
        rc = main(["bench", "--smoke", "--out", str(tmp_path),
                   "--repeats", "1", "--label", "ci smoke"])
        elapsed = time.perf_counter() - t0
        assert rc == 0
        assert elapsed < 60.0
        written = list(tmp_path.glob("BENCH_*.json"))
        assert len(written) == 1
        out = capsys.readouterr().out
        assert "des_micro" in out and "table3_shadow" in out

        snap = json.loads(written[0].read_text())
        assert snap["schema"] == SCHEMA
        assert snap["smoke"] is True
        assert set(snap["results"]) == set(BENCHES)
        for name, res in snap["results"].items():
            assert res["wall_s"] > 0, name
            # every benchmark that can count events reports a rate
            if res["events"] is not None:
                assert res["events_per_sec"] > 0, name

    def test_unknown_benchmark_name_fails_loudly(self, tmp_path):
        rc = main(["bench", "--smoke", "--out", str(tmp_path),
                   "--only", "nope"])
        assert rc == 2
        with pytest.raises(KeyError):
            run_suite(smoke=True, only=["nope"])


class TestServeBench:
    def test_warm_pool_beats_perjob_setup(self):
        """The serve subsystem's economic claim, pinned: the amortized
        per-job cost on a warm pool must beat spinning up a socket
        fabric per run. The real gap is ~5-10x; 1.5x leaves room for a
        loaded CI box without letting the claim silently rot."""
        res = run_suite(smoke=True, only=["serve_throughput"],
                        repeats=1)["serve_throughput"]
        meta = res["meta"]
        assert meta["speedup_vs_perjob"] > 1.5
        assert meta["warm_per_job_s"] < meta["perjob_per_job_s"]
        # a short queue pays off the pool spawn
        assert meta["breakeven_jobs"] < 10

    def test_durable_submit_overhead_bounded(self):
        """The durability claim, pinned: an fsync'd write-ahead ledger
        must not make admission slow. Group commit batches concurrent
        submitters onto shared fsyncs, so the real throughput is
        thousands of submits/sec and the overhead well under a
        millisecond; the floors (100/sec, 50 ms) only catch the ledger
        degenerating into fsync-per-submit-per-retry territory on a
        loaded CI box."""
        res = run_suite(smoke=True, only=["serve_durability"],
                        repeats=1)["serve_durability"]
        meta = res["meta"]
        assert res["events_per_sec"] > 100
        assert meta["overhead_per_submit_ms"] < 50
        # every submit was durably appended before acknowledgment
        assert meta["ledger_appends"] >= res["events"]


class TestComparison:
    def _snap(self, ev_per_sec, wall, smoke=False):
        return make_snapshot(
            {"des_micro": {"wall_s": wall, "events": 1000,
                           "events_per_sec": ev_per_sec, "meta": {}}},
            smoke=smoke,
        )

    def test_regression_flagged_below_threshold(self):
        prev = self._snap(1000.0, 1.0)
        cur = self._snap(500.0, 2.0)
        out = compare_benches(cur, prev, threshold=0.85)
        assert out["ratios"]["des_micro"]["events_per_sec"] == 0.5
        assert out["ratios"]["des_micro"]["wall_speedup"] == 0.5
        assert out["regressions"] == [
            "des_micro: events_per_sec 0.50 < 0.85"]

    def test_improvement_not_flagged(self):
        prev = self._snap(1000.0, 1.0)
        cur = self._snap(1700.0, 0.6)
        out = compare_benches(cur, prev)
        assert out["regressions"] == []
        assert out["ratios"]["des_micro"]["events_per_sec"] == 1.7

    def test_smoke_vs_full_not_compared(self):
        prev = self._snap(1000.0, 1.0, smoke=False)
        cur = self._snap(10.0, 1.0, smoke=True)
        out = compare_benches(cur, prev)
        assert out["ratios"] == {}
        assert out["regressions"] == []
        assert "not comparable" in out["note"]

    def test_write_load_find_roundtrip(self, tmp_path):
        old = write_bench(self._snap(1000.0, 1.0), tmp_path, date="2026-01-01")
        new = write_bench(self._snap(1500.0, 0.7), tmp_path, date="2026-02-01")
        assert load_bench(new)["schema"] == SCHEMA
        assert find_previous(tmp_path, exclude=new) == old
        bogus = tmp_path / "BENCH_bogus.json"
        bogus.write_text('{"schema": "other/9"}')
        with pytest.raises(ValueError, match="not a repro-bench"):
            load_bench(bogus)


class TestCommittedBaseline:
    def test_repo_baselines_meet_issue_targets(self):
        """The committed post-change snapshot must hold the optimization
        headline: >=1.5x DES events/sec and >=1.3x Table-3 wall time
        against the committed pre-change baseline."""
        current = load_bench("benchmarks/out/BENCH_2026-08-05.json")
        ratios = current["vs_baseline"]["ratios"]
        assert ratios["des_micro"]["events_per_sec"] >= 1.5
        assert ratios["table3_shadow"]["wall_speedup"] >= 1.3
        assert current["vs_baseline"]["regressions"] == []


class TestDataPlaneBaseline:
    def test_committed_snapshot_meets_issue_targets(self):
        """The committed post-data-plane snapshot must hold the PR-7
        headline against the committed legacy baseline: >=2x on the
        large-block payload round-trip and the socket-pair bytes/sec
        bench, and a >=3x frame reduction from hop coalescing."""
        current = load_bench("benchmarks/out/BENCH_2026-08-07.json")
        assert current["vs_baseline"]["against"].endswith(
            "BENCH_2026-08-07_prechange.json")
        ratios = current["vs_baseline"]["ratios"]
        assert ratios["payload_roundtrip"]["events_per_sec"] >= 2.0
        assert ratios["wire_throughput"]["events_per_sec"] >= 2.0
        assert ratios["wire_coalescing"]["events_per_sec"] >= 1.3
        assert current["vs_baseline"]["regressions"] == []
        meta = current["results"]["wire_coalescing"]["meta"]
        assert meta["frame_reduction"] >= 3.0

    def test_legacy_modes_stay_runnable(self):
        """The baseline is only honest if the legacy algorithms it
        measured still execute — pin them with tiny workloads."""
        from repro.perf.wirebench import (
            coalescing_microbench,
            payload_roundtrip,
            socket_throughput,
        )

        legacy = payload_roundtrip(2, order=16, mode="legacy")
        assert legacy["roundtrips_per_sec"] > 0
        res = socket_throughput(1024, 4, mode="legacy")
        assert res["frames_per_sec"] > 0
        solo = coalescing_microbench(8, coalesce=4, mode="uncoalesced")
        assert solo["frames"] == 8  # one frame per hop, by definition


class TestLintGate:
    def test_lint_all_clean(self):
        # Subprocess: other tests register throwaway (and deliberately
        # broken) programs in the in-process registry; the gate lints
        # the seeded paper programs, like CI does.
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", "--all"],
            capture_output=True, text=True,
            env={**os.environ,
                 "PYTHONPATH": str(Path(__file__).parent.parent / "src")},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 error(s)" in proc.stdout
