"""The data-scan case study: query algebra and strategy equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datascan import (
    DataScanCase,
    count_where,
    histogram,
    moments,
    run_navp_scan,
    run_ship_data,
    run_spmd_reduce,
    top_k,
    value_range,
)
from repro.errors import ConfigurationError

ALL_QUERIES = [histogram(8), moments(), top_k(4), count_where(0.5),
               value_range()]


def _assert_same(got, want):
    if isinstance(want, np.ndarray):
        assert np.allclose(got, want)
    elif isinstance(want, dict):
        for key, value in want.items():
            assert got[key] == pytest.approx(value)
    elif isinstance(want, tuple):
        assert np.allclose(got, want)
    else:
        assert got == want


class TestQueryAlgebra:
    @given(st.integers(0, 100), st.integers(2, 6))
    @settings(max_examples=25, deadline=None)
    def test_merge_associativity_via_splits(self, seed, parts):
        """Any chunking of the data yields the same answer."""
        rng = np.random.default_rng(seed)
        data = rng.random(240)
        chunks = np.array_split(data, parts)
        for query in ALL_QUERIES:
            whole = query.over_chunks([data])
            split = query.over_chunks(chunks)
            _assert_same(split, whole)

    def test_moments_match_numpy(self):
        rng = np.random.default_rng(3)
        data = rng.random(10_000)
        out = moments().over_chunks(np.array_split(data, 7))
        assert out["count"] == 10_000
        assert out["mean"] == pytest.approx(float(data.mean()))
        assert out["variance"] == pytest.approx(float(data.var()),
                                                rel=1e-9)

    def test_topk_matches_sort(self):
        rng = np.random.default_rng(4)
        data = rng.random(500)
        out = top_k(10).over_chunks(np.array_split(data, 5))
        assert np.allclose(out, np.sort(data)[::-1][:10])

    def test_histogram_counts_everything(self):
        data = np.linspace(0.001, 0.999, 777)
        counts = histogram(16).over_chunks([data])
        assert counts.sum() == 777

    def test_partial_sizes_are_small(self):
        for query in ALL_QUERIES:
            assert query.partial_nbytes <= 1024


class TestStrategies:
    @pytest.mark.parametrize("query", ALL_QUERIES,
                             ids=[q.name for q in ALL_QUERIES])
    def test_all_strategies_agree(self, query):
        case = DataScanCase(pes=4, items_per_pe=2000)
        want = case.reference(query)
        for result in (
            run_navp_scan(case, query),
            run_navp_scan(case, query, carriers=2),
            run_navp_scan(case, query, carriers=4),
            run_ship_data(case, query),
            run_spmd_reduce(case, query),
        ):
            _assert_same(result.answer, want)

    def test_scan_on_thread_fabric(self):
        case = DataScanCase(pes=3, items_per_pe=1000)
        query = moments()
        result = run_navp_scan(case, query, fabric="thread")
        _assert_same(result.answer, case.reference(query))

    def test_carriers_must_divide(self):
        with pytest.raises(ConfigurationError):
            run_navp_scan(DataScanCase(pes=4, items_per_pe=10),
                          histogram(4), carriers=3)

    def test_single_pe(self):
        case = DataScanCase(pes=1, items_per_pe=100)
        query = count_where(0.5)
        _assert_same(run_navp_scan(case, query).answer,
                     case.reference(query))


class TestTimingShape:
    """The founding claim: move computation, not data."""

    @pytest.fixture(scope="class")
    def times(self):
        case = DataScanCase(pes=8, items_per_pe=250_000)
        query = histogram(64)
        return {
            "ship": run_ship_data(case, query).time,
            "scan": run_navp_scan(case, query).time,
            "scan4": run_navp_scan(case, query, carriers=4).time,
            "reduce": run_spmd_reduce(case, query).time,
        }

    def test_scan_beats_shipping(self, times):
        assert times["scan"] < times["ship"] / 3

    def test_pipelining_helps_the_scan(self, times):
        assert times["scan4"] < times["scan"] / 2

    def test_spmd_reduce_is_the_parallel_bound(self, times):
        assert times["reduce"] <= times["scan4"]

    def test_ship_cost_is_network_bound(self, times):
        """The receiver's inbound link (7 partitions at the model's
        4 B/element) lower-bounds the shipping strategy."""
        from repro.machine import SUN_BLADE_100

        inbound = 7 * 250_000 * SUN_BLADE_100.elem_size
        wire = inbound / SUN_BLADE_100.network.bandwidth_Bps
        assert times["ship"] > 0.8 * wire
