"""Hop-locality checking: the paper layouts prove clean; planted
remote accesses are flagged; substitution through pickup conditions
and inject bindings works."""

from repro.analysis.lint import seed_paper_programs
from repro.analysis.locality import (
    LayoutSpec,
    check_locality,
    fixed_home,
    key_home,
)
from repro.navp import ir

V = ir.Var
C = ir.Const


def _layout(**homes):
    return LayoutSpec(homes=homes, entry=(C(0),))


class TestBasics:
    def test_keyed_tour_is_local(self):
        prog = ir.Program("loc-ok", (
            ir.For("j", C(3), (
                ir.HopStmt((V("j"),)),
                ir.NodeSet("Cv", (V("j"),), ir.NodeGet("B", (V("j"),))),
            )),
        ))
        report = check_locality(prog, _layout(B=key_home(0),
                                              Cv=key_home(0)),
                                registry={})
        assert report.ok

    def test_off_by_one_read_is_remote(self):
        prog = ir.Program("loc-bad", (
            ir.For("j", C(3), (
                ir.HopStmt((V("j"),)),
                ir.Assign("y", ir.NodeGet(
                    "R", (ir.Bin("+", V("j"), C(1)),))),
            )),
        ))
        report = check_locality(prog, _layout(R=key_home(0)),
                                registry={})
        assert [d.category for d in report] == ["remote-access"]
        assert "must be local" in report[0].message

    def test_access_before_any_hop_checked_against_entry(self):
        prog = ir.Program("loc-entry", (
            ir.Assign("y", ir.NodeGet("A", (C(1),))),
        ))
        report = check_locality(prog, _layout(A=key_home(0)),
                                registry={})
        assert [d.category for d in report] == ["remote-access"]

    def test_unknown_layout_or_place_is_skipped(self):
        prog = ir.Program("loc-skip", (
            # no layout entry for "Z" -> skipped
            ir.Assign("y", ir.NodeGet("Z", (C(9),))),
            # place unknown inside a hopping loop before the hop
            ir.For("j", C(3), (
                ir.Assign("w", ir.NodeGet("A", (C(5),))),
                ir.HopStmt((V("j"),)),
            )),
        ))
        report = check_locality(prog, _layout(A=key_home(0)),
                                registry={})
        assert report.ok

    def test_local_set_suppresses_checking(self):
        prog = ir.Program("loc-slot", (
            ir.Assign("y", ir.NodeGet("slot", (C(7),))),
        ))
        layout = LayoutSpec(homes={"slot": key_home(0)},
                            entry=(C(0),), local=frozenset({"slot"}))
        assert check_locality(prog, layout, registry={}).ok


class TestCondSubstitution:
    """The DSC pickup: ``if mj == 0: mA = A[mi]`` at place node(mj)."""

    def _pickup(self, cond):
        return ir.Program("loc-pickup", (
            ir.For("mj", C(3), (
                ir.HopStmt((V("mj"),)),
                ir.If(cond, (
                    ir.Assign("mA", ir.NodeGet("A", (V("mi"),))),
                )),
            )),
        ), params=("mi",))

    def test_equality_cond_pins_the_place(self):
        prog = self._pickup(ir.Bin("==", V("mj"), C(0)))
        report = check_locality(prog, _layout(A=fixed_home(0)),
                                registry={})
        assert report.ok

    def test_without_the_cond_the_access_is_remote(self):
        prog = ir.Program("loc-nopickup", (
            ir.For("mj", C(3), (
                ir.HopStmt((V("mj"),)),
                ir.Assign("mA", ir.NodeGet("A", (V("mi"),))),
            )),
        ), params=("mi",))
        report = check_locality(prog, _layout(A=fixed_home(0)),
                                registry={})
        assert [d.category for d in report] == ["remote-access"]


class TestInjectRecursion:
    def _suite(self, bound):
        child = ir.Program("loc-child", (
            ir.Assign("y", ir.NodeGet("X", (V("p"),))),
        ), params=("p",))
        main = ir.Program("loc-main", (
            ir.HopStmt((C(2),)),
            ir.InjectStmt("loc-child", (("p", bound),)),
        ))
        return main, {"loc-child": child, "loc-main": main}

    def test_bindings_substituted_through_injection(self):
        main, registry = self._suite(C(2))
        report = check_locality(main, _layout(X=key_home(0)),
                                registry=registry)
        assert report.ok

    def test_mismatched_binding_flagged_in_the_child(self):
        main, registry = self._suite(C(1))
        report = check_locality(main, _layout(X=key_home(0)),
                                registry=registry)
        assert [d.category for d in report] == ["remote-access"]
        assert report[0].program == "loc-child"


class TestPaperLayouts:
    def test_every_chain_stage_proves_local(self):
        layouts = seed_paper_programs(3)
        assert set(layouts) == {"mm-seq-3", "mm-seq-3-dsc",
                                "mm-seq-3-dsc-pipe",
                                "mm-seq-3-dsc-phase"}
        for name, layout in layouts.items():
            report = check_locality(ir.get_program(name), layout)
            assert report.ok, f"{name}: {report.render()}"
