"""The carried-dimension transformations: Figures 11 -> 13 -> 15."""

import numpy as np
import pytest

from repro.errors import TransformError
from repro.fabric import Grid2D, SimFabric, ThreadFabric
from repro.machine import FAST_TEST_MACHINE, SUN_BLADE_100
from repro.navp import ir
from repro.navp.interp import IRMessenger
from repro.transform import (
    CarriedSpec,
    ReductionSpec,
    derive_full_chain,
    layout_carried_antidiagonal,
    layout_carried_natural,
    reassociate_reduction,
)
from repro.util.validation import assert_allclose, random_matrix

V = ir.Var
C = ir.Const


def run_suite(suite, layout, g, ab, fabric_cls=SimFabric, machine=None):
    fabric = fabric_cls(Grid2D(g), machine=machine or FAST_TEST_MACHINE)
    for coord, node_vars in layout.items():
        fabric.load(coord, **node_vars)
    for coord, event, args, count in suite.initial_signals:
        fabric.signal_initial(coord, event, *args, count=count)
    fabric.inject((0, 0), IRMessenger(suite.main.name))
    result = fabric.run()
    c = np.empty((g * ab, g * ab))
    for _coord, node_vars in result.places.items():
        for (i, j), block in node_vars.get("C", {}).items():
            c[i * ab : (i + 1) * ab, j * ab : (j + 1) * ab] = block
    return c, result


class TestReassociation:
    def test_accumulator_disappears(self):
        chain = derive_full_chain(3)
        body = chain.dsc_2d.row_carrier.body  # the pre-reassoc program
        out = reassociate_reduction(chain.dsc_2d.row_carrier,
                                    ReductionSpec())
        # the rewritten k loop folds straight into C
        tour = out.body[1]
        kloop = [s for s in tour.body if isinstance(s, ir.For)][0]
        compute = kloop.body[0]
        assert isinstance(compute.args[0], ir.NodeGet)
        assert compute.args[0].name == "C"
        assert isinstance(kloop.body[1], ir.NodeSet)

    def test_rejects_non_associative_kernel(self):
        bad = ir.register_program(ir.Program("ra-bad", (
            ir.ComputeStmt("zeros_from", (ir.NodeGet("X"),), out="t"),
            ir.For("k", C(3), (
                ir.ComputeStmt("copy", (V("t"),), out="t"),
            )),
            ir.NodeSet("C", (C(0),), V("t")),
        )), replace=True)
        with pytest.raises(TransformError, match="associative"):
            reassociate_reduction(bad, ReductionSpec())

    def test_rejects_when_no_pattern(self):
        empty = ir.register_program(
            ir.Program("ra-none", (ir.Assign("x", C(1)),)), replace=True)
        with pytest.raises(TransformError, match="pattern"):
            reassociate_reduction(empty, ReductionSpec())

    def test_semantics_preserved(self):
        """Reassociated Figure 11 still computes the exact product."""
        chain = derive_full_chain(3)
        from repro.transform import SecondDimSpec, layout_second_dim
        from repro.transform.second_dim import SecondDimSuite

        g, ab = 3, 6
        a = random_matrix(g * ab, 61)
        b = random_matrix(g * ab, 62)
        reassociated = reassociate_reduction(
            chain.dsc_2d.row_carrier, ReductionSpec(),
            name=chain.dsc_2d.row_carrier.name)  # keep main's binding
        layout = layout_second_dim(a, b, SecondDimSpec(g=g))
        # zero-init C, the reassociation's precondition
        for i in range(g):
            for j in range(g):
                layout[(i, j)]["C"] = {
                    (i, j): np.zeros((ab, ab))}
        fabric = SimFabric(Grid2D(g), machine=FAST_TEST_MACHINE)
        for coord, node_vars in layout.items():
            fabric.load(coord, **node_vars)
        fabric.inject((0, 0), IRMessenger(chain.dsc_2d.main.name))
        result = fabric.run()
        c = np.empty((g * ab, g * ab))
        for _coord, node_vars in result.places.items():
            for (i, j), block in node_vars.get("C", {}).items():
                c[i * ab : (i + 1) * ab, j * ab : (j + 1) * ab] = block
        assert_allclose(c, a @ b)


class TestFullChain:
    @pytest.mark.parametrize("g", [2, 3, 4])
    def test_figure13_exact(self, g):
        chain = derive_full_chain(g)
        ab = 5
        a = random_matrix(g * ab, 63)
        b = random_matrix(g * ab, 64)
        spec = CarriedSpec(g=g)
        c, _result = run_suite(chain.pipelined_2d,
                               layout_carried_antidiagonal(a, b, spec),
                               g, ab)
        assert_allclose(c, a @ b, what=f"derived fig13 g={g}")

    @pytest.mark.parametrize("g", [2, 3, 4])
    def test_figure15_exact(self, g):
        chain = derive_full_chain(g)
        ab = 5
        a = random_matrix(g * ab, 65)
        b = random_matrix(g * ab, 66)
        spec = CarriedSpec(g=g)
        c, _result = run_suite(chain.phased_2d,
                               layout_carried_natural(a, b, spec),
                               g, ab)
        assert_allclose(c, a @ b, what=f"derived fig15 g={g}")

    def test_figure15_on_threads(self):
        chain = derive_full_chain(3)
        ab = 6
        a = random_matrix(3 * ab, 67)
        b = random_matrix(3 * ab, 68)
        spec = CarriedSpec(g=3)
        c, _result = run_suite(chain.phased_2d,
                               layout_carried_natural(a, b, spec),
                               3, ab, fabric_cls=ThreadFabric)
        assert_allclose(c, a @ b)

    def test_carrier_counts(self):
        """Figure 13/15 carrier population: g^2 of each kind."""
        chain = derive_full_chain(3)
        ab = 4
        a = random_matrix(3 * ab, 69)
        b = random_matrix(3 * ab, 70)
        spec = CarriedSpec(g=3)
        _c, result = run_suite(chain.phased_2d,
                               layout_carried_natural(a, b, spec),
                               3, ab)
        actors = {e.actor for e in result.trace.of_kind("hop")}
        a_carriers = {x for x in actors
                      if "rowcarrier" in x and "colcarrier" not in x}
        b_carriers = {x for x in actors if "colcarrier" in x}
        assert len(a_carriers) == 9
        assert len(b_carriers) == 9


class TestDerivedStructure:
    def test_fig13_schedules_match_the_paper(self):
        chain = derive_full_chain(3)
        a_tour = chain.pipelined_2d.a_carrier.body[1]
        # hop(node(mi, (N-1-mi+mj) % N))
        sigma = ir.Bin("%", ir.Bin("+", ir.Bin("-", C(2), V("mi")),
                                   V("mj")), C(3))
        assert a_tour.body[0] == ir.HopStmt((V("mi"), sigma))
        assert a_tour.body[1] == ir.WaitStmt("EP", (V("mk"),))
        assert a_tour.body[-1] == ir.SignalStmt("EC")

    def test_fig15_schedules_match_the_paper(self):
        chain = derive_full_chain(3)
        a_tour = chain.phased_2d.a_carrier.body[1]
        # hop(node(mi, (N-1-mi+(mj-mk)) % N)) == (N-1-mi-mk+mj) % N
        shifted = ir.Bin("-", V("mj"), V("mk"))
        sigma = ir.Bin("%", ir.Bin("+", ir.Bin("-", C(2), V("mi")),
                                   shifted), C(3))
        assert a_tour.body[0] == ir.HopStmt((V("mi"), sigma))

    def test_slot_protocol_synthesized(self):
        chain = derive_full_chain(3)
        b_tour = chain.pipelined_2d.b_carrier.body[1]
        kinds = [type(s).__name__ for s in b_tour.body]
        assert kinds == ["HopStmt", "WaitStmt", "NodeSet", "SignalStmt"]
        assert b_tour.body[1].event == "EC"
        assert b_tour.body[3] == ir.SignalStmt("EP", (V("mk"),))

    def test_initial_ec_prescribed_everywhere(self):
        chain = derive_full_chain(2)
        assert len(chain.pipelined_2d.initial_signals) == 4
        assert all(sig[1] == "EC"
                   for sig in chain.pipelined_2d.initial_signals)

    def test_timing_matches_handcoded_fig15(self):
        """The derived Figure 15 performs like the hand-written IR at
        the same granularity on the calibrated machine."""
        from repro.matmul.ir2d import build_fig15, run_ir2d_suite

        g, ab = 3, 64
        chain = derive_full_chain(g)
        spec = CarriedSpec(g=g)
        a = random_matrix(g * ab, 73)
        b = random_matrix(g * ab, 74)
        _c, derived = run_suite(chain.phased_2d,
                                layout_carried_natural(a, b, spec),
                                g, ab, machine=SUN_BLADE_100)
        hand = build_fig15(g, a, b, ab=ab)
        _c2, hand_result = run_ir2d_suite(hand, "sim",
                                          machine=SUN_BLADE_100)
        assert derived.time == pytest.approx(hand_result.time, rel=0.35)