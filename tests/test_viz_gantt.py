"""Gantt rendering and Chrome trace export."""

import json

from repro.fabric.trace import TraceLog
from repro.matmul import MatmulCase, run_variant
from repro.viz import render_gantt, to_chrome_trace


def sample_trace():
    log = TraceLog()
    log.record(t0=0.0, t1=1.0, place=0, actor="carrier0", kind="compute")
    log.record(t0=1.0, t1=2.0, place=1, actor="carrier0", kind="compute")
    log.record(t0=1.0, t1=2.0, place=0, actor="carrier1", kind="compute")
    log.record(t0=0.5, t1=0.6, place=1, actor="carrier0", kind="hop",
               src_place=0)
    return log


class TestGantt:
    def test_rows_per_actor(self):
        out = render_gantt(sample_trace(), width=20)
        lines = out.splitlines()
        assert lines[1].startswith("carrier0")
        assert lines[2].startswith("carrier1")

    def test_place_digits(self):
        out = render_gantt(sample_trace(), width=20)
        carrier0_row = out.splitlines()[1]
        assert "0" in carrier0_row and "1" in carrier0_row

    def test_empty(self):
        assert render_gantt(TraceLog()) == "(no activity)"

    def test_actor_cap(self):
        log = TraceLog()
        for i in range(30):
            log.record(t0=float(i), t1=i + 1.0, place=0, actor=f"m{i}",
                       kind="compute")
        out = render_gantt(log, max_actors=5)
        assert "+25 more actors" in out

    def test_real_pipeline_reads_as_staircase(self):
        case = MatmulCase(n=1536, ab=128, shadow=True)
        result = run_variant("navp-1d-pipeline", case, geometry=3)
        out = render_gantt(result.trace, width=40)
        assert "RowCarrier1D" in out


class TestChromeTrace:
    def test_valid_json_with_all_events(self):
        blob = to_chrome_trace(sample_trace())
        doc = json.loads(blob)
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 4
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {m["args"]["name"] for m in metas} == {"carrier0",
                                                      "carrier1"}

    def test_scaling_and_pids(self):
        doc = json.loads(to_chrome_trace(sample_trace(), time_scale=1e3))
        first = doc["traceEvents"][0]
        assert first["ts"] == 0.0
        assert first["dur"] == 1000.0
        assert {e["pid"] for e in doc["traceEvents"]
                if e["ph"] == "X"} == {0, 1}

    def test_hop_carries_source(self):
        doc = json.loads(to_chrome_trace(sample_trace()))
        hops = [e for e in doc["traceEvents"] if e.get("cat") == "hop"]
        assert hops[0]["args"]["from_place"] == 0
