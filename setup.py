"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so
``pip install -e .`` also works on minimal/offline environments whose
setuptools lacks the PEP 660 editable-wheel path (no ``wheel`` package).
"""

from setuptools import setup

setup()
