"""Exception hierarchy for the repro package.

Keeping all exceptions in one module lets callers catch
:class:`ReproError` for anything raised deliberately by this library,
while still being able to discriminate on the specific subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed or invoked with invalid parameters."""


class TopologyError(ConfigurationError):
    """A place/coordinate does not exist in the current topology."""


class PartitionError(ConfigurationError):
    """A matrix order is not divisible as required by a partitioning."""


class FaultPlanError(ConfigurationError):
    """A fault plan is malformed (bad spec fields or invalid JSON)."""


class FabricError(ReproError):
    """Generic runtime failure inside a fabric executor."""


class ResilienceError(FabricError):
    """A checkpoint/recovery operation failed (e.g. restore of a cut
    captured on a different fabric, or a worker that exhausted its
    respawn budget)."""


class DeadlockError(FabricError):
    """The simulation or runtime can make no further progress.

    Raised when runnable work is exhausted while messengers/processes are
    still blocked on events, resources, or receives.
    """


class NonLocalEventError(FabricError):
    """An event operation targeted a place other than the current one.

    NavP events are node-local: both ``signalEvent`` and ``waitEvent``
    always act on the event table of the PE where the messenger
    currently resides (see Figures 11/13/15 of the paper).
    """


class MigrationError(FabricError):
    """A messenger could not be migrated (e.g. unpicklable state)."""


class ProtocolError(FabricError):
    """An algorithm-level invariant was violated at runtime.

    Example: an ``ACarrier`` found a B slot holding a block with a
    mismatched ``k`` index, meaning the pipeline pairing was broken.
    """


class SimulationError(FabricError):
    """The discrete-event kernel was used incorrectly."""


class ServeError(ReproError):
    """A failure in the ``repro serve`` job service or its client."""


class AdmissionError(ServeError):
    """The job service refused to queue a submission.

    The message is the rejection reason the client sees verbatim:
    unknown program, queue depth bound, per-tenant cap, a lease wider
    than the pool, or a statically detected protocol deadlock.
    """


class LedgerError(ServeError):
    """The durable job ledger hit unrecoverable corruption or misuse.

    A torn *final* record (a crash mid-write) is tolerated silently on
    replay; this error means something worse — garbage in the middle
    of a segment, a record for a job the log never admitted, or an
    operation on a ledger in the wrong state.
    """


class AnalysisError(ReproError):
    """A static analysis could not be performed on a program.

    Raised by :mod:`repro.analysis` when a walker meets an IR node type
    that has not been registered (see
    :func:`repro.analysis.visitor.register_expr_type`) or when an
    analysis's structural precondition (e.g. a unique loop over a
    variable) does not hold. Distinct from the *result* of an analysis,
    which is a list of :class:`repro.analysis.diagnostics.Diagnostic`.
    """


class TransformError(ReproError):
    """A program transformation could not be applied safely."""


class VerificationError(ReproError):
    """A computed result failed verification against the reference."""
