"""Text renderings: space-time diagrams and data-layout maps."""

from .gantt import render_gantt, to_chrome_trace
from .irprint import format_body, format_program
from .layout import (
    describe_1d_origin,
    describe_1d_phase,
    describe_2d_antidiagonal,
    describe_2d_natural,
    render_figure,
)
from .spacetime import actor_labels, render_spacetime

__all__ = [
    "render_spacetime",
    "actor_labels",
    "render_gantt",
    "to_chrome_trace",
    "format_program",
    "format_body",
    "describe_1d_origin",
    "describe_1d_phase",
    "describe_2d_antidiagonal",
    "describe_2d_natural",
    "render_figure",
]
