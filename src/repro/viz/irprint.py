"""Pretty-printing navigational IR as the paper's pseudocode style.

The transformation chain is easiest to inspect when programs print the
way Figures 2-15 read — ``hop(node[...])``, ``inject(...)``, numbered
loops. Used by the transform demo and the tests that compare derived
programs against the figures.
"""

from __future__ import annotations

from ..navp import ir

__all__ = ["format_program", "format_body", "format_path",
           "format_diagnostic"]


def format_program(program: ir.Program) -> str:
    params = f"({', '.join(program.params)})" if program.params else ""
    lines = [f"program {program.name}{params}"]
    lines.extend(format_body(program.body, indent="  "))
    return "\n".join(lines)


def format_body(body, indent: str = "") -> list:
    lines = []
    for stmt in body:
        lines.extend(_format_stmt(stmt, indent))
    return lines


def _format_stmt(stmt: ir.Stmt, indent: str) -> list:
    if isinstance(stmt, ir.For):
        head = f"{indent}for {stmt.var} in 0..{stmt.count!r}-1:"
        return [head] + format_body(stmt.body, indent + "  ")
    if isinstance(stmt, ir.If):
        lines = [f"{indent}if {stmt.cond!r}:"]
        lines += format_body(stmt.then, indent + "  ")
        if stmt.orelse:
            lines.append(f"{indent}else:")
            lines += format_body(stmt.orelse, indent + "  ")
        return lines
    if isinstance(stmt, ir.HopStmt):
        return [f"{indent}hop(node{list(stmt.place)!r})"]
    if isinstance(stmt, ir.InjectStmt):
        args = ", ".join(f"{var}={expr!r}" for var, expr in stmt.bindings)
        return [f"{indent}inject({stmt.program}({args}))"]
    if isinstance(stmt, ir.WaitStmt):
        return [f"{indent}waitEvent({stmt.event}{list(stmt.args)!r})"]
    if isinstance(stmt, ir.SignalStmt):
        suffix = "" if stmt.count == ir.Const(1) else f" x{stmt.count!r}"
        return [f"{indent}signalEvent({stmt.event}"
                f"{list(stmt.args)!r}){suffix}"]
    if isinstance(stmt, ir.Assign):
        return [f"{indent}{stmt.var} = {stmt.expr!r}"]
    if isinstance(stmt, ir.ComputeStmt):
        args = ", ".join(repr(a) for a in stmt.args)
        return [f"{indent}{stmt.out} = {stmt.kernel}({args})"]
    if isinstance(stmt, ir.NodeSet):
        return [f"{indent}{stmt.name}{list(stmt.idx)!r} = {stmt.expr!r}"]
    return [f"{indent}{stmt!r}"]


# --------------------------------------------------------------------------
# diagnostics (repro lint)
# --------------------------------------------------------------------------

def format_path(path: tuple) -> str:
    """A statement path in source-ish notation: ``0 > 1.then > 2``."""
    if not path:
        return "<program>"
    parts = []
    for step in path:
        if isinstance(step, tuple):
            idx, branch = step
            parts.append(f"{idx}.{branch}")
        else:
            parts.append(str(step))
    return " > ".join(parts)


def format_diagnostic(diag, registry=None) -> str:
    """Render one analysis finding with the statement it addresses.

    ``diag`` is a :class:`repro.analysis.diagnostics.Diagnostic`; when
    its program is registered (in ``registry``, default the global
    one), the flagged statement is printed beneath the finding in the
    figure style, so the report reads like annotated pseudocode.
    """
    if registry is None:
        registry = ir.REGISTRY
    head = (f"{diag.severity}[{diag.category}] {diag.program}"
            f" @ {format_path(diag.path)}: {diag.message}")
    prog = registry.get(diag.program)
    if prog is None or not diag.path:
        return head
    try:
        stmt = ir.node_at(prog, tuple(diag.path[:-1]), diag.path[-1])
    except Exception:
        return head
    body = "\n".join(_format_stmt(stmt, "    | "))
    return f"{head}\n{body}"
