"""ASCII renderings of the paper's initial data distributions.

Figures 4, 6, 8, 10, 12 and 14 of the paper depict where the blocks of
A, B and C sit before computation begins. These renderers derive the
placements from the same index formulas the layout builders use, at the
paper's fine granularity (``N == P``), and print block-name maps such
as::

    Figure 8 (1D phase shifted)
    node(0): A2* | B*0 C*0
    node(1): A1* | B*1 C*1
    node(2): A0* | B*2 C*2

Tests cross-check the formulas against the real layout functions by
verifying memory aliasing of the placed NumPy views.
"""

from __future__ import annotations

__all__ = [
    "describe_1d_origin",
    "describe_1d_phase",
    "describe_2d_antidiagonal",
    "describe_2d_natural",
    "render_figure",
]


def describe_1d_origin(p: int) -> dict:
    """Figures 4/6: A whole on node(0); B, C column strips."""
    placement: dict = {(j,): [] for j in range(p)}
    placement[(0,)].append("A (entire matrix)")
    for j in range(p):
        placement[(j,)].append(f"B(*,{j}) C(*,{j})")
    return placement


def describe_1d_phase(p: int) -> dict:
    """Figure 8: A row strips reverse-staggered onto node(N-1-i)."""
    placement: dict = {(j,): [] for j in range(p)}
    for i in range(p):
        placement[((p - 1 - i) % p,)].append(f"A({i},*) [after staggering]")
    for j in range(p):
        placement[(j,)].append(f"B(*,{j}) C(*,{j})")
    return placement


def describe_2d_antidiagonal(g: int) -> dict:
    """Figures 10/12: A rows and B columns on the anti-diagonal."""
    placement: dict = {(i, j): [] for i in range(g) for j in range(g)}
    for line in range(g):
        placement[(g - 1 - line, line)].append(f"A({g - 1 - line},*)")
        placement[(g - 1 - line, line)].append(f"B(*,{line})")
    for i in range(g):
        for j in range(g):
            placement[(i, j)].append(f"C({i},{j})=0")
    return placement


def describe_2d_natural(g: int) -> dict:
    """Figure 14: A, B, C blocks all on node(i, j)."""
    placement: dict = {}
    for i in range(g):
        for j in range(g):
            placement[(i, j)] = [
                f"A({i},{j})", f"B({i},{j})", f"C({i},{j})=0",
            ]
    return placement


def render_figure(title: str, placement: dict) -> str:
    """Print a placement dict as one line per PE."""
    lines = [title]
    for coord in sorted(placement):
        name = "node" + str(tuple(coord))
        lines.append(f"  {name}: " + "  ".join(placement[coord]))
    return "\n".join(lines)
