"""Per-actor Gantt rendering and Chrome trace-viewer export.

The space-time view (:mod:`repro.viz.spacetime`) shows PEs over time,
like the paper's Figure 1; the Gantt view transposes that to one row
per *messenger*, which is the natural way to read carrier pipelines.
:func:`to_chrome_trace` exports any :class:`~repro.fabric.trace.TraceLog`
to the Chrome trace-viewer JSON format (load via ``chrome://tracing``
or https://ui.perfetto.dev) for interactive inspection of large runs.
"""

from __future__ import annotations

import json

from ..fabric.trace import TraceLog

__all__ = ["render_gantt", "to_chrome_trace"]


def render_gantt(
    trace: TraceLog,
    width: int = 64,
    kinds: tuple = ("compute",),
    max_actors: int = 24,
) -> str:
    """One row per actor; blocks mark activity, digits the PE index."""
    events = [e for e in trace if e.kind in kinds]
    if not events:
        return "(no activity)"
    makespan = max(e.t1 for e in events)
    actors: list = []
    for event in sorted(events, key=lambda e: (e.t0, e.actor)):
        if event.actor not in actors:
            actors.append(event.actor)
    clipped = actors[:max_actors]
    name_width = max(len(a) for a in clipped)
    lines = [f"{'actor':<{name_width}} |{'time -->':<{width}}|"]
    for actor in clipped:
        row = [" "] * width
        for event in events:
            if event.actor != actor:
                continue
            lo = int(event.t0 / makespan * (width - 1))
            hi = max(lo + 1, int(event.t1 / makespan * (width - 1)) + 1)
            mark = str(event.place % 10)
            for x in range(lo, min(hi, width)):
                row[x] = mark
        lines.append(f"{actor:<{name_width}} |{''.join(row)}|")
    if len(actors) > max_actors:
        lines.append(f"... (+{len(actors) - max_actors} more actors)")
    lines.append(f"(digits are PE indices mod 10; span = "
                 f"{makespan:.4f} s)")
    return "\n".join(lines)


def to_chrome_trace(trace: TraceLog, time_scale: float = 1e6) -> str:
    """Serialize a trace to Chrome trace-viewer JSON.

    Each place becomes a "process", each actor a "thread"; durations
    are scaled by ``time_scale`` (default: seconds to microseconds).
    """
    events = []
    tids: dict = {}
    for event in trace:
        tid = tids.setdefault(event.actor, len(tids) + 1)
        events.append({
            "name": event.note or event.kind,
            "cat": event.kind,
            "ph": "X",
            "ts": event.t0 * time_scale,
            "dur": max(0.0, (event.t1 - event.t0) * time_scale),
            "pid": event.place,
            "tid": tid,
            "args": ({"from_place": event.src_place}
                     if event.src_place is not None else {}),
        })
    meta = [
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
         "args": {"name": actor}}
        for actor, tid in tids.items()
    ]
    return json.dumps({"traceEvents": events + meta,
                       "displayTimeUnit": "ms"})
