"""ASCII space-time diagrams — the reproduction of Figure 1.

The paper's Figure 1 shows the three transformations as space-time
plots: time flows downward, one column per PE, and each cell shows
which computation thread occupies the PE. We regenerate the same
pictures from real execution traces: run a fine-granularity instance
(one strip per PE, as in the paper's ``N == P`` presentation) on the
simulator and render its compute intervals.

Each messenger that computes gets a stable single-character label in
injection order (``0``, ``1``, ``2`` ... mirroring the paper's thread
numbers); idle time renders as ``.`` and multi-actor buckets pick the
actor covering the bucket midpoint.
"""

from __future__ import annotations

import string

from ..fabric.trace import TraceLog

__all__ = ["render_spacetime", "actor_labels"]

_SYMBOLS = string.digits + string.ascii_lowercase + string.ascii_uppercase


def actor_labels(trace: TraceLog, kind: str = "compute") -> dict:
    """Stable single-character labels for computing actors.

    Actors are labelled in order of their first compute interval, which
    for the matmul carriers coincides with injection order.
    """
    order = []
    seen = set()
    for event in sorted(trace.of_kind(kind), key=lambda e: (e.t0, e.actor)):
        if event.actor not in seen:
            seen.add(event.actor)
            order.append(event.actor)
    return {
        actor: _SYMBOLS[i % len(_SYMBOLS)] for i, actor in enumerate(order)
    }


def render_spacetime(
    trace: TraceLog,
    n_places: int,
    buckets: int = 24,
    kind: str = "compute",
    title: str = "",
) -> str:
    """Render compute occupancy as a time-by-PE character grid."""
    events = trace.of_kind(kind)
    labels = actor_labels(trace, kind)
    makespan = max((e.t1 for e in events), default=0.0)
    lines = []
    if title:
        lines.append(title)
    header = "time     " + " ".join(f"PE{p}" for p in range(n_places))
    lines.append(header)
    if makespan <= 0.0 or buckets < 1:
        return "\n".join(lines + ["(no activity)"])
    dt = makespan / buckets
    for b in range(buckets):
        mid = (b + 0.5) * dt
        row = []
        for p in range(n_places):
            mark = "."
            for e in events:
                if e.place == p and e.t0 <= mid < e.t1:
                    mark = labels[e.actor]
                    break
            row.append(mark.center(3))
        lines.append(f"{b * dt:8.3f} " + " ".join(row))
    legend = ", ".join(
        f"{symbol}={actor}" for actor, symbol in list(labels.items())[:12]
    )
    lines.append(f"legend: {legend}" + (" ..." if len(labels) > 12 else ""))
    return "\n".join(lines)
