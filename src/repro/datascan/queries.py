"""Composable aggregation queries for the data-scan case study.

A query is three functions — ``local`` (fold a chunk into a partial),
``merge`` (combine two partials), ``finish`` (partial to answer) — the
shape that lets the *same* query run under every execution strategy:
carried by a migrating messenger, reduced over SPMD ranks, or computed
centrally after shipping the data. ``partial_nbytes`` bounds the state
a messenger must carry, which is the whole point of the comparison:
a histogram travels in a few hundred bytes while the data it summarizes
is megabytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

__all__ = ["Query", "histogram", "moments", "top_k", "count_where",
           "value_range"]


@dataclass(frozen=True)
class Query:
    """An aggregation expressible as local-fold + merge + finish."""

    name: str
    local: Callable[[np.ndarray], Any]
    merge: Callable[[Any, Any], Any]
    finish: Callable[[Any], Any]
    partial_nbytes: int           # modeled size of a carried partial
    flops_per_item: float = 2.0   # modeled compute per data item

    def over_chunks(self, chunks) -> Any:
        """Reference evaluation: fold all chunks sequentially."""
        partial = None
        for chunk in chunks:
            piece = self.local(chunk)
            partial = piece if partial is None else self.merge(partial,
                                                               piece)
        return self.finish(partial)


def histogram(bins: int = 32, lo: float = 0.0, hi: float = 1.0) -> Query:
    """Fixed-bin histogram of all values."""
    edges = np.linspace(lo, hi, bins + 1)

    def local(chunk):
        counts, _ = np.histogram(chunk, bins=edges)
        return counts

    return Query(
        name=f"histogram[{bins}]",
        local=local,
        merge=lambda a, b: a + b,
        finish=lambda p: p,
        partial_nbytes=bins * 8,
        flops_per_item=4.0,
    )


def moments() -> Query:
    """Count, mean and variance via parallel Welford/Chan merging."""

    def local(chunk):
        n = chunk.size
        mean = float(chunk.mean()) if n else 0.0
        m2 = float(((chunk - mean) ** 2).sum()) if n else 0.0
        return (n, mean, m2)

    def merge(a, b):
        n_a, mean_a, m2_a = a
        n_b, mean_b, m2_b = b
        n = n_a + n_b
        if n == 0:
            return (0, 0.0, 0.0)
        delta = mean_b - mean_a
        mean = mean_a + delta * n_b / n
        m2 = m2_a + m2_b + delta * delta * n_a * n_b / n
        return (n, mean, m2)

    def finish(p):
        n, mean, m2 = p
        return {"count": n, "mean": mean,
                "variance": m2 / n if n else 0.0}

    return Query(name="moments", local=local, merge=merge, finish=finish,
                 partial_nbytes=24, flops_per_item=6.0)


def top_k(k: int = 10) -> Query:
    """The k largest values across all chunks."""

    def local(chunk):
        if chunk.size <= k:
            return np.sort(chunk)[::-1].copy()
        return np.sort(np.partition(chunk, -k)[-k:])[::-1]

    def merge(a, b):
        both = np.concatenate([a, b])
        if both.size <= k:
            return np.sort(both)[::-1]
        return np.sort(np.partition(both, -k)[-k:])[::-1]

    return Query(name=f"top{k}", local=local, merge=merge,
                 finish=lambda p: p, partial_nbytes=k * 8,
                 flops_per_item=3.0)


def count_where(threshold: float) -> Query:
    """How many values exceed ``threshold``."""
    return Query(
        name=f"count>{threshold}",
        local=lambda chunk: int((chunk > threshold).sum()),
        merge=lambda a, b: a + b,
        finish=lambda p: p,
        partial_nbytes=8,
        flops_per_item=1.0,
    )


def value_range() -> Query:
    """(min, max) over all values."""
    return Query(
        name="range",
        local=lambda chunk: (float(chunk.min()), float(chunk.max())),
        merge=lambda a, b: (min(a[0], b[0]), max(a[1], b[1])),
        finish=lambda p: p,
        partial_nbytes=16,
        flops_per_item=2.0,
    )
