"""Data-scan case study: moving computation to data (NavP ref. [13])."""

from .queries import (
    Query,
    count_where,
    histogram,
    moments,
    top_k,
    value_range,
)
from .strategies import (
    DataScanCase,
    ScanResult,
    run_navp_scan,
    run_ship_data,
    run_spmd_reduce,
)

__all__ = [
    "Query",
    "histogram",
    "moments",
    "top_k",
    "count_where",
    "value_range",
    "DataScanCase",
    "ScanResult",
    "run_navp_scan",
    "run_ship_data",
    "run_spmd_reduce",
]
