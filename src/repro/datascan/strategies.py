"""Three ways to answer a query over distributed data.

Reference [13] of the paper ("Distributed sequential computing using
mobile code: moving computation to data") is NavP's founding argument:
when the data is large and the computation's state is small, migrate
the computation. This module stages the comparison on the calibrated
cluster:

* :func:`run_ship_data` — the anti-pattern: every PE ships its whole
  partition to a coordinator, which computes alone. Network bytes =
  the dataset; one CPU does all the work.
* :func:`run_navp_scan` — DSC: one messenger tours the PEs, folding
  each partition where it lives and carrying only the query's partial
  (a few bytes to a few kB). Sequential compute, negligible traffic.
* :func:`run_navp_scan` with ``carriers > 1`` — pipelined DSC: the
  partitions are scanned by several messengers over disjoint PE
  ranges, whose partials are merged at the end (legal because query
  merges are associative).
* :func:`run_spmd_reduce` — the SPMD answer: every rank folds its own
  partition, then a reduction combines partials.

All strategies produce the identical answer; the benchmark compares
their modeled cost as the dataset grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import ConfigurationError
from ..fabric.factory import make_fabric
from ..fabric.topology import Grid1D
from ..machine.presets import SUN_BLADE_100
from ..machine.spec import MachineSpec
from ..mpi.comm import Comm, run_spmd
from ..navp.messenger import Messenger
from .queries import Query

__all__ = ["DataScanCase", "ScanResult", "run_ship_data",
           "run_navp_scan", "run_spmd_reduce"]


@dataclass(frozen=True)
class DataScanCase:
    """``pes`` partitions of ``items_per_pe`` float64 values each."""

    pes: int
    items_per_pe: int
    seed: int = 5150

    def partitions(self) -> list:
        rng = np.random.default_rng(self.seed)
        return [rng.random(self.items_per_pe) for _ in range(self.pes)]

    @property
    def total_bytes(self) -> int:
        return self.pes * self.items_per_pe * 8

    def reference(self, query: Query) -> Any:
        return query.over_chunks(self.partitions())


@dataclass
class ScanResult:
    strategy: str
    answer: Any
    time: float
    details: dict = field(default_factory=dict)


def _load(fabric, case: DataScanCase) -> None:
    for j, part in enumerate(case.partitions()):
        fabric.load((j,), data=part)


class _ScanMessenger(Messenger):
    """Tours a PE range folding partitions into a carried partial, then
    delivers the partial to the merge PE and announces it."""

    def __init__(self, query: Query, stops, items: int, deliver_to: tuple):
        self._query = query
        self._stops = list(stops)
        self._items = items
        self._deliver_to = tuple(deliver_to)
        self.mpartial = None  # agent variable: the carried state

    def main(self):
        query = self._query
        flops = query.flops_per_item * self._items
        payload = lambda: (query.partial_nbytes  # noqa: E731
                           + self.machine.hop_state_bytes)
        for stop in self._stops:
            yield self.hop((stop,), nbytes=payload())
            data = self.vars["data"]

            def fold(data=data):
                piece = query.local(data)
                return piece if self.mpartial is None else query.merge(
                    self.mpartial, piece)

            self.mpartial = yield self.compute(fold, flops=flops)
        if self.here != self._deliver_to:
            yield self.hop(self._deliver_to, nbytes=payload())
        self.vars.setdefault("partials", []).append(self.mpartial)
        yield self.signal_event("partial-ready")


class _Merger(Messenger):
    """Awaits all carrier partials at the last PE and finishes."""

    def __init__(self, query: Query, expected: int, home: tuple):
        self._query = query
        self._expected = expected
        self._home = home

    def main(self):
        yield self.hop(self._home)
        for _ in range(self._expected):
            yield self.wait_event("partial-ready")
        partials = self.vars["partials"]

        def combine():
            out = partials[0]
            for piece in partials[1:]:
                out = self._query.merge(out, piece)
            return self._query.finish(out)

        self.vars["answer"] = yield self.compute(
            combine, flops=self._expected * 10.0)


def run_navp_scan(
    case: DataScanCase,
    query: Query,
    carriers: int = 1,
    machine: MachineSpec | None = None,
    fabric: str = "sim",
) -> ScanResult:
    """DSC (``carriers=1``) or pipelined DSC over PE ranges."""
    machine = machine if machine is not None else SUN_BLADE_100
    if not 1 <= carriers <= case.pes or case.pes % carriers:
        raise ConfigurationError(
            f"carriers must divide the PE count ({case.pes})")
    fab = make_fabric(fabric, Grid1D(case.pes), machine=machine,
                      trace=False)
    _load(fab, case)
    span = case.pes // carriers
    home = (case.pes - 1,)
    for c in range(carriers):
        stops = list(range(c * span, (c + 1) * span))
        fab.inject((stops[0],),
                   _ScanMessenger(query, stops, case.items_per_pe, home))
    fab.inject(home, _Merger(query, carriers, home))
    result = fab.run()
    return ScanResult(
        strategy=f"navp-scan x{carriers}",
        answer=result.places[home]["answer"],
        time=result.time,
        details={"carriers": carriers},
    )


def run_ship_data(
    case: DataScanCase,
    query: Query,
    machine: MachineSpec | None = None,
) -> ScanResult:
    """Ship every partition to rank 0, compute centrally."""
    machine = machine if machine is not None else SUN_BLADE_100

    def program(comm: Comm):
        j = comm.coord[0]
        if j != 0:
            yield comm.send((0,), ("part", j), comm.vars["data"])
            return
        chunks = [comm.vars["data"]]
        for _ in range(case.pes - 1):
            msg = yield comm.recv(tag=None)
            chunks.append(msg.payload)

        def compute_all():
            return query.over_chunks(chunks)

        comm.vars["answer"] = yield comm.compute(
            compute_all,
            flops=query.flops_per_item * case.items_per_pe * case.pes,
            kind=None,
        )

    result = run_spmd(Grid1D(case.pes), program, machine=machine,
                      setup=lambda fab: _load(fab, case), trace=False)
    return ScanResult(
        strategy="ship-data",
        answer=result.places[(0,)]["answer"],
        time=result.time,
        details={"bytes_moved": case.total_bytes},
    )


def run_spmd_reduce(
    case: DataScanCase,
    query: Query,
    machine: MachineSpec | None = None,
) -> ScanResult:
    """Every rank folds locally; a reduction combines the partials."""
    machine = machine if machine is not None else SUN_BLADE_100
    group = [(j,) for j in range(case.pes)]

    def program(comm: Comm):
        local = yield comm.compute(
            lambda: query.local(comm.vars["data"]),
            flops=query.flops_per_item * case.items_per_pe, kind=None)
        combined = yield from comm.reduce(group, (0,), "scan", local,
                                          query.merge)
        if comm.coord == (0,):
            comm.vars["answer"] = query.finish(combined)

    result = run_spmd(Grid1D(case.pes), program, machine=machine,
                      setup=lambda fab: _load(fab, case), trace=False)
    return ScanResult(
        strategy="spmd-reduce",
        answer=result.places[(0,)]["answer"],
        time=result.time,
    )
