"""Structural rewriting utilities over the navigational IR.

The three paper transformations are implemented as tree rewrites; this
module provides the generic machinery: bottom-up expression mapping,
statement-tree rebuilding, and structural search.
"""

from __future__ import annotations

from collections.abc import Callable

from ..errors import TransformError
from ..navp import ir

__all__ = [
    "map_expr",
    "map_stmt_exprs",
    "substitute_expr",
    "find_loops",
    "find_unique_loop",
    "collect",
]


def map_expr(fn: Callable, expr: ir.Expr) -> ir.Expr:
    """Rebuild ``expr`` bottom-up, applying ``fn`` to every node."""
    if isinstance(expr, (ir.Const, ir.Var)):
        return fn(expr)
    if isinstance(expr, ir.Bin):
        return fn(ir.Bin(expr.op, map_expr(fn, expr.left),
                         map_expr(fn, expr.right)))
    if isinstance(expr, ir.NodeGet):
        return fn(ir.NodeGet(expr.name,
                             tuple(map_expr(fn, e) for e in expr.idx)))
    if isinstance(expr, ir.Index):
        return fn(ir.Index(map_expr(fn, expr.base),
                           tuple(map_expr(fn, e) for e in expr.idx)))
    raise TransformError(f"unknown expression {expr!r}")


def map_stmt_exprs(fn: Callable, stmt: ir.Stmt) -> ir.Stmt:
    """Rebuild a statement, applying ``fn`` to every contained expr."""
    m = lambda e: map_expr(fn, e)  # noqa: E731
    if isinstance(stmt, ir.For):
        return ir.For(stmt.var, m(stmt.count),
                      tuple(map_stmt_exprs(fn, s) for s in stmt.body))
    if isinstance(stmt, ir.If):
        return ir.If(m(stmt.cond),
                     tuple(map_stmt_exprs(fn, s) for s in stmt.then),
                     tuple(map_stmt_exprs(fn, s) for s in stmt.orelse))
    if isinstance(stmt, ir.Assign):
        return ir.Assign(stmt.var, m(stmt.expr))
    if isinstance(stmt, ir.ComputeStmt):
        return ir.ComputeStmt(stmt.kernel, tuple(m(e) for e in stmt.args),
                              stmt.out, stmt.kind)
    if isinstance(stmt, ir.NodeSet):
        return ir.NodeSet(stmt.name, tuple(m(e) for e in stmt.idx),
                          m(stmt.expr))
    if isinstance(stmt, ir.HopStmt):
        return ir.HopStmt(tuple(m(e) for e in stmt.place))
    if isinstance(stmt, ir.InjectStmt):
        return ir.InjectStmt(stmt.program,
                             tuple((v, m(e)) for v, e in stmt.bindings))
    if isinstance(stmt, ir.WaitStmt):
        return ir.WaitStmt(stmt.event, tuple(m(e) for e in stmt.args))
    if isinstance(stmt, ir.SignalStmt):
        return ir.SignalStmt(stmt.event, tuple(m(e) for e in stmt.args),
                             m(stmt.count))
    raise TransformError(f"unknown statement {stmt!r}")


def substitute_expr(body: tuple, old: ir.Expr, new: ir.Expr) -> tuple:
    """Replace every expression structurally equal to ``old`` by ``new``."""

    def sub(expr: ir.Expr) -> ir.Expr:
        return new if expr == old else expr

    return tuple(map_stmt_exprs(sub, s) for s in body)


def find_loops(body: tuple, var: str, _path=()) -> list:
    """All (path, For) pairs binding loop variable ``var``."""
    hits = []
    for i, stmt in enumerate(body):
        if isinstance(stmt, ir.For):
            if stmt.var == var:
                hits.append((_path + (i,), stmt))
            hits.extend(find_loops(stmt.body, var, _path + (i,)))
        elif isinstance(stmt, ir.If):
            hits.extend(find_loops(stmt.then, var, _path + ((i, "then"),)))
            hits.extend(find_loops(stmt.orelse, var, _path + ((i, "else"),)))
    return hits


def find_unique_loop(program: ir.Program, var: str) -> tuple:
    """The single loop over ``var``; TransformError otherwise."""
    hits = find_loops(program.body, var)
    if len(hits) != 1:
        raise TransformError(
            f"expected exactly one loop over {var!r} in {program.name}, "
            f"found {len(hits)}"
        )
    return hits[0]


def _replace_at(body: tuple, path: tuple, new_stmt: ir.Stmt) -> tuple:
    """Rebuild ``body`` with the statement at ``path`` replaced."""
    step = path[0]
    if isinstance(step, tuple):
        idx, branch = step
        stmt = body[idx]
        if branch == "then":
            inner = _replace_at(stmt.then, path[1:], new_stmt) \
                if len(path) > 1 else path_error()
            replaced = ir.If(stmt.cond, inner, stmt.orelse)
        else:
            inner = _replace_at(stmt.orelse, path[1:], new_stmt)
            replaced = ir.If(stmt.cond, stmt.then, inner)
        return body[:idx] + (replaced,) + body[idx + 1 :]
    if len(path) == 1:
        return body[:step] + (new_stmt,) + body[step + 1 :]
    stmt = body[step]
    inner = _replace_at(stmt.body, path[1:], new_stmt)
    return body[:step] + (ir.For(stmt.var, stmt.count, inner),) \
        + body[step + 1 :]


def replace_at(program: ir.Program, path: tuple,
               new_stmt: ir.Stmt) -> ir.Program:
    """A copy of ``program`` with the statement at ``path`` replaced."""
    return ir.Program(program.name,
                      _replace_at(program.body, path, new_stmt),
                      program.params)


def collect(body: tuple, predicate: Callable) -> list:
    """All statements (recursively) satisfying ``predicate``."""
    out = []
    for stmt in body:
        if predicate(stmt):
            out.append(stmt)
        if isinstance(stmt, ir.For):
            out.extend(collect(stmt.body, predicate))
        elif isinstance(stmt, ir.If):
            out.extend(collect(stmt.then, predicate))
            out.extend(collect(stmt.orelse, predicate))
    return out


def path_error():  # pragma: no cover - defensive
    raise TransformError("invalid rewrite path")
