"""Structural rewriting utilities over the navigational IR.

The three paper transformations are implemented as tree rewrites; this
module provides the generic machinery: bottom-up expression mapping,
statement-tree rebuilding, and structural search. The traversal itself
is delegated to :mod:`repro.analysis.visitor` — the single place that
knows every IR node's structure — so a new node type registered there
is immediately rewritable here; this module only restates the
transformation-facing contract that a structural failure raises
:class:`~repro.errors.TransformError`.
"""

from __future__ import annotations

from collections.abc import Callable

from ..analysis import visitor
from ..errors import AnalysisError, TransformError
from ..navp import ir

__all__ = [
    "map_expr",
    "map_stmt_exprs",
    "substitute_expr",
    "find_loops",
    "find_unique_loop",
    "collect",
]


def map_expr(fn: Callable, expr: ir.Expr) -> ir.Expr:
    """Rebuild ``expr`` bottom-up, applying ``fn`` to every node."""
    try:
        return visitor.map_expr(fn, expr)
    except AnalysisError as exc:
        raise TransformError(str(exc)) from exc


def map_stmt_exprs(fn: Callable, stmt: ir.Stmt) -> ir.Stmt:
    """Rebuild a statement, applying ``fn`` to every contained expr."""
    try:
        return visitor.map_stmt_exprs(fn, stmt)
    except AnalysisError as exc:
        raise TransformError(str(exc)) from exc


def substitute_expr(body: tuple, old: ir.Expr, new: ir.Expr) -> tuple:
    """Replace every expression structurally equal to ``old`` by ``new``."""

    def sub(expr: ir.Expr) -> ir.Expr:
        return new if expr == old else expr

    return tuple(map_stmt_exprs(sub, s) for s in body)


def find_loops(body: tuple, var: str, _path=()) -> list:
    """All (path, For) pairs binding loop variable ``var``."""
    return [(tuple(_path) + p, s)
            for p, s in visitor.find_loops(body, var)]


def find_unique_loop(program: ir.Program, var: str) -> tuple:
    """The single loop over ``var``; TransformError otherwise."""
    hits = find_loops(program.body, var)
    if len(hits) != 1:
        raise TransformError(
            f"expected exactly one loop over {var!r} in {program.name}, "
            f"found {len(hits)}"
        )
    return hits[0]


def _replace_at(body: tuple, path: tuple, new_stmt: ir.Stmt) -> tuple:
    """Rebuild ``body`` with the statement at ``path`` replaced."""
    step = path[0]
    if isinstance(step, tuple):
        idx, branch = step
        stmt = body[idx]
        if branch == "then":
            inner = _replace_at(stmt.then, path[1:], new_stmt) \
                if len(path) > 1 else path_error()
            replaced = ir.If(stmt.cond, inner, stmt.orelse)
        else:
            inner = _replace_at(stmt.orelse, path[1:], new_stmt)
            replaced = ir.If(stmt.cond, stmt.then, inner)
        return body[:idx] + (replaced,) + body[idx + 1 :]
    if len(path) == 1:
        return body[:step] + (new_stmt,) + body[step + 1 :]
    stmt = body[step]
    inner = _replace_at(stmt.body, path[1:], new_stmt)
    return body[:step] + (ir.For(stmt.var, stmt.count, inner),) \
        + body[step + 1 :]


def replace_at(program: ir.Program, path: tuple,
               new_stmt: ir.Stmt) -> ir.Program:
    """A copy of ``program`` with the statement at ``path`` replaced."""
    return ir.Program(program.name,
                      _replace_at(program.body, path, new_stmt),
                      program.params)


def collect(body: tuple, predicate: Callable) -> list:
    """All statements (recursively, pre-order) satisfying ``predicate``."""
    return [stmt for _path, stmt in visitor.walk_stmts(body)
            if predicate(stmt)]


def path_error():  # pragma: no cover - defensive
    raise TransformError("invalid rewrite path")
