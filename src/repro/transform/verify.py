"""Semantic verification of transformed programs.

Every transformation's output is a *program*; the only acceptable proof
that a rewrite was safe is running it. :func:`run_stage` executes a
stage (a single program or a pipelined suite) on a fabric with a given
data layout and returns the assembled product and the fabric result;
:func:`verify_chain` runs all four stages of a
:class:`~repro.transform.examples.TransformChain` on the same inputs
and checks them against NumPy.
"""

from __future__ import annotations

import numpy as np

from ..errors import VerificationError
from ..fabric.factory import make_fabric
from ..fabric.topology import Grid1D
from ..machine.presets import SUN_BLADE_100
from ..machine.spec import MachineSpec
from ..navp import ir
from ..navp.interp import IRMessenger
from ..util.validation import assert_allclose, random_matrix
from .examples import (
    TransformChain,
    assemble_c,
    layout_dsc,
    layout_phase,
    layout_sequential,
)
from .pipeline import PipelinedSuite

__all__ = ["run_stage", "verify_chain", "ChainReport"]


def run_stage(
    stage,
    layout: dict,
    places: int,
    nb: int,
    ab: int,
    machine: MachineSpec | None = None,
    fabric: str = "sim",
    dtype=np.float64,
):
    """Run one stage over a 1-D chain; returns (C, FabricResult)."""
    machine = machine if machine is not None else SUN_BLADE_100
    main = stage.main if isinstance(stage, PipelinedSuite) else stage
    if not isinstance(main, ir.Program):
        raise VerificationError(f"not a program or suite: {stage!r}")
    fab = make_fabric(fabric, Grid1D(places), machine=machine, trace=True)
    for coord, node_vars in layout.items():
        fab.load(coord, **node_vars)
    fab.inject((0,), IRMessenger(main.name))
    result = fab.run()
    c = assemble_c(result.places, nb, ab, dtype=dtype)
    return c, result


class ChainReport(list):
    """(stage name, time, relative error) triples; renders as text."""

    def render(self) -> str:
        lines = ["stage                time(s)    rel.err"]
        for name, t, err in self:
            lines.append(f"{name:<20} {t:9.4f}   {err:.2e}")
        return "\n".join(lines)


def verify_chain(
    chain: TransformChain,
    ab: int = 8,
    seed: int = 7,
    machine: MachineSpec | None = None,
    fabric: str = "sim",
    rtol: float = 1e-10,
) -> ChainReport:
    """Run all four stages on one input; raise on any mismatch."""
    nb = chain.nb
    n = nb * ab
    a = random_matrix(n, seed)
    b = random_matrix(n, seed + 1)
    reference = a @ b
    stages = [
        ("sequential", chain.sequential, layout_sequential(a, b, nb), 1),
        ("dsc", chain.dsc, layout_dsc(a, b, nb), nb),
        ("pipelined", chain.pipelined, layout_dsc(a, b, nb), nb),
        ("phase-shifted", chain.phased, layout_phase(a, b, nb), nb),
    ]
    report = ChainReport()
    for stage_name, stage, layout, places in stages:
        c, result = run_stage(stage, layout, places, nb, ab,
                              machine=machine, fabric=fabric)
        err = assert_allclose(c, reference, rtol=rtol,
                              what=f"transform stage {stage_name}")
        report.append((stage_name, result.time, err))
    return report
