"""Keyed pipelining: pipelining a loop with forward carried dependences.

Plain pipelining (:mod:`repro.transform.pipeline`) requires the outer
loop's iterations to be fully independent. The wavefront's row loop is
not: row ``r`` reads the bottom boundary row ``r-1`` published — a
carried flow dependence. The paper's Figure-7 program still pipelines
it, because the dependence is *forward* with exact distance ``+1``: a
keyed wait/signal handshake (the race checker's R6 shape) orders each
reader behind the iteration that feeds it while leaving everything
else concurrent.

This module makes that derivation mechanical. Given a sequential
program whose body is a single loop over the work items:

1. :func:`~repro.transform.deps.check_forward_carried` proves every
   carried dependence is a node flow dependence with an exact positive
   distance — and reports where each one's endpoints sit;
2. before each carried *read*, in its innermost enclosing block, a
   ``WaitStmt`` on the event ``{var}-done`` keyed by the read's own key
   expression is inserted (inside the read's guard, so an iteration
   that does not read does not wait — row 0 never waits on row -1);
3. after each carried *write*, a matching ``SignalStmt`` keyed by the
   write's key is inserted;
4. the loop body becomes a carrier parameterized by the loop variable,
   and the main program reduces to injecting one carrier per iteration
   in order, exactly as in plain pipelining.

The generated suite is then re-verified whole:
:func:`~repro.transform.deps.check_race_free` must prove the handshake
actually orders every conflicting access pair across carrier
instances. A transform bug — a missed wait, a signal on the wrong key
— surfaces as a refusal here, not as a wrong answer at run time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import visitor
from ..analysis.deps import analyze_loop
from ..errors import TransformError
from ..navp import ir
from .deps import check_forward_carried, check_race_free
from .pipeline import PipelinedSuite
from .rewrite import find_unique_loop

__all__ = ["KeyedPipelineSpec", "keyed_pipeline"]


@dataclass(frozen=True)
class KeyedPipelineSpec:
    outer: str                  # loop variable becoming the carrier index
    carrier_name: str           # name for the generated carrier program
    inject_at: tuple            # coordinate exprs of the injection PE


def _event_name(var: str) -> str:
    return f"{var}-done"


def _insert(body: tuple, prefix: tuple, before: dict, after: dict) -> tuple:
    """Rebuild ``body`` with the collected wait/signal insertions.

    ``before``/``after`` map statement paths (walker convention) to the
    statements to splice in around them.
    """
    out: list = []
    for i, stmt in enumerate(body):
        path = prefix + (i,)
        out.extend(before.get(path, ()))
        rule = visitor.try_stmt_rule(stmt)
        bodies = rule.bodies(stmt)
        if bodies:
            new_bodies = tuple(
                _insert(sub,
                        prefix + ((i,) if label is None else ((i, label),)),
                        before, after)
                for label, sub in bodies)
            stmt = rule.rebuild(stmt, rule.exprs(stmt), new_bodies)
        out.append(stmt)
        out.extend(after.get(path, ()))
    return tuple(out)


def keyed_pipeline(program: ir.Program,
                   spec: KeyedPipelineSpec) -> PipelinedSuite:
    """Apply keyed pipelining to a sequential single-loop program."""
    forward = check_forward_carried(program, spec.outer)
    path, outer_loop = find_unique_loop(program, spec.outer)
    if path != (0,) or len(program.body) != 1:
        raise TransformError(
            "keyed pipelining expects the program to be a single outer "
            "loop")

    analysis = analyze_loop(program, spec.outer)
    accesses = [(acc, kind)
                for s in analysis.summaries
                for kind, accs in (("read", s.node_reads),
                                   ("write", s.node_writes))
                for acc in accs]

    before: dict = {}
    after: dict = {}
    seen: set = set()
    for dep in forward:
        for acc, kind in accesses:
            if acc.var != dep.var:
                continue
            if kind == "read" and acc.path == dep.dst:
                key = ("wait", acc.path, acc.var,
                       visitor.normalize_key(acc.raw_key))
                if key not in seen:
                    seen.add(key)
                    before.setdefault(acc.path, []).append(
                        ir.WaitStmt(_event_name(acc.var),
                                    tuple(acc.raw_key)))
            elif kind == "write" and acc.path == dep.src:
                key = ("signal", acc.path, acc.var,
                       visitor.normalize_key(acc.raw_key))
                if key not in seen:
                    seen.add(key)
                    after.setdefault(acc.path, []).append(
                        ir.SignalStmt(_event_name(acc.var),
                                      tuple(acc.raw_key)))

    carrier_body = _insert(outer_loop.body, (0,), before, after)
    carrier = ir.Program(
        name=spec.carrier_name,
        body=carrier_body,
        params=(spec.outer,),
    )
    main = ir.Program(
        name=f"{program.name}-kpipe",
        body=(
            ir.HopStmt(spec.inject_at),
            ir.For(spec.outer, outer_loop.count, (
                ir.InjectStmt(spec.carrier_name,
                              ((spec.outer, ir.Var(spec.outer)),)),
            )),
        ),
    )
    main = ir.register_program(main, replace=True)
    carrier = ir.register_program(carrier, replace=True)
    # Post-condition on the generated suite: the handshake must prove
    # every cross-carrier conflict ordered (the R6 shape), or the
    # transformation refuses its own output.
    check_race_free(main)
    return PipelinedSuite(main=main, carrier=carrier)
