"""Pipelining and phase shifting of the *carried* dimension.

Sections 3.5-3.6 apply the remaining two transformations inside the
second dimension: the whole-row/whole-column carriers of Figure 11
split into per-k carriers that pipeline (Figure 13), then their tours
are phase shifted (Figure 15). This module performs both steps
mechanically on the output of :func:`repro.transform.second_dim` whose
row carrier has been through
:func:`repro.transform.reduction.reassociate_reduction` (the paper's
"C(i,j) initialized to 0" precondition).

* :func:`pipeline_carried` — Figure 11 -> 13. The consumer's k loop
  disappears: one ``ACarrier`` per k slice, carrying one term of the
  reduction; the producer splits likewise into per-k ``BCarrier``\\ s
  that park their slice in the PE's single slot. The transformation
  synthesizes the slot protocol from the data flow: the producer must
  not overwrite an unconsumed slice (``waitEvent(EC)`` before parking,
  ``signalEvent(EC)`` after consuming — Section 3.5's "a producer
  BCarrier needs to make sure that the B entry produced by its
  predecessor in the pipeline is consumed before it puts the B entry it
  carries in place"), and the consumer must see *its* slice
  (``EP`` keyed by k). The slot starts empty: the suite carries the
  initial ``EC`` signals Figure 13 prescribes.
* :func:`phase_shift_carried` — Figure 13 -> 15. Pure reindexing
  again: each carrier's tour is shifted by its own k origin
  (``mj -> mj - mk``), the data distribution becomes the natural
  layout, and the injector walks all the homes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TransformError
from ..navp import ir
from .rewrite import find_unique_loop, map_stmt_exprs, substitute_expr
from .second_dim import SecondDimSuite

__all__ = [
    "CarriedSpec",
    "CarriedSuite",
    "pipeline_carried",
    "phase_shift_carried",
    "layout_carried_antidiagonal",
    "layout_carried_natural",
]

V = ir.Var
C = ir.Const


@dataclass(frozen=True)
class CarriedSpec:
    g: int
    k_var: str = "k"         # the reduction loop being split
    carrier_k: str = "mk"    # the new carrier parameter
    slot: str = "Bslot"      # the per-PE hand-off slot
    ep: str = "EP"           # "slice present" (keyed by k)
    ec: str = "EC"           # "slice consumed" (slot free)
    row_var: str = "mi"
    col_var: str = "mj"


@dataclass(frozen=True)
class CarriedSuite:
    main: ir.Program
    a_carrier: ir.Program
    b_carrier: ir.Program
    initial_signals: tuple  # (coord, event, args, count)

    @property
    def programs(self) -> tuple:
        return (self.main, self.a_carrier, self.b_carrier)


def _sub_everywhere(body: tuple, old: ir.Expr, new: ir.Expr) -> tuple:
    return substitute_expr(body, old, new)


def pipeline_carried(suite: SecondDimSuite,
                     spec: CarriedSpec) -> CarriedSuite:
    """Split the carried dimension into pipelined per-k carriers."""
    g, k, mk = spec.g, spec.k_var, spec.carrier_k

    # -- the consumer: RowCarrier -> ACarrier(mi, mk) -----------------------
    row = suite.row_carrier
    _path, tour = find_unique_loop(row, spec.col_var)
    if not tour.body or not isinstance(tour.body[0], ir.HopStmt):
        raise TransformError("row carrier tour must start with a hop")
    kloops = [s for s in tour.body if isinstance(s, ir.For)
              and s.var == k]
    if len(kloops) != 1:
        raise TransformError(
            "expected exactly one reassociated k loop in the tour "
            "(run reassociate_reduction first)"
        )
    kloop = kloops[0]
    leftovers = [s for s in tour.body[1:]
                 if s is not kloop and not isinstance(s, ir.WaitStmt)]
    if leftovers:
        raise TransformError(
            f"cannot split a tour with extra per-visit work: {leftovers!r}"
        )
    # one carrier per k: the loop body becomes the visit body, with the
    # loop variable now the carrier's parameter and the dropped-copy
    # reads redirected to the hand-off slot
    term = _sub_everywhere(kloop.body, V(k), V(mk))

    def to_slot(expr: ir.Expr) -> ir.Expr:
        if (isinstance(expr, ir.Index)
                and isinstance(expr.base, ir.NodeGet)
                and expr.base.name.endswith("drop")
                and expr.idx == (V(mk),)):
            return ir.NodeGet(spec.slot)
        return expr

    term = tuple(map_stmt_exprs(to_slot, s) for s in term)
    visit = (
        tour.body[0],                       # the same hop
        ir.WaitStmt(spec.ep, (V(mk),)),     # my slice is present
    ) + term + (
        ir.SignalStmt(spec.ec),             # slot is free again
    )
    # pickup: mA = A[mi] -> the single slice mA = A[mi][mk]
    pickup = row.body[0]
    if not isinstance(pickup, ir.Assign):
        raise TransformError("row carrier must start with its pickup")
    a_pickup = ir.Assign(pickup.var,
                         ir.Index(pickup.expr, (V(mk),)))
    a_body = (a_pickup,
              ir.For(tour.var, tour.count,
                     _sub_everywhere(visit, ir.Index(V(pickup.var),
                                                     (V(mk),)),
                                     V(pickup.var))),)
    a_carrier = ir.register_program(ir.Program(
        f"{row.name}-k", a_body, (spec.row_var, mk)), replace=True)

    # -- the producer: ColCarrier -> BCarrier(mk, mj) -----------------------
    col = suite.col_carrier
    _cpath, ctour = find_unique_loop(col, spec.row_var)
    cpickup = col.body[0]
    if not isinstance(cpickup, ir.Assign):
        raise TransformError("col carrier must start with its pickup")
    b_pickup = ir.Assign(cpickup.var,
                         ir.Index(cpickup.expr, (V(mk),)))
    drops = [s for s in ctour.body if isinstance(s, ir.NodeSet)]
    if len(drops) != 1:
        raise TransformError("col carrier must drop exactly one copy")
    b_visit = (
        ctour.body[0],                      # the same hop
        ir.WaitStmt(spec.ec),               # predecessor consumed
        ir.NodeSet(spec.slot, (), V(cpickup.var)),
        ir.SignalStmt(spec.ep, (V(mk),)),
    )
    b_carrier = ir.register_program(ir.Program(
        f"{col.name}-k",
        (b_pickup, ir.For(ctour.var, ctour.count, b_visit)),
        (mk, spec.col_var)), replace=True)

    # -- the injector: one pair of carriers per k at each home --------------
    old_loop = suite.main.body[0]
    if not isinstance(old_loop, ir.For):
        raise TransformError("unexpected main shape")
    home_hop = old_loop.body[0]
    injections = [s for s in old_loop.body
                  if isinstance(s, ir.InjectStmt)]
    row_binding = col_binding = None
    for stmt in injections:
        bound = dict(stmt.bindings)
        if spec.row_var in bound:
            row_binding = bound[spec.row_var]
        if spec.col_var in bound:
            col_binding = bound[spec.col_var]
    if row_binding is None or col_binding is None:
        raise TransformError(
            "main must inject carriers bound by the row and column vars"
        )
    main = ir.register_program(ir.Program(
        f"{suite.main.name}-k",
        body=(
            ir.For(old_loop.var, old_loop.count, (
                home_hop,
                ir.For(mk, C(g), (
                    ir.InjectStmt(a_carrier.name, (
                        (spec.row_var, row_binding), (mk, V(mk)))),
                    ir.InjectStmt(b_carrier.name, (
                        (mk, V(mk)), (spec.col_var, col_binding))),
                )),
            )),
        ),
    ), replace=True)

    signals = tuple(
        ((i, j), spec.ec, (), 1) for i in range(g) for j in range(g)
    )
    return CarriedSuite(main=main, a_carrier=a_carrier,
                        b_carrier=b_carrier, initial_signals=signals)


def phase_shift_carried(suite: CarriedSuite,
                        spec: CarriedSpec) -> CarriedSuite:
    """Reindex every tour by its carrier's k origin (Figure 15)."""
    g, mk = spec.g, spec.carrier_k

    def reindex(program: ir.Program, tour_var: str,
                name: str) -> ir.Program:
        path, tour = find_unique_loop(program, tour_var)
        shifted = ir.Bin("-", V(tour_var), V(mk))
        new_body = substitute_expr(tour.body, V(tour_var), shifted)
        rebuilt = list(program.body)
        rebuilt[path[0]] = ir.For(tour.var, tour.count, new_body)
        return ir.register_program(
            ir.Program(name, tuple(rebuilt), program.params),
            replace=True)

    a_carrier = reindex(suite.a_carrier, spec.col_var,
                        f"{suite.a_carrier.name}-phase")
    b_carrier = reindex(suite.b_carrier, spec.row_var,
                        f"{suite.b_carrier.name}-phase")

    # natural layout: every (mi, mk) pair is injected at its own home
    main = ir.register_program(ir.Program(
        f"{suite.main.name}-phase",
        body=(
            ir.For("u", C(g), (
                ir.For("v", C(g), (
                    ir.HopStmt((V("v"), V("u"))),
                    ir.InjectStmt(a_carrier.name, (
                        (spec.row_var, V("v")), (mk, V("u")))),
                    ir.InjectStmt(b_carrier.name, (
                        (mk, V("v")), (spec.col_var, V("u")))),
                )),
            )),
        ),
    ), replace=True)
    return CarriedSuite(main=main, a_carrier=a_carrier,
                        b_carrier=b_carrier,
                        initial_signals=suite.initial_signals)


# --------------------------------------------------------------------------
# data distributions (C zero-initialized, per the figures)
# --------------------------------------------------------------------------

def _zero_c(layout: dict, a, g: int) -> None:
    import numpy as np

    ab = a.shape[0] // g
    for i in range(g):
        for j in range(g):
            layout[(i, j)].setdefault("C", {})[(i, j)] = np.zeros(
                (ab, ab), dtype=a.dtype)


def layout_carried_antidiagonal(a, b, spec: CarriedSpec) -> dict:
    """Figure 12's distribution for the Figure-13 suite."""
    from .second_dim import SecondDimSpec, layout_second_dim

    layout = layout_second_dim(a, b, SecondDimSpec(g=spec.g))
    _zero_c(layout, a, spec.g)
    return layout


def layout_carried_natural(a, b, spec: CarriedSpec) -> dict:
    """Figure 14's natural distribution for the Figure-15 suite."""
    g = spec.g
    ab = a.shape[0] // g
    layout: dict = {}
    for i in range(g):
        for j in range(g):
            layout[(i, j)] = {
                "A": {i: {j: a[i * ab : (i + 1) * ab,
                            j * ab : (j + 1) * ab]}},
                "Bcol": {i: b[i * ab : (i + 1) * ab,
                              j * ab : (j + 1) * ab]},
            }
    _zero_c(layout, a, g)
    return layout
