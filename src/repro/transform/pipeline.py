"""The Pipelining transformation (Figures 1b-1c; matmul: Fig 5 -> 7).

"The basic idea is to overlap the execution of multiple DSC threads by
staggering their starting times."

Mechanics on a DSC program whose top level is a single loop over the
work items (``mi``):

1. the loop body becomes a new *carrier* program parameterized by the
   loop variable (``RowCarrier(mi)``);
2. any pickup guarded by the DSC pickup condition is hoisted to the
   carrier's start — a carrier is injected where its data lives, picks
   it up once, and carries it for its whole life (Figure 7 line 2);
3. the main program reduces to hopping to the injection PE and
   injecting one carrier per iteration, in order — the ordered
   injection *is* the staggering.

Pipelining requires the outer loop's iterations to be independent:
carriers run concurrently. That legality condition is decided by the
static dependence analyzer (:func:`repro.analysis.deps.analyze_loop`,
via :func:`repro.transform.deps.check_loop_independent`) — the same
analysis ``repro lint`` runs. (For matmul no further events are
needed; the paper notes synchronization "may be necessary" in general
— that is what the 2-D stage's EP/EC events do.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TransformError
from ..navp import ir
from .deps import check_loop_independent, check_race_free
from .rewrite import find_unique_loop

__all__ = ["PipelineSpec", "PipelinedSuite", "pipelining"]


@dataclass(frozen=True)
class PipelineSpec:
    outer: str                  # loop variable becoming the carrier index
    carrier_name: str           # name for the generated carrier program
    inject_at: tuple            # coordinate exprs of the injection PE


@dataclass(frozen=True)
class PipelinedSuite:
    """A transformed program pair: the injector plus its carriers."""

    main: ir.Program
    carrier: ir.Program

    @property
    def programs(self) -> tuple:
        return (self.main, self.carrier)


def _hoist_pickups(body: tuple, outer: str) -> tuple:
    """Split a DSC loop body into (pickups, remaining loop body).

    Looks for the inner pattern ``For(mj): [Hop, If(cond, pickups),
    ...rest]`` produced by the DSC transformation and hoists the
    pickups out of the conditional: the carrier executes them once at
    birth instead of once per tour lap.
    """
    if len(body) != 1 or not isinstance(body[0], ir.For):
        raise TransformError(
            "pipelining expects the outer loop to wrap a single inner "
            "(distributed) loop"
        )
    inner = body[0]
    if (
        len(inner.body) >= 2
        and isinstance(inner.body[0], ir.HopStmt)
        and isinstance(inner.body[1], ir.If)
        and not inner.body[1].orelse
    ):
        pickups = inner.body[1].then
        stripped = ir.For(
            inner.var, inner.count,
            (inner.body[0],) + inner.body[2:],
        )
        return pickups, (stripped,)
    return (), body


def pipelining(program: ir.Program, spec: PipelineSpec) -> PipelinedSuite:
    """Apply the Pipelining transformation to a DSC program."""
    check_loop_independent(program, spec.outer)
    path, outer_loop = find_unique_loop(program, spec.outer)
    if path != (0,) or len(program.body) != 1:
        raise TransformError(
            "pipelining expects the program to be a single outer loop"
        )

    pickups, carrier_body = _hoist_pickups(outer_loop.body, spec.outer)
    carrier = ir.Program(
        name=spec.carrier_name,
        body=tuple(pickups) + carrier_body,
        params=(spec.outer,),
    )
    main = ir.Program(
        name=f"{program.name}-pipe",
        body=(
            ir.HopStmt(spec.inject_at),
            ir.For(spec.outer, outer_loop.count, (
                ir.InjectStmt(spec.carrier_name,
                              ((spec.outer, ir.Var(spec.outer)),)),
            )),
        ),
    )
    main = ir.register_program(main, replace=True)
    carrier = ir.register_program(carrier, replace=True)
    # Post-condition on the *generated* suite: the carriers the loop
    # became must be provably race-free as concurrent messengers.
    check_race_free(main)
    return PipelinedSuite(main=main, carrier=carrier)
