"""The paper's derivation chain, expressed in IR: Fig 2 -> 5 -> 7 -> 9.

:func:`sequential_program` builds Figure 2 as a navigational IR program
at the paper's fine granularity (``N == P``: one block entry per PE,
entries being ``ab x ab`` blocks). :func:`derive_chain` then applies
the three transformations mechanically and returns every stage together
with its data distribution — each stage is a runnable program, and each
is an improvement over its predecessor, which is the whole point of
incremental parallelization.

Node variable conventions (dictionaries keyed by block indices, so a
re-distribution changes only *which keys live where*, never the code):

* ``A``: ``{i: {k: block}}`` — row dictionaries, so a whole row is one
  agent pickup (``mA(*) = A(mi,*)``);
* ``B``: ``{(k, j): block}``;
* ``C``: ``{(i, j): block}``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..navp import ir
from ..util.blocks import check_divides
from .dsc import DSCSpec, dsc
from .phase_shift import PhaseShiftSpec, phase_shift
from .pipeline import PipelinedSuite, PipelineSpec, pipelining

__all__ = [
    "sequential_program",
    "derive_chain",
    "derive_full_chain",
    "TransformChain",
    "FullChain2D",
    "split_a_rows",
    "split_b_blocks",
    "layout_sequential",
    "layout_dsc",
    "layout_phase",
]

V = ir.Var
C = ir.Const


def sequential_program(nb: int, name: str | None = None) -> ir.Program:
    """Figure 2 as IR: the plain triple loop over ``nb`` block entries."""
    a_row = ir.NodeGet("A", (V("mi"),))
    body = (
        ir.For("mi", C(nb), (
            ir.For("mj", C(nb), (
                # t = 0.0  (a zero block shaped like an A entry)
                ir.ComputeStmt("zeros_from",
                               (ir.Index(a_row, (C(0),)),), out="t",
                               kind="sequential"),
                # do k: t += A(mi,k) * B(k,mj)
                ir.For("k", C(nb), (
                    ir.ComputeStmt(
                        "gemm_acc",
                        (V("t"),
                         ir.Index(a_row, (V("k"),)),
                         ir.NodeGet("B", (V("k"), V("mj")))),
                        out="t",
                        kind="sequential",
                    ),
                )),
                # C(mi,mj) = t
                ir.NodeSet("C", (V("mi"), V("mj")), V("t")),
            )),
        )),
    )
    return ir.register_program(
        ir.Program(name or f"mm-seq-{nb}", body), replace=True)


@dataclass(frozen=True)
class TransformChain:
    """All four stages of the incremental parallelization."""

    nb: int
    sequential: ir.Program
    dsc: ir.Program
    pipelined: PipelinedSuite
    phased: PipelinedSuite


@dataclass(frozen=True)
class FullChain2D:
    """The whole journey, Figure 2 through Figure 15, derived."""

    g: int
    one_d: TransformChain        # Figures 2, 5, 7, 9
    dsc_2d: "object"             # Figure 11 (SecondDimSuite)
    pipelined_2d: "object"       # Figure 13 (CarriedSuite)
    phased_2d: "object"          # Figure 15 (CarriedSuite)


def derive_full_chain(g: int) -> FullChain2D:
    """Mechanically derive every stage of Sections 3.1-3.6."""
    from .carried import CarriedSpec, phase_shift_carried, pipeline_carried
    from .reduction import ReductionSpec, reassociate_reduction
    from .second_dim import SecondDimSpec, SecondDimSuite, second_dim

    one_d = derive_chain(g)
    dsc_2d = second_dim(one_d.phased, SecondDimSpec(g=g))
    reassociated = SecondDimSuite(
        main=dsc_2d.main,
        row_carrier=reassociate_reduction(dsc_2d.row_carrier,
                                          ReductionSpec()),
        col_carrier=dsc_2d.col_carrier,
    )
    spec = CarriedSpec(g=g)
    pipelined_2d = pipeline_carried(reassociated, spec)
    phased_2d = phase_shift_carried(pipelined_2d, spec)
    return FullChain2D(g=g, one_d=one_d, dsc_2d=dsc_2d,
                       pipelined_2d=pipelined_2d, phased_2d=phased_2d)


def derive_chain(nb: int) -> TransformChain:
    """Mechanically derive Figures 5, 7 and 9 from Figure 2."""
    seq = sequential_program(nb)

    # Figure 5: distribute the j dimension; carry the current A row.
    dsc_prog = dsc(seq, DSCSpec(
        loop="mj",
        place=(V("mj"),),
        carries={"mA": ir.NodeGet("A", (V("mi"),))},
        pickup_cond=ir.Bin("==", V("mj"), C(0)),
    ))
    # after the rewrite, the compute kind is NavP
    dsc_prog = ir.register_program(
        ir.Program(dsc_prog.name, _as_navp(dsc_prog.body), dsc_prog.params),
        replace=True)

    # Figure 7: one RowCarrier per row, injected in order at node(0).
    pipelined = pipelining(dsc_prog, PipelineSpec(
        outer="mi",
        carrier_name=f"mm-rowcarrier-{nb}",
        inject_at=(C(0),),
    ))

    # Figure 9: inject carrier mi at node(mi); rotate the tour to
    # node((N-1-mi+mj) % N) — the reverse staggering.
    schedule = ir.Bin(
        "%",
        ir.Bin("+", ir.Bin("-", C(nb - 1), V("mi")), V("mj")),
        C(nb),
    )
    phased = phase_shift(pipelined, PhaseShiftSpec(
        start_place=(V("mi"),),
        schedule=schedule,
        tour="mj",
    ))
    return TransformChain(nb=nb, sequential=seq, dsc=dsc_prog,
                          pipelined=pipelined, phased=phased)


def _as_navp(body: tuple) -> tuple:
    """Recast compute kinds from 'sequential' to 'navp' after DSC."""
    out = []
    for stmt in body:
        if isinstance(stmt, ir.ComputeStmt):
            out.append(ir.ComputeStmt(stmt.kernel, stmt.args, stmt.out,
                                      "navp"))
        elif isinstance(stmt, ir.For):
            out.append(ir.For(stmt.var, stmt.count, _as_navp(stmt.body)))
        elif isinstance(stmt, ir.If):
            out.append(ir.If(stmt.cond, _as_navp(stmt.then),
                             _as_navp(stmt.orelse)))
        else:
            out.append(stmt)
    return tuple(out)


# --------------------------------------------------------------------------
# data distributions for each stage
# --------------------------------------------------------------------------

def split_a_rows(a, nb: int) -> dict:
    """A as ``{i: {k: block}}`` row dictionaries."""
    check_divides(a.shape[0], nb, "block count")
    ab = a.shape[0] // nb
    return {
        i: {k: a[i * ab : (i + 1) * ab, k * ab : (k + 1) * ab]
            for k in range(nb)}
        for i in range(nb)
    }


def split_b_blocks(b, nb: int) -> dict:
    """B as ``{(k, j): block}``."""
    check_divides(b.shape[0], nb, "block count")
    ab = b.shape[0] // nb
    return {
        (k, j): b[k * ab : (k + 1) * ab, j * ab : (j + 1) * ab]
        for k in range(nb)
        for j in range(nb)
    }


def layout_sequential(a, b, nb: int) -> dict:
    """Everything on node(0) (the 1-PE starting point)."""
    return {(0,): {"A": split_a_rows(a, nb),
                   "B": split_b_blocks(b, nb), "C": {}}}


def layout_dsc(a, b, nb: int) -> dict:
    """Figures 4/6: A on node(0); B, C columns on node(j)."""
    rows = split_a_rows(a, nb)
    blocks = split_b_blocks(b, nb)
    layout: dict = {}
    for j in range(nb):
        layout[(j,)] = {
            "B": {key: blk for key, blk in blocks.items() if key[1] == j},
            "C": {},
        }
    layout[(0,)]["A"] = rows
    return layout


def layout_phase(a, b, nb: int) -> dict:
    """Figure 8 (pre-staggering): ``A(i,*)`` on node(i); B, C columns."""
    rows = split_a_rows(a, nb)
    layout = layout_dsc(a, b, nb)
    del layout[(0,)]["A"]
    for i in range(nb):
        layout[(i,)]["A"] = {i: rows[i]}
    return layout


def assemble_c(place_vars: dict, nb: int, ab: int, dtype=np.float64):
    """Merge the scattered ``C`` dictionaries back into a matrix."""
    out = np.empty((nb * ab, nb * ab), dtype=dtype)
    seen = set()
    for _coord, node_vars in place_vars.items():
        for (i, j), blk in node_vars.get("C", {}).items():
            out[i * ab : (i + 1) * ab, j * ab : (j + 1) * ab] = blk
            seen.add((i, j))
    if len(seen) != nb * nb:
        missing = {(i, j) for i in range(nb) for j in range(nb)} - seen
        raise ValueError(f"C is incomplete; missing blocks {sorted(missing)}")
    return out
