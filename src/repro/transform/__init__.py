"""The paper's transformations as mechanical IR rewrites.

"The NavP transformations are at least partially automatable. Building
tools to automate them is part of our future work." (Section 6) —
this package is that tool, for the class of loop-nest programs the
paper's derivation covers. :func:`derive_full_chain` replays the whole
case study mechanically: Figure 2 -> 5 (``dsc``) -> 7 (``pipelining``)
-> 9 (``phase_shift``) -> 11 (``second_dim``) -> 13
(``reassociate_reduction`` + ``pipeline_carried``) -> 15
(``phase_shift_carried``), every stage runnable and verified.
"""

from .carried import (
    CarriedSpec,
    CarriedSuite,
    layout_carried_antidiagonal,
    layout_carried_natural,
    phase_shift_carried,
    pipeline_carried,
)
from .deps import check_carries_read_only, check_loop_independent
from .dsc import DSCSpec, dsc
from .examples import (
    FullChain2D,
    TransformChain,
    assemble_c,
    derive_chain,
    derive_full_chain,
    layout_dsc,
    layout_phase,
    layout_sequential,
    sequential_program,
    split_a_rows,
    split_b_blocks,
)
from .reduction import ASSOCIATIVE_KERNELS, ReductionSpec, reassociate_reduction
from .phase_shift import PhaseShiftSpec, phase_shift
from .pipeline import PipelinedSuite, PipelineSpec, pipelining
from .second_dim import (
    SecondDimSpec,
    SecondDimSuite,
    layout_second_dim,
    second_dim,
)
from .verify import ChainReport, run_stage, verify_chain

__all__ = [
    "dsc",
    "DSCSpec",
    "pipelining",
    "PipelineSpec",
    "PipelinedSuite",
    "phase_shift",
    "PhaseShiftSpec",
    "check_loop_independent",
    "check_carries_read_only",
    "sequential_program",
    "derive_chain",
    "TransformChain",
    "layout_sequential",
    "layout_dsc",
    "layout_phase",
    "split_a_rows",
    "split_b_blocks",
    "assemble_c",
    "second_dim",
    "SecondDimSpec",
    "SecondDimSuite",
    "layout_second_dim",
    "derive_full_chain",
    "FullChain2D",
    "reassociate_reduction",
    "ReductionSpec",
    "ASSOCIATIVE_KERNELS",
    "pipeline_carried",
    "phase_shift_carried",
    "CarriedSpec",
    "CarriedSuite",
    "layout_carried_antidiagonal",
    "layout_carried_natural",
    "run_stage",
    "verify_chain",
    "ChainReport",
]
