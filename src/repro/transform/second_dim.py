"""DSC in the second dimension — the hierarchical application.

"The NavP transformations can be systematically applied repeatedly or
hierarchically in different dimensions of a network of PEs" (Section 2);
Section 3.4 does it to matmul: the phase-shifted 1-D program (Figure 9)
becomes Figure 11 by *applying the DSC transformation again* in the
``i`` dimension. This module implements that step mechanically.

Input: a phase-shifted :class:`~repro.transform.pipeline.PipelinedSuite`
(injector + carrier over a 1-D chain). The rewrite:

1. **lift the places into a grid row** — every carrier tour stop
   ``node(sigma)`` becomes ``node(mi, sigma)``: the carrier for data
   row ``mi`` now works inside grid row ``mi``;
2. **re-home the injections** — carrier ``mi`` is injected where its
   data now lives, ``node(mi, home_col(mi))`` (the anti-diagonal for
   the reverse-staggered layout);
3. **synthesize the producer** — the node variable the tour consumed
   in place (B, previously column-resident on the chain) must now be
   *shipped down each grid column*. The producer's tour schedule is the
   consumer's own ``sigma`` with the row/column roles swapped — the
   alignment symmetry of the reverse staggering makes this a pure
   variable substitution — and a ``waitEvent(EP)`` / ``signalEvent(EP)``
   pair guards the hand-off (Figure 11's events);
4. **redirect the consumer's reads** — ``B[k, mj]`` becomes a read of
   the locally dropped copy, since the tour variable no longer selects
   a column of a chain-resident store but a column of the grid the
   carrier is confined to.

The result is exactly Figure 11's program pair, verified semantically
(run on a 2-D fabric vs NumPy) and structurally by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TransformError
from ..navp import ir
from .deps import check_loop_independent
from .pipeline import PipelinedSuite
from .rewrite import collect, find_unique_loop, map_stmt_exprs

__all__ = ["SecondDimSpec", "SecondDimSuite", "second_dim",
           "layout_second_dim"]


@dataclass(frozen=True)
class SecondDimSpec:
    """Decisions for the second-dimension DSC step.

    g:
        Grid order (the logical network becomes ``g x g``).
    row_var:
        The carrier parameter naming its data row (``"mi"``).
    tour_var:
        The carrier's tour loop variable (``"mj"``).
    ship_var:
        The node variable the tour consumes in place and that must now
        be shipped down the columns (``"B"``, keyed ``(k, col)``).
    event:
        Name of the producer/consumer event (``"EP"``).

    The homes follow the reverse-staggered anti-diagonal
    (``row = (g-1-line) % g``), matching the carriers' phase-shifted
    first stops — that is what makes the initial staggering implicit.
    """

    g: int
    row_var: str = "mi"
    tour_var: str = "mj"
    ship_var: str = "B"
    event: str = "EP"


@dataclass(frozen=True)
class SecondDimSuite:
    """The derived Figure-11 program family."""

    main: ir.Program
    row_carrier: ir.Program
    col_carrier: ir.Program

    @property
    def programs(self) -> tuple:
        return (self.main, self.row_carrier, self.col_carrier)


def _redirect_ship_reads(body: tuple, spec: SecondDimSpec,
                         dropped: str, sigma: ir.Expr) -> tuple:
    """``B[k, <current column>]`` -> ``Bdrop[k]`` (the local copy).

    After phase shifting, the body's column indices are the reindexed
    tour expression ``sigma`` (not the bare loop variable): a read is
    "consumed in place" exactly when its column index equals the place
    the carrier is standing on.
    """

    def rewrite(expr: ir.Expr) -> ir.Expr:
        if (isinstance(expr, ir.NodeGet) and expr.name == spec.ship_var
                and len(expr.idx) == 2
                and expr.idx[1] in (sigma, ir.Var(spec.tour_var))):
            return ir.Index(ir.NodeGet(dropped), (expr.idx[0],))
        return expr

    return tuple(map_stmt_exprs(rewrite, s) for s in body)


def second_dim(suite: PipelinedSuite, spec: SecondDimSpec) -> SecondDimSuite:
    """Apply the DSC transformation in the second dimension."""
    g = spec.g
    carrier = suite.carrier
    # Legality (analyzer-backed, shared with repro lint): splitting the
    # consumed variable out into a concurrent producer requires the
    # tour's iterations to be independent...
    check_loop_independent(carrier, spec.tour_var)
    path, tour = find_unique_loop(carrier, spec.tour_var)
    if not tour.body or not isinstance(tour.body[0], ir.HopStmt):
        raise TransformError("the carrier tour must start with a hop")
    # ...and the shipped variable to be read-only in the tour: a tour
    # that also wrote it would race the producer's drops.
    ship_writes = [s for s in collect(tour.body,
                                      lambda s: isinstance(s, ir.NodeSet))
                   if s.name == spec.ship_var]
    if ship_writes:
        raise TransformError(
            f"{carrier.name}: {spec.ship_var!r} is written inside the "
            f"{spec.tour_var!r} tour; it cannot be shipped down the "
            f"columns by a concurrent producer"
        )
    if len(tour.body[0].place) != 1:
        raise TransformError("the carrier must currently tour a 1-D chain")
    sigma = tour.body[0].place[0]
    dropped = f"{spec.ship_var}drop"

    # (1) lift the tour into grid row `row_var`; (3)+(4) guard and
    # redirect the consumed variable
    new_tour_body = (
        ir.HopStmt((ir.Var(spec.row_var), sigma)),
        ir.WaitStmt(spec.event),
    ) + _redirect_ship_reads(tour.body[1:], spec, dropped, sigma)
    row_body = tuple(
        ir.For(tour.var, tour.count, new_tour_body)
        if i == path[-1] and len(path) == 1 else stmt
        for i, stmt in enumerate(carrier.body)
    )
    row_carrier = ir.register_program(ir.Program(
        f"{carrier.name}-2d", row_body, carrier.params), replace=True)

    # (3) the producer: the consumer's schedule with the roles swapped.
    producer_sigma = _swap_vars(sigma, spec.row_var, spec.tour_var)
    col_carrier = ir.register_program(ir.Program(
        f"{carrier.name}-colcarrier",
        body=(
            ir.Assign("mB", ir.NodeGet(f"{spec.ship_var}col")),
            ir.For(spec.row_var, tour.count, (
                ir.HopStmt((producer_sigma, ir.Var(spec.tour_var))),
                ir.NodeSet(dropped, (), ir.Var("mB")),
                ir.SignalStmt(spec.event),
            )),
        ),
        params=(spec.tour_var,),
    ), replace=True)

    # (2) the injector: walk the homes, inject both carriers locally.
    inject_stmts = _injections(suite.main)
    line = "ml"
    data_row = ir.Bin("%", ir.Bin("-", ir.Const(g - 1), ir.Var(line)),
                      ir.Const(g))
    main = ir.register_program(ir.Program(
        f"{suite.main.name}-2d",
        body=(
            ir.For(line, ir.Const(g), (
                ir.HopStmt((data_row, ir.Var(line))),
                ir.InjectStmt(row_carrier.name,
                              ((spec.row_var, data_row),)),
                ir.InjectStmt(col_carrier.name,
                              ((spec.tour_var, ir.Var(line)),)),
            )),
        ),
    ), replace=True)
    if not inject_stmts:
        raise TransformError("the phase-shifted main has no injections")
    return SecondDimSuite(main=main, row_carrier=row_carrier,
                          col_carrier=col_carrier)


def _swap_vars(expr: ir.Expr, a: str, b: str) -> ir.Expr:
    """Rename ``a``<->``b`` throughout an expression."""
    if isinstance(expr, ir.Var):
        if expr.name == a:
            return ir.Var(b)
        if expr.name == b:
            return ir.Var(a)
        return expr
    if isinstance(expr, ir.Const):
        return expr
    if isinstance(expr, ir.Bin):
        return ir.Bin(expr.op, _swap_vars(expr.left, a, b),
                      _swap_vars(expr.right, a, b))
    if isinstance(expr, ir.NodeGet):
        return ir.NodeGet(expr.name,
                          tuple(_swap_vars(e, a, b) for e in expr.idx))
    if isinstance(expr, ir.Index):
        return ir.Index(_swap_vars(expr.base, a, b),
                        tuple(_swap_vars(e, a, b) for e in expr.idx))
    raise TransformError(f"unknown expression {expr!r}")


def _injections(program: ir.Program) -> list:
    out = []

    def walk(body):
        for stmt in body:
            if isinstance(stmt, ir.InjectStmt):
                out.append(stmt)
            elif isinstance(stmt, ir.For):
                walk(stmt.body)
            elif isinstance(stmt, ir.If):
                walk(stmt.then)
                walk(stmt.orelse)

    walk(program.body)
    return out


def layout_second_dim(a, b, spec: SecondDimSpec) -> dict:
    """Figure 10's data distribution for the derived suite.

    ``A`` row dictionaries and ``B`` column dictionaries co-located on
    the anti-diagonal; an empty ``C`` store on every node (writes use
    full ``(mi, mj)`` keys, so no pre-split is needed).
    """
    g = spec.g
    ab = a.shape[0] // g
    layout: dict = {(i, j): {"C": {}} for i in range(g) for j in range(g)}
    for line in range(g):
        row = (g - 1 - line) % g
        layout[(row, line)]["A"] = {
            row: {k: a[row * ab : (row + 1) * ab,
                       k * ab : (k + 1) * ab] for k in range(g)}
        }
        layout[(row, line)][f"{spec.ship_var}col"] = {
            k: b[k * ab : (k + 1) * ab, line * ab : (line + 1) * ab]
            for k in range(g)
        }
    return layout
