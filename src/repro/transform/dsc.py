"""The DSC transformation (Section 2, Figures 1a-1b; matmul: Fig 2 -> 5).

"Large data is distributed among the PEs, and hop() statements are
inserted into the sequential code in order for the computation to
'chase' large data while carrying small data."

Mechanics, exactly as the paper applies them to matrix multiplication:

1. the programmer chooses the loop whose index the data distribution
   follows (``mj``: B and C columns live on ``node(mj)``) — that choice
   is the :class:`DSCSpec`;
2. ``hop(node(mj))`` is inserted at the top of that loop's body;
3. data the computation must *carry* (the current row of A) moves into
   an agent variable, loaded at a pickup point (``if mj == 0``), and
   every remaining reference to it is rewritten from the node access to
   the agent variable.

A dependence check guards step 3 — carried node variables must be
read-only inside the loop, decided by the static analyzer
(:func:`repro.analysis.deps.carried_write_diagnostics`, the same
analysis behind ``repro lint``). The output is a new registered
program; the input is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TransformError
from ..navp import ir
from .deps import check_carries_read_only
from .rewrite import find_unique_loop, replace_at, substitute_expr

__all__ = ["DSCSpec", "dsc"]


@dataclass(frozen=True)
class DSCSpec:
    """The programmer-supplied distribution decisions.

    loop:
        Loop variable the distribution follows; ``hop()`` goes at the
        top of this loop's body.
    place:
        Destination coordinate, a tuple of IR expressions
        (``(Var("mj"),)`` for the paper's 1-D chain).
    carries:
        Agent variables to introduce: ``{"mA": NodeGet("A", (Var("mi"),))}``
        — each node access is loaded into the agent variable at the
        pickup point and substituted everywhere else.
    pickup_cond:
        When the pickup happens (``mj == 0``: the thread passes the
        data's home PE).
    """

    loop: str
    place: tuple
    carries: dict = field(default_factory=dict)
    pickup_cond: ir.Expr = ir.Const(True)


def dsc(program: ir.Program, spec: DSCSpec,
        name: str | None = None) -> ir.Program:
    """Apply the DSC transformation; returns the new registered program.

    DSC keeps a single thread, so program order is preserved whatever
    the dependences; the only legality condition is that the node
    variables copied into agent variables at the pickup point are not
    written inside the loop (the carried copy would go stale).
    """
    check_carries_read_only(
        program, spec.loop,
        [src.name for src in spec.carries.values()])
    path, loop = find_unique_loop(program, spec.loop)

    body = loop.body
    for agent_var, source in spec.carries.items():
        if not isinstance(source, ir.NodeGet):
            raise TransformError(
                f"carry source for {agent_var!r} must be a node access"
            )
        body = substitute_expr(body, source, ir.Var(agent_var))

    pickups = tuple(
        ir.Assign(agent_var, source)
        for agent_var, source in spec.carries.items()
    )
    prologue: tuple = (ir.HopStmt(spec.place),)
    if pickups:
        prologue += (ir.If(spec.pickup_cond, pickups),)

    new_loop = ir.For(loop.var, loop.count, prologue + body)
    out = replace_at(program, path, new_loop)
    out = ir.Program(name or f"{program.name}-dsc", out.body, out.params)
    return ir.register_program(out, replace=True)
