"""Dependence guard rails for the transformations.

"The basic idea behind the transformations is to spread out
computations ... as soon as possible *without violating any dependency
conditions*" (Section 2). Before a loop is distributed (DSC) or split
into concurrent messengers (pipelining/phase shifting), these checks
verify the conditions the matmul derivation relies on.

The checks themselves live in :mod:`repro.analysis.deps` — a real
def-use dependence analyzer shared with ``repro lint``, so the linter
and the transformations can never disagree about legality. This module
keeps the transformation-facing contract: a failed condition raises
:class:`~repro.errors.TransformError` carrying every violation's
message, and anything the analyzer cannot decide (no unique loop, an
unregistered node type) also raises rather than silently proceeding.

What the analyzer decides, conservatively, over the paradigm's
dictionary-shaped node variables — by solving each pair of key
expressions into a distance/direction vector
(:class:`~repro.analysis.distance.DependenceVector`):

* every node-variable *write* inside the loop must be provably unable
  to hit one entry from two iterations (coefficient zero on the loop
  variable, a non-affine key like ``acc[i % 2]`` with a variable
  modulus, or overlapping keys at nonzero distance all fail);
* a read aliasing another iteration's write is a carried flow/anti
  dependence with a solved distance. ``D[r-1, c]`` against ``D[r, c]``
  solves to distance ``+1``: illegal for plain pipelining — but a
  *forward* (all-positive, exact) carried dependence is precisely what
  :func:`check_forward_carried` certifies so keyed pipelining can turn
  it into a wait/signal handshake;
* no agent variable may be read at or before its first in-iteration
  definition (the value would carry between iterations); the DSC
  accumulator pattern, re-initialized before accumulating, passes.

(The *DSC* transformation does not need iteration independence at all
— a single migrating thread preserves program order; it only needs its
carried variables to be read-only, see :func:`check_carries_read_only`.)
"""

from __future__ import annotations

from ..analysis.deps import (
    FLOW,
    analyze_loop,
    carried_write_diagnostics,
    loop_diagnostics,
)
from ..analysis.races import race_diagnostics
from ..analysis.visitor import uses_var  # noqa: F401  (re-export)
from ..errors import AnalysisError, TransformError
from ..navp import ir

__all__ = ["check_loop_independent", "check_forward_carried",
           "check_carries_read_only", "check_race_free", "uses_var"]


def _gate(report) -> None:
    if report.errors:
        raise TransformError(
            "; ".join(d.message for d in report.errors))


def check_loop_independent(program: ir.Program, loop_var: str) -> None:
    """Raise TransformError unless iterations of the loop are independent."""
    try:
        report = loop_diagnostics(program, loop_var)
    except AnalysisError as exc:
        raise TransformError(str(exc)) from exc
    _gate(report)


def check_forward_carried(program: ir.Program, loop_var: str) -> tuple:
    """The keyed-pipelining legality condition.

    Concurrent per-iteration messengers can be ordered by a wait/signal
    handshake only when every carried dependence of the loop is a node
    flow dependence with an *exact positive* distance: iteration ``i``
    then depends on data some earlier iteration ``i - d`` published,
    and a wait on that iteration's key linearizes the pair. Anything
    else — a write collision, an anti dependence (a later iteration
    would overwrite what this one still reads), an agent-variable
    carry, or a distance the affine solver could not pin — has no such
    handshake and is refused.

    Returns the carried flow dependences (possibly empty), which tell
    the transformation *where* the waits and signals go.
    """
    try:
        analysis = analyze_loop(program, loop_var)
    except AnalysisError as exc:
        raise TransformError(str(exc)) from exc
    forward = []
    for dep in analysis.carried:
        ok = (dep.space == "node" and dep.kind == FLOW
              and dep.vector is not None and dep.vector.exact
              and dep.vector.distance is not None
              and dep.vector.distance > 0)
        if not ok:
            what = dep.vector.describe() if dep.vector is not None \
                else dep.detail
            raise TransformError(
                f"{program.name}: carried {dep.kind} dependence on "
                f"{dep.var!r} is not a forward flow dependence with an "
                f"exact distance ({what}); keyed pipelining cannot "
                f"order it with a wait/signal handshake")
        forward.append(dep)
    return tuple(forward)


def check_carries_read_only(program: ir.Program, loop_var: str,
                            carried_names) -> None:
    """The DSC legality condition: carried node variables are read-only.

    DSC inserts hops into a *single* thread, so program order — and
    with it every dependence — is preserved; the only thing that can go
    stale is a value copied into an agent variable at the pickup point
    and then used while the node copy changes. Refuse if any carried
    source is written inside the loop.
    """
    try:
        report = carried_write_diagnostics(program, loop_var,
                                           carried_names)
    except AnalysisError as exc:
        raise TransformError(str(exc)) from exc
    _gate(report)


def check_race_free(program: ir.Program, registry=None,
                    primed=frozenset()) -> None:
    """The concurrency legality condition the loop gate cannot see.

    ``check_loop_independent`` reasons about one loop's iterations in
    isolation; once a transformation has actually *split* the program
    into concurrent messengers, the generated suite as a whole must be
    free of data races — conflicting node-variable accesses that no
    injection-order or wait/signal edge separates. This runs the static
    race analyzer (:func:`repro.analysis.races.race_diagnostics`, the
    same pass behind ``repro lint --races``) over ``program``'s
    injection closure and refuses the transformation on any finding.
    """
    try:
        report = race_diagnostics(program, registry=registry,
                                  primed=primed)
    except AnalysisError as exc:
        raise TransformError(str(exc)) from exc
    _gate(report)
