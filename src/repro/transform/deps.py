"""Dependence guard rails for the transformations.

"The basic idea behind the transformations is to spread out
computations ... as soon as possible *without violating any dependency
conditions*" (Section 2). Before a loop is distributed (DSC) or split
into concurrent messengers (pipelining), these checks verify the
conditions the matmul derivation relies on, conservatively:

* every node-variable *write* inside the loop must be indexed by the
  loop variable (distinct iterations write distinct entries);
* no node variable may be both written and read inside the loop unless
  every read's key expression is *structurally identical* to one of the
  write keys — i.e. the read provably touches only the same iteration's
  entry. A read like ``D[r-1, c]`` against a write ``D[r, c]`` uses the
  loop variable but aliases the previous iteration's write, which is
  exactly the flow dependence that makes wavefront rows unpipelinable;
  the structural rule catches it.

These are sufficient conditions for iteration independence over the
paradigm's dictionary-shaped node variables, not a general dependence
analyzer; anything the checks cannot prove raises
:class:`~repro.errors.TransformError`, never silently proceeds. (Note
the *DSC* transformation does not need this check at all — a single
migrating thread preserves program order; it only needs its carried
variables to be read-only, see :func:`check_carries_read_only`.)
"""

from __future__ import annotations

from ..errors import TransformError
from ..navp import ir
from .rewrite import collect, find_unique_loop

__all__ = ["check_loop_independent", "check_carries_read_only", "uses_var"]


def uses_var(expr: ir.Expr, var: str) -> bool:
    """Does ``expr`` mention agent/loop variable ``var``?"""
    if isinstance(expr, ir.Var):
        return expr.name == var
    if isinstance(expr, ir.Const):
        return False
    if isinstance(expr, ir.Bin):
        return uses_var(expr.left, var) or uses_var(expr.right, var)
    if isinstance(expr, (ir.NodeGet, ir.Index)):
        inner = expr.base if isinstance(expr, ir.Index) else None
        return any(uses_var(e, var) for e in expr.idx) or (
            inner is not None and uses_var(inner, var))
    raise TransformError(f"unknown expression {expr!r}")


def _reads_in(stmt: ir.Stmt) -> list:
    """All NodeGet expressions appearing in a statement."""
    reads = []

    def visit(expr: ir.Expr):
        if isinstance(expr, ir.NodeGet):
            reads.append(expr)
            for e in expr.idx:
                visit(e)
        elif isinstance(expr, ir.Bin):
            visit(expr.left)
            visit(expr.right)
        elif isinstance(expr, ir.Index):
            visit(expr.base)
            for e in expr.idx:
                visit(e)

    if isinstance(stmt, ir.Assign):
        visit(stmt.expr)
    elif isinstance(stmt, ir.ComputeStmt):
        for e in stmt.args:
            visit(e)
    elif isinstance(stmt, ir.NodeSet):
        visit(stmt.expr)
        for e in stmt.idx:
            visit(e)
    elif isinstance(stmt, (ir.HopStmt,)):
        for e in stmt.place:
            visit(e)
    elif isinstance(stmt, ir.If):
        visit(stmt.cond)
    elif isinstance(stmt, ir.For):
        visit(stmt.count)
    return reads


def check_loop_independent(program: ir.Program, loop_var: str) -> None:
    """Raise TransformError unless iterations of the loop are independent."""
    _path, loop = find_unique_loop(program, loop_var)
    stmts = collect(loop.body, lambda s: True)

    writes = [s for s in stmts if isinstance(s, ir.NodeSet)]
    write_keys: dict = {}
    for w in writes:
        if not any(uses_var(e, loop_var) for e in w.idx):
            raise TransformError(
                f"{program.name}: node write {w.name}{list(w.idx)!r} is not "
                f"indexed by loop variable {loop_var!r}; iterations would "
                f"collide"
            )
        write_keys.setdefault(w.name, set()).add(tuple(w.idx))

    for stmt in stmts:
        for read in _reads_in(stmt):
            if read.name not in write_keys:
                continue
            if tuple(read.idx) not in write_keys[read.name]:
                raise TransformError(
                    f"{program.name}: {read.name}{list(read.idx)!r} is read "
                    f"but the loop writes {read.name} at different keys; a "
                    f"loop-carried dependence may exist over {loop_var!r}"
                )


def check_carries_read_only(program: ir.Program, loop_var: str,
                            carried_names) -> None:
    """The DSC legality condition: carried node variables are read-only.

    DSC inserts hops into a *single* thread, so program order — and
    with it every dependence — is preserved; the only thing that can go
    stale is a value copied into an agent variable at the pickup point
    and then used while the node copy changes. Refuse if any carried
    source is written inside the loop.
    """
    _path, loop = find_unique_loop(program, loop_var)
    for stmt in collect(loop.body, lambda s: isinstance(s, ir.NodeSet)):
        if stmt.name in set(carried_names):
            raise TransformError(
                f"{program.name}: {stmt.name!r} is carried in an agent "
                f"variable but written inside the {loop_var!r} loop; the "
                f"carried copy would go stale"
            )
