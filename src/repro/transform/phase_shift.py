"""The Phase-shifting transformation (Figures 1c-1d; matmul: Fig 7 -> 9).

"Sometimes the dependency among different computations allows different
DSC threads to enter the pipeline from different PEs. In these
situations, we can phase shift the DSC threads to achieve full
parallelism."

Mechanics on a pipelined suite:

1. the injector no longer funnels every carrier through one PE: it
   walks the chain and injects each carrier where its data lives
   (Figure 9's ``hop(node(mi)); inject(RowCarrier(mi))``) — so the
   carried data distribution must follow (A moves from node(0) to row
   strips, Figure 8);
2. the carrier's tour schedule is rotated so that carrier ``mi`` starts
   at a different PE: the hop target ``node(mj)`` becomes
   ``node((N-1-mi+mj) % N)`` — the reverse staggering.

The legality condition is the paper's: each tour stop's computation
must be valid in any order of ``mj`` (for matmul, the k-accumulation
into a private ``t`` commutes over the distributed loop only because
each stop computes a *different* C entry; what must hold is that the
stop's statements depend on the *current place*, not on how many stops
came before). We verify that mechanically by checking that the loop
body never reads an agent variable it wrote in an earlier iteration
except the accumulator pattern produced by our own DSC step, and —
decisively — by semantic verification: every transformed suite is run
and compared against its source (see :mod:`repro.transform.verify`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TransformError
from ..navp import ir
from .deps import check_loop_independent, check_race_free
from .pipeline import PipelinedSuite
from .rewrite import find_unique_loop, replace_at, substitute_expr

__all__ = ["PhaseShiftSpec", "phase_shift"]


@dataclass(frozen=True)
class PhaseShiftSpec:
    """The phase-shifting decisions.

    Formally, phase shifting is a *reindexing* of the carrier's tour:
    ``for mj: body(mj)`` becomes ``for mj: body(sigma(mi, mj))`` with
    ``sigma = (N-1-mi+mj) % N``, so carrier ``mi`` starts its tour at
    stop ``N-1-mi`` and wraps around. In the paper's pseudocode only
    the ``hop()`` target appears to change because ``B(k)`` and
    ``C(mi)`` are *place-local* names; with global block keys the same
    substitution must (and mechanically does) apply to every use of the
    tour variable in the body. Legality: the tour's iterations must be
    valid in any order — which holds exactly when each stop touches
    only its own place's data, the property the DSC dependence check
    established.

    start_place:
        Where carrier ``mi`` is injected (and its data lives):
        ``(Var("mi"),)`` at fine granularity.
    schedule:
        The reindexing expression ``sigma(mi, mj)``.
    tour:
        The carrier's tour loop variable (``mj``).
    """

    start_place: tuple
    schedule: ir.Expr
    tour: str


def phase_shift(suite: PipelinedSuite, spec: PhaseShiftSpec,
                name: str | None = None) -> PipelinedSuite:
    """Apply the Phase-shifting transformation to a pipelined suite."""
    # Legality: reindexing the tour reorders its stops, so the tour's
    # iterations must be provably independent. The dependence analyzer
    # (repro.analysis.deps) decides this — the same analysis repro lint
    # runs, so the linter and this transform cannot disagree.
    check_loop_independent(suite.carrier, spec.tour)

    # -- carrier: reindex the tour body by sigma ---------------------------
    path, tour_loop = find_unique_loop(suite.carrier, spec.tour)
    if not tour_loop.body or not isinstance(tour_loop.body[0], ir.HopStmt):
        raise TransformError(
            "phase shifting expects the tour loop to start with a hop"
        )
    rotated = ir.For(
        tour_loop.var, tour_loop.count,
        substitute_expr(tour_loop.body, ir.Var(spec.tour), spec.schedule),
    )
    carrier = replace_at(suite.carrier, path, rotated)
    carrier = ir.Program(f"{suite.carrier.name}-phase", carrier.body,
                         carrier.params)

    # -- main: inject each carrier at its own PE -----------------------------
    main = suite.main
    if (
        len(main.body) != 2
        or not isinstance(main.body[0], ir.HopStmt)
        or not isinstance(main.body[1], ir.For)
    ):
        raise TransformError(
            "phase shifting expects a pipelined main program "
            "(hop + injection loop)"
        )
    inject_loop = main.body[1]
    if len(inject_loop.body) != 1 or not isinstance(
        inject_loop.body[0], ir.InjectStmt
    ):
        raise TransformError("injection loop must contain a single inject")
    inject = inject_loop.body[0]
    new_main = ir.Program(
        name or f"{main.name.removesuffix('-pipe')}-phase",
        (
            ir.For(inject_loop.var, inject_loop.count, (
                ir.HopStmt(spec.start_place),
                ir.InjectStmt(carrier.name, inject.bindings),
            )),
        ),
    )
    new_main = ir.register_program(new_main, replace=True)
    carrier = ir.register_program(carrier, replace=True)
    check_race_free(new_main)
    return PipelinedSuite(main=new_main, carrier=carrier)
