"""Reduction reassociation — the enabling rewrite for k-pipelining.

The sequential inner product accumulates into a private scalar::

    t = 0.0
    do k: t += A(k) * B(k)
    C(i, j) = t

Splitting the k dimension across *concurrent* carriers (Figure 13's
ACarriers) requires the accumulation to live somewhere all of them can
reach — the C node variable — and requires reassociating the reduction
(each carrier adds its own term, in whatever order they arrive)::

    do k: C(i, j) += A(k) * B(k)        # C initialized to 0

This is exactly why Figures 13/15 state "C(i,j) (initialized to 0)"
where Figure 5 did not. :func:`reassociate_reduction` performs the
rewrite mechanically; its legality condition is that the combining
kernel is associative and commutative (true of ``gemm_acc``'s
additive accumulation), declared per kernel in
:data:`ASSOCIATIVE_KERNELS`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TransformError
from ..navp import ir

__all__ = ["ReductionSpec", "reassociate_reduction",
           "ASSOCIATIVE_KERNELS"]

# kernels whose accumulation commutes, making the rewrite legal
ASSOCIATIVE_KERNELS = frozenset({"gemm_acc"})


@dataclass(frozen=True)
class ReductionSpec:
    """Names the accumulator pattern to eliminate.

    acc_var:
        The private accumulator (``"t"``).
    target:
        The node variable receiving the result (``"C"``) — it must be
        zero-initialized by the data distribution, which the caller's
        layout asserts.
    """

    acc_var: str = "t"
    target: str = "C"


def _rewrite_body(body: tuple, spec: ReductionSpec) -> tuple:
    out: list = []
    i = 0
    body = list(body)
    while i < len(body):
        stmt = body[i]
        matched = _match_reduction(body, i, spec)
        if matched is not None:
            out.append(matched)
            i += 3
            continue
        if isinstance(stmt, ir.For):
            out.append(ir.For(stmt.var, stmt.count,
                              _rewrite_body(stmt.body, spec)))
        elif isinstance(stmt, ir.If):
            out.append(ir.If(stmt.cond, _rewrite_body(stmt.then, spec),
                             _rewrite_body(stmt.orelse, spec)))
        else:
            out.append(stmt)
        i += 1
    return tuple(out)


def _match_reduction(body: list, i: int, spec: ReductionSpec):
    """Match [init t; for k: t = kernel(t, ...); target[...] = t]."""
    if i + 2 >= len(body):
        return None
    init, loop, store = body[i], body[i + 1], body[i + 2]
    if not (isinstance(init, ir.ComputeStmt) and init.out == spec.acc_var):
        return None
    if not (isinstance(loop, ir.For) and len(loop.body) == 1):
        return None
    step = loop.body[0]
    if not (isinstance(step, ir.ComputeStmt) and step.out == spec.acc_var
            and step.args and step.args[0] == ir.Var(spec.acc_var)):
        return None
    if step.kernel not in ASSOCIATIVE_KERNELS:
        raise TransformError(
            f"cannot reassociate through non-associative kernel "
            f"{step.kernel!r}"
        )
    if not (isinstance(store, ir.NodeSet) and store.name == spec.target
            and store.expr == ir.Var(spec.acc_var)):
        return None
    # the accumulator disappears; each term folds into the target,
    # which the layout must zero-initialize
    folded = ir.ComputeStmt(
        step.kernel,
        (ir.NodeGet(spec.target, store.idx),) + step.args[1:],
        out=spec.acc_var,
        kind=step.kind,
    )
    return ir.For(loop.var, loop.count, (
        folded,
        ir.NodeSet(spec.target, store.idx, ir.Var(spec.acc_var)),
    ))


def reassociate_reduction(program: ir.Program, spec: ReductionSpec,
                          name: str | None = None) -> ir.Program:
    """Fold a private-accumulator reduction into its target node var."""
    new_body = _rewrite_body(program.body, spec)
    if new_body == program.body:
        raise TransformError(
            f"no [init {spec.acc_var}; accumulate; store to "
            f"{spec.target!r}] pattern found in {program.name}"
        )
    return ir.register_program(
        ir.Program(name or f"{program.name}-reassoc", new_body,
                   program.params),
        replace=True,
    )
