"""The wavefront case study: a lattice shortest-path dynamic program.

The paper presents matrix multiplication, whose iterations are
embarrassingly independent once data is placed — no events are needed
until the second dimension. Its Section 2, however, is explicit that
pipelining in general needs synchronization: "Synchronization may be
necessary to ensure that the data dependencies among the DSC threads
are not violated." This package exercises exactly that regime with the
classic wavefront recurrence

    D[i][j] = w[i][j] + min(D[i-1][j], D[i][j-1]),     D[0][0] = w[0][0]

(the cost of the cheapest monotone lattice path), block-decomposed over
a chain of PEs holding column strips. Block (R, C) depends on
(R-1, C) — produced *at the same PE* by the previous carrier — and on
(R, C-1) — whose right edge the carrier itself brings along. So:

* DSC needs no events (one thread, program order);
* pipelined carriers need a per-node event ``BDONE(R-1)`` before
  computing block (R, C) — the paper's "synchronization may be
  necessary" made concrete;
* phase shifting is *illegal*: carrier R cannot enter the pipeline at
  PE q > 0 before carrier R-1 has passed q. The transformation
  framework's dependence check refuses mechanically (see the tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..util.blocks import check_divides
from ..util.shadow import ShadowArray, is_shadow

__all__ = ["WavefrontCase", "reference_solve", "solve_block",
           "block_flops", "CELL_FLOPS"]

# modeled work per cell: one add, one min, plus index overheads folded in
CELL_FLOPS = 6.0


@dataclass(frozen=True)
class WavefrontCase:
    """An ``n x n`` lattice with block order ``b``."""

    n: int
    b: int
    shadow: bool = False
    seed: int = 2024

    def __post_init__(self) -> None:
        check_divides(self.n, self.b, "block order")

    @property
    def nblocks(self) -> int:
        return self.n // self.b

    def weights(self):
        if self.shadow:
            return ShadowArray((self.n, self.n), np.float32)
        rng = np.random.default_rng(self.seed)
        return rng.random((self.n, self.n))

    def reference(self, w=None):
        if self.shadow:
            raise ConfigurationError("no reference in shadow mode")
        return reference_solve(self.weights() if w is None else w)


def reference_solve(w):
    """Whole-table solve (vectorized row sweep with a scan-free inner
    loop kept in NumPy where possible; exact, used for verification)."""
    n, m = w.shape
    out = np.empty_like(w, dtype=float)
    out[0, :] = np.cumsum(w[0, :])
    for i in range(1, n):
        out[i, 0] = out[i - 1, 0] + w[i, 0]
        row = out[i]
        up = out[i - 1]
        for j in range(1, m):
            row[j] = w[i, j] + min(up[j], row[j - 1])
    return out


def solve_block(w_block, top=None, left=None):
    """Solve one block given its incoming boundaries.

    ``top`` is the row directly above the block (length = block width)
    or None at the global top edge; ``left`` the column directly to the
    block's left or None at the global left edge. Returns the solved
    block; shadow inputs yield a shadow output of the same shape.
    """
    if is_shadow(w_block):
        return ShadowArray(w_block.shape, w_block.dtype)
    bi, bj = w_block.shape
    out = np.empty((bi, bj), dtype=float)
    inf = np.inf
    for i in range(bi):
        for j in range(bj):
            up = out[i - 1, j] if i > 0 else (
                top[j] if top is not None else inf)
            lf = out[i, j - 1] if j > 0 else (
                left[i] if left is not None else inf)
            base = min(up, lf)
            if base == inf:  # the global origin cell only
                base = 0.0
            out[i, j] = w_block[i, j] + base
    return out


def block_flops(bi: int, bj: int) -> float:
    """Modeled flop charge for solving a ``bi x bj`` block."""
    return CELL_FLOPS * bi * bj
