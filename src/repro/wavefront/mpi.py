"""SPMD baseline for the wavefront solver.

The message-passing version every textbook gives: rank ``c`` owns a
column strip; for each block row it receives the left boundary from
rank ``c-1``, solves its block, and sends its right boundary to rank
``c+1``. Structurally this is the same pipeline the NavP carriers form
— which is the point: for wavefronts, message passing and pipelined
DSC threads coincide, whereas arriving at the NavP version took two
mechanical steps from the sequential code.
"""

from __future__ import annotations

import numpy as np

from ..fabric.topology import Grid1D
from ..machine.presets import SUN_BLADE_100
from ..machine.spec import MachineSpec
from ..mpi.comm import Comm, run_spmd
from ..util.blocks import check_divides
from .navp import WavefrontResult
from .problem import WavefrontCase, block_flops, solve_block

__all__ = ["run_mpi_wavefront", "wavefront_rank"]


def wavefront_rank(case: WavefrontCase, p: int):
    width = case.n // p
    flops = block_flops(case.b, width)

    def program(comm: Comm):
        c = comm.coord[0]
        w = comm.vars["W"]
        d_store = comm.vars["D"]
        bottom = {}
        for r in range(case.nblocks):
            left = None
            if c > 0:
                msg = yield comm.recv(src=(c - 1,), tag=("edge", r))
                left = msg.payload

            def visit(r=r, left=left):
                top = bottom.get(r - 1)
                block = solve_block(
                    w[r * case.b : (r + 1) * case.b, :], top=top,
                    left=left)
                d_store[r] = block
                bottom[r] = block[-1, :]
                return block[:, -1]

            edge = yield comm.compute(visit, flops=flops, kind="mpi",
                                      note=f"block ({r},{c})")
            if c < p - 1:
                yield comm.send((c + 1,), ("edge", r), edge)

    return program


def run_mpi_wavefront(
    case: WavefrontCase,
    p: int,
    machine: MachineSpec | None = None,
    trace: bool = True,
) -> WavefrontResult:
    machine = machine if machine is not None else SUN_BLADE_100
    check_divides(case.n, p, "PE count")
    w = case.weights()
    width = case.n // p

    def setup(fabric):
        for c in range(p):
            fabric.load((c,), W=w[:, c * width : (c + 1) * width], D={})

    result = run_spmd(Grid1D(p), wavefront_rank(case, p),
                      machine=machine, setup=setup, trace=trace)
    d = None
    if not case.shadow:
        d = np.empty((case.n, case.n))
        for c in range(p):
            for r, block in result.places[(c,)]["D"].items():
                d[r * case.b : (r + 1) * case.b,
                  c * width : (c + 1) * width] = block
    return WavefrontResult("wavefront-mpi", case, result.time, d=d,
                           trace=result.trace, details={"pes": p})
