"""A second case study: wavefront dynamic programming.

Demonstrates the NavP methodology on a problem whose dependences make
synchronization *necessary* for pipelining and make phase shifting
*illegal* — the regime the paper's Section 2 describes but the matmul
case study never enters.
"""

from .mpi import run_mpi_wavefront, wavefront_rank
from .navp import (
    DSCWavefront,
    RowCarrierWavefront,
    SequentialWavefront,
    WavefrontResult,
    pipeline_time_model,
    run_dsc_wavefront,
    run_pipelined_wavefront,
    run_sequential_wavefront,
)
from .irprog import build_wavefront_ir, run_ir_wavefront
from .problem import (
    CELL_FLOPS,
    WavefrontCase,
    block_flops,
    reference_solve,
    solve_block,
)

__all__ = [
    "WavefrontCase",
    "reference_solve",
    "solve_block",
    "block_flops",
    "CELL_FLOPS",
    "WavefrontResult",
    "run_sequential_wavefront",
    "run_dsc_wavefront",
    "run_pipelined_wavefront",
    "build_wavefront_ir",
    "run_ir_wavefront",
    "run_mpi_wavefront",
    "pipeline_time_model",
    "SequentialWavefront",
    "DSCWavefront",
    "RowCarrierWavefront",
    "wavefront_rank",
]
