"""The pipelined wavefront as navigational IR (analyzable form).

:mod:`repro.wavefront.navp` builds the pipelined stage from hand-written
messenger classes; this module states the same program in the IR so the
static analyses — protocol, locality, and especially the race detector
(:mod:`repro.analysis.races`) — can reason about it. The carrier is the
Figure-7 shape with the chain dependence the paper warns about made
explicit:

* carrier ``mr`` tours the column strips west-to-east;
* at each PE, row 0 starts from the boundary (no ``top``); every other
  row first waits ``BDONE(mr-1)`` and reads the bottom boundary row its
  predecessor published in ``bottom[mr-1]``;
* it solves its block (one ``wf_block`` kernel call returning
  ``(block, bottom row, right edge)``), publishes ``D[mr]`` and
  ``bottom[mr]``, carries the right edge east in an agent variable, and
  signals ``BDONE(mr)``.

The ``bottom[mr-1]`` read against the ``bottom[mr]`` write of the next
carrier instance is exactly the pair the race analyzer must prove
ordered — the wait/signal keyed handshake does it — while dropping the
``WaitStmt`` makes the same pair a reported race (the analyzer's
regression tests do precisely that edit).
"""

from __future__ import annotations

from ..fabric.factory import make_fabric
from ..fabric.topology import Grid1D
from ..machine.presets import SUN_BLADE_100
from ..navp import ir
from ..navp.kernels import KERNELS, register_kernel
from .navp import WavefrontResult, _gather, _layout
from .problem import WavefrontCase, block_flops, solve_block

__all__ = ["build_wavefront_ir", "build_wavefront_seq_ir",
           "run_ir_wavefront", "run_wavefront_program", "WF_KERNEL"]

V = ir.Var
C = ir.Const

WF_KERNEL = "wf_block"


def _wf_block(w, top, medge, r, b):
    block = solve_block(w[r * b : (r + 1) * b, :], top=top, left=medge)
    return (block, block[-1, :], block[:, -1])


def _wf_block_flops(w, top, medge, r, b) -> float:
    return block_flops(b, w.shape[1])


if WF_KERNEL not in KERNELS:  # idempotent under re-import
    register_kernel(WF_KERNEL, _wf_block, _wf_block_flops)


def build_wavefront_ir(p: int, nblocks: int, b: int):
    """Register and return ``(main, carrier)`` for a ``p``-PE pipeline.

    Names carry the instance shape (``wf-pipe-3x4b16``) so differently
    sized builds coexist in the registry.
    """
    tag = f"{p}x{nblocks}b{b}"
    prev = ir.Bin("-", V("mr"), C(1))
    carrier = ir.register_program(ir.Program(
        f"wf-carrier-{tag}",
        (
            ir.Assign("medge", C(None)),
            ir.For("c", C(p), (
                ir.HopStmt((V("c"),)),
                ir.If(
                    ir.Bin("<", C(0), V("mr")),
                    then=(
                        ir.WaitStmt("BDONE", (prev,)),
                        ir.Assign("top", ir.NodeGet("bottom", (prev,))),
                    ),
                    orelse=(
                        ir.Assign("top", C(None)),
                    ),
                ),
                ir.ComputeStmt(
                    WF_KERNEL,
                    (ir.NodeGet("W"), V("top"), V("medge"),
                     V("mr"), C(b)),
                    out="res"),
                ir.NodeSet("D", (V("mr"),),
                           ir.Index(V("res"), (C(0),))),
                ir.NodeSet("bottom", (V("mr"),),
                           ir.Index(V("res"), (C(1),))),
                ir.Assign("medge", ir.Index(V("res"), (C(2),))),
                ir.SignalStmt("BDONE", (V("mr"),)),
            )),
        ),
        params=("mr",),
    ))
    main = ir.register_program(ir.Program(
        f"wf-pipe-{tag}",
        (
            ir.HopStmt((C(0),)),
            ir.For("r", C(nblocks), (
                ir.InjectStmt(carrier.name, (("mr", V("r")),)),
            )),
        ),
    ))
    return main, carrier


def build_wavefront_seq_ir(p: int, nblocks: int, b: int) -> ir.Program:
    """The *sequential* wavefront in the IR: one thread touring rows.

    This is the Figure-6-shaped starting point the planner and the
    keyed-pipelining transformation work from: a single messenger
    sweeps each row of blocks west to east, reading the bottom
    boundary row its previous sweep published in ``bottom[r-1]`` — the
    forward carried dependence (distance ``+1`` over ``r``) that the
    affine engine solves and keyed pipelining turns into the Figure-7
    wait/signal handshake. Running it on any fabric gives the golden
    answer the transformed suite must reproduce bit-identically.
    """
    tag = f"{p}x{nblocks}b{b}"
    prev = ir.Bin("-", V("r"), C(1))
    return ir.register_program(ir.Program(
        f"wf-seq-{tag}",
        (
            ir.For("r", C(nblocks), (
                ir.Assign("medge", C(None)),
                ir.For("c", C(p), (
                    ir.HopStmt((V("c"),)),
                    ir.If(
                        ir.Bin("<", C(0), V("r")),
                        then=(
                            ir.Assign("top",
                                      ir.NodeGet("bottom", (prev,))),
                        ),
                        orelse=(
                            ir.Assign("top", C(None)),
                        ),
                    ),
                    ir.ComputeStmt(
                        WF_KERNEL,
                        (ir.NodeGet("W"), V("top"), V("medge"),
                         V("r"), C(b)),
                        out="res"),
                    ir.NodeSet("D", (V("r"),),
                               ir.Index(V("res"), (C(0),))),
                    ir.NodeSet("bottom", (V("r"),),
                               ir.Index(V("res"), (C(1),))),
                    ir.Assign("medge", ir.Index(V("res"), (C(2),))),
                )),
            )),
        ),
    ))


def run_wavefront_program(
    main_name: str,
    case: WavefrontCase,
    p: int,
    machine=None,
    trace: bool = True,
    fabric: str = "sim",
    label: str | None = None,
) -> WavefrontResult:
    """Run any registered wavefront program against the strip layout.

    Works for the sequential IR, the hand-built pipeline and the
    keyed-pipelining output alike — which is what lets tests and the
    planner compare their ``d`` fields bit-for-bit.
    """
    from ..navp.interp import IRMessenger

    fab = make_fabric(fabric, Grid1D(p),
                      machine=machine if machine is not None
                      else SUN_BLADE_100,
                      trace=trace)
    _layout(fab, case, p)
    fab.inject((0,), IRMessenger(main_name))
    result = fab.run()
    return WavefrontResult(
        label or f"wavefront-ir:{main_name}", case, result.time,
        d=_gather(result, case, p), trace=result.trace,
        details={"pes": p, "carriers": case.nblocks})


def run_ir_wavefront(
    case: WavefrontCase,
    p: int,
    machine=None,
    trace: bool = True,
    fabric: str = "sim",
) -> WavefrontResult:
    """Run the IR pipeline; same layout/result contract as the
    hand-written :func:`repro.wavefront.navp.run_pipelined_wavefront`."""
    from ..navp.interp import IRMessenger

    main, _carrier = build_wavefront_ir(p, case.nblocks, case.b)
    fab = make_fabric(fabric, Grid1D(p),
                      machine=machine if machine is not None
                      else SUN_BLADE_100,
                      trace=trace)
    _layout(fab, case, p)
    fab.inject((0,), IRMessenger(main.name))
    result = fab.run()
    return WavefrontResult(
        "wavefront-ir-pipelined", case, result.time,
        d=_gather(result, case, p), trace=result.trace,
        details={"pes": p, "carriers": case.nblocks})
