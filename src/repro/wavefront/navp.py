"""NavP derivation of the wavefront solver: sequential, DSC, pipelined.

The incremental chain, exactly as the paper's method prescribes:

1. **Sequential** — one PE fills the table block row by block row.
2. **DSC** — column strips of weights distributed over the chain; one
   messenger traverses block rows west-to-east, carrying the right-edge
   column of the block it just solved (its agent variable). No events:
   a single thread cannot outrun its own writes.
3. **Pipelined** — one carrier per block row, injected in order. The
   carriers now race: carrier R needs the bottom row that carrier R-1
   writes at each PE, so a per-node event ``BDONE(R-1)`` guards the
   compute — the synchronization Section 2 warns becomes necessary.

There is deliberately **no phase-shifted stage**: carrier R's first
block (R, 0) already depends on carrier R-1's block (R-1, 0), so no
carrier may enter the pipeline anywhere but behind its predecessor.
``tests/test_wavefront.py`` shows the transformation framework's
dependence check refusing the rotation mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..fabric.factory import make_fabric
from ..fabric.topology import Grid1D
from ..fabric.trace import TraceLog
from ..machine.presets import SUN_BLADE_100
from ..machine.spec import MachineSpec
from ..navp.messenger import Messenger
from ..util.blocks import check_divides
from .problem import WavefrontCase, block_flops, solve_block

__all__ = [
    "WavefrontResult",
    "run_sequential_wavefront",
    "run_dsc_wavefront",
    "run_pipelined_wavefront",
    "pipeline_time_model",
]


@dataclass
class WavefrontResult:
    variant: str
    case: WavefrontCase
    time: float
    d: object = None
    trace: TraceLog | None = None
    details: dict = field(default_factory=dict)


def _layout(fabric, case: WavefrontCase, p: int) -> None:
    """Column strips of the weight table; empty result stores."""
    w = case.weights()
    width = case.n // p
    for c in range(p):
        fabric.load(
            (c,),
            W=w[:, c * width : (c + 1) * width],
            D={},       # solved blocks, keyed by block-row index
            bottom={},  # bottom boundary rows, keyed by block-row index
        )


def _gather(result, case: WavefrontCase, p: int):
    if case.shadow:
        return None
    width = case.n // p
    out = np.empty((case.n, case.n))
    for c in range(p):
        blocks = result.places[(c,)]["D"]
        for r, block in blocks.items():
            out[r * case.b : (r + 1) * case.b,
                c * width : (c + 1) * width] = block
    return out


class _BlockRowVisit:
    """Shared per-visit logic: solve this PE's block of row R."""

    @staticmethod
    def compute(messenger, r: int, medge, flops: float):
        w = messenger.vars["W"]
        d_store = messenger.vars["D"]
        bottom = messenger.vars["bottom"]
        b = messenger._wf_case.b

        def visit(w=w, d_store=d_store, bottom=bottom, r=r, medge=medge):
            top = bottom.get(r - 1)
            block = solve_block(w[r * b : (r + 1) * b, :], top=top,
                                left=medge)
            d_store[r] = block
            bottom[r] = block[-1, :]
            return block[:, -1]  # the right edge, to carry east

        return messenger.compute(visit, flops=flops,
                                 note=f"block ({r},{messenger.here[0]})")


class SequentialWavefront(Messenger):
    """Whole table on one PE, block rows in order."""

    def __init__(self, case: WavefrontCase):
        self._wf_case = case

    def main(self):
        case = self._wf_case
        flops = block_flops(case.b, case.n)
        for r in range(case.nblocks):
            yield _BlockRowVisit.compute(self, r, None, flops)


class DSCWavefront(Messenger):
    """Figure-5 analogue: one thread chases the column strips."""

    def __init__(self, case: WavefrontCase, p: int):
        self._wf_case = case
        self._p = p
        self.medge = None  # agent variable: the carried right edge

    def main(self):
        case, p = self._wf_case, self._p
        flops = block_flops(case.b, case.n // p)
        for r in range(case.nblocks):
            self.medge = None  # each row starts at the global left edge
            for c in range(p):
                yield self.hop((c,))
                self.medge = yield _BlockRowVisit.compute(
                    self, r, self.medge, flops)


class RowCarrierWavefront(Messenger):
    """Figure-7 analogue: one carrier per block row, event-guarded."""

    def __init__(self, r: int, case: WavefrontCase, p: int):
        self.r = r
        self._wf_case = case
        self._p = p
        self.medge = None

    def main(self):
        case, p, r = self._wf_case, self._p, self.r
        flops = block_flops(case.b, case.n // p)
        for c in range(p):
            yield self.hop((c,))
            if r > 0:
                # the dependence the paper warns about: wait until the
                # previous carrier finished this PE's block of row r-1
                yield self.wait_event("BDONE", r - 1)
            self.medge = yield _BlockRowVisit.compute(
                self, r, self.medge, flops)
            yield self.signal_event("BDONE", r)


class _Injector(Messenger):
    def __init__(self, carriers):
        self._carriers = carriers

    def main(self):
        yield self.hop((0,))
        for carrier in self._carriers:
            yield self.inject(carrier)


def _run(case, p, machine, trace, fabric_kind, build):
    machine = machine if machine is not None else SUN_BLADE_100
    check_divides(case.n, p, "PE count")
    fabric = make_fabric(fabric_kind, Grid1D(p), machine=machine,
                         trace=trace)
    _layout(fabric, case, p)
    build(fabric)
    return fabric.run()


def run_sequential_wavefront(
    case: WavefrontCase,
    machine: MachineSpec | None = None,
    trace: bool = True,
    fabric: str = "sim",
) -> WavefrontResult:
    result = _run(case, 1, machine, trace, fabric,
                  lambda fab: fab.inject((0,), SequentialWavefront(case)))
    return WavefrontResult("wavefront-sequential", case, result.time,
                           d=_gather(result, case, 1), trace=result.trace)


def run_dsc_wavefront(
    case: WavefrontCase,
    p: int,
    machine: MachineSpec | None = None,
    trace: bool = True,
    fabric: str = "sim",
) -> WavefrontResult:
    result = _run(case, p, machine, trace, fabric,
                  lambda fab: fab.inject((0,), DSCWavefront(case, p)))
    return WavefrontResult("wavefront-dsc", case, result.time,
                           d=_gather(result, case, p), trace=result.trace,
                           details={"pes": p})


def run_pipelined_wavefront(
    case: WavefrontCase,
    p: int,
    machine: MachineSpec | None = None,
    trace: bool = True,
    fabric: str = "sim",
) -> WavefrontResult:
    carriers = [RowCarrierWavefront(r, case, p)
                for r in range(case.nblocks)]
    result = _run(case, p, machine, trace, fabric,
                  lambda fab: fab.inject((0,), _Injector(carriers)))
    return WavefrontResult("wavefront-pipelined", case, result.time,
                           d=_gather(result, case, p), trace=result.trace,
                           details={"pes": p, "carriers": len(carriers)})


def pipeline_time_model(case: WavefrontCase, p: int,
                        machine: MachineSpec | None = None) -> float:
    """First-order makespan of the pipelined stage.

    ``R`` block rows over ``p`` PEs pipeline to ``(R + p - 1)`` block
    slots, plus one boundary-column hop per stage of the fill.
    """
    machine = machine if machine is not None else SUN_BLADE_100
    block = machine.flops_time(block_flops(case.b, case.n // p))
    hop = machine.network.message_time(case.b * machine.elem_size)
    return (case.nblocks + p - 1) * block + (p - 1) * hop
