"""MPI-like SPMD substrate over the simulation fabric."""

from .comm import Comm, RankProgram, run_spmd

__all__ = ["Comm", "RankProgram", "run_spmd"]
