"""An MPI-like communication layer over the fabric effect system.

The paper's baseline (Section 4) is Gentleman's algorithm implemented
on LAM/MPI with non-blocking receives (``MPI_Irecv``) paired with
blocking sends, and ``MPI_Wait`` for synchronization. This module
provides exactly that surface:

* a :class:`Comm` bound to one rank of a topology, whose methods build
  the corresponding fabric effects (``yield comm.send(...)``), plus
  generator-based collectives used with ``yield from``;
* :class:`RankProgram`, the messenger adapter that pins an SPMD rank
  function to its PE;
* :func:`run_spmd`, which launches one rank per place of a topology on
  a :class:`~repro.fabric.sim.SimFabric`.

Rank functions are generators ``def program(comm): ...`` that yield
effects — the same protocol as NavP messengers, so both paradigms run
on identical simulated hardware and their timings are directly
comparable, as in the paper.
"""

from __future__ import annotations

from collections.abc import Callable, Generator

from ..errors import ConfigurationError
from ..fabric import effects as fx
from ..fabric.factory import make_fabric
from ..fabric.sim import FabricResult
from ..fabric.topology import Topology
from ..machine.presets import SUN_BLADE_100
from ..machine.spec import MachineSpec
from ..navp.messenger import Messenger

__all__ = ["Comm", "RankProgram", "run_spmd"]


class Comm:
    """The view one rank has of the communicator."""

    def __init__(self, topology: Topology, coord: tuple):
        self.topology = topology
        self.coord = topology.normalize(coord)
        self.rank = topology.index(self.coord)
        self.size = len(topology)
        #: node variables of the PE this rank is pinned to (the rank's
        #: "local memory"); bound by :class:`RankProgram` at start-up.
        self.vars: dict = {}

    # -- point to point (effect builders; yield the result) -----------
    def send(self, dst, tag, payload=None, nbytes: int | None = None) -> fx.Send:
        """Blocking (buffered) send, like ``MPI_Send`` with buffering."""
        return fx.Send(dst=tuple(dst), tag=tag, payload=payload, nbytes=nbytes)

    def isend(self, dst, tag, payload=None,
              nbytes: int | None = None) -> fx.Send:
        """Non-blocking buffered send (``MPI_Isend``): the transfer
        proceeds in the background, the sender continues at once."""
        return fx.Send(dst=tuple(dst), tag=tag, payload=payload,
                       nbytes=nbytes, blocking=False)

    def recv(self, src=fx.ANY_SOURCE, tag=None) -> fx.Recv:
        """Blocking receive; resumes with a :class:`Message`."""
        return fx.Recv(src=src, tag=tag)

    def irecv(self, src=fx.ANY_SOURCE, tag=None) -> fx.IRecv:
        """Non-blocking receive (``MPI_Irecv``); resumes with a request."""
        return fx.IRecv(src=src, tag=tag)

    def wait(self, request) -> fx.WaitRequest:
        """``MPI_Wait``; resumes with the matched :class:`Message`."""
        return fx.WaitRequest(request=request)

    def compute(self, fn=None, flops: float = 0.0, kind: str | None = "mpi",
                note: str = "") -> fx.Compute:
        return fx.Compute(fn=fn, flops=flops, kind=kind, note=note)

    # -- collectives (generators; use with ``yield from``) --------------
    def bcast(self, group, root, tag, payload=None):
        """Linear broadcast of ``payload`` from ``root`` over ``group``.

        Returns the payload on every member. ``group`` is a sequence of
        coordinates including ``root``; the root sends one message per
        peer (a fan-out appropriate for the paper's small grids).
        """
        group = [self.topology.normalize(c) for c in group]
        root = self.topology.normalize(root)
        if root not in group:
            raise ConfigurationError("broadcast root must be in the group")
        if self.coord == root:
            for peer in group:
                if peer != root:
                    yield self.send(peer, tag, payload)
            return payload
        msg = yield self.recv(src=root, tag=tag)
        return msg.payload

    def barrier(self, group, tag):
        """Dissemination-free central barrier over ``group``.

        The lowest-indexed member gathers a token from every other
        member, then releases them all. O(P) messages — fine for the
        paper's 3-9 PE grids.
        """
        group = sorted(self.topology.normalize(c) for c in group)
        root = group[0]
        if self.coord == root:
            for _ in range(len(group) - 1):
                yield self.recv(tag=("barrier-in", tag))
            for peer in group[1:]:
                yield self.send(peer, ("barrier-out", tag))
        else:
            yield self.send(root, ("barrier-in", tag))
            yield self.recv(src=root, tag=("barrier-out", tag))

    def gather(self, group, root, tag, payload):
        """Collect one payload per member at ``root``.

        Returns, at the root, a dict ``{coord: payload}`` over the
        whole group (including the root's own contribution); None
        elsewhere.
        """
        group = [self.topology.normalize(c) for c in group]
        root = self.topology.normalize(root)
        if root not in group:
            raise ConfigurationError("gather root must be in the group")
        if self.coord == root:
            collected = {root: payload}
            for _ in range(len(group) - 1):
                msg = yield self.recv(tag=("gather", tag))
                collected[msg.src] = msg.payload
            return collected
        yield self.send(root, ("gather", tag), payload)
        return None

    def scatter(self, group, root, tag, payloads=None):
        """Distribute per-member payloads from ``root``.

        At the root, ``payloads`` maps coordinates to values; every
        member (root included) returns its own value.
        """
        group = [self.topology.normalize(c) for c in group]
        root = self.topology.normalize(root)
        if root not in group:
            raise ConfigurationError("scatter root must be in the group")
        if self.coord == root:
            if payloads is None or set(payloads) != set(group):
                raise ConfigurationError(
                    "scatter needs one payload per group member")
            for peer in group:
                if peer != root:
                    yield self.send(peer, ("scatter", tag), payloads[peer])
            return payloads[root]
        msg = yield self.recv(src=root, tag=("scatter", tag))
        return msg.payload

    def reduce(self, group, root, tag, value, op):
        """Combine one value per member with ``op`` at ``root``.

        ``op`` is a binary callable (e.g. ``operator.add``); returns the
        reduction at the root, None elsewhere. Reduction order follows
        arrival order — use associative/commutative operators.
        """
        collected = yield from self.gather(group, root, tag, value)
        if collected is None:
            return None
        out = None
        for coord in sorted(collected):
            out = collected[coord] if out is None else op(out,
                                                          collected[coord])
        return out

    def allreduce(self, group, tag, value, op):
        """Reduce then broadcast: every member returns the result."""
        group = [self.topology.normalize(c) for c in group]
        root = sorted(group)[0]
        result = yield from self.reduce(group, root, ("ar", tag), value, op)
        result = yield from self.bcast(group, root, ("arb", tag), result)
        return result

    def sendrecv(self, dst, src, tag, payload):
        """Simultaneous exchange, like ``MPI_Sendrecv`` (deadlock-free
        here because sends are buffered)."""
        yield self.send(dst, ("sr", tag), payload)
        msg = yield self.recv(src=src, tag=("sr", tag))
        return msg.payload


class RankProgram(Messenger):
    """Adapter: runs an SPMD rank function as a stationary messenger."""

    def __init__(self, program: Callable[[Comm], Generator], comm: Comm):
        self._program = program
        self._comm = comm
        self.name = f"rank{comm.coord}"

    def main(self):
        self._comm.vars = self.vars
        yield from self._program(self._comm)


def run_spmd(
    topology: Topology,
    program: Callable[[Comm], Generator],
    machine: MachineSpec | None = None,
    setup: Callable | None = None,
    trace: bool = True,
    fabric: str = "sim",
) -> FabricResult:
    """Launch ``program`` once per place of ``topology`` and run."""
    machine = machine if machine is not None else SUN_BLADE_100
    fab = make_fabric(fabric, topology, machine=machine, trace=trace)
    if setup is not None:
        setup(fab)
    for coord in topology.coords:
        fab.inject(coord, RankProgram(program, Comm(topology, coord)))
    return fab.run()
