"""Structured analysis results.

Every analysis pass reports its findings as :class:`Diagnostic` values
rather than raising: a raise aborts at the first problem and loses all
the others, while a lint wants to show everything it found. The
transformations in :mod:`repro.transform` then convert *error*
diagnostics into :class:`~repro.errors.TransformError` at their
legality gates, so the linter and the transformations can never
disagree about what is legal — they consult the same analyzer.

Severities:

``error``
    The program is illegal under the checked condition (a transform
    would refuse it; ``repro lint`` exits non-zero).
``warning``
    Suspicious but not provably wrong (e.g. a signal cycle whose
    liveness depends on initial event counts supplied by the fabric).
``info``
    Observations that need context to judge (e.g. protocol findings on
    a lone component program whose peers are injected elsewhere).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Diagnostic", "DiagnosticReport",
           "ERROR", "WARNING", "INFO"]

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITIES = (ERROR, WARNING, INFO)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis pass.

    severity:
        ``"error"``, ``"warning"`` or ``"info"``.
    category:
        A stable machine-readable tag (``"write-collision"``,
        ``"stale-carry"``, ``"remote-access"``, ``"unmatched-wait"``,
        ``"signal-cycle"``, ...); tests and the corpus assert on this.
    program:
        Name of the program the finding is about.
    path:
        Statement path in :func:`repro.navp.ir.body_at` convention
        (final element = statement index), or ``()`` for whole-program
        findings.
    message:
        Human-readable explanation.
    """

    severity: str
    category: str
    program: str
    path: tuple = ()
    message: str = ""

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def __str__(self) -> str:
        where = f"{self.program} @ {list(self.path)!r}" if self.path \
            else self.program
        return f"{self.severity}[{self.category}] {where}: {self.message}"


class DiagnosticReport(list):
    """A list of diagnostics with severity filters and rendering."""

    @property
    def errors(self) -> list:
        return [d for d in self if d.severity == ERROR]

    @property
    def warnings(self) -> list:
        return [d for d in self if d.severity == WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def render(self) -> str:
        return "\n".join(str(d) for d in self)


def error(category: str, program: str, path: tuple = (),
          message: str = "") -> Diagnostic:
    return Diagnostic(ERROR, category, program, path, message)


def warning(category: str, program: str, path: tuple = (),
            message: str = "") -> Diagnostic:
    return Diagnostic(WARNING, category, program, path, message)


def info(category: str, program: str, path: tuple = (),
         message: str = "") -> Diagnostic:
    return Diagnostic(INFO, category, program, path, message)
