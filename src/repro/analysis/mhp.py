"""Static may-happen-in-parallel (MHP) analysis over the navigational IR.

The execution model this abstracts: an entry program is injected once;
every ``InjectStmt`` spawns a child messenger that runs concurrently
with its parent from the injection point on. A program whose inject
site sits inside a loop (or whose parent is itself replicated) becomes
a *class* of concurrently live instances — the paper's pipelined
carriers. Within one instance, statements execute in program order;
across instances and across programs, only three things order work:

* **injection order** — everything the parent did before the inject
  happens-before everything the child does;
* **signal → wait** — a ``waitEvent`` that consumes a ``signalEvent``
  orders the signaler's past before the waiter's future (per-place
  event pairing, the paper's producer/consumer handshake);
* **program order carried through hops** — a hop moves the one thread
  of control, it does not fork it.

The analysis builds, per thread class, a linear *segment* list: the
pre-order statement sequence cut at every wait (a segment *opener*),
signal, and inject (segment *closers*). Segments are the nodes of the
thread-segment graph; edges are sequencing (segment i → i+1), inject
(closing segment → child's first segment) and signal→wait (a segment
closed by ``signal E`` → every segment opened by ``wait E``).
:meth:`MHPAnalysis.ordered` answers "must position *a* of thread A
happen before position *b* of thread B?" by reachability over that
graph — with the crucial twist that a replicated class queried against
itself is modeled as two copies, so program order inside one instance
is never mistaken for an ordering between instances.

Two sound approximations callers must respect:

* A signal→wait edge assumes the event's value-carrying pairing (each
  signal enables the matching waiter at that place). For events that
  live in a *signal cycle* (Figures 13/15's EP/EC — bootstrapped by
  initial signals the analysis cannot see) the edge is unsound: a
  primed waiter proceeds without consuming the in-program signal. The
  ``usable_events`` parameter exists so :mod:`repro.analysis.races` can
  exclude exactly those; the cyclic protocols are then handled by its
  region rules instead.
* Pre-order position is a proxy for execution order; bodies of ``If``
  branches are treated as both executing (conservative for access
  pairs, optimistic for wait guards — a wait inside a branch is seen
  as covering statements after the branch).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..navp import ir
from . import visitor
from .summary import summarize

__all__ = ["ThreadClass", "Segment", "MHPAnalysis", "build_mhp"]


@dataclass(frozen=True)
class ThreadClass:
    """One program as (a class of) running messenger instance(s)."""

    program: str
    parent: str | None       # injecting thread class (None for the root)
    inject_path: tuple | None
    bindings: tuple          # ((param, Expr), ...) at the inject site
    replicated: bool         # can two instances be live at once?
    repl_params: frozenset   # params that differ between instances
    depth: int

    def __repr__(self) -> str:
        mult = "replicated" if self.replicated else "singleton"
        return f"ThreadClass({self.program}, {mult})"


@dataclass(frozen=True)
class Segment:
    """A maximal run of statements between synchronization points.

    ``start``/``end`` delimit pre-order positions (half-open). The
    ``opener`` is ``("wait", event)`` when the segment begins at a wait;
    the ``closer`` is ``("signal", event)`` or ``("inject", program)``
    when the segment ends by performing one.
    """

    thread: str
    index: int
    start: int
    end: int
    opener: tuple | None
    closer: tuple | None


def _build_segments(name: str, summaries) -> list:
    segments: list = []
    start = 0
    opener = None

    def close(end: int, closer) -> None:
        segments.append(Segment(
            thread=name, index=len(segments), start=start, end=end,
            opener=opener, closer=closer))

    for s in summaries:
        if s.wait is not None:
            close(s.pos, None)
            start, opener = s.pos, ("wait", s.wait[0])
        elif s.signal is not None:
            close(s.pos + 1, ("signal", s.signal[0]))
            start, opener = s.pos + 1, None
        elif s.inject is not None:
            close(s.pos + 1, ("inject", s.inject[0]))
            start, opener = s.pos + 1, None
    close(len(summaries), None)
    return segments


class MHPAnalysis:
    """Thread classes + segment graph for one injection closure."""

    def __init__(self, root: str):
        self.root = root
        self.threads: dict[str, ThreadClass] = {}
        self.summaries: dict[str, list] = {}
        self.segments: dict[str, list] = {}
        self.missing: set = set()
        self._seg_of: dict[str, list] = {}   # program -> pos -> seg index

    # -- queries ------------------------------------------------------------
    def segment_of(self, thread: str, pos: int) -> Segment:
        return self.segments[thread][self._seg_of[thread][pos]]

    def ordered(self, a_thread: str, a_pos: int, b_thread: str, b_pos: int,
                usable_events=frozenset()) -> bool:
        """Must (thread A, position a) happen before (B, b) — for a pair
        drawn from *different* instances when A is B?

        Same-instance program order is the caller's business (it holds
        trivially and needs no graph). Here A and B are distinct
        running messengers, so when ``a_thread == b_thread`` the class
        is split into two copies and the connecting path must cross an
        inject or signal edge.
        """
        same_class = a_thread == b_thread
        target = (b_thread, 1 if same_class else 0,
                  self._seg_of[b_thread][b_pos])
        start = (a_thread, 0, self._seg_of[a_thread][a_pos])

        def copies(thread: str):
            return (0, 1) if same_class and thread == a_thread else (0,)

        seen = {start}
        frontier = deque([start])
        while frontier:
            thread, copy, index = frontier.popleft()
            if (thread, copy, index) == target:
                return True
            nxt = []
            segs = self.segments[thread]
            if index + 1 < len(segs):
                nxt.append((thread, copy, index + 1))
            closer = segs[index].closer
            if closer is not None:
                kind, operand = closer
                if kind == "signal" and operand in usable_events:
                    for other, other_segs in self.segments.items():
                        for seg in other_segs:
                            if seg.opener == ("wait", operand):
                                for c in copies(other):
                                    nxt.append((other, c, seg.index))
                elif kind == "inject" and operand in self.segments:
                    for c in copies(operand):
                        nxt.append((operand, c, 0))
            for node in nxt:
                if node not in seen:
                    seen.add(node)
                    frontier.append(node)
        return False


def build_mhp(root: ir.Program, registry=None) -> MHPAnalysis:
    """Thread classes, segments, and MHP ordering for ``root``'s closure."""
    analysis = MHPAnalysis(root.name)
    get = ir.get_program if registry is None else registry.__getitem__
    analysis.threads[root.name] = ThreadClass(
        program=root.name, parent=None, inject_path=None, bindings=(),
        replicated=False, repl_params=frozenset(), depth=0)
    frontier = deque([root])
    while frontier:
        prog = frontier.popleft()
        me = analysis.threads[prog.name]
        summaries = summarize(prog)
        analysis.summaries[prog.name] = summaries
        segments = _build_segments(prog.name, summaries)
        analysis.segments[prog.name] = segments
        seg_of = [0] * len(summaries)
        for seg in segments:
            for pos in range(seg.start, seg.end):
                seg_of[pos] = seg.index
        analysis._seg_of[prog.name] = seg_of

        for s in summaries:
            if s.inject is None:
                continue
            child_name, bindings = s.inject
            try:
                child = get(child_name)
            except Exception:
                child = None
            if child is None:
                analysis.missing.add(child_name)
                continue
            replicated = me.replicated or bool(s.loops)
            varying = set(s.loops) | set(me.repl_params)
            repl_params = frozenset(
                param for param, expr in bindings
                if any(visitor.uses_var(expr, v) for v in varying))
            known = analysis.threads.get(child_name)
            if known is None:
                analysis.threads[child_name] = ThreadClass(
                    program=child_name, parent=prog.name,
                    inject_path=s.path, bindings=tuple(bindings),
                    replicated=replicated, repl_params=repl_params,
                    depth=me.depth + 1)
                frontier.append(child)
            else:
                # injected from a second site: conservatively widen
                analysis.threads[child_name] = ThreadClass(
                    program=known.program, parent=known.parent,
                    inject_path=known.inject_path, bindings=known.bindings,
                    replicated=True,
                    repl_params=known.repl_params & repl_params,
                    depth=known.depth)
    return analysis
