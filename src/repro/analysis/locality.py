"""Hop-locality checking: does every node access happen *at home*?

In NavP, ``NodeGet``/``NodeSet`` always address the node variables of
the PE the messenger currently occupies — there are no remote reads.
The #1 bug class in hand-written DSC code is therefore a tour that
reads or writes an entry whose home is some *other* place: the program
runs, but against the wrong (usually missing) data.

Given a :class:`LayoutSpec` — a symbolic description of where each
node variable's entries live, e.g. "``B[(k, j)]`` lives at ``node(j)``"
— this checker abstractly interprets a program, tracking the symbolic
current place through hops (via :mod:`repro.analysis.summary`'s place
tracking), and proves each access local by showing the access's home
expression and the current place are structurally equal after
normalization, parameter substitution (through ``InjectStmt``
bindings) and path-condition substitution (an enclosing
``if mj == 0:`` lets ``mj`` be replaced by ``0`` — exactly what makes
the DSC pickup at ``node(0)`` check out).

The checker is conservative in the "prove local" direction: an access
whose place or home is unknown (no layout entry, place lost after a
branchy hop) is skipped, while a known place that fails to match the
home is reported as a ``remote-access`` error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..navp import ir
from . import visitor
from .diagnostics import DiagnosticReport, error
from .summary import summarize

__all__ = ["LayoutSpec", "key_home", "fixed_home", "check_locality"]


def key_home(*positions: int):
    """A home function selecting key components as the coordinate.

    ``key_home(1)`` says entry ``X[(a, b)]`` lives at ``node(b)`` —
    the column-resident layout of ``B`` on the 1-D chain.
    """

    def home(key: tuple):
        if any(p >= len(key) for p in positions):
            return None
        return tuple(key[p] for p in positions)

    return home


def fixed_home(*coords: int):
    """A home function placing every entry at one fixed coordinate."""
    place = tuple(ir.Const(c) for c in coords)

    def home(key: tuple):
        return place

    return home


@dataclass(frozen=True)
class LayoutSpec:
    """Symbolic data distribution for the locality check.

    homes:
        ``{node_var: fn}`` where ``fn`` maps the access's (substituted)
        key-expression tuple to the symbolic home coordinate, or None
        for "unknown, skip".
    entry:
        Symbolic place where the entry program starts (where the
        messenger is injected), or None if unknown.
    local:
        Node variables that are by construction always local (e.g. a
        per-node drop slot like ``Bslot`` written and read in place) —
        never checked.
    """

    homes: dict
    entry: tuple | None = None
    local: frozenset = frozenset()


def _substitution(bindings: dict):
    """An expr->expr function applying a Var-name substitution."""

    def sub(expr: ir.Expr) -> ir.Expr:
        if isinstance(expr, ir.Var) and expr.name in bindings:
            return bindings[expr.name]
        return expr

    return lambda e: visitor.map_expr(sub, e)


def _cond_bindings(conds: tuple) -> dict:
    """Equality path conditions usable as substitutions.

    An enclosing ``if v == e:`` (or ``e == v``) pins ``v`` to ``e``
    inside the branch; other condition shapes contribute nothing.
    """
    out: dict = {}
    for cond in conds:
        if isinstance(cond, ir.Bin) and cond.op == "==":
            if isinstance(cond.left, ir.Var):
                out[cond.left.name] = cond.right
            elif isinstance(cond.right, ir.Var):
                out[cond.right.name] = cond.left
    return out


def check_locality(program: ir.Program, layout: LayoutSpec,
                   registry=None, _env: dict | None = None,
                   _entry: tuple | None = None,
                   _seen: set | None = None,
                   _depth: int = 0) -> DiagnosticReport:
    """Prove every node access of ``program`` (and the programs it
    injects, resolved through ``registry``) local under ``layout``."""
    if registry is None:
        registry = ir.REGISTRY
    env = dict(_env or {})
    entry = layout.entry if _entry is None and _depth == 0 else _entry
    seen = _seen if _seen is not None else set()
    report = DiagnosticReport()
    if _depth > 8:
        return report

    apply_env = _substitution(env)

    for s in summarize(program, entry_place=entry):
        conds = _cond_bindings(tuple(apply_env(c) for c in s.conds))
        apply_all = (lambda e, _c=conds:
                     _substitution(_c)(apply_env(e)))

        place = None
        if s.place is not None:
            place = visitor.normalize_key(
                tuple(apply_all(p) for p in s.place))

        for acc in s.node_reads + s.node_writes:
            if acc.var in layout.local:
                continue
            home_fn = layout.homes.get(acc.var)
            if home_fn is None or place is None:
                continue
            key = tuple(apply_all(e) for e in acc.raw_key)
            home = home_fn(key)
            if home is None:
                continue
            home = visitor.normalize_key(tuple(home))
            if home != place:
                verb = "written" if acc.write else "read"
                report.append(error(
                    "remote-access", program.name, acc.path,
                    f"{program.name}: {acc.var}{list(acc.raw_key)!r} is "
                    f"{verb} at place {list(place)!r} but its home "
                    f"under the layout is {list(home)!r}; NavP node "
                    f"accesses must be local"))

        if s.inject is not None:
            child_name, bindings = s.inject
            child = registry.get(child_name)
            if child is None:
                continue
            child_env = {v: apply_all(e) for v, e in bindings}
            child_entry = None
            if s.place is not None:
                child_entry = tuple(apply_all(p) for p in s.place)
            key = (child_name, repr(child_entry),
                   repr(sorted(child_env.items(),
                               key=lambda kv: kv[0])))
            if key in seen:
                continue
            seen.add(key)
            report.extend(check_locality(
                child, layout, registry, _env=child_env,
                _entry=child_entry, _seen=seen, _depth=_depth + 1))
    return report
