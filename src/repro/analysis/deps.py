"""Loop dependence analysis over the navigational IR.

"The basic idea behind the transformations is to spread out
computations ... as soon as possible *without violating any dependency
conditions*" (Section 2). This module decides those conditions
statically, in the style of classical array dependence analysis
(Feautrier; Adutskevich et al.) adapted to the paradigm's
dictionary-shaped node variables: accesses are compared by their
*symbolic key expressions*, normalized so that ``k+1`` and ``1+k``
agree, and classified as flow (write→read), anti (read→write) or
output (write→write) dependences, loop-carried or iteration-local.

For the transformations' legality gates the carried dependences are
what matters:

* a **write not indexed by the loop variable** (or two writes with
  differing keys) means distinct iterations hit the same entry — a
  write collision under any reordering or distribution;
* a **read whose key matches no write key** of the same variable may
  alias another iteration's write — the ``D[r-1, c]`` wavefront case;
* an **agent variable read at or before its first in-iteration
  definition** carries a value between iterations (the loop cannot be
  split into concurrent messengers). Definitions that dominate every
  use in pre-order — the DSC accumulator pattern, where ``t`` is
  re-zeroed before accumulating — are legal and not flagged.

The former structural rules in :mod:`repro.transform.deps` now
delegate here, so the linter and the transformations share one notion
of legality.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..navp import ir
from . import visitor
from .diagnostics import DiagnosticReport, error
from .summary import NodeAccess, summarize_body

__all__ = [
    "FLOW", "ANTI", "OUTPUT",
    "Dependence", "LoopAnalysis", "analyze_loop",
    "loop_diagnostics", "carried_write_diagnostics",
]

FLOW = "flow"      # write -> read
ANTI = "anti"      # read -> write
OUTPUT = "output"  # write -> write


@dataclass(frozen=True)
class Dependence:
    """One (potential) dependence between two accesses.

    ``src``/``dst`` are statement paths (body_at convention) rooted at
    the analyzed program; ``carried`` means the endpoints may fall in
    *different* iterations of the analyzed loop.
    """

    kind: str        # flow | anti | output
    space: str       # "node" | "agent"
    var: str
    src: tuple
    dst: tuple
    carried: bool
    detail: str = ""


@dataclass(frozen=True)
class LoopAnalysis:
    """The def-use structure of one loop."""

    program: ir.Program
    loop_var: str
    loop_path: tuple
    summaries: tuple          # StmtSummary of the loop body, pre-order
    dependences: tuple        # Dependence records

    @property
    def carried(self) -> tuple:
        return tuple(d for d in self.dependences if d.carried)


def _node_dependences(loop_var: str, summaries) -> list:
    reads: list[NodeAccess] = []
    writes: list[NodeAccess] = []
    pos_of: dict = {}
    for s in summaries:
        for acc in s.node_reads:
            reads.append(acc)
            pos_of[acc] = s.pos
        for acc in s.node_writes:
            writes.append(acc)
            pos_of[acc] = s.pos

    deps: list[Dependence] = []
    write_keys: dict = {}
    for w in writes:
        write_keys.setdefault(w.var, set()).add(w.key)
        if not any(visitor.uses_var(e, loop_var) for e in w.raw_key):
            deps.append(Dependence(
                OUTPUT, "node", w.var, w.path, w.path, carried=True,
                detail="write not indexed by loop variable"))

    # write/write pairs with differing keys also collide across
    # iterations even when each key mentions the loop variable
    # (iteration i writing both X[i] and X[i+1] overlaps i+1's write).
    for var, keys in write_keys.items():
        if len(keys) > 1:
            sites = [w for w in writes if w.var == var]
            deps.append(Dependence(
                OUTPUT, "node", var, sites[0].path, sites[-1].path,
                carried=True, detail="writes with differing keys"))

    for r in reads:
        keys = write_keys.get(r.var)
        if keys is None:
            continue
        if r.key in keys:
            # the read provably touches this iteration's own entry
            matching = next(w for w in writes
                            if w.var == r.var and w.key == r.key)
            kind = FLOW if pos_of[matching] <= pos_of[r] else ANTI
            deps.append(Dependence(kind, "node", r.var, matching.path,
                                   r.path, carried=False))
        else:
            for w in writes:
                if w.var != r.var:
                    continue
                kind = FLOW if pos_of[w] <= pos_of[r] else ANTI
                deps.append(Dependence(
                    kind, "node", r.var, w.path, r.path, carried=True,
                    detail="read key matches no write key"))
    return deps


def _agent_dependences(summaries) -> list:
    first_def: dict = {}
    first_use: dict = {}
    def_path: dict = {}
    use_path: dict = {}
    for s in summaries:
        for v in s.agent_defs:
            if v not in first_def:
                first_def[v] = s.pos
                def_path[v] = s.path
        for v in s.agent_uses:
            if v not in first_use:
                first_use[v] = s.pos
                use_path[v] = s.path

    deps: list[Dependence] = []
    for v, dpos in first_def.items():
        upos = first_use.get(v)
        if upos is None:
            continue
        # A use at the same position is a read-modify-write (``t =
        # f(t, ...)``): the read sees the previous iteration's value.
        if upos <= dpos:
            deps.append(Dependence(
                FLOW, "agent", v, def_path[v], use_path[v], carried=True,
                detail="used before first in-iteration definition"))
    return deps


def analyze_loop(program: ir.Program, loop_var: str) -> LoopAnalysis:
    """Def-use analysis of the unique loop over ``loop_var``.

    Raises :class:`~repro.errors.AnalysisError` when the program has no
    (or more than one) loop over ``loop_var``.
    """
    path, loop = visitor.find_unique_loop(program, loop_var)
    summaries = tuple(summarize_body(loop.body, base_path=path))
    deps = _node_dependences(loop_var, summaries) \
        + _agent_dependences(summaries)
    return LoopAnalysis(program=program, loop_var=loop_var,
                        loop_path=path, summaries=summaries,
                        dependences=tuple(deps))


def loop_diagnostics(program: ir.Program,
                     loop_var: str) -> DiagnosticReport:
    """Error diagnostics for every carried dependence of the loop.

    Empty report == iterations are provably independent (over the
    paradigm's dictionary node variables; sufficient, not necessary).
    """
    analysis = analyze_loop(program, loop_var)
    report = DiagnosticReport()
    seen: set = set()

    def emit(diag) -> None:
        key = (diag.category, diag.path, diag.message)
        if key not in seen:
            seen.add(key)
            report.append(diag)

    for dep in analysis.carried:
        if dep.space == "node" and dep.kind == OUTPUT:
            if dep.detail == "write not indexed by loop variable":
                stmt = visitor.stmt_at(program, dep.src)
                emit(error(
                    "write-collision", program.name, dep.src,
                    f"{program.name}: node write "
                    f"{stmt.name}{list(stmt.idx)!r} is not indexed by "
                    f"loop variable {loop_var!r}; iterations would "
                    f"collide"))
            else:
                emit(error(
                    "write-collision", program.name, dep.dst,
                    f"{program.name}: the loop writes {dep.var!r} at "
                    f"differing keys; iterations of {loop_var!r} would "
                    f"collide"))
        elif dep.space == "node":
            stmt_summary = next(
                s for s in analysis.summaries
                for acc in s.node_reads
                if acc.path == dep.dst and acc.var == dep.var)
            read = next(acc for acc in stmt_summary.node_reads
                        if acc.path == dep.dst and acc.var == dep.var)
            emit(error(
                "carried-dependence", program.name, dep.dst,
                f"{program.name}: {read.var}{list(read.raw_key)!r} is "
                f"read but the loop writes {read.var} at different "
                f"keys; a loop-carried dependence may exist over "
                f"{loop_var!r}"))
        else:
            emit(error(
                "carried-dependence", program.name, dep.dst,
                f"{program.name}: agent variable {dep.var!r} is read "
                f"at or before its first definition in an iteration of "
                f"{loop_var!r}; a loop-carried dependence may exist"))
    return report


def carried_write_diagnostics(program: ir.Program, loop_var: str,
                              carried_names) -> DiagnosticReport:
    """The DSC legality condition: carried node variables stay fresh.

    DSC inserts hops into a *single* thread, so program order — and
    with it every dependence — is preserved; the only thing that can
    go stale is a value copied into an agent variable at the pickup
    point and then used while the node copy changes underneath it.
    """
    path, loop = visitor.find_unique_loop(program, loop_var)
    names = set(carried_names)
    report = DiagnosticReport()
    for spath, stmt in visitor.walk_stmts(loop.body, path):
        if isinstance(stmt, ir.NodeSet) and stmt.name in names:
            report.append(error(
                "stale-carry", program.name, spath,
                f"{program.name}: {stmt.name!r} is carried in an agent "
                f"variable but written inside the {loop_var!r} loop; "
                f"the carried copy would go stale"))
    return report
