"""Loop dependence analysis over the navigational IR.

"The basic idea behind the transformations is to spread out
computations ... as soon as possible *without violating any dependency
conditions*" (Section 2). This module decides those conditions
statically, in the style of classical array dependence analysis
(Feautrier; Adutskevich et al.) adapted to the paradigm's
dictionary-shaped node variables: accesses are compared by their
*symbolic key expressions*, parsed into affine forms
(:mod:`repro.analysis.affine`) and run through GCD/Banerjee-style
tests (:mod:`repro.analysis.distance`), and classified as flow
(write→read), anti (read→write) or output (write→write) dependences —
each carrying a :class:`~repro.analysis.distance.DependenceVector`
(distance/direction over the analyzed loop), not just a carried bit.

For the transformations' legality gates the carried dependences are
what matters:

* a **write whose key can repeat across iterations** (coefficient zero
  on the loop variable, a non-affine key like ``acc[i % 2]``, or two
  writes whose keys overlap at nonzero distance) means distinct
  iterations hit the same entry — a write collision under any
  reordering or distribution;
* a **read aliasing another iteration's write** — the ``D[r-1, c]``
  wavefront case solves to distance ``+1``: illegal to distribute
  blindly, but exactly the *forward* carried dependence that keyed
  pipelining (:mod:`repro.transform.keyed_pipeline`) legalizes with a
  wait/signal handshake;
* an **agent variable read at or before its first in-iteration
  definition** carries a value between iterations (the loop cannot be
  split into concurrent messengers). Definitions that dominate every
  use in pre-order — the DSC accumulator pattern, where ``t`` is
  re-zeroed before accumulating — are legal and not flagged.

The former structural rules in :mod:`repro.transform.deps` delegate
here, so the linter and the transformations share one notion of
legality; ``repro lint --loop VAR --json`` exposes the raw vectors.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..navp import ir
from . import visitor
from .diagnostics import DiagnosticReport, error
from .distance import DependenceVector, dependence_between
from .summary import NodeAccess, summarize_body

__all__ = [
    "FLOW", "ANTI", "OUTPUT",
    "Dependence", "LoopAnalysis", "analyze_loop",
    "loop_diagnostics", "carried_write_diagnostics",
]

FLOW = "flow"      # write -> read
ANTI = "anti"      # read -> write
OUTPUT = "output"  # write -> write


@dataclass(frozen=True)
class Dependence:
    """One (potential) dependence between two accesses.

    ``src``/``dst`` are statement paths (body_at convention) rooted at
    the analyzed program; ``carried`` means the endpoints may fall in
    *different* iterations of the analyzed loop; ``vector`` is the
    distance/direction record of the affine test (None only for agent
    dependences, which have no key to solve).
    """

    kind: str        # flow | anti | output
    space: str       # "node" | "agent"
    var: str
    src: tuple
    dst: tuple
    carried: bool
    detail: str = ""
    vector: DependenceVector | None = None


@dataclass(frozen=True)
class LoopAnalysis:
    """The def-use structure of one loop."""

    program: ir.Program
    loop_var: str
    loop_path: tuple
    summaries: tuple          # StmtSummary of the loop body, pre-order
    dependences: tuple        # Dependence records

    @property
    def carried(self) -> tuple:
        return tuple(d for d in self.dependences if d.carried)


def _key_repr(key: tuple) -> str:
    return f"[{', '.join(repr(e) for e in key)}]"


def _node_dependences(loop_var: str, summaries, bound: int | None,
                      free_vars: frozenset) -> list:
    reads: list[NodeAccess] = []
    writes: list[NodeAccess] = []
    pos_of: dict = {}
    for s in summaries:
        for acc in s.node_reads:
            reads.append(acc)
            pos_of[acc] = s.pos
        for acc in s.node_writes:
            writes.append(acc)
            pos_of[acc] = s.pos

    def test(src: NodeAccess, dst: NodeAccess):
        return dependence_between(src.raw_key, dst.raw_key, loop_var,
                                  bound=bound, free_vars=free_vars)

    deps: list[Dependence] = []

    # -- write self-collisions: can iteration i and i' hit one entry? --
    for w in writes:
        vec = test(w, w)
        if vec is not None and vec.carried:
            if not any(visitor.uses_var(e, loop_var) for e in w.raw_key):
                detail = "write not indexed by loop variable"
            else:
                detail = (f"write key may repeat across iterations "
                          f"({vec.reason})")
            deps.append(Dependence(
                OUTPUT, "node", w.var, w.path, w.path, carried=True,
                detail=detail, vector=vec))

    # -- write/write pairs: overlapping keys collide across iterations --
    for i, w1 in enumerate(writes):
        for w2 in writes[i + 1:]:
            if w1.var != w2.var:
                continue
            vec = test(w1, w2)
            if vec is not None and vec.carried:
                deps.append(Dependence(
                    OUTPUT, "node", w1.var, w1.path, w2.path,
                    carried=True,
                    detail=f"writes overlap, {vec.describe()}",
                    vector=vec))

    # -- write/read pairs: flow and anti dependences ---------------------
    for r in reads:
        for w in writes:
            if w.var != r.var:
                continue
            vec = test(w, r)
            if vec is None:
                continue  # provably disjoint
            if not vec.carried:
                kind = FLOW if pos_of[w] <= pos_of[r] else ANTI
                deps.append(Dependence(
                    kind, "node", r.var, w.path, r.path, carried=False,
                    detail="iteration-local", vector=vec))
                continue
            if vec.distance is not None:
                kind = FLOW if vec.distance > 0 else ANTI
            else:
                kind = FLOW if pos_of[w] <= pos_of[r] else ANTI
            deps.append(Dependence(
                kind, "node", r.var, w.path, r.path, carried=True,
                detail=f"read aliases another iteration's write, "
                       f"{vec.describe()}",
                vector=vec))
    return deps


def _agent_dependences(summaries) -> list:
    first_def: dict = {}
    first_use: dict = {}
    def_path: dict = {}
    use_path: dict = {}
    for s in summaries:
        for v in s.agent_defs:
            if v not in first_def:
                first_def[v] = s.pos
                def_path[v] = s.path
        for v in s.agent_uses:
            if v not in first_use:
                first_use[v] = s.pos
                use_path[v] = s.path

    deps: list[Dependence] = []
    for v, dpos in first_def.items():
        upos = first_use.get(v)
        if upos is None:
            continue
        # A use at the same position is a read-modify-write (``t =
        # f(t, ...)``): the read sees the previous iteration's value.
        if upos <= dpos:
            deps.append(Dependence(
                FLOW, "agent", v, def_path[v], use_path[v], carried=True,
                detail="used before first in-iteration definition"))
    return deps


def analyze_loop(program: ir.Program, loop_var: str) -> LoopAnalysis:
    """Def-use analysis of the unique loop over ``loop_var``.

    Raises :class:`~repro.errors.AnalysisError` when the program has no
    (or more than one) loop over ``loop_var``.
    """
    path, loop = visitor.find_unique_loop(program, loop_var)
    summaries = tuple(summarize_body(loop.body, base_path=path))
    bound = loop.count.value \
        if isinstance(loop.count, ir.Const) \
        and isinstance(loop.count.value, int) \
        and not isinstance(loop.count.value, bool) else None
    # symbols assigned inside the body (inner loop variables, local
    # agent assignments) take independent values at each access
    free_vars = frozenset().union(
        *(s.agent_defs for s in summaries)) - {loop_var} \
        if summaries else frozenset()
    deps = _node_dependences(loop_var, summaries, bound, free_vars) \
        + _agent_dependences(summaries)
    return LoopAnalysis(program=program, loop_var=loop_var,
                        loop_path=path, summaries=summaries,
                        dependences=tuple(deps))


def loop_diagnostics(program: ir.Program,
                     loop_var: str) -> DiagnosticReport:
    """Error diagnostics for every carried dependence of the loop.

    Empty report == iterations are provably independent (over the
    paradigm's dictionary node variables; sufficient, not necessary).
    """
    analysis = analyze_loop(program, loop_var)
    report = DiagnosticReport()
    seen: set = set()

    def emit(diag) -> None:
        key = (diag.category, diag.path, diag.message)
        if key not in seen:
            seen.add(key)
            report.append(diag)

    for dep in analysis.carried:
        if dep.space == "node" and dep.kind == OUTPUT:
            if dep.src == dep.dst:
                stmt = visitor.stmt_at(program, dep.src)
                emit(error(
                    "write-collision", program.name, dep.src,
                    f"{program.name}: node write "
                    f"{stmt.name}{list(stmt.idx)!r} can hit one entry "
                    f"from different iterations of {loop_var!r} "
                    f"({dep.detail}); iterations would collide"))
            else:
                emit(error(
                    "write-collision", program.name, dep.dst,
                    f"{program.name}: the loop writes {dep.var!r} at "
                    f"overlapping keys ({dep.vector.describe()}); "
                    f"iterations of {loop_var!r} would collide"))
        elif dep.space == "node":
            read = next(acc for s in analysis.summaries
                        for acc in s.node_reads
                        if acc.path == dep.dst and acc.var == dep.var)
            emit(error(
                "carried-dependence", program.name, dep.dst,
                f"{program.name}: {read.var}{list(read.raw_key)!r} "
                f"reads an entry another iteration of {loop_var!r} "
                f"writes ({dep.kind} dependence, "
                f"{dep.vector.describe()}); a loop-carried dependence "
                f"exists"))
        else:
            emit(error(
                "carried-dependence", program.name, dep.dst,
                f"{program.name}: agent variable {dep.var!r} is read "
                f"at or before its first definition in an iteration of "
                f"{loop_var!r}; a loop-carried dependence may exist"))
    return report


def carried_write_diagnostics(program: ir.Program, loop_var: str,
                              carried_names) -> DiagnosticReport:
    """The DSC legality condition: carried node variables stay fresh.

    DSC inserts hops into a *single* thread, so program order — and
    with it every dependence — is preserved; the only thing that can
    go stale is a value copied into an agent variable at the pickup
    point and then used while the node copy changes underneath it.
    """
    path, loop = visitor.find_unique_loop(program, loop_var)
    names = set(carried_names)
    report = DiagnosticReport()
    for spath, stmt in visitor.walk_stmts(loop.body, path):
        if isinstance(stmt, ir.NodeSet) and stmt.name in names:
            report.append(error(
                "stale-carry", program.name, spath,
                f"{program.name}: {stmt.name!r} is carried in an agent "
                f"variable but written inside the {loop_var!r} loop; "
                f"the carried copy would go stale"))
    return report
