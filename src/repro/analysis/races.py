"""Static data-race detection: MHP ∩ conflicting node-variable accesses.

A *candidate* is a pair of accesses to the same node variable, at least
one a write, whose instances can be live concurrently (different
programs in one injection closure, or two instances of a replicated
program). A candidate is *cleared* — proven ordered or proven disjoint
— by the first rule that applies:

* **different constant places / keys** — the accesses provably touch
  different memory;
* **program order** (R1) — both sides live in the one instance of a
  singleton program;
* **instance separation** (R1') — for a replicated class, the key and
  place components pin *every* replication parameter with a bare
  variable, so distinct instances touch distinct entries (the pipelined
  carrier writing ``C[mi, mj]`` with ``mi`` bound per instance);
* **graph order** (R2/R5) — the thread-segment graph of
  :mod:`repro.analysis.mhp` reaches one access from the other via
  injection edges (everything a parent did before ``inject`` precedes
  the child) and signal→wait edges of *usable* events (single signal
  site, not primed, not in an unsourced signal cycle — the conditions
  under which "wait consumed that signal" is the only possibility);
* **common guard** (R3) — both accesses execute after a wait on the
  same event family: the event acts as the region token serializing
  the place's accesses (Figure 13's C accumulation under ``EP``);
* **handshake alternation** (R4) — side A runs in a wait(E1)…signal(E2)
  region and side B in wait(E2)…signal(E1): the two-event token
  protocol of the B-slot producer/consumer handshake;
* **keyed handshake** (R6) — within one replicated class, the reader
  waits on exactly the entry it reads (``wait BDONE(r-1)`` then read
  ``bottom[r-1]``) and every signal of that event follows a write of
  the entry named by its arguments, with the write key pinning the
  instance — the wavefront pipeline's chain dependence.

Everything left is reported as a ``data-race`` diagnostic carrying
both access sites. Guard/region rules are by event *name* (the
per-place, per-args refinement of the runtime is approximated away),
and pre-order position stands in for execution order — approximations
chosen so the golden matmul/wavefront pipelines verify clean while
every seeded corpus race is caught; the dynamic checker
(:mod:`repro.fabric.hb`) cross-validates exactly this contract.

``primed`` names events that receive initial setup-time signals
(Figure 13's "EC is signaled everywhere initially"): a primed event's
signal→wait and keyed-handshake edges are disabled, because a waiter
may have consumed a token carrying no ordering at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..navp import ir
from . import visitor
from .diagnostics import Diagnostic, DiagnosticReport, ERROR
from .distance import keys_never_equal
from .mhp import MHPAnalysis, build_mhp
from .protocol import _sccs, analyze_protocol

__all__ = ["StaticAccess", "StaticRace", "RaceAnalysis",
           "analyze_races", "race_diagnostics"]


@dataclass(frozen=True)
class StaticAccess:
    """One node-variable access with its synchronization context."""

    thread: str
    pos: int
    path: tuple
    var: str
    key: tuple                 # normalized key exprs; () = whole variable
    place: tuple | None        # symbolic place exprs, None if unknown
    write: bool
    guards: frozenset          # events waited at an earlier pre-order pos
    guard_sites: tuple         # (event, normalized args, pos, path)
    post_signals: frozenset    # events signalled at a later pre-order pos

    def site(self) -> tuple:
        return (self.thread, self.path, self.var, self.write)

    def describe(self) -> str:
        kind = "write" if self.write else "read"
        entry = f"[{_render_key(self.key)}]" if self.key else ""
        return f"{kind} of {self.var}{entry} in {self.thread} " \
               f"@ {list(self.path)!r}"


@dataclass(frozen=True)
class StaticRace:
    """A candidate no rule could clear."""

    a: StaticAccess
    b: StaticAccess

    @property
    def kind(self) -> str:
        return "write-write" if (self.a.write and self.b.write) \
            else "read-write"

    def describe(self) -> str:
        return (f"{self.kind} race on node variable {self.a.var!r}: "
                f"{self.a.describe()} vs {self.b.describe()}; no "
                f"injection-order, wait/signal, or key-separation rule "
                f"orders the pair")


@dataclass
class RaceAnalysis:
    root: str
    mhp: MHPAnalysis
    accesses: tuple
    races: tuple
    usable_events: frozenset

    @property
    def ok(self) -> bool:
        return not self.races


def _render_key(key: tuple) -> str:
    return ", ".join(repr(e) for e in key)


def _exclusive(path_a: tuple, path_b: tuple) -> bool:
    """True when the paths lie in opposite branches of one ``If``."""
    for pa, pb in zip(path_a, path_b):
        if pa == pb:
            continue
        return (isinstance(pa, tuple) and isinstance(pb, tuple)
                and pa[0] == pb[0] and pa[1] != pb[1])
    return False


def _collect_accesses(analysis: MHPAnalysis) -> list:
    out: list = []
    for name, summaries in analysis.summaries.items():
        waited: set = set()
        wait_sites: list = []
        signal_positions = [
            (s.signal[0], s.pos)
            for s in summaries if s.signal is not None
        ]
        for s in summaries:
            guards = frozenset(waited)
            sites = tuple(wait_sites)
            post = frozenset(
                event for event, pos in signal_positions if pos > s.pos)
            place = tuple(s.place) if s.place is not None else None
            for acc in s.node_reads + s.node_writes:
                out.append(StaticAccess(
                    thread=name, pos=s.pos, path=acc.path, var=acc.var,
                    key=tuple(acc.key), place=place, write=acc.write,
                    guards=guards, guard_sites=sites, post_signals=post,
                ))
            if s.wait is not None:
                event, args = s.wait
                waited.add(event)
                wait_sites.append(
                    (event, visitor.normalize_key(args), s.pos, s.path))
    return out


def _signal_sites(analysis: MHPAnalysis) -> dict:
    """event -> [(thread, normalized args, pos, path)] over the closure."""
    sites: dict = {}
    for name, summaries in analysis.summaries.items():
        for s in summaries:
            if s.signal is not None:
                event, args, _count = s.signal
                sites.setdefault(event, []).append(
                    (name, visitor.normalize_key(args), s.pos, s.path))
    return sites


class _Checker:
    def __init__(self, mhp: MHPAnalysis, accesses: list,
                 signal_sites: dict, usable: frozenset):
        self.mhp = mhp
        self.accesses = accesses
        self.signal_sites = signal_sites
        self.usable = usable
        self._writes_by_thread_var: dict = {}
        for acc in accesses:
            if acc.write:
                self._writes_by_thread_var.setdefault(
                    (acc.thread, acc.var), []).append(acc)

    # -- disjointness ------------------------------------------------------
    # Affine, not merely constant: keys_never_equal treats every
    # variable as an independent unknown on each side (sound across
    # threads and instances) and proves disjointness from differing
    # constants or a GCD obstruction; a non-affine dimension (``k % 2``)
    # falls back to "maybe equal", keeping the check conservative.
    def places_disjoint(self, a: StaticAccess, b: StaticAccess) -> bool:
        if a.place is None or b.place is None:
            return False
        return keys_never_equal(a.place, b.place)

    def keys_disjoint(self, a: StaticAccess, b: StaticAccess) -> bool:
        if not a.key or not b.key:
            return False
        return keys_never_equal(a.key, b.key)

    # -- R1': instance separation -----------------------------------------
    def param_separated(self, a: StaticAccess, b: StaticAccess) -> bool:
        thread = self.mhp.threads[a.thread]
        params = thread.repl_params
        if not params:
            return False  # indistinguishable clones
        pinned: set = set()

        def pin(ea, eb) -> None:
            for xa, xb in zip(ea, eb):
                if (isinstance(xa, ir.Var) and isinstance(xb, ir.Var)
                        and xa.name == xb.name and xa.name in params):
                    pinned.add(xa.name)

        if len(a.key) == len(b.key):
            pin(a.key, b.key)
        if (a.place is not None and b.place is not None
                and len(a.place) == len(b.place)):
            pin(a.place, b.place)
        return params <= pinned

    # -- R4: handshake alternation ----------------------------------------
    def alternation(self, a: StaticAccess, b: StaticAccess) -> bool:
        for e1 in a.guards & b.post_signals:
            for e2 in b.guards & a.post_signals:
                if e1 != e2:
                    return True
        return False

    # -- R6: keyed handshake (pipelined chain) ----------------------------
    def keyed_handshake(self, a: StaticAccess, b: StaticAccess) -> bool:
        if a.thread != b.thread:
            return False
        write, read = (a, b) if a.write else (b, a)
        if read.write or not write.write:
            return False
        thread = self.mhp.threads[write.thread]
        params = thread.repl_params
        if not params or not write.key:
            return False
        # the write key must pin the instance identity
        pinning = {e.name for e in write.key
                   if isinstance(e, ir.Var) and e.name in params}
        if not params <= pinning:
            return False
        for event, args, _pos, _path in read.guard_sites:
            if event in self.usable or args != read.key:
                continue  # usable events are the graph's business
            if self._signals_follow_writes(event, write.thread, write.var):
                return True
        return False

    def _signals_follow_writes(self, event: str, thread: str,
                               var: str) -> bool:
        """Every signal of ``event`` is emitted by ``thread`` after a
        same-execution-path write of ``var``'s entry named by its args."""
        sites = self.signal_sites.get(event)
        if not sites:
            return False
        writes = self._writes_by_thread_var.get((thread, var), ())
        for site_thread, args, pos, path in sites:
            if site_thread != thread:
                return False
            if not any(w.key == args and w.pos < pos
                       and not _exclusive(w.path, path)
                       for w in writes):
                return False
        return True

    # -- the rule cascade --------------------------------------------------
    def separated(self, a: StaticAccess, b: StaticAccess) -> bool:
        if self.places_disjoint(a, b) or self.keys_disjoint(a, b):
            return True
        same = a.thread == b.thread
        if same and not self.mhp.threads[a.thread].replicated:
            return True  # R1: one instance, program order
        if same and self.param_separated(a, b):
            return True  # R1'
        if (self.mhp.ordered(a.thread, a.pos, b.thread, b.pos, self.usable)
                or self.mhp.ordered(b.thread, b.pos, a.thread, a.pos,
                                    self.usable)):
            return True  # R2 / R5
        if a.guards & b.guards:
            return True  # R3
        if self.alternation(a, b):
            return True  # R4
        if self.keyed_handshake(a, b):
            return True  # R6
        return False


def analyze_races(root: ir.Program, registry=None,
                  primed=frozenset()) -> RaceAnalysis:
    """Static race verdict for ``root``'s injection closure.

    ``primed`` lists events that receive initial (setup-time) signals;
    their signal→wait edges carry no ordering and are disabled.
    """
    mhp = build_mhp(root, registry)
    accesses = _collect_accesses(mhp)
    sites = _signal_sites(mhp)

    protocol = analyze_protocol(root, registry)
    edges: dict = {}
    for s in protocol.signals:
        for g in s.guards:
            edges.setdefault(g, set()).add(s.event)
    cyclic: set = set()
    for comp in _sccs(sorted(protocol.events), edges):
        if len(comp) > 1 or comp[0] in edges.get(comp[0], ()):
            if not any(e in protocol.sourced for e in comp):
                cyclic.update(comp)
    usable = frozenset(
        event for event, site_list in sites.items()
        if len(site_list) == 1
        and event not in primed
        and event not in cyclic
    )

    checker = _Checker(mhp, accesses, sites, usable)
    races: list = []
    seen: set = set()
    by_var: dict = {}
    for acc in accesses:
        by_var.setdefault(acc.var, []).append(acc)
    for group in by_var.values():
        if not any(acc.write for acc in group):
            continue
        for i, a in enumerate(group):
            for b in group[i:]:
                if not (a.write or b.write):
                    continue
                if a is b and not (
                        a.write and mhp.threads[a.thread].replicated):
                    continue
                # key=repr: paths mix int and (pc, branch) steps, which
                # plain tuple comparison cannot order
                key = tuple(sorted((a.site(), b.site()), key=repr))
                if key in seen:
                    continue
                if checker.separated(a, b):
                    continue
                seen.add(key)
                races.append(StaticRace(a, b))
    return RaceAnalysis(
        root=root.name,
        mhp=mhp,
        accesses=tuple(accesses),
        races=tuple(races),
        usable_events=usable,
    )


def race_diagnostics(root: ir.Program, registry=None,
                     primed=frozenset()) -> DiagnosticReport:
    """``data-race`` diagnostics (always errors) for ``root``'s closure."""
    analysis = analyze_races(root, registry, primed)
    report = DiagnosticReport()
    for race in analysis.races:
        report.append(Diagnostic(
            ERROR, "data-race", race.a.thread, race.a.path,
            f"{analysis.root}: {race.describe()}"))
    return report
