"""Affine forms of key expressions: the dependence engine's front end.

The paradigm's node variables are dictionaries keyed by loop-index
expressions (``C[mi, mj]``, ``bottom[r-1]``, ``X[2*k+1]``). The old
dependence test compared those keys by *normalized symbolic equality*,
which can only say "same entry" or "don't know" — it rejected
``X[(i+1)-1]`` against ``X[i]`` and accepted ``acc[i % 2]`` as "indexed
by the loop variable". This module parses a key expression into an
**affine form**

    ``c0 + c1 * v1 + c2 * v2 + ...``     (integer coefficients)

so that :mod:`repro.analysis.distance` can run classical GCD /
Banerjee-style dependence tests on the coefficients and produce
distance/direction *vectors* instead of booleans. Anything outside the
affine fragment — ``%`` or ``//`` with a variable operand, a product of
two variables, a :class:`~repro.navp.ir.NodeGet` or
:class:`~repro.navp.ir.Index` in a key — parses to ``None``, the
signal for every downstream test to fall back conservatively.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..navp import ir

__all__ = ["Affine", "affine_of", "affine_key"]


@dataclass(frozen=True)
class Affine:
    """``const + sum(coeff * var)`` with integer coefficients.

    ``coeffs`` is a sorted tuple of ``(var, coeff)`` pairs with every
    coefficient nonzero, so structurally equal forms compare equal.
    """

    coeffs: tuple
    const: int

    def coeff(self, var: str) -> int:
        for name, c in self.coeffs:
            if name == var:
                return c
        return 0

    @property
    def vars(self) -> frozenset:
        return frozenset(name for name, _c in self.coeffs)

    def drop(self, var: str) -> "Affine":
        """The form with ``var``'s term removed."""
        return Affine(tuple((n, c) for n, c in self.coeffs if n != var),
                      self.const)

    def __repr__(self) -> str:
        parts = [str(self.const)] if self.const or not self.coeffs else []
        for name, c in self.coeffs:
            parts.append(name if c == 1 else f"{c}*{name}")
        return " + ".join(parts).replace("+ -", "- ")


def _make(terms: dict, const: int) -> Affine:
    return Affine(
        tuple(sorted((v, c) for v, c in terms.items() if c != 0)),
        const)


def _combine(a: Affine, b: Affine, sign: int) -> Affine:
    terms = dict(a.coeffs)
    for v, c in b.coeffs:
        terms[v] = terms.get(v, 0) + sign * c
    return _make(terms, a.const + sign * b.const)


def _scale(a: Affine, factor: int) -> Affine:
    return _make({v: c * factor for v, c in a.coeffs}, a.const * factor)


def affine_of(expr: ir.Expr) -> Affine | None:
    """Parse ``expr`` into an :class:`Affine`, or None if non-affine.

    Booleans, ``None`` and other non-integer constants are non-affine:
    they appear in keys only in degenerate programs, and treating them
    conservatively is always sound.
    """
    if isinstance(expr, ir.Const):
        if isinstance(expr.value, int) and not isinstance(expr.value, bool):
            return Affine((), expr.value)
        return None
    if isinstance(expr, ir.Var):
        return Affine(((expr.name, 1),), 0)
    if isinstance(expr, ir.Bin):
        left = affine_of(expr.left)
        right = affine_of(expr.right)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return _combine(left, right, +1)
        if expr.op == "-":
            return _combine(left, right, -1)
        if expr.op == "*":
            # affine only when one side is a pure constant
            if not left.coeffs:
                return _scale(right, left.const)
            if not right.coeffs:
                return _scale(left, right.const)
            return None
        if expr.op in ("%", "//"):
            # foldable only when both sides are constants
            if not left.coeffs and not right.coeffs and right.const != 0:
                value = (left.const % right.const if expr.op == "%"
                         else left.const // right.const)
                return Affine((), value)
            return None
        return None  # comparisons are not index arithmetic
    return None  # NodeGet, Index, extension exprs


def affine_key(idx) -> tuple:
    """Element-wise :func:`affine_of` over a key tuple (None = non-affine)."""
    return tuple(affine_of(e) for e in idx)
