"""A corpus of known-bad programs, one per diagnostic category.

These are the analyzer's negative controls: small navigational
programs each seeded with exactly one class of defect, together with
the check that must flag it and the category it must be flagged under.
``repro lint --corpus`` (and the tier-1 test) runs every case and
fails if any defect goes undetected or is misclassified — so a future
change that quietly blinds an analysis pass fails fast.

Each case carries its *own* registry: corpus programs are never
installed in :data:`repro.navp.ir.REGISTRY`, so they can never leak
into ``repro lint --all`` or a fabric run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..navp import ir
from .deps import carried_write_diagnostics, loop_diagnostics
from .diagnostics import DiagnosticReport
from .locality import LayoutSpec, check_locality, key_home
from .protocol import protocol_diagnostics

__all__ = ["CorpusCase", "CORPUS", "run_case", "verify_corpus"]

V = ir.Var
C = ir.Const


@dataclass(frozen=True)
class CorpusCase:
    """One known-bad program plus how to catch it.

    check:
        ``"loop"`` (:func:`~repro.analysis.deps.loop_diagnostics`),
        ``"carries"`` (:func:`carried_write_diagnostics`),
        ``"locality"`` (:func:`check_locality`) or ``"protocol"``
        (:func:`protocol_diagnostics`).
    category:
        The diagnostic category the case must be flagged under.
    """

    name: str
    category: str
    registry: dict
    root: str
    check: str
    loop: str | None = None
    carried: tuple = ()
    layout: LayoutSpec | None = None


def _case_write_collision() -> CorpusCase:
    # every iteration writes acc[()] — a classic reduction race once
    # the loop is distributed
    prog = ir.Program("bad-write-collision", (
        ir.For("i", C(4), (
            ir.ComputeStmt("copy", (ir.NodeGet("X", (V("i"),)),),
                           out="t"),
            ir.NodeSet("acc", (), V("t")),
        )),
    ))
    return CorpusCase(
        name=prog.name, category="write-collision",
        registry={prog.name: prog}, root=prog.name,
        check="loop", loop="i")


def _case_stale_carry() -> CorpusCase:
    # the carried row A is overwritten mid-tour: the agent copy mA
    # picked up at the start no longer matches the node data
    prog = ir.Program("bad-stale-carry", (
        ir.Assign("mA", ir.NodeGet("A")),
        ir.For("i", C(4), (
            ir.HopStmt((V("i"),)),
            ir.NodeSet("A", (V("i"),), V("mA")),
            ir.NodeSet("out", (V("i"),), ir.Index(V("mA"), (V("i"),))),
        )),
    ))
    return CorpusCase(
        name=prog.name, category="stale-carry",
        registry={prog.name: prog}, root=prog.name,
        check="carries", loop="i", carried=("A",))


def _case_remote_access() -> CorpusCase:
    # hops to node(i) but reads R's entry homed at node(i+1): the
    # off-by-one tour that works on data that is not there
    prog = ir.Program("bad-remote-access", (
        ir.For("i", C(4), (
            ir.HopStmt((V("i"),)),
            ir.ComputeStmt(
                "copy",
                (ir.NodeGet("R", (ir.Bin("+", V("i"), C(1)),)),),
                out="t"),
            ir.NodeSet("out", (V("i"),), V("t")),
        )),
    ))
    layout = LayoutSpec(
        homes={"R": key_home(0), "out": key_home(0)},
        entry=(C(0),))
    return CorpusCase(
        name=prog.name, category="remote-access",
        registry={prog.name: prog}, root=prog.name,
        check="locality", layout=layout)


def _case_unmatched_wait() -> CorpusCase:
    # main injects a waiter on "go", but nothing in the closure ever
    # signals it: a guaranteed deadlock
    waiter = ir.Program("bad-waiter", (
        ir.WaitStmt("go"),
        ir.NodeSet("out", (C(0),), C(1)),
    ))
    main = ir.Program("bad-unmatched-wait", (
        ir.HopStmt((C(0),)),
        ir.InjectStmt(waiter.name),
    ))
    return CorpusCase(
        name=main.name, category="unmatched-wait",
        registry={waiter.name: waiter, main.name: main},
        root=main.name, check="protocol")


def _case_signal_cycle() -> CorpusCase:
    # worker1 signals B only after waiting A; worker2 signals A only
    # after waiting B; nobody signals unguarded
    w1 = ir.Program("bad-cycle-w1", (
        ir.WaitStmt("A"),
        ir.SignalStmt("B"),
    ))
    w2 = ir.Program("bad-cycle-w2", (
        ir.WaitStmt("B"),
        ir.SignalStmt("A"),
    ))
    main = ir.Program("bad-signal-cycle", (
        ir.HopStmt((C(0),)),
        ir.InjectStmt(w1.name),
        ir.InjectStmt(w2.name),
    ))
    return CorpusCase(
        name=main.name, category="signal-cycle",
        registry={w1.name: w1, w2.name: w2, main.name: main},
        root=main.name, check="protocol")


def _case_carried_flow() -> CorpusCase:
    # the wavefront row from the deps docstring: D[r-1, c] read
    # against a D[r, c] write aliases the previous iteration
    prog = ir.Program("bad-carried-flow", (
        ir.For("r", C(4), (
            ir.ComputeStmt(
                "copy",
                (ir.NodeGet("D", (ir.Bin("-", V("r"), C(1)), V("c"))),),
                out="up"),
            ir.NodeSet("D", (V("r"), V("c")), V("up")),
        )),
    ), params=("c",))
    return CorpusCase(
        name=prog.name, category="carried-dependence",
        registry={prog.name: prog}, root=prog.name,
        check="loop", loop="r")


CORPUS: tuple = (
    _case_write_collision(),
    _case_stale_carry(),
    _case_remote_access(),
    _case_unmatched_wait(),
    _case_signal_cycle(),
    _case_carried_flow(),
)


def run_case(case: CorpusCase) -> DiagnosticReport:
    """Run the case's designated check, returning its diagnostics."""
    root = case.registry[case.root]
    if case.check == "loop":
        return loop_diagnostics(root, case.loop)
    if case.check == "carries":
        return carried_write_diagnostics(root, case.loop, case.carried)
    if case.check == "locality":
        return check_locality(root, case.layout, registry=case.registry)
    if case.check == "protocol":
        return protocol_diagnostics(root, registry=case.registry)
    raise ValueError(f"unknown corpus check {case.check!r}")


def verify_corpus() -> list:
    """``(case, report, hit)`` for every corpus case.

    ``hit`` is True when the case's defect was flagged under the
    expected category at error-or-warning severity.
    """
    results = []
    for case in CORPUS:
        report = run_case(case)
        hit = any(d.category == case.category
                  and d.severity in ("error", "warning")
                  for d in report)
        results.append((case, report, hit))
    return results
