"""A corpus of known-bad (and deliberately-clean) programs.

These are the analyzer's controls. The *negative* controls are small
navigational programs each seeded with exactly one class of defect,
together with the check that must flag it and the category it must be
flagged under. The *positive* controls (``expect_clean=True``) are
programs a naive syntactic key-equality test would reject but the
affine dependence engine proves safe — they pin down the precision the
engine buys, so a future change that regresses it to syntax matching
fails fast too. ``repro lint --corpus`` (and the tier-1 test) runs
every case and fails if any defect goes undetected, is misclassified,
or any clean case draws a false positive.

Each case carries its *own* registry: corpus programs are never
installed in :data:`repro.navp.ir.REGISTRY`, so they can never leak
into ``repro lint --all`` or a fabric run.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from ..navp import ir
from .deps import carried_write_diagnostics, loop_diagnostics
from .diagnostics import DiagnosticReport
from .locality import LayoutSpec, check_locality, key_home
from .protocol import protocol_diagnostics
from .races import race_diagnostics

__all__ = ["CorpusCase", "CORPUS", "RACY_CORPUS", "LIVENESS_CORPUS",
           "run_case", "verify_corpus", "installed"]

V = ir.Var
C = ir.Const


@dataclass(frozen=True)
class CorpusCase:
    """One known-bad program plus how to catch it.

    check:
        ``"loop"`` (:func:`~repro.analysis.deps.loop_diagnostics`),
        ``"carries"`` (:func:`carried_write_diagnostics`),
        ``"locality"`` (:func:`check_locality`), ``"protocol"``
        (:func:`protocol_diagnostics`), ``"races"``
        (:func:`~repro.analysis.races.race_diagnostics`) or
        ``"protocol_mc"``
        (:func:`~repro.analysis.protocol_mc.mc_diagnostics`).
    category:
        The diagnostic category the case must be flagged under.

    The ``"races"`` cases are also *runnable*: the schedule fuzzer
    (:mod:`repro.fabric.fuzz`) executes them with the dynamic
    happens-before checker on and cross-validates its findings against
    the static report. ``places``/``entry``/``initial_signals`` are the
    runtime setup that makes that possible; ``racy_vars`` names the
    node variables whose accesses must be flagged. Events in
    ``initial_signals`` are exactly the statically-``primed`` set.
    """

    name: str
    category: str
    registry: dict
    root: str
    check: str
    expect_clean: bool = False     # positive control: must NOT be flagged
    loop: str | None = None
    carried: tuple = ()
    layout: LayoutSpec | None = None
    places: int = 1                # 1-D topology size for dynamic runs
    entry: tuple = (0,)            # where the root program is injected
    initial_signals: tuple = ()    # (event, args, count) primed per place
    racy_vars: tuple = ()          # node variables expected to race
    window: int | None = None      # credit window for "protocol_mc" cases

    @property
    def primed(self) -> frozenset:
        """Events receiving setup-time signals (see ``analyze_races``)."""
        return frozenset(ev for ev, _args, _count in self.initial_signals)


def _case_write_collision() -> CorpusCase:
    # every iteration writes acc[()] — a classic reduction race once
    # the loop is distributed
    prog = ir.Program("bad-write-collision", (
        ir.For("i", C(4), (
            ir.ComputeStmt("copy", (ir.NodeGet("X", (V("i"),)),),
                           out="t"),
            ir.NodeSet("acc", (), V("t")),
        )),
    ))
    return CorpusCase(
        name=prog.name, category="write-collision",
        registry={prog.name: prog}, root=prog.name,
        check="loop", loop="i")


def _case_stale_carry() -> CorpusCase:
    # the carried row A is overwritten mid-tour: the agent copy mA
    # picked up at the start no longer matches the node data
    prog = ir.Program("bad-stale-carry", (
        ir.Assign("mA", ir.NodeGet("A")),
        ir.For("i", C(4), (
            ir.HopStmt((V("i"),)),
            ir.NodeSet("A", (V("i"),), V("mA")),
            ir.NodeSet("out", (V("i"),), ir.Index(V("mA"), (V("i"),))),
        )),
    ))
    return CorpusCase(
        name=prog.name, category="stale-carry",
        registry={prog.name: prog}, root=prog.name,
        check="carries", loop="i", carried=("A",))


def _case_remote_access() -> CorpusCase:
    # hops to node(i) but reads R's entry homed at node(i+1): the
    # off-by-one tour that works on data that is not there
    prog = ir.Program("bad-remote-access", (
        ir.For("i", C(4), (
            ir.HopStmt((V("i"),)),
            ir.ComputeStmt(
                "copy",
                (ir.NodeGet("R", (ir.Bin("+", V("i"), C(1)),)),),
                out="t"),
            ir.NodeSet("out", (V("i"),), V("t")),
        )),
    ))
    layout = LayoutSpec(
        homes={"R": key_home(0), "out": key_home(0)},
        entry=(C(0),))
    return CorpusCase(
        name=prog.name, category="remote-access",
        registry={prog.name: prog}, root=prog.name,
        check="locality", layout=layout)


def _case_unmatched_wait() -> CorpusCase:
    # main injects a waiter on "go", but nothing in the closure ever
    # signals it: a guaranteed deadlock
    waiter = ir.Program("bad-waiter", (
        ir.WaitStmt("go"),
        ir.NodeSet("out", (C(0),), C(1)),
    ))
    main = ir.Program("bad-unmatched-wait", (
        ir.HopStmt((C(0),)),
        ir.InjectStmt(waiter.name),
    ))
    return CorpusCase(
        name=main.name, category="unmatched-wait",
        registry={waiter.name: waiter, main.name: main},
        root=main.name, check="protocol")


def _case_signal_cycle() -> CorpusCase:
    # worker1 signals B only after waiting A; worker2 signals A only
    # after waiting B; nobody signals unguarded
    w1 = ir.Program("bad-cycle-w1", (
        ir.WaitStmt("A"),
        ir.SignalStmt("B"),
    ))
    w2 = ir.Program("bad-cycle-w2", (
        ir.WaitStmt("B"),
        ir.SignalStmt("A"),
    ))
    main = ir.Program("bad-signal-cycle", (
        ir.HopStmt((C(0),)),
        ir.InjectStmt(w1.name),
        ir.InjectStmt(w2.name),
    ))
    return CorpusCase(
        name=main.name, category="signal-cycle",
        registry={w1.name: w1, w2.name: w2, main.name: main},
        root=main.name, check="protocol")


def _case_carried_flow() -> CorpusCase:
    # the wavefront row from the deps docstring: D[r-1, c] read
    # against a D[r, c] write aliases the previous iteration
    prog = ir.Program("bad-carried-flow", (
        ir.For("r", C(4), (
            ir.ComputeStmt(
                "copy",
                (ir.NodeGet("D", (ir.Bin("-", V("r"), C(1)), V("c"))),),
                out="up"),
            ir.NodeSet("D", (V("r"), V("c")), V("up")),
        )),
    ), params=("c",))
    return CorpusCase(
        name=prog.name, category="carried-dependence",
        registry={prog.name: prog}, root=prog.name,
        check="loop", loop="r")


def _case_unsignaled_write() -> CorpusCase:
    # pipelined producer/consumer with the handshake simply left out:
    # the writer fills the slot but never signals, so the reader's copy
    # races the write (the Figure 11 protocol minus its signal/wait)
    writer = ir.Program("bad-race-writer", (
        ir.NodeSet("slot", (), C(7)),
    ))
    reader = ir.Program("bad-race-reader", (
        ir.ComputeStmt("copy", (ir.NodeGet("slot"),), out="t"),
        ir.NodeSet("out", (C(0),), V("t")),
    ))
    main = ir.Program("bad-unsignaled-write", (
        ir.HopStmt((C(0),)),
        ir.NodeSet("slot", (), C(0)),
        ir.InjectStmt(writer.name),
        ir.InjectStmt(reader.name),
    ))
    return CorpusCase(
        name=main.name, category="data-race",
        registry={p.name: p for p in (writer, reader, main)},
        root=main.name, check="races",
        racy_vars=("slot",))


def _case_dropped_wait() -> CorpusCase:
    # the Figure 13 producer/consumer handshake with the consumer's
    # wait(EP) dropped. The producer still waits EC before writing —
    # but EC is primed everywhere at setup, so that wait consumes a
    # token carrying no ordering and the consumer's read is unprotected.
    producer = ir.Program("bad-race-producer", (
        ir.For("i", C(3), (
            ir.HopStmt((V("i"),)),
            ir.WaitStmt("EC"),
            ir.NodeSet("slot", (), V("i")),
            ir.SignalStmt("EP"),
        )),
    ))
    consumer = ir.Program("bad-race-consumer", (
        ir.For("i", C(3), (
            ir.HopStmt((V("i"),)),
            # wait(EP) belongs here; its absence is the seeded defect
            ir.ComputeStmt("copy", (ir.NodeGet("slot"),), out="t"),
            ir.NodeSet("out", (V("i"),), V("t")),
            ir.SignalStmt("EC"),
        )),
    ))
    main = ir.Program("bad-dropped-wait", (
        ir.For("i", C(3), (
            ir.HopStmt((V("i"),)),
            ir.NodeSet("slot", (), C(0)),
        )),
        ir.HopStmt((C(0),)),
        ir.InjectStmt(producer.name),
        ir.InjectStmt(consumer.name),
    ))
    return CorpusCase(
        name=main.name, category="data-race",
        registry={p.name: p for p in (producer, consumer, main)},
        root=main.name, check="races",
        places=3, initial_signals=(("EC", (), 1),),
        racy_vars=("slot",))


def _case_key_alias() -> CorpusCase:
    # two writers address X[k+1] and X[1+k]: syntactically different
    # keys, the same entry once commutative normalization is applied —
    # the alias must not be mistaken for disjointness
    w1 = ir.Program("bad-race-alias-w1", (
        ir.NodeSet("X", (ir.Bin("+", V("k"), C(1)),), C(1)),
    ), params=("k",))
    w2 = ir.Program("bad-race-alias-w2", (
        ir.NodeSet("X", (ir.Bin("+", C(1), V("k")),), C(2)),
    ), params=("k",))
    main = ir.Program("bad-key-alias", (
        ir.HopStmt((C(0),)),
        ir.InjectStmt(w1.name, bindings=(("k", C(2)),)),
        ir.InjectStmt(w2.name, bindings=(("k", C(2)),)),
    ))
    return CorpusCase(
        name=main.name, category="data-race",
        registry={p.name: p for p in (w1, w2, main)},
        root=main.name, check="races",
        racy_vars=("X",))


def _case_reduction_order() -> CorpusCase:
    # one adder per loop iteration, each read-modify-writing acc[()]:
    # the key pins no replication parameter, so instances collide — and
    # the final value depends on injection-arrival interleaving
    adder = ir.Program("bad-race-adder", (
        ir.HopStmt((C(0),)),
        ir.Assign("t", ir.Bin("+", ir.NodeGet("acc"), V("mi"))),
        ir.NodeSet("acc", (), V("t")),
    ), params=("mi",))
    main = ir.Program("bad-reduction-order", (
        ir.HopStmt((C(0),)),
        ir.NodeSet("acc", (), C(0)),
        ir.For("i", C(3), (
            ir.InjectStmt(adder.name, bindings=(("mi", V("i")),)),
        )),
    ))
    return CorpusCase(
        name=main.name, category="data-race",
        registry={adder.name: adder, main.name: main},
        root=main.name, check="races",
        racy_vars=("acc",))


def _case_affine_offset() -> CorpusCase:
    # write X[(1+i)-1], read X[i]: syntactically different keys, the
    # same entry in the same iteration. A key-equality test sees two
    # distinct expressions and reports a (phantom) carried dependence;
    # the affine solver reduces both to coefficient 1, constant 0 and
    # proves distance 0 — iteration-local, legal to distribute
    prog = ir.Program("good-affine-offset", (
        ir.For("i", C(4), (
            ir.ComputeStmt("copy", (ir.NodeGet("X", (V("i"),)),),
                           out="t"),
            ir.NodeSet(
                "X",
                (ir.Bin("-", ir.Bin("+", C(1), V("i")), C(1)),),
                V("t")),
        )),
    ))
    return CorpusCase(
        name=prog.name, category="carried-dependence",
        registry={prog.name: prog}, root=prog.name,
        check="loop", loop="i", expect_clean=True)


def _case_gcd_disjoint() -> CorpusCase:
    # write X[2i], read X[2i+1]: evens vs odds. 2d = 1 has no integer
    # solution, so the GCD test proves the accesses disjoint across
    # *all* iteration pairs — no dependence at all
    prog = ir.Program("good-gcd-disjoint", (
        ir.For("i", C(4), (
            ir.ComputeStmt(
                "copy",
                (ir.NodeGet(
                    "X",
                    (ir.Bin("+", ir.Bin("*", C(2), V("i")), C(1)),)),),
                out="t"),
            ir.NodeSet("X", (ir.Bin("*", C(2), V("i")),), V("t")),
        )),
    ))
    return CorpusCase(
        name=prog.name, category="carried-dependence",
        registry={prog.name: prog}, root=prog.name,
        check="loop", loop="i", expect_clean=True)


def _case_coupled_infeasible() -> CorpusCase:
    # write X[i+1, i], read X[i, i]: the first subscript demands
    # distance +1, the second distance 0 — coupled subscripts whose
    # per-dimension solutions contradict, so no iteration pair can
    # touch one entry. Dimension-by-dimension equality matching cannot
    # see the contradiction; solving each dimension and intersecting
    # the pinned distances can
    prog = ir.Program("good-coupled-infeasible", (
        ir.For("i", C(4), (
            ir.ComputeStmt(
                "copy", (ir.NodeGet("X", (V("i"), V("i"))),), out="t"),
            ir.NodeSet(
                "X", (ir.Bin("+", V("i"), C(1)), V("i")), V("t")),
        )),
    ))
    return CorpusCase(
        name=prog.name, category="carried-dependence",
        registry={prog.name: prog}, root=prog.name,
        check="loop", loop="i", expect_clean=True)


def _case_nonaffine_mod_write() -> CorpusCase:
    # every iteration writes acc[i % m] with m a runtime parameter:
    # the modulus is not a literal, the key is not affine, and the
    # engine must conservatively assume iterations can collide
    prog = ir.Program("bad-nonaffine-mod-write", (
        ir.For("i", C(4), (
            ir.ComputeStmt("copy", (ir.NodeGet("X", (V("i"),)),),
                           out="t"),
            ir.NodeSet("acc", (ir.Bin("%", V("i"), V("m")),), V("t")),
        )),
    ), params=("m",))
    return CorpusCase(
        name=prog.name, category="write-collision",
        registry={prog.name: prog}, root=prog.name,
        check="loop", loop="i")


def _case_scaled_read() -> CorpusCase:
    # write X[2i], read X[i]: iteration 2 writes the entry iteration 4
    # reads — a carried flow dependence whose distance *varies* with i,
    # so no constant-distance handshake can order it
    prog = ir.Program("bad-scaled-read", (
        ir.For("i", C(4), (
            ir.ComputeStmt("copy", (ir.NodeGet("X", (V("i"),)),),
                           out="t"),
            ir.NodeSet("X", (ir.Bin("*", C(2), V("i")),), V("t")),
        )),
    ))
    return CorpusCase(
        name=prog.name, category="carried-dependence",
        registry={prog.name: prog}, root=prog.name,
        check="loop", loop="i")


def _case_nonaffine_alias() -> CorpusCase:
    # two unordered writers address X[(k*k) % 3] and X[0]; with k = 3
    # those are the same entry. The key is not affine, so the static
    # analyzer cannot prove disjointness and must report the race —
    # and the dynamic happens-before checker confirms it actually
    # fires (the schedule fuzzer cross-validates this case)
    w1 = ir.Program("bad-race-nonaffine-w1", (
        ir.NodeSet(
            "X",
            (ir.Bin("%", ir.Bin("*", V("k"), V("k")), C(3)),),
            C(1)),
    ), params=("k",))
    w2 = ir.Program("bad-race-nonaffine-w2", (
        ir.NodeSet("X", (C(0),), C(2)),
    ))
    main = ir.Program("bad-nonaffine-alias", (
        ir.HopStmt((C(0),)),
        ir.InjectStmt(w1.name, bindings=(("k", C(3)),)),
        ir.InjectStmt(w2.name),
    ))
    return CorpusCase(
        name=main.name, category="data-race",
        registry={p.name: p for p in (w1, w2, main)},
        root=main.name, check="races",
        racy_vars=("X",))


# -- liveness cases for the protocol model checker -------------------------

def _case_credit_starvation() -> CorpusCase:
    # Under a credit window of 1 there is a schedule where host 0 and
    # host 1 each block in emit_hop toward the other while both
    # in-flight hops wait for the blocked destination worker to
    # dequeue them: a mutual credit-starvation deadlock. Without the
    # gate (SimFabric) every schedule completes, so only the gated
    # model-checker pass can find it.
    px = ir.Program("bad-credit-px", (ir.HopStmt((C(1),)),))
    qx = ir.Program("bad-credit-qx", (ir.HopStmt((C(0),)),))
    main = ir.Program("bad-credit-window", (
        ir.HopStmt((C(0),)),
        ir.InjectStmt(px.name),
        ir.InjectStmt(px.name),
        ir.HopStmt((C(2),)),
        ir.HopStmt((C(1),)),
        ir.InjectStmt(qx.name),
        ir.InjectStmt(qx.name),
    ))
    return CorpusCase(
        name=main.name, category="credit-deadlock",
        registry={px.name: px, qx.name: qx, main.name: main},
        root=main.name, check="protocol_mc",
        places=3, entry=(2,), window=1)


def _case_token_steal() -> CorpusCase:
    # Two racers compete for one GO token; only the role-0 racer
    # re-signals it (closing the cycle) before signaling DONE. If role
    # 1 reaches its wait first it steals the token: role 0 and main
    # starve. Which racer registers its wait first is a pure
    # same-instant tie — exactly what coalesced batch delivery and the
    # schedule fuzzer reorder — so the deadlock is reachable but not
    # inevitable, and the structural checker cannot decide it.
    racer = ir.Program("bad-steal-racer", (
        ir.WaitStmt("GO"),
        ir.If(ir.Bin("==", V("role"), C(0)), (
            ir.SignalStmt("GO"),
            ir.SignalStmt("DONE"),
        ), ()),
    ), params=("role",))
    main = ir.Program("bad-token-steal", (
        ir.InjectStmt(racer.name, bindings=(("role", C(0)),)),
        ir.InjectStmt(racer.name, bindings=(("role", C(1)),)),
        ir.SignalStmt("GO"),
        ir.WaitStmt("DONE"),
    ))
    return CorpusCase(
        name=main.name, category="protocol-deadlock",
        registry={racer.name: racer, main.name: main},
        root=main.name, check="protocol_mc")


def _case_hidden_cycle() -> CorpusCase:
    # A wait/signal cycle laundered through injection: each waiter
    # would spawn the program that signals the *other* waiter's event,
    # so neither signal is ever performed. Structurally both signal
    # sites look unguarded (they are the first statement of their own
    # program), hence no signal-cycle finding — but every schedule
    # deadlocks, which the model checker proves.
    sa = ir.Program("bad-hidden-sa", (ir.SignalStmt("A"),))
    sb = ir.Program("bad-hidden-sb", (ir.SignalStmt("B"),))
    w1 = ir.Program("bad-hidden-w1", (
        ir.WaitStmt("B"),
        ir.InjectStmt(sa.name),
    ))
    w2 = ir.Program("bad-hidden-w2", (
        ir.WaitStmt("A"),
        ir.InjectStmt(sb.name),
    ))
    main = ir.Program("bad-hidden-cycle", (
        ir.InjectStmt(w1.name),
        ir.InjectStmt(w2.name),
    ))
    return CorpusCase(
        name=main.name, category="protocol-deadlock",
        registry={p.name: p for p in (sa, sb, w1, w2, main)},
        root=main.name, check="protocol_mc")


def _case_orphan_leak() -> CorpusCase:
    # Producer signals SLOT four times, consumer only ever waits three:
    # one token leaks on a key the consumer demonstrably knows how to
    # consume. Runs to completion everywhere — only the token
    # arithmetic over the verified-deadlock-free space can flag it.
    producer = ir.Program("bad-orphan-producer", (
        ir.For("i", C(4), (ir.SignalStmt("SLOT"),)),
    ))
    consumer = ir.Program("bad-orphan-consumer", (
        ir.For("i", C(3), (ir.WaitStmt("SLOT"),)),
    ))
    main = ir.Program("bad-orphan-signal", (
        ir.InjectStmt(producer.name),
        ir.InjectStmt(consumer.name),
    ))
    return CorpusCase(
        name=main.name, category="orphan-signal",
        registry={p.name: p for p in (producer, consumer, main)},
        root=main.name, check="protocol_mc")


def _case_mc_clean() -> CorpusCase:
    # A fig13-style primed handshake: EP and EC alternate, with EC
    # primed once at setup. The structural checker sees a fully
    # guarded signal cycle (its warning is unavoidable without
    # counting tokens); the model checker explores the space under the
    # primed token and proves every schedule terminates with EC back
    # in its rest state.
    producer = ir.Program("good-hs-producer", (
        ir.For("i", C(3), (
            ir.WaitStmt("EC"),
            ir.SignalStmt("EP"),
        )),
    ))
    consumer = ir.Program("good-hs-consumer", (
        ir.For("i", C(3), (
            ir.WaitStmt("EP"),
            ir.SignalStmt("EC"),
        )),
    ))
    main = ir.Program("good-mc-clean", (
        ir.InjectStmt(producer.name),
        ir.InjectStmt(consumer.name),
    ))
    return CorpusCase(
        name=main.name, category="signal-cycle",
        registry={p.name: p for p in (producer, consumer, main)},
        root=main.name, check="protocol_mc",
        expect_clean=True, initial_signals=(("EC", (), 1),))


CORPUS: tuple = (
    _case_write_collision(),
    _case_stale_carry(),
    _case_remote_access(),
    _case_unmatched_wait(),
    _case_signal_cycle(),
    _case_carried_flow(),
    _case_unsignaled_write(),
    _case_dropped_wait(),
    _case_key_alias(),
    _case_reduction_order(),
    _case_affine_offset(),
    _case_gcd_disjoint(),
    _case_coupled_infeasible(),
    _case_nonaffine_mod_write(),
    _case_scaled_read(),
    _case_nonaffine_alias(),
    _case_credit_starvation(),
    _case_token_steal(),
    _case_hidden_cycle(),
    _case_orphan_leak(),
    _case_mc_clean(),
)

RACY_CORPUS: tuple = tuple(c for c in CORPUS if c.check == "races")

LIVENESS_CORPUS: tuple = tuple(c for c in CORPUS
                               if c.check == "protocol_mc")


def run_case(case: CorpusCase) -> DiagnosticReport:
    """Run the case's designated check, returning its diagnostics."""
    root = case.registry[case.root]
    if case.check == "loop":
        return loop_diagnostics(root, case.loop)
    if case.check == "carries":
        return carried_write_diagnostics(root, case.loop, case.carried)
    if case.check == "locality":
        return check_locality(root, case.layout, registry=case.registry)
    if case.check == "protocol":
        return protocol_diagnostics(root, registry=case.registry)
    if case.check == "races":
        return race_diagnostics(root, registry=case.registry,
                                primed=case.primed)
    if case.check == "protocol_mc":
        from .protocol_mc import DEFAULT_WINDOW, mc_diagnostics
        return mc_diagnostics(
            root, registry=case.registry, entry=case.entry,
            places=case.places, initial_signals=case.initial_signals,
            window=case.window if case.window is not None
            else DEFAULT_WINDOW)
    raise ValueError(f"unknown corpus check {case.check!r}")


@contextmanager
def installed(case: CorpusCase):
    """Temporarily install a case's programs in the global registry.

    The interpreter resolves programs by name from
    :data:`repro.navp.ir.REGISTRY`, so *running* a corpus case (the
    schedule fuzzer does) needs its registry visible for the duration
    of the run. Entries are removed again on exit, preserving the
    corpus's never-leaks-into-lint guarantee.
    """
    added = []
    for name, prog in case.registry.items():
        if name not in ir.REGISTRY:
            ir.REGISTRY[name] = prog
            added.append(name)
    try:
        yield
    finally:
        for name in added:
            ir.REGISTRY.pop(name, None)


def verify_corpus() -> list:
    """``(case, report, hit)`` for every corpus case.

    For a negative control, ``hit`` is True when the case's defect was
    flagged under the expected category at error-or-warning severity.
    For a positive control (``expect_clean``), ``hit`` is True when
    the analysis raised *no* error or warning — a finding there is a
    false positive.
    """
    results = []
    for case in CORPUS:
        report = run_case(case)
        findings = [d for d in report
                    if d.severity in ("error", "warning")]
        if case.expect_clean:
            hit = not findings
        else:
            hit = any(d.category == case.category for d in findings)
        results.append((case, report, hit))
    return results
