"""Distance/direction vectors: the affine dependence tests proper.

Given two key expressions of one node variable — a *source* access
(conventionally the write) and a *destination* access — and the loop
variable being analyzed, :func:`dependence_between` decides whether
iterations ``i_src`` and ``i_dst`` can touch the same dictionary entry,
and if so, *which* iteration pairs. The answer is a
:class:`DependenceVector`:

* ``None`` — **provably independent**: no iteration pair aliases. This
  is where the engine beats syntactic key equality: ``X[(i+1)-1]``
  against ``X[i]`` solves to distance 0; ``X[2*i]`` against ``X[2*i+1]``
  fails the GCD test; a coupled pair ``X[i+1, i]`` vs ``X[i, i]`` pins
  two *conflicting* distances and is therefore infeasible.
* distance ``0`` (direction ``=``) — the accesses can only alias within
  one iteration: loop-independent.
* an exact nonzero distance ``d`` (direction ``<`` for ``d > 0``, ``>``
  for ``d < 0``) — every aliasing pair satisfies
  ``i_dst = i_src + d``. The wavefront read ``bottom[r-1]`` against the
  write ``bottom[r]`` is ``+1``: a *forward* carried dependence, which
  is exactly what legalizes keyed pipelining (the carrier for ``r``
  waits on the entry ``r-1`` published one pipeline stage earlier).
* direction ``*`` — a dependence may exist at unknown distances: the
  conservative fallback for non-affine keys, mismatched arities, or
  feasible-but-unpinned equations (``X[2*i]`` read at ``X[i]``).

Per key dimension the aliasing condition is the Diophantine equation

    ``a*i_src - b*i_dst + (uncancelled symbol terms) = c_dst - c_src``

Symbols other than the loop variable fall into two classes: values
**fixed across iterations** (program parameters, enclosing-loop
variables — their terms cancel when the coefficients agree) and values
**free within an iteration** (inner-loop variables, locally assigned
agent variables — each side's occurrence is an independent unknown).
An equation with no unknowns and a nonzero right-hand side is
infeasible (the dimension proves independence); equal loop-variable
coefficients with no other unknowns pin the distance; everything else
gets the GCD feasibility test. A constant loop trip count enables the
Banerjee-style range check that discards out-of-range distances.

One deliberate extension beyond the textbook fragment: a dimension of
the form ``affine % m`` with a constant modulus — the shape of every
staggered tour schedule, e.g. ``C[mi, (N-1-mi+mj) % N]`` — yields a
*congruence* constraint ``d ≡ d0 (mod m/gcd(a, m))`` instead of a pin.
Against a trip count ``<= m`` that still proves the schedule hits each
entry at most once per tour, which is what legalizes phase shifting.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd

from ..navp import ir
from .affine import affine_of

__all__ = ["DependenceVector", "dependence_between", "keys_never_equal"]

# beyond this trip count, congruence candidate sets are not enumerated
# (IR loops here are block counts — a handful — so this never binds)
_ENUM_CAP = 4096


@dataclass(frozen=True)
class DependenceVector:
    """Iteration distance of one dependence over one loop variable.

    ``distance`` is ``i_dst - i_src`` when pinned, else None;
    ``direction`` is ``'<'``/``'='``/``'>'``/``'*'``; ``exact`` is True
    when the affine solve constrained every aliasing pair (False for
    the conservative fallbacks).
    """

    var: str
    distance: int | None
    direction: str
    exact: bool
    reason: str = ""

    @property
    def carried(self) -> bool:
        return self.direction != "="

    def describe(self) -> str:
        if self.distance is not None:
            return f"distance {self.distance:+d} over {self.var!r}"
        return f"unknown distance over {self.var!r} ({self.reason})"


def _mod_split(expr: ir.Expr):
    """Split ``inner % m`` (constant positive modulus) off a key expr."""
    if (isinstance(expr, ir.Bin) and expr.op == "%"
            and isinstance(expr.right, ir.Const)
            and isinstance(expr.right.value, int)
            and not isinstance(expr.right.value, bool)
            and expr.right.value > 0):
        return expr.left, expr.right.value
    return expr, None


# -- per-dimension constraints ---------------------------------------------
# ("indep",)            the dimension proves independence
# ("none",)             no constraint
# ("pin", d)            aliasing requires i_dst - i_src == d
# ("cong", d0, M)       aliasing requires i_dst - i_src ≡ d0 (mod M)
# ("star", reason)      feasible but unconstrained (conservative)

def _dim_constraint(src: ir.Expr, dst: ir.Expr, loop_var: str,
                    free_vars: frozenset) -> tuple:
    src_inner, src_mod = _mod_split(src)
    dst_inner, dst_mod = _mod_split(dst)
    if src_mod != dst_mod:
        return ("star", "mixed moduli")
    modulus = src_mod  # None, or the common constant modulus

    fa, fb = affine_of(src_inner), affine_of(dst_inner)
    if fa is None or fb is None:
        return ("star", "key not affine in the loop variable")
    a, b = fa.coeff(loop_var), fb.coeff(loop_var)
    others: list = []
    for name in (fa.vars | fb.vars) - {loop_var}:
        ca, cb = fa.coeff(name), fb.coeff(name)
        if name in free_vars:
            # independent value on each side: two unknowns
            others.extend(c for c in (ca, -cb) if c)
        elif ca != cb:
            # fixed but unknown value: one unknown, net coefficient
            others.append(ca - cb)
    rhs = fb.const - fa.const

    if a == b and not others:
        if a == 0:
            hit = rhs % modulus == 0 if modulus else rhs == 0
            return ("none",) if hit else ("indep",)
        if modulus is None:
            if rhs % a != 0:
                return ("indep",)
            # a*(i_src - i_dst) = rhs  =>  i_dst - i_src = -rhs/a
            return ("pin", -(rhs // a))
        # a*d ≡ -rhs (mod m), d = i_dst - i_src
        g = gcd(a, modulus)
        if rhs % g != 0:
            return ("indep",)
        m = modulus // g
        if m == 1:
            return ("none",)
        d0 = ((-rhs // g) * pow(a // g, -1, m)) % m
        return ("cong", d0, m)

    coeffs = [c for c in (a, -b, *others) if c]
    if modulus is not None:
        coeffs.append(modulus)
    if not coeffs:
        return ("none",) if rhs == 0 else ("indep",)
    g = 0
    for c in coeffs:
        g = gcd(g, abs(c))
    if rhs % g != 0:
        return ("indep",)  # GCD test: no integer solution at all
    return ("star", "aliasing feasible at more than one distance")


def _merge_congruences(congs: list) -> tuple | None:
    """CRT-intersect ``(d0, M)`` pairs; None when incompatible."""
    d0, m = congs[0]
    for d1, m1 in congs[1:]:
        g = gcd(m, m1)
        if (d1 - d0) % g != 0:
            return None
        lcm = m // g * m1
        # solve d ≡ d0 (mod m), d ≡ d1 (mod m1)
        t = ((d1 - d0) // g * pow(m // g, -1, m1 // g)) % (m1 // g)
        d0 = (d0 + m * t) % lcm
        m = lcm
    return d0, m


def dependence_between(src_key, dst_key, loop_var: str,
                       bound: int | None = None,
                       free_vars: frozenset = frozenset()
                       ) -> DependenceVector | None:
    """The dependence test over one loop variable (see module docstring).

    ``src_key``/``dst_key`` are raw key-expression tuples; ``bound`` is
    the loop trip count when constant (enables the range check);
    ``free_vars`` names symbols whose values differ freely between the
    two accesses (inner-loop variables, locally assigned agents).
    """
    if len(src_key) != len(dst_key):
        return DependenceVector(loop_var, None, "*", False,
                                "key arity mismatch")

    pins: set = set()
    congs: list = []
    stars: list = []
    for src, dst in zip(src_key, dst_key):
        cons = _dim_constraint(src, dst, loop_var, free_vars)
        if cons[0] == "indep":
            return None
        if cons[0] == "pin":
            pins.add(cons[1])
        elif cons[0] == "cong":
            congs.append(cons[1:])
        elif cons[0] == "star":
            stars.append(cons[1])

    def vector(d: int) -> DependenceVector | None:
        if bound is not None and abs(d) >= bound:
            return None  # distance exceeds the iteration space
        direction = "=" if d == 0 else ("<" if d > 0 else ">")
        return DependenceVector(loop_var, d, direction, exact=True)

    if pins:
        if len(pins) > 1:
            return None  # coupled subscripts: conflicting distances
        d = pins.pop()
        if any((d - d0) % m != 0 for d0, m in congs):
            return None
        return vector(d)

    if congs:
        merged = _merge_congruences(congs)
        if merged is None:
            return None
        d0, m = merged
        if bound is not None and bound <= _ENUM_CAP:
            candidates = [d for d in range(-(bound - 1), bound)
                          if (d - d0) % m == 0]
            if not candidates:
                return None
            if len(candidates) == 1:
                return vector(candidates[0])
        return DependenceVector(
            loop_var, None, "*", False,
            f"distance only known modulo {m} (≡ {d0})")

    if stars:
        return DependenceVector(loop_var, None, "*", False, stars[0])

    # every dimension reduced to 0 = 0: the same entry every iteration
    return DependenceVector(loop_var, None, "*", True,
                            "same entry in every iteration")


def keys_never_equal(key_a, key_b) -> bool:
    """Can two key tuples *never* name the same entry, for any values of
    their variables?

    Unlike :func:`dependence_between` this treats every variable as an
    independent unknown on each side — sound across threads and
    messenger instances, where ``Var("k")`` on one side need not equal
    ``Var("k")`` on the other. Proof of disjointness therefore needs a
    dimension whose value *sets* cannot intersect: differing constants,
    or a GCD obstruction (``X[2*i]`` never meets ``X[2*j+1]``).
    """
    if len(key_a) != len(key_b):
        return False  # arity mismatch: stay conservative
    for ea, eb in zip(key_a, key_b):
        fa, fb = affine_of(ea), affine_of(eb)
        if fa is None or fb is None:
            continue
        coeffs = [c for _v, c in fa.coeffs] + [c for _v, c in fb.coeffs]
        rhs = fb.const - fa.const
        if not coeffs:
            if rhs != 0:
                return True
            continue
        g = 0
        for c in coeffs:
            g = gcd(g, abs(c))
        if rhs % g != 0:
            return True
    return False
