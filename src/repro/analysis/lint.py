"""The lint driver: run every applicable analysis over a registry.

``repro lint`` (see :mod:`repro.cli`) is a thin wrapper around
:func:`lint_registry`. Passes, in order:

structure
    Every statement and expression node must be of a registered type
    (see :mod:`repro.analysis.visitor`) — an unknown node would crash
    the interpreter mid-flight, far from its origin.
bindings
    Every agent variable used must be defined *somewhere* in the
    program (``Assign``/``ComputeStmt`` output, a ``For`` binding) or
    be a declared parameter; anything else is a guaranteed ``KeyError``
    at run time.
protocol
    Wait/signal matching and cycle detection
    (:mod:`repro.analysis.protocol`), run once per *root* — a program
    no other registry program injects — over its injection closure, so
    component carriers are judged in the context that launches them.
locality
    Hop-locality proof (:mod:`repro.analysis.locality`), for programs
    with a known :class:`~repro.analysis.locality.LayoutSpec`.

Loop dependence checks (:mod:`repro.analysis.deps`) are *targeted*,
not blanket: a legal sequential program is full of loop-carried
dependences, and it is the transformations that must prove a specific
loop independent before distributing it. The CLI exposes them via
``repro lint --loop VAR`` and the corpus.
"""

from __future__ import annotations

from ..navp import ir
from . import visitor
from .diagnostics import Diagnostic, DiagnosticReport, error
from .locality import LayoutSpec, check_locality, fixed_home, key_home
from .protocol import protocol_diagnostics
from .summary import summarize

__all__ = ["lint_program", "lint_registry", "seed_paper_programs",
           "paper_layouts", "paper_mc_contexts", "root_entry_coord"]


def _structure_diagnostics(program: ir.Program) -> DiagnosticReport:
    report = DiagnosticReport()

    def check_expr(expr, path) -> None:
        rule = visitor.try_expr_rule(expr)
        if rule is None:
            report.append(error(
                "unknown-node", program.name, path,
                f"{program.name}: expression node of unregistered type "
                f"{type(expr).__name__!r}; the interpreter and the "
                f"analyses cannot handle it"))
            return
        for child in rule.children(expr):
            check_expr(child, path)

    def check_body(body, path=()) -> None:
        for i, stmt in enumerate(body):
            spath = path + (i,)
            rule = visitor.try_stmt_rule(stmt)
            if rule is None:
                report.append(error(
                    "unknown-node", program.name, spath,
                    f"{program.name}: statement node of unregistered "
                    f"type {type(stmt).__name__!r}; the interpreter "
                    f"and the analyses cannot handle it"))
                continue
            for e in rule.exprs(stmt):
                check_expr(e, spath)
            for label, sub in rule.bodies(stmt):
                step = i if label is None else (i, label)
                check_body(sub, path + (step,))

    check_body(program.body)
    return report


def _binding_diagnostics(program: ir.Program) -> DiagnosticReport:
    """Agent variables used but defined nowhere and not parameters."""
    report = DiagnosticReport()
    defined = set(program.params)
    summaries = summarize(program)
    for s in summaries:
        defined |= s.agent_defs
    seen: set = set()
    for s in summaries:
        for v in sorted(s.agent_uses - defined):
            if v in seen:
                continue
            seen.add(v)
            report.append(error(
                "unbound-agent-var", program.name, s.path,
                f"{program.name}: agent variable {v!r} is used but "
                f"never assigned and is not a program parameter"))
    return report


def _injected_names(registry) -> set:
    """Every program name injected by some program in the registry."""
    out: set = set()
    for prog in registry.values():
        for _path, stmt in visitor.walk_stmts(prog.body):
            if isinstance(stmt, ir.InjectStmt):
                out.add(stmt.program)
    return out


def lint_program(program: ir.Program, registry=None,
                 layout: LayoutSpec | None = None,
                 protocol_root: bool = True) -> DiagnosticReport:
    """All lint passes for one program.

    ``protocol_root`` False suppresses the protocol pass — used when
    the program is known to be injected by another registry program,
    whose closure already covers it.
    """
    if registry is None:
        registry = ir.REGISTRY
    report = DiagnosticReport()
    report.extend(_structure_diagnostics(program))
    if report.errors:
        return report  # unknown nodes make further analysis moot
    report.extend(_binding_diagnostics(program))
    if protocol_root:
        report.extend(protocol_diagnostics(program, registry))
    if layout is not None:
        report.extend(check_locality(program, layout, registry))
    return report


def lint_registry(names=None, registry=None,
                  layouts: dict | None = None) -> DiagnosticReport:
    """Lint a set of registered programs (default: all of them)."""
    if registry is None:
        registry = ir.REGISTRY
    if names is None:
        names = sorted(registry)
    layouts = layouts or {}
    injected = _injected_names(registry)
    report = DiagnosticReport()
    seen: set = set()
    for name in names:
        prog = ir.get_program(name) if registry is ir.REGISTRY \
            else registry[name]
        sub = lint_program(
            prog, registry,
            layout=layouts.get(name),
            protocol_root=name not in injected,
        )
        for diag in sub:
            key = (diag.severity, diag.category, diag.program,
                   diag.path, diag.message)
            if key not in seen:
                seen.add(key)
                report.append(diag)
    return report


def paper_layouts(nb: int = 3) -> dict:
    """Symbolic layout specs for the 1-D chain stages.

    These mirror :func:`repro.transform.examples.layout_sequential` /
    ``layout_dsc`` / ``layout_phase``: everything on node(0) for the
    sequential stage; ``B``/``C`` column-resident with ``A`` still on
    node(0) after DSC and pipelining; ``A`` row-strips co-resident
    with their carriers after phase shifting.
    """
    entry = (ir.Const(0),)
    sequential = LayoutSpec(
        homes={"A": fixed_home(0), "B": fixed_home(0),
               "C": fixed_home(0)},
        entry=entry)
    dsc = LayoutSpec(
        homes={"A": fixed_home(0), "B": key_home(1), "C": key_home(1)},
        entry=entry)
    phase = LayoutSpec(
        homes={"A": key_home(0), "B": key_home(1), "C": key_home(1)},
        entry=entry)
    return {
        f"mm-seq-{nb}": sequential,
        f"mm-seq-{nb}-dsc": dsc,
        f"mm-seq-{nb}-dsc-pipe": dsc,
        f"mm-seq-{nb}-dsc-phase": phase,
    }


def seed_paper_programs(g: int = 3) -> dict:
    """Register every paper program family; return its layout specs.

    Derives the full 1-D and 2-D transformation chains and builds the
    Figure 11/13/15 IR suites, all of which register themselves in
    :data:`repro.navp.ir.REGISTRY`. Imported lazily so that
    :mod:`repro.analysis` itself never depends on
    :mod:`repro.transform` at import time.
    """
    from ..matmul.ir2d import build_fig11, build_fig13, build_fig15
    from ..transform.examples import derive_full_chain
    from ..wavefront.irprog import build_wavefront_ir

    derive_full_chain(g)
    build_fig11(g)
    build_fig13(g)
    build_fig15(g)
    build_wavefront_ir(g, 4, 4)
    return paper_layouts(g)


def root_entry_coord(program: ir.Program) -> tuple:
    """The injection coordinate a root program expects.

    The paper mains all start by hopping to a fully concrete
    coordinate; its dimensionality tells us whether the program lives
    on a 1-D chain or a 2-D grid. Programs with no concrete hop
    default to the 1-D origin.
    """
    for _path, stmt in visitor.walk_stmts(program.body):
        if isinstance(stmt, ir.HopStmt):
            coord = []
            for e in stmt.place:
                if not isinstance(e, ir.Const):
                    return (0,)
                coord.append(e.value)
            return (0,) * len(coord)
    return (0,)


def paper_mc_contexts(g: int = 3) -> dict:
    """Model-checking context per paper root: entry + primed signals.

    Mirrors how the runners launch each family: 1-D chains and the
    wavefront inject at ``(0,)`` with nothing primed; the Figure 11/13/
    15 suites inject at ``(0, 0)`` with their declared setup-time
    signals (Figure 13 pre-signals ``EC`` everywhere, "EC(i,j) is
    signaled initially").
    """
    from ..matmul.ir2d import build_fig11, build_fig13, build_fig15
    from ..transform.examples import derive_full_chain

    contexts: dict = {}
    for build in (build_fig11, build_fig13, build_fig15):
        suite = build(g)
        contexts[suite.entry.name] = {
            "entry": (0, 0),
            "initial_signals": tuple(suite.initial_signals),
        }
    chain = derive_full_chain(g)
    for suite in (chain.pipelined_2d, chain.phased_2d):
        contexts[suite.main.name] = {
            "entry": (0, 0),
            "initial_signals": tuple(suite.initial_signals),
        }
    return contexts
