"""The shared, exhaustive IR walker every analysis builds on.

Before this module existed the repo had three hand-rolled expression
walkers (``deps.uses_var``, ``deps._reads_in`` and the dispatch inside
``rewrite.map_expr``), each silently or loudly incomplete over parts of
the IR. This module centralizes the *structure* of every IR node in two
dispatch tables — what sub-expressions a node has, what statement
bodies it has, and how to rebuild it — so that traversal, search,
mapping and rewriting are all derived from one source of truth.

Extending the IR with a new :class:`~repro.navp.ir.Expr` or
:class:`~repro.navp.ir.Stmt` subclass requires exactly one call to
:func:`register_expr_type` / :func:`register_stmt_type`; every walker,
analyzer and transformation then handles the new node. An unregistered
type raises :class:`~repro.errors.AnalysisError` (never a silent skip).

Statement paths follow the :func:`repro.navp.ir.body_at` convention: a
path is a tuple of steps, each step an ``int`` (descend into a ``For``
body) or an ``(int, "then"|"else")`` pair (descend into an ``If``
branch), with the final element being the statement's own index — so
``path[:-1]`` addresses the enclosing body and ``path[-1]`` the
statement within it.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..errors import AnalysisError
from ..navp import ir

__all__ = [
    "register_expr_type",
    "register_stmt_type",
    "expr_children",
    "walk_expr",
    "map_expr",
    "uses_var",
    "node_gets",
    "var_names",
    "normalize",
    "normalize_key",
    "stmt_exprs",
    "stmt_bodies",
    "map_stmt_exprs",
    "walk_stmts",
    "stmt_at",
    "find_loops",
    "find_unique_loop",
]


# --------------------------------------------------------------------------
# the extension point: per-type structural rules
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ExprRule:
    """How to take an expression apart and put it back together."""

    children: Callable  # expr -> tuple[Expr, ...]
    rebuild: Callable   # (expr, tuple[Expr, ...]) -> Expr


@dataclass(frozen=True)
class StmtRule:
    """The expression and body structure of one statement type."""

    exprs: Callable     # stmt -> tuple[Expr, ...]
    bodies: Callable    # stmt -> tuple[(label|None, tuple[Stmt, ...]), ...]
    rebuild: Callable   # (stmt, exprs, bodies) -> Stmt


_EXPR_RULES: dict = {}
_STMT_RULES: dict = {}


def register_expr_type(cls, *, children: Callable,
                       rebuild: Callable) -> None:
    """Teach every analysis and rewrite about a new expression type."""
    _EXPR_RULES[cls] = ExprRule(children, rebuild)


def register_stmt_type(cls, *, exprs: Callable, bodies: Callable,
                       rebuild: Callable) -> None:
    """Teach every analysis and rewrite about a new statement type."""
    _STMT_RULES[cls] = StmtRule(exprs, bodies, rebuild)


def _expr_rule(expr) -> ExprRule:
    rule = _EXPR_RULES.get(type(expr))
    if rule is None:
        raise AnalysisError(
            f"unknown expression type {type(expr).__name__!r} ({expr!r}); "
            f"register it with repro.analysis.visitor.register_expr_type"
        )
    return rule


def _stmt_rule(stmt) -> StmtRule:
    rule = _STMT_RULES.get(type(stmt))
    if rule is None:
        raise AnalysisError(
            f"unknown statement type {type(stmt).__name__!r} ({stmt!r}); "
            f"register it with repro.analysis.visitor.register_stmt_type"
        )
    return rule


def try_expr_rule(expr) -> ExprRule | None:
    """The rule for ``expr``, or None when its type is unregistered."""
    return _EXPR_RULES.get(type(expr))


def try_stmt_rule(stmt) -> StmtRule | None:
    """The rule for ``stmt``, or None when its type is unregistered."""
    return _STMT_RULES.get(type(stmt))


# -- built-in expressions ---------------------------------------------------

register_expr_type(
    ir.Const,
    children=lambda e: (),
    rebuild=lambda e, kids: e,
)
register_expr_type(
    ir.Var,
    children=lambda e: (),
    rebuild=lambda e, kids: e,
)
register_expr_type(
    ir.Bin,
    children=lambda e: (e.left, e.right),
    rebuild=lambda e, kids: ir.Bin(e.op, kids[0], kids[1]),
)
register_expr_type(
    ir.NodeGet,
    children=lambda e: tuple(e.idx),
    rebuild=lambda e, kids: ir.NodeGet(e.name, kids),
)
register_expr_type(
    ir.Index,
    children=lambda e: (e.base,) + tuple(e.idx),
    rebuild=lambda e, kids: ir.Index(kids[0], kids[1:]),
)

# -- built-in statements ----------------------------------------------------

register_stmt_type(
    ir.For,
    exprs=lambda s: (s.count,),
    bodies=lambda s: ((None, s.body),),
    rebuild=lambda s, exprs, bodies: ir.For(s.var, exprs[0], bodies[0]),
)
register_stmt_type(
    ir.If,
    exprs=lambda s: (s.cond,),
    bodies=lambda s: (("then", s.then), ("else", s.orelse)),
    rebuild=lambda s, exprs, bodies: ir.If(exprs[0], bodies[0], bodies[1]),
)
register_stmt_type(
    ir.Assign,
    exprs=lambda s: (s.expr,),
    bodies=lambda s: (),
    rebuild=lambda s, exprs, bodies: ir.Assign(s.var, exprs[0]),
)
register_stmt_type(
    ir.ComputeStmt,
    exprs=lambda s: tuple(s.args),
    bodies=lambda s: (),
    rebuild=lambda s, exprs, bodies: ir.ComputeStmt(
        s.kernel, exprs, s.out, s.kind),
)
register_stmt_type(
    ir.NodeSet,
    exprs=lambda s: tuple(s.idx) + (s.expr,),
    bodies=lambda s: (),
    rebuild=lambda s, exprs, bodies: ir.NodeSet(
        s.name, exprs[:-1], exprs[-1]),
)
register_stmt_type(
    ir.HopStmt,
    exprs=lambda s: tuple(s.place),
    bodies=lambda s: (),
    rebuild=lambda s, exprs, bodies: ir.HopStmt(exprs),
)
register_stmt_type(
    ir.InjectStmt,
    exprs=lambda s: tuple(e for _v, e in s.bindings),
    bodies=lambda s: (),
    rebuild=lambda s, exprs, bodies: ir.InjectStmt(
        s.program,
        tuple((v, e) for (v, _old), e in zip(s.bindings, exprs))),
)
register_stmt_type(
    ir.WaitStmt,
    exprs=lambda s: tuple(s.args),
    bodies=lambda s: (),
    rebuild=lambda s, exprs, bodies: ir.WaitStmt(s.event, exprs),
)
register_stmt_type(
    ir.SignalStmt,
    exprs=lambda s: tuple(s.args) + (s.count,),
    bodies=lambda s: (),
    rebuild=lambda s, exprs, bodies: ir.SignalStmt(
        s.event, exprs[:-1], exprs[-1]),
)


# --------------------------------------------------------------------------
# expression traversal
# --------------------------------------------------------------------------

def expr_children(expr: ir.Expr) -> tuple:
    """Immediate sub-expressions of ``expr``."""
    return tuple(_expr_rule(expr).children(expr))


def walk_expr(expr: ir.Expr):
    """Yield ``expr`` and every sub-expression, pre-order."""
    yield expr
    for child in _expr_rule(expr).children(expr):
        yield from walk_expr(child)


def map_expr(fn: Callable, expr: ir.Expr) -> ir.Expr:
    """Rebuild ``expr`` bottom-up, applying ``fn`` to every node."""
    rule = _expr_rule(expr)
    kids = tuple(rule.children(expr))
    if kids:
        expr = rule.rebuild(expr, tuple(map_expr(fn, k) for k in kids))
    return fn(expr)


def uses_var(expr: ir.Expr, var: str) -> bool:
    """Does ``expr`` mention agent/loop variable ``var``?"""
    return any(isinstance(e, ir.Var) and e.name == var
               for e in walk_expr(expr))


def node_gets(expr: ir.Expr) -> list:
    """Every :class:`~repro.navp.ir.NodeGet` inside ``expr``, pre-order."""
    return [e for e in walk_expr(expr) if isinstance(e, ir.NodeGet)]


def var_names(expr: ir.Expr) -> set:
    """Names of every agent variable mentioned in ``expr``."""
    return {e.name for e in walk_expr(expr) if isinstance(e, ir.Var)}


# --------------------------------------------------------------------------
# key normalization
# --------------------------------------------------------------------------

_COMMUTATIVE = frozenset({"+", "*", "==", "!="})


def normalize(expr: ir.Expr) -> ir.Expr:
    """A canonical form in which commutative operands are ordered.

    ``k + 1`` and ``1 + k`` normalize identically, so structurally
    different but equivalent index keys compare equal; non-commutative
    operators (``-``, ``//``, ``%``, ``<``) are left untouched.
    """

    def reorder(e: ir.Expr) -> ir.Expr:
        if isinstance(e, ir.Bin) and e.op in _COMMUTATIVE:
            if repr(e.right) < repr(e.left):
                return ir.Bin(e.op, e.right, e.left)
        return e

    return map_expr(reorder, expr)


def normalize_key(idx) -> tuple:
    """Normalize a key-expression tuple element-wise."""
    return tuple(normalize(e) for e in idx)


# --------------------------------------------------------------------------
# statement traversal
# --------------------------------------------------------------------------

def stmt_exprs(stmt: ir.Stmt) -> tuple:
    """Every expression appearing directly in ``stmt`` (not in bodies)."""
    return tuple(_stmt_rule(stmt).exprs(stmt))


def stmt_bodies(stmt: ir.Stmt) -> tuple:
    """``(label, body)`` pairs for each nested statement list.

    ``label`` is None for a ``For`` body (path step is the bare index)
    and ``"then"``/``"else"`` for ``If`` branches (path step is an
    ``(index, label)`` pair).
    """
    return tuple(_stmt_rule(stmt).bodies(stmt))


def map_stmt_exprs(fn: Callable, stmt: ir.Stmt) -> ir.Stmt:
    """Rebuild a statement, applying ``fn`` to every contained expr."""
    rule = _stmt_rule(stmt)
    new_exprs = tuple(map_expr(fn, e) for e in rule.exprs(stmt))
    new_bodies = tuple(
        tuple(map_stmt_exprs(fn, s) for s in body)
        for _label, body in rule.bodies(stmt)
    )
    return rule.rebuild(stmt, new_exprs, new_bodies)


def walk_stmts(body, path: tuple = ()):
    """Yield ``(path, stmt)`` for every statement, recursively.

    Paths compose with :func:`repro.navp.ir.body_at`:
    ``body_at(program, path[:-1])[path[-1]]`` is the yielded statement.
    """
    for i, stmt in enumerate(body):
        yield path + (i,), stmt
        for label, sub in _stmt_rule(stmt).bodies(stmt):
            step = i if label is None else (i, label)
            yield from walk_stmts(sub, path + (step,))


def stmt_at(program: ir.Program, path: tuple) -> ir.Stmt:
    """Resolve a walker path back to its statement."""
    return ir.body_at(program, tuple(path[:-1]))[path[-1]]


def find_loops(body, var: str) -> list:
    """All ``(path, For)`` pairs binding loop variable ``var``."""
    return [(path, stmt) for path, stmt in walk_stmts(body)
            if isinstance(stmt, ir.For) and stmt.var == var]


def find_unique_loop(program: ir.Program, var: str) -> tuple:
    """The single loop over ``var``; AnalysisError otherwise."""
    hits = find_loops(program.body, var)
    if len(hits) != 1:
        raise AnalysisError(
            f"expected exactly one loop over {var!r} in {program.name}, "
            f"found {len(hits)}"
        )
    return hits[0]
