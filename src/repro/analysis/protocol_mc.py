"""Protocol model checking: static liveness proofs for navigational IR.

This is the verdict layer on top of :mod:`repro.analysis.statespace`.
``model_check`` extracts per-thread event traces from an IR injection
closure and explores the abstract state space in up to three passes:

* **Pass A (interleave)** — ungated exploration with the full eager
  partial-order reduction.  Exact for deadlock-freedom and (via
  :func:`~repro.analysis.statespace.signal_totals`) for orphan tokens.
* **Pass B (mailbox)** — one ungated pass per destination host with
  retires into that host delayed (``lazy_hosts``).  Delaying a retire
  is never *enabling* under ungated semantics, so the per-host mailbox
  depth and per-``(src, dst)`` in-flight peaks these passes observe are
  exact maxima over all schedules.
* **Pass C (gated)** — full-branching exploration under the credit
  window (``emit_hop`` blocks the whole host when credits run out, the
  SocketFabric semantics).  Only run when some in-flight peak exceeds
  the window: if every peak stays within the window the gate can never
  engage, so the gated semantics coincide with Pass A (*gate
  transparency*) and credit-starvation deadlocks are ruled out for
  free.

Verdict statuses, strongest problem first::

    UNSUPPORTED      the abstraction cannot model the program
                     (data-dependent control flow at a sync point)
    DEADLOCK         reachable deadlock under plain semantics
                     (reproducible on any fabric, incl. SimFabric)
    CREDIT-DEADLOCK  deadlock only under the credit window
                     (socket-fabric backpressure starvation)
    ORPHANS          deadlock-free, but some signal tokens leak
                     (leftover beyond the primed rest state)
    INCONCLUSIVE     a pass hit the state/deadline cap
    VERIFIED         deadlock-free, orphan-free, mailboxes bounded

``mc_diagnostics`` renders a result as a :class:`DiagnosticReport` for
``repro lint --protocol-mc`` and the corpus; ``runtime_deadlock_hint``
is the tightly-capped variant the fabrics quote inside
``DeadlockError`` messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..navp import ir
from .diagnostics import DiagnosticReport, error, info, warning
from .statespace import (
    AbstractionError,
    Explorer,
    Schedule,
    extract_system,
    signal_totals,
)

__all__ = [
    "DEFAULT_WINDOW",
    "ModelCheckResult",
    "model_check",
    "mc_diagnostics",
    "runtime_deadlock_hint",
    "initial_pending",
]

# Mirrors the SocketFabric default credit window (fabric/socket.py).
DEFAULT_WINDOW = 32

_STATUS_ORDER = (
    "UNSUPPORTED", "DEADLOCK", "CREDIT-DEADLOCK", "ORPHANS",
    "INCONCLUSIVE", "VERIFIED",
)


def initial_pending(initial_signals, places=None) -> dict:
    """Normalize declared setup-time signals to a pending multiset.

    Accepts both corpus-style 3-tuples ``(event, args, count)`` —
    primed at every place ``(0,) .. (places-1,)``, mirroring
    ``run_corpus_case`` — and explicit 4-tuples
    ``(coord, event, args, count)`` as used by the 2-D suites.
    """
    pending: dict = {}
    for item in initial_signals:
        if len(item) == 3:
            event, args, count = item
            if places is None:
                raise ValueError(
                    "per-place initial signal %r needs places=" % (event,))
            coords = [(p,) for p in range(places)]
        else:
            coord, event, args, count = item
            coords = [tuple(coord)]
        for coord in coords:
            key = (coord, event, tuple(args))
            pending[key] = pending.get(key, 0) + int(count)
    return pending


@dataclass(frozen=True)
class ModelCheckResult:
    """Everything ``model_check`` proved (or failed to prove)."""

    label: str                      # root program name(s)
    status: str                     # one of _STATUS_ORDER
    deadlock_free: bool | None      # ungated semantics; None = unknown
    gated_deadlock_free: bool | None
    counterexample: Schedule | None
    counterexample_regime: str      # "", "ungated", or "gated"
    orphans: tuple                  # ((key, leftover, initial), ...) leaks
    rest_tokens: tuple              # keys whose leftover <= primed count
    terminal_tokens: tuple          # leftover keys no thread ever waits on
    max_mailbox_depth: int | None   # exact (Pass B) or None if capped
    mailbox_peaks: dict             # host -> exact peak depth
    window: int | None
    bounded: bool | None            # max depth <= window
    gate_transparent: bool | None   # no in-flight peak ever hits window
    threads: int
    stats: dict = field(default_factory=dict)
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "VERIFIED"

    def summary(self) -> str:
        if self.status == "VERIFIED":
            extra = ""
            if self.window is not None and self.max_mailbox_depth is not None:
                extra = " mailbox<=%d (window %d);" % (
                    self.max_mailbox_depth, self.window)
            return ("%s: statically proven deadlock-free;%s %d threads, "
                    "%d states explored (POR %.1fx)" % (
                        self.label, extra, self.threads,
                        self.stats.get("states", 0),
                        self.stats.get("reduction_factor", 1.0)))
        return "%s: %s — %s" % (self.label, self.status, self.detail)

    def to_json(self) -> dict:
        return {
            "label": self.label,
            "status": self.status,
            "deadlock_free": self.deadlock_free,
            "gated_deadlock_free": self.gated_deadlock_free,
            "orphans": [
                {"key": _key_str(k), "leftover": lo, "initial": ini}
                for k, lo, ini in self.orphans],
            "max_mailbox_depth": self.max_mailbox_depth,
            "window": self.window,
            "bounded": self.bounded,
            "gate_transparent": self.gate_transparent,
            "threads": self.threads,
            "stats": dict(self.stats),
            "counterexample": (
                None if self.counterexample is None
                else {"regime": self.counterexample_regime,
                      **self.counterexample.to_json()}),
            "detail": self.detail,
        }


def _key_str(key) -> str:
    host, event, args = key
    inner = ",".join(repr(a) for a in args)
    return "%s[%s]@%s" % (event, inner, ",".join(str(c) for c in host))


def _merge_stats(stats: dict, res, pass_name: str) -> None:
    stats.setdefault("passes", {})[pass_name] = {
        "states": res.states,
        "transitions": res.transitions,
        "reduction_factor": round(res.reduction_factor, 2),
        "complete": res.complete,
    }
    stats["total_states"] = stats.get("total_states", 0) + res.states
    stats["total_transitions"] = (
        stats.get("total_transitions", 0) + res.transitions)


def _thread_class_stats(roots, registry) -> dict | None:
    """Thread-class census from the MHP machinery (best effort)."""
    try:
        from .mhp import build_mhp
        classes: dict = {}
        for name, _coord, _env in roots:
            mhp = build_mhp(name, registry)
            for tc in mhp.threads.values():
                kind = "replicated" if tc.replicated else "singleton"
                classes[tc.program] = kind
        return classes
    except Exception:
        return None


def model_check(roots, registry=None, *, entry=(0,), env=None,
                initial_signals=(), places=None,
                window: int | None = DEFAULT_WINDOW,
                max_states: int = 500_000, deadline_s: float | None = 10.0,
                check_gated: bool = True,
                max_ops: int = 200_000) -> ModelCheckResult:
    """Model-check one root program (or a list of concurrent roots).

    ``roots`` is a program name (with ``entry``/``env`` applying to it)
    or a list of ``(name, entry_coord, env)`` triples for a system with
    several externally injected roots.  ``initial_signals`` follows
    :func:`initial_pending`.  ``window=None`` models fabrics without
    credit gating (sim/thread/process): mailbox bounds are still
    reported, but no gated pass runs.
    """
    if registry is None:
        registry = ir.REGISTRY
    if isinstance(roots, (str, ir.Program)):
        name = roots.name if isinstance(roots, ir.Program) else roots
        roots = [(name, tuple(entry), dict(env or {}))]
    else:
        roots = [(n, tuple(c), dict(e or {})) for n, c, e in roots]
    label = "+".join(n for n, _c, _e in roots)
    threads = 0
    stats: dict = {}

    try:
        pending0 = initial_pending(initial_signals, places)
        traces, root_indices = extract_system(roots, registry,
                                              max_ops=max_ops)
    except (AbstractionError, ValueError) as exc:
        return ModelCheckResult(
            label=label, status="UNSUPPORTED", deadlock_free=None,
            gated_deadlock_free=None, counterexample=None,
            counterexample_regime="", orphans=(), rest_tokens=(),
            terminal_tokens=(), max_mailbox_depth=None,
            mailbox_peaks={}, window=window, bounded=None,
            gate_transparent=None, threads=0, stats=stats,
            detail=str(exc))
    threads = len(traces)
    classes = _thread_class_stats(roots, registry)
    if classes is not None:
        stats["thread_classes"] = classes

    def explorer(**kw):
        return Explorer(traces, roots=tuple(root_indices),
                        initial_pending=pending0, max_states=max_states,
                        deadline_s=deadline_s, **kw)

    def result(status, detail="", **kw):
        base = dict(
            label=label, status=status, deadlock_free=None,
            gated_deadlock_free=None, counterexample=None,
            counterexample_regime="", orphans=(), rest_tokens=(),
            terminal_tokens=(), max_mailbox_depth=None, mailbox_peaks={},
            window=window, bounded=None, gate_transparent=None,
            threads=threads, stats=stats, detail=detail)
        base.update(kw)
        return ModelCheckResult(**base)

    # -- Pass A: ungated interleavings (deadlock + orphan oracle) ----------
    res_a = explorer().explore()
    _merge_stats(stats, res_a, "interleave")
    stats["states"] = res_a.states
    stats["transitions"] = res_a.transitions
    stats["reduction_factor"] = round(res_a.reduction_factor, 2)
    if res_a.deadlock is not None:
        return result(
            "DEADLOCK", deadlock_free=False, gated_deadlock_free=False,
            counterexample=res_a.deadlock, counterexample_regime="ungated",
            detail="reachable deadlock under every fabric; "
                   "schedule:\n%s" % res_a.deadlock.describe(limit=24))
    if not res_a.complete:
        return result("INCONCLUSIVE",
                      detail="interleaving pass capped: %s" % res_a.reason)

    # -- orphan arithmetic (valid once deadlock-freedom is proven) ---------
    # A leftover token is a *leak* only when some thread knows how to
    # consume that exact key (more signals than waits: a count
    # mismatch).  Leftovers on keys no thread ever waits on are the
    # usual terminal completion markers (e.g. the last wavefront row's
    # BDONE) — the structural checker already owns fully-unwaited
    # events, so those stay informational here.
    totals = signal_totals(traces, pending0)
    waited_keys = {op[1] for t in traces for op in t.ops
                   if op[0] == "wait"}
    leaks, rest, terminal = [], [], []
    for key in sorted(totals, key=_key_str):
        leftover = totals[key]
        primed = pending0.get(key, 0)
        if leftover > primed:
            if key in waited_keys:
                leaks.append((key, leftover, primed))
            else:
                terminal.append(key)
        elif leftover > 0:
            rest.append(key)

    # -- Pass B: exact per-host mailbox peaks ------------------------------
    dst_hosts = sorted({op[2] for t in traces for op in t.ops
                        if op[0] == "hop"})
    peaks: dict = dict(res_a.peaks)
    inflight: dict = dict(res_a.inflight_peaks)
    mailbox_exact = True
    for host in dst_hosts:
        res_b = explorer(lazy_hosts=frozenset([host])).explore()
        _merge_stats(stats, res_b, "mailbox@%s" % (host,))
        if res_b.deadlock is not None:   # cannot happen: lazy ⊆ ungated
            return result(
                "DEADLOCK", deadlock_free=False, gated_deadlock_free=False,
                counterexample=res_b.deadlock,
                counterexample_regime="ungated",
                detail="reachable deadlock (mailbox pass); schedule:\n%s"
                       % res_b.deadlock.describe(limit=24))
        if not res_b.complete:
            mailbox_exact = False
            continue
        peaks[host] = max(peaks.get(host, 0), res_b.peaks.get(host, 0))
        for edge, v in res_b.inflight_peaks.items():
            inflight[edge] = max(inflight.get(edge, 0), v)
    max_depth = max(peaks.values(), default=0) if mailbox_exact else None
    bounded = None
    if window is not None and max_depth is not None:
        bounded = max_depth <= window
    transparent = None
    if window is not None and mailbox_exact:
        transparent = all(v <= window for v in inflight.values())
    mail = dict(
        orphans=tuple(leaks), rest_tokens=tuple(rest),
        terminal_tokens=tuple(terminal),
        max_mailbox_depth=max_depth, mailbox_peaks=peaks,
        bounded=bounded, gate_transparent=transparent)

    # -- Pass C: gated semantics, only when the gate can engage ------------
    gated_free: bool | None = True if window is None else None
    gated_detail = ""
    if window is not None:
        if transparent:
            gated_free = True       # gate never engages: Pass A transfers
        elif check_gated:
            res_c = explorer(window=window, gated=True).explore()
            _merge_stats(stats, res_c, "gated")
            if res_c.deadlock is not None:
                return result(
                    "CREDIT-DEADLOCK", deadlock_free=True,
                    gated_deadlock_free=False,
                    counterexample=res_c.deadlock,
                    counterexample_regime="gated",
                    detail="deadlock only under the credit window "
                           "(window=%d): socket backpressure starvation; "
                           "schedule:\n%s"
                           % (window, res_c.deadlock.describe(limit=24)),
                    **mail)
            gated_free = True if res_c.complete else None
            if not res_c.complete:
                gated_detail = "gated pass capped: %s" % res_c.reason

    if leaks:
        msg = ", ".join("%s leaks %d token(s) beyond its primed %d"
                        % (_key_str(k), lo - ini, ini)
                        for k, lo, ini in leaks)
        return result("ORPHANS", deadlock_free=True,
                      gated_deadlock_free=gated_free,
                      detail="signals never consumed: %s" % msg, **mail)
    if not mailbox_exact or gated_free is None:
        why = gated_detail or "a mailbox pass hit the state/deadline cap"
        return result("INCONCLUSIVE", deadlock_free=True,
                      gated_deadlock_free=gated_free,
                      detail=why, **mail)
    return result("VERIFIED", deadlock_free=True,
                  gated_deadlock_free=gated_free, **mail)


# --------------------------------------------------------------------------
# diagnostics + lint integration
# --------------------------------------------------------------------------

def _disjoint_key_note(roots, registry) -> str:
    """Name statically instance-disjoint handshake keys (best effort).

    Consults the affine ``keys_never_equal`` oracle over the wait/signal
    argument expressions the MHP summaries collected: key families whose
    distinct static sites can never alias justify collapsing their
    symmetric instances during the search.
    """
    try:
        from .distance import keys_never_equal
        from .mhp import build_mhp
        sites: dict = {}
        for name, _coord, _env in roots:
            mhp = build_mhp(name, registry)
            for prog, summaries in mhp.summaries.items():
                for s in summaries:
                    for kind in ("wait", "signal"):
                        tup = getattr(s, kind)
                        if tup is not None:
                            sites.setdefault(tup[0], []).append(
                                tuple(tup[1]))
        disjoint = []
        for event, keys in sorted(sites.items()):
            keys = [k for k in keys if k]
            if len(keys) < 2:
                continue
            if all(keys_never_equal(a, b)
                   for i, a in enumerate(keys) for b in keys[i + 1:]):
                disjoint.append(event)
        if disjoint:
            return (" (affine oracle: %s keys are instance-disjoint)"
                    % ", ".join(disjoint))
    except Exception:
        pass
    return ""


def mc_diagnostics(root, registry=None, result=None,
                   **kwargs) -> DiagnosticReport:
    """Run ``model_check`` and render the verdict as lint diagnostics.

    Pass a precomputed ``result`` to render without re-exploring.
    """
    name = root.name if isinstance(root, ir.Program) else root
    res = result if result is not None \
        else model_check(name, registry, **kwargs)
    report = DiagnosticReport()
    if res.status == "UNSUPPORTED":
        report.append(info(
            "model-abstraction", name, (),
            "protocol model checker cannot abstract this program: %s"
            % res.detail))
        return report
    if res.status == "INCONCLUSIVE":
        report.append(warning(
            "state-space-cap", name, (),
            "protocol model checker gave up: %s "
            "(raise max_states/deadline_s to push through)" % res.detail))
        return report
    if res.status == "DEADLOCK":
        report.append(error("protocol-deadlock", name, (), res.detail))
        return report
    if res.status == "CREDIT-DEADLOCK":
        report.append(error("credit-deadlock", name, (), res.detail))
        return report
    for key, leftover, primed in res.orphans:
        report.append(warning(
            "orphan-signal", name, (),
            "%s accumulates %d token(s) no wait ever consumes "
            "(primed %d, leftover %d)"
            % (_key_str(key), leftover - primed, primed, leftover)))
    if res.rest_tokens:
        report.append(info(
            "orphan-signal", name, (),
            "%d primed key(s) return to their rest state: %s"
            % (len(res.rest_tokens),
               ", ".join(_key_str(k) for k in res.rest_tokens))))
    if res.terminal_tokens:
        report.append(info(
            "orphan-signal", name, (),
            "terminal completion token(s) left for the fabric to drain: "
            "%s" % ", ".join(_key_str(k) for k in res.terminal_tokens)))
    if res.bounded is False:
        report.append(warning(
            "mailbox-bound", name, (),
            "mailbox depth can reach %d > window %d; socket backpressure "
            "will engage (gated semantics%s deadlock-free)"
            % (res.max_mailbox_depth, res.window,
               "" if res.gated_deadlock_free else " NOT")))
    if res.status == "VERIFIED":
        roots = [(name, kwargs.get("entry", (0,)),
                  kwargs.get("env") or {})]
        reg = registry if registry is not None else ir.REGISTRY
        report.append(info(
            "protocol-verified", name, (),
            res.summary() + _disjoint_key_note(roots, reg)))
    return report


# --------------------------------------------------------------------------
# fabric DeadlockError enrichment
# --------------------------------------------------------------------------

def runtime_deadlock_hint(roots, primed=(), *, registry=None,
                          window: int | None = None,
                          max_states: int = 40_000,
                          deadline_s: float = 2.0) -> str | None:
    """A one-paragraph model-checker verdict for a DeadlockError message.

    ``roots`` is a list of ``(program_name, entry_coord, env)`` as the
    fabric injected them; ``primed`` is the explicit
    ``(coord, event, args, count)`` setup-signal list.  Tightly capped:
    a hung fabric should never wait on its own post-mortem.  Returns
    ``None`` when there is nothing useful to say.
    """
    try:
        roots = [(n, tuple(c), dict(e or {})) for n, c, e in roots]
        if not roots:
            return None
        res = model_check(
            roots, registry, initial_signals=tuple(primed), window=window,
            max_states=max_states, deadline_s=deadline_s,
            check_gated=window is not None)
        if res.status == "VERIFIED":
            return ("protocol model checker: statically proven "
                    "deadlock-free (%d states) — suspect the fabric or "
                    "fault layer, not the program"
                    % res.stats.get("states", 0))
        if res.status == "DEADLOCK" and res.counterexample is not None:
            return ("protocol model checker: this deadlock is reachable "
                    "in the program itself; schedule:\n%s"
                    % res.counterexample.describe(limit=12))
        if res.status == "CREDIT-DEADLOCK" and res.counterexample is not None:
            return ("protocol model checker: credit-window starvation "
                    "(window=%s); schedule:\n%s"
                    % (window, res.counterexample.describe(limit=12)))
        if res.status == "ORPHANS":
            return ("protocol model checker: deadlock-free but leaks "
                    "signal tokens (%s) — suspect the fabric or fault "
                    "layer" % res.detail)
        return "protocol model checker: %s (%s)" % (
            res.status.lower(), res.detail)
    except Exception:
        return None
