"""Static wait/signal protocol checking across injected messengers.

The pipelined and phase-shifted stages coordinate producer/consumer
messengers with node-local events (Figures 11/13/15): ``waitEvent(EP)``
blocks until some other messenger's ``signalEvent(EP)`` lands on the
same PE. Two whole-protocol defects are visible statically, before any
fabric exists:

* an **unmatched wait** — an event some messenger waits on that *no*
  program reachable from the same entry point ever signals: a
  guaranteed deadlock;
* a **signal cycle** — every signal of event ``A`` happens only after
  a wait on ``B`` and vice versa, with no unguarded ("sourced") signal
  to break the cycle. Figure 13's ``EP``/``EC`` slot handshake is
  exactly such a cycle, deliberately primed by initial ``EC`` signals
  the fabric deposits before the run — statically that priming is
  invisible, so a cycle is reported as a *warning*, not an error
  (Figure 15 closes the same loop internally: its spawner signals
  ``EC`` unguarded, so no warning).

Analysis is per *injection closure*: starting from an entry program,
every program reachable through ``InjectStmt`` participates. A lone
program whose closure is just itself (a component carrier registered
for reuse; its peers are injected by some other entry point) gets its
findings downgraded to ``info`` — in isolation, an unmatched wait is
expected, not a bug.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..navp import ir
from . import visitor
from .diagnostics import Diagnostic, DiagnosticReport, ERROR, INFO, WARNING
from .summary import summarize

__all__ = ["ProtocolAnalysis", "analyze_protocol", "protocol_diagnostics",
           "inject_closure"]


def inject_closure(root: ir.Program, registry=None) -> tuple:
    """``root`` plus every program reachable via ``InjectStmt``.

    Returns ``(programs, missing)`` where ``missing`` is the set of
    injected names absent from the registry.
    """
    if registry is None:
        registry = ir.REGISTRY
    out: list = []
    missing: set = set()
    queue = [root]
    seen = {root.name}
    while queue:
        prog = queue.pop(0)
        out.append(prog)
        for _path, stmt in visitor.walk_stmts(prog.body):
            if not isinstance(stmt, ir.InjectStmt):
                continue
            if stmt.program in seen:
                continue
            seen.add(stmt.program)
            child = registry.get(stmt.program)
            if child is None:
                missing.add(stmt.program)
            else:
                queue.append(child)
    return tuple(out), missing


@dataclass(frozen=True)
class WaitSite:
    program: str
    path: tuple
    event: str


@dataclass(frozen=True)
class SignalSite:
    program: str
    path: tuple
    event: str
    guards: frozenset  # events waited earlier (pre-order) in the program


@dataclass(frozen=True)
class ProtocolAnalysis:
    """Event structure of one injection closure."""

    root: str
    programs: tuple          # program names in the closure
    missing: frozenset       # injected names not in the registry
    waits: tuple             # WaitSite
    signals: tuple           # SignalSite

    @property
    def events(self) -> frozenset:
        return frozenset({w.event for w in self.waits}
                         | {s.event for s in self.signals})

    @property
    def sourced(self) -> frozenset:
        """Events with at least one unguarded signal."""
        return frozenset(s.event for s in self.signals if not s.guards)


def analyze_protocol(root: ir.Program,
                     registry=None) -> ProtocolAnalysis:
    programs, missing = inject_closure(root, registry)
    waits: list = []
    signals: list = []
    for prog in programs:
        waited_so_far: set = set()
        for s in summarize(prog):
            if s.wait is not None:
                event, _args = s.wait
                waits.append(WaitSite(prog.name, s.path, event))
                waited_so_far.add(event)
            if s.signal is not None:
                event, _args, _count = s.signal
                signals.append(SignalSite(
                    prog.name, s.path, event,
                    frozenset(waited_so_far)))
    return ProtocolAnalysis(
        root=root.name,
        programs=tuple(p.name for p in programs),
        missing=frozenset(missing),
        waits=tuple(waits),
        signals=tuple(signals),
    )


def _sccs(nodes, edges) -> list:
    """Tarjan's strongly connected components."""
    index: dict = {}
    low: dict = {}
    on_stack: set = set()
    stack: list = []
    out: list = []
    counter = [0]

    def strongconnect(v):
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in edges.get(v, ()):
            if w not in index:
                strongconnect(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            comp = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                comp.append(w)
                if w == v:
                    break
            out.append(comp)

    for v in nodes:
        if v not in index:
            strongconnect(v)
    return out


def protocol_diagnostics(root: ir.Program,
                         registry=None) -> DiagnosticReport:
    """Unmatched-wait and signal-cycle findings for ``root``'s closure."""
    analysis = analyze_protocol(root, registry)
    report = DiagnosticReport()
    # A closure of one program that injects nothing is a component
    # viewed out of context: its protocol peers live in some other
    # entry point's closure, so findings are informational, not
    # defects. (A root whose injects merely fail to resolve is still
    # an entry point — no downgrade.)
    lone = len(analysis.programs) == 1 and not analysis.missing
    err = INFO if lone else ERROR
    warn = INFO if lone else WARNING

    for name in sorted(analysis.missing):
        report.append(Diagnostic(
            warn, "unknown-program", analysis.root, (),
            f"{analysis.root}: the injection closure references "
            f"program {name!r} which is not registered"))

    signalled = {s.event for s in analysis.signals}
    for w in analysis.waits:
        if w.event not in signalled:
            report.append(Diagnostic(
                err, "unmatched-wait", w.program, w.path,
                f"{w.program}: waits on event {w.event!r} which no "
                f"program in the injection closure of "
                f"{analysis.root!r} ever signals; the messenger would "
                f"block forever"))

    waited = {w.event for w in analysis.waits}
    for s in analysis.signals:
        if s.event not in waited:
            report.append(Diagnostic(
                warn, "unmatched-signal", s.program, s.path,
                f"{s.program}: signals event {s.event!r} which no "
                f"program in the injection closure of "
                f"{analysis.root!r} ever waits on"))

    # Event ordering graph: an edge W -> E means every occurrence of
    # "signal E" in some program is preceded by "wait W" there, so E
    # being signalled depends on W being signalled first.
    edges: dict = {}
    for s in analysis.signals:
        for g in s.guards:
            edges.setdefault(g, set()).add(s.event)
    for comp in _sccs(sorted(analysis.events), edges):
        cyclic = len(comp) > 1 or comp[0] in edges.get(comp[0], ())
        if not cyclic:
            continue
        if any(e in analysis.sourced for e in comp):
            continue  # an unguarded signal breaks the cycle
        if not all(e in signalled for e in comp):
            continue  # already reported as unmatched waits
        names = ", ".join(repr(e) for e in sorted(comp))
        report.append(Diagnostic(
            warn, "signal-cycle", analysis.root, (),
            f"{analysis.root}: events {names} form a signal cycle with "
            f"no unguarded signal; progress depends on initial event "
            f"signals the analysis cannot see"))
    return report
