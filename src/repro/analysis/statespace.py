"""Explicit-state semantics for navigational wait/signal protocols.

This module is the engine room of the protocol model checker
(:mod:`repro.analysis.protocol_mc`). It does two things:

**Trace extraction** (:func:`extract_system`): run each injected
program through a *concrete abstract interpretation* of the IR — loop
bounds, hop coordinates and event keys are evaluated exactly (every
paper program has ``Const`` bounds and affine tours over concrete
bindings), while kernel outputs and node reads become an opaque token.
Each messenger flattens into a finite sequence of synchronization
events: ``hop(src, dst)``, ``wait(key)``, ``signal(key, count)`` and
``spawn(child)``, where a key is ``(host, event, args)``. Anything the
abstraction cannot evaluate at a *control* position (an opaque loop
bound, branch condition, hop coordinate or event argument) raises
:class:`AbstractionError` — the checker reports the program as
unsupported instead of guessing.

**State-space exploration** (:class:`Explorer`): exhaustive memoized
DFS over the interleavings of those traces. A global state is the
vector of per-thread ``(pc, phase)`` codes; the pending-signal
multiset, per-``(src, dst)`` in-flight hop counts and per-host mailbox
depths are all functions of that vector and are maintained
incrementally with undo on backtrack. Hops are two micro-steps — a
*send* (the messenger leaves its host; the destination mailbox deepens)
and a *retire* (the destination worker dequeues it; the messenger
resumes there) — which is exactly the window in which credit-based
backpressure and hop coalescing reorder arrivals on the socket fabric.

Partial-order reduction uses singleton stubborn sets ("eager" moves):
a transition that can never be disabled by, and commutes to the left
of, every other thread's remaining operations is executed immediately
without branching. Under infinite-window semantics that covers sends,
retires, signals, spawns, and waits on keys with a single waiting
thread — the concrete analogue of the affine
:func:`~repro.analysis.distance.keys_never_equal` disjointness oracle:
two waits compete only when their *concrete* keys are equal, so a key
owned by one thread commutes with the world. The only branch points
left are waits on contended keys (and, in the credit-gated mode,
everything — see below). Deadlock reachability is preserved because
every eager move satisfies the stubborn-set conditions: it is enabled,
cannot be disabled by others, and commutes (signals/sends only add
tokens or counters; a single-waiter consume has no competitor). The
state space is a DAG (every transition strictly advances some thread),
so the ignoring problem of cycle-closing POR does not arise.

Symmetric replicated instances — threads whose extracted traces are
byte-identical, the concrete image of an
:class:`~repro.analysis.mhp.ThreadClass` whose replication parameter
never reaches a synchronization key — are interchangeable, so states
are canonicalized by sorting their codes within each symmetry group
before memoization.

Two credit regimes are modeled:

* ``window=None`` — the sim/thread/process-fabric semantics: sends are
  never gated. Peaks of the per-host mailbox depth are still tracked.
* ``gated=True`` with a finite window — the socket-fabric semantics:
  a send toward ``dst`` requires ``in_flight(src, dst) < window``;
  a messenger that commits to a full-window hop *blocks its entire
  host* (the single-threaded worker sits in ``emit_hop``), freezing
  co-located messengers and mailbox retirement until credit returns —
  the mechanism behind real credit-starvation deadlocks. Gated
  exploration branches on every enabled transition (no eager moves):
  host blocking couples co-located operations, so the singleton
  stubborn argument no longer applies.

Per-destination mailbox peaks are computed *exactly* by dedicated
passes that make retirement into one host lazy (a branch point) while
everything else stays eager: delaying other hosts' retires or sends is
never enabling under infinite-window semantics, and contended-key
token allocation is still branched on, so the adversarial schedule
that maximizes one mailbox is always explored.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import AnalysisError
from ..navp import ir

__all__ = [
    "AbstractionError", "ThreadTrace", "Schedule", "ExploreResult",
    "Explorer", "extract_system", "extract_traces", "OPAQUE",
]


class AbstractionError(AnalysisError):
    """The program escapes the checker's concrete abstraction."""


class _Opaque:
    """Unknown runtime value (kernel output, node data). Hashable so it
    can sit inside env snapshots; any *control* use is rejected by the
    extractor rather than guessed at."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<opaque>"


OPAQUE = _Opaque()

# thread phases
_NOT_SPAWNED, _READY, _TRANSIT, _BLOCKED, _DONE = range(5)
_PHASES = 5

# transition kinds
_SEND, _RETIRE, _BLOCK, _UNBLOCK, _CONSUME, _STEP = range(6)

_KIND_NAMES = {_SEND: "send", _RETIRE: "retire", _BLOCK: "block",
               _UNBLOCK: "unblock", _CONSUME: "wait", _STEP: "step"}


@dataclass(frozen=True)
class ThreadTrace:
    """One messenger's finite synchronization trace.

    ``ops`` entries (``path`` is the IR statement path, for messages):

    - ``("hop", src_host, dst_host, path)``
    - ``("wait", key, path)`` with ``key = (host, event, args)``
    - ``("signal", key, count, path)``
    - ``("spawn", child_index, host, path)``
    """

    label: str
    program: str
    ops: tuple
    spawner: int | None = None


@dataclass(frozen=True)
class Schedule:
    """A concrete interleaving — the counterexample currency.

    ``steps`` is a tuple of ``(thread_label, action, detail)`` strings
    describing the exact order of synchronization micro-steps from the
    initial state to the property violation.
    """

    steps: tuple
    blocked: tuple = ()   # (thread_label, why) at the final state

    def describe(self, limit: int | None = None) -> str:
        steps = self.steps if limit is None else self.steps[-limit:]
        skipped = len(self.steps) - len(steps)
        lines = []
        if skipped:
            lines.append(f"  ... {skipped} earlier step(s)")
        lines.extend(f"  {i + skipped + 1}. {label}: {action} {detail}"
                     for i, (label, action, detail) in enumerate(steps))
        if self.blocked:
            lines.append("  stuck: " + "; ".join(
                f"{label} {why}" for label, why in self.blocked))
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "steps": [list(s) for s in self.steps],
            "blocked": [list(b) for b in self.blocked],
        }


# --------------------------------------------------------------------------
# trace extraction
# --------------------------------------------------------------------------

def _key_repr(key) -> str:
    host, event, args = key
    inner = event if not args else f"{event}{list(args)!r}"
    return f"{inner}@{host!r}"


class _Extractor:
    def __init__(self, registry, max_ops: int):
        self.registry = registry
        self.max_ops = max_ops
        self.traces: list = []
        self.counts: dict = {}
        self.budget = max_ops

    def _resolve(self, name: str) -> ir.Program:
        try:
            return self.registry[name]
        except KeyError:
            raise AbstractionError(
                f"injected program {name!r} is not in the registry"
            ) from None

    def _label(self, program: str) -> str:
        n = self.counts.get(program, 0)
        self.counts[program] = n + 1
        return program if n == 0 else f"{program}#{n}"

    def run(self, program: str, entry: tuple, env: dict,
            spawner: int | None) -> int:
        """Extract one thread (recursing into injections); its index."""
        index = len(self.traces)
        self.traces.append(None)  # reserve the slot: children come after
        prog = self._resolve(program)
        label = self._label(program)
        ops: list = []
        place = tuple(entry)
        env = dict(env)
        stack: list = [[(), 0, None]]

        def ev(expr):
            return self._eval(expr, env, prog.name)

        while stack:
            self.budget -= 1
            if self.budget < 0:
                raise AbstractionError(
                    f"{prog.name}: trace exceeds {self.max_ops} "
                    f"synchronization-relevant steps; the protocol is "
                    f"too large for explicit-state checking")
            frame = stack[-1]
            path, pc, loop = frame
            body = ir.body_at(prog, path)
            if pc >= len(body):
                if loop is not None:
                    var, count = loop
                    env[var] += 1
                    if env[var] < count:
                        frame[1] = 0
                        continue
                stack.pop()
                continue
            stmt = body[pc]
            spath = path + (pc,)
            frame[1] = pc + 1
            cls = stmt.__class__
            if cls is ir.Assign:
                env[stmt.var] = ev(stmt.expr)
            elif cls is ir.For:
                count = ev(stmt.count)
                if count is OPAQUE or not isinstance(count, int):
                    raise AbstractionError(
                        f"{prog.name} @ {list(spath)!r}: loop bound "
                        f"over {stmt.var!r} is not statically evaluable")
                if count > 0:
                    env[stmt.var] = 0
                    stack.append([path + (pc,), 0, (stmt.var, count)])
            elif cls is ir.If:
                cond = ev(stmt.cond)
                if cond is OPAQUE:
                    raise AbstractionError(
                        f"{prog.name} @ {list(spath)!r}: branch "
                        f"condition depends on runtime data")
                target = stmt.then if cond else stmt.orelse
                if target:
                    branch = "then" if cond else "else"
                    stack.append([path + ((pc, branch),), 0, None])
            elif cls is ir.ComputeStmt:
                env[stmt.out] = OPAQUE
            elif cls is ir.NodeSet:
                pass  # data-plane only: no synchronization effect
            elif cls is ir.HopStmt:
                coord = tuple(ev(e) for e in stmt.place)
                if any(c is OPAQUE for c in coord):
                    raise AbstractionError(
                        f"{prog.name} @ {list(spath)!r}: hop "
                        f"destination depends on runtime data")
                ops.append(("hop", place, coord, spath))
                place = coord
            elif cls is ir.WaitStmt:
                key = self._event_key(stmt, place, ev, prog.name, spath)
                ops.append(("wait", key, spath))
            elif cls is ir.SignalStmt:
                key = self._event_key(stmt, place, ev, prog.name, spath)
                count = ev(stmt.count)
                if count is OPAQUE or not isinstance(count, int):
                    raise AbstractionError(
                        f"{prog.name} @ {list(spath)!r}: signal count "
                        f"is not statically evaluable")
                if count > 0:
                    ops.append(("signal", key, count, spath))
            elif cls is ir.InjectStmt:
                child_env = {var: ev(e) for var, e in stmt.bindings}
                child = self.run(stmt.program, place, child_env, index)
                ops.append(("spawn", child, place, spath))
            else:
                raise AbstractionError(
                    f"{prog.name} @ {list(spath)!r}: statement of "
                    f"unknown type {cls.__name__!r}")
        self.traces[index] = ThreadTrace(
            label=label, program=prog.name, ops=tuple(ops),
            spawner=spawner)
        return index

    def _event_key(self, stmt, place, ev, name, spath):
        args = tuple(ev(e) for e in stmt.args)
        if any(a is OPAQUE for a in args):
            raise AbstractionError(
                f"{name} @ {list(spath)!r}: event key "
                f"{stmt.event!r} depends on runtime data")
        return (place, stmt.event, args)

    def _eval(self, expr, env, name):
        cls = expr.__class__
        if cls is ir.Const:
            return expr.value
        if cls is ir.Var:
            try:
                return env[expr.name]
            except KeyError:
                raise AbstractionError(
                    f"{name}: agent variable {expr.name!r} is unbound "
                    f"during trace extraction") from None
        if cls is ir.Bin:
            a = self._eval(expr.left, env, name)
            b = self._eval(expr.right, env, name)
            if a is OPAQUE or b is OPAQUE:
                return OPAQUE
            try:
                return ir._BIN_OPS[expr.op](a, b)
            except Exception:
                return OPAQUE
        if cls is ir.Index:
            base = self._eval(expr.base, env, name)
            if base is OPAQUE:
                return OPAQUE
            try:
                vals = tuple(self._eval(e, env, name) for e in expr.idx)
                if any(v is OPAQUE for v in vals):
                    return OPAQUE
                key = vals[0] if len(vals) == 1 else vals
                return base[key]
            except Exception:
                return OPAQUE
        # NodeGet and anything unregistered: runtime data
        return OPAQUE


def extract_system(roots, registry=None, max_ops: int = 200_000) -> list:
    """Extract traces for a system of concurrently injected roots.

    ``roots`` is a list of ``(program_name, entry_coord, env)`` tuples;
    every injected child becomes its own trace, in spawn pre-order.
    Returns ``(traces, root_indices)``.
    """
    if registry is None:
        registry = ir.REGISTRY
    ex = _Extractor(registry, max_ops)
    indices = [ex.run(name, tuple(entry), dict(env or {}), None)
               for name, entry, env in roots]
    return ex.traces, indices


def extract_traces(root: str, registry=None, entry=(0,),
                   env: dict | None = None,
                   max_ops: int = 200_000) -> list:
    """Single-root sugar over :func:`extract_system`."""
    traces, _ = extract_system([(root, entry, env or {})], registry,
                               max_ops=max_ops)
    return traces


# --------------------------------------------------------------------------
# exploration
# --------------------------------------------------------------------------

@dataclass
class ExploreResult:
    """One exploration pass over a system of traces."""

    complete: bool
    states: int
    transitions: int
    eager_steps: int
    naive_transitions: int     # what full branching would have expanded
    deadlock: Schedule | None
    terminals: int
    peaks: dict                # host -> max mailbox depth reached
    inflight_peaks: dict       # (src, dst) -> max in-flight hops
    reason: str = ""           # why the pass stopped early, if it did

    @property
    def reduction_factor(self) -> float:
        """Naive-over-explored transition ratio (POR effectiveness)."""
        return self.naive_transitions / max(1, self.transitions)


class Explorer:
    """Memoized DFS over the interleavings of a trace system.

    ``window=None`` explores the ungated (infinite-credit) semantics
    with eager singleton-stubborn moves; ``gated=True`` (requires a
    finite ``window``) explores the socket credit semantics with full
    branching. ``lazy_hosts`` makes retirement into those hosts a
    branch point (the exact-mailbox-peak passes).
    """

    def __init__(self, traces, roots, initial_pending=None, *,
                 window: int | None = None, gated: bool = False,
                 lazy_hosts: frozenset = frozenset(),
                 max_states: int = 1_000_000,
                 deadline_s: float | None = None,
                 stop_on_deadlock: bool = True):
        if gated and window is None:
            raise ValueError("gated exploration needs a finite window")
        self.traces = list(traces)
        self.roots = list(roots)
        self.window = window
        self.gated = gated
        self.lazy_hosts = frozenset(lazy_hosts)
        self.max_states = max_states
        self.deadline_s = deadline_s
        self.stop_on_deadlock = stop_on_deadlock
        self.initial_pending = dict(initial_pending or {})

        n = len(self.traces)
        self.codes = [_NOT_SPAWNED] * n
        self.live = 0
        for i in self.roots:
            self.codes[i] = self._entry_code(i)
        self.pending = dict(self.initial_pending)
        self.inflight: dict = {}
        self.depth: dict = {}
        self.blocked: dict = {}
        self.peaks: dict = {}
        self.inflight_peaks: dict = {}

        # key -> thread indices that ever wait on it (eager-wait rule)
        waiters: dict = {}
        for i, t in enumerate(self.traces):
            for op in t.ops:
                if op[0] == "wait":
                    waiters.setdefault(op[1], set()).add(i)
        self.single_waiter = {k: len(v) == 1 for k, v in waiters.items()}

        # symmetry groups: byte-identical traces are interchangeable
        by_ops: dict = {}
        for i, t in enumerate(self.traces):
            by_ops.setdefault((t.program, t.ops), []).append(i)
        self.sym_groups = tuple(tuple(g) for g in by_ops.values()
                                if len(g) > 1)

    # -- state helpers -----------------------------------------------------

    def _entry_code(self, i: int) -> int:
        if self.traces[i].ops:
            self.live += 1
            return _READY  # pc 0
        return _DONE       # empty program: born finished

    def _advance_code(self, i: int, pc: int) -> int:
        if pc >= len(self.traces[i].ops):
            self.live -= 1
            return pc * _PHASES + _DONE
        return pc * _PHASES + _READY

    def _host_of(self, i: int, pc: int):
        op = self.traces[i].ops[pc]
        kind = op[0]
        if kind == "hop":
            return op[1]
        if kind == "spawn":
            return op[2]
        return op[1][0]  # wait/signal: key host

    def _canonical(self):
        codes = self.codes
        if not self.sym_groups:
            return tuple(codes)
        arr = list(codes)
        for group in self.sym_groups:
            vals = sorted(arr[j] for j in group)
            for j, v in zip(group, vals):
                arr[j] = v
        return tuple(arr)

    # -- transitions -------------------------------------------------------

    def _transition(self, i: int):
        """The (at most one) enabled transition of thread ``i``."""
        code = self.codes[i]
        phase = code % _PHASES
        if phase == _NOT_SPAWNED or phase == _DONE:
            return None
        pc = code // _PHASES
        op = self.traces[i].ops[pc]
        if phase == _TRANSIT:
            if self.gated and self.blocked.get(op[2], 0):
                return None  # destination worker is stuck in emit_hop
            return _RETIRE
        if phase == _BLOCKED:
            if self.inflight.get((op[1], op[2]), 0) < self.window:
                return _UNBLOCK
            return None
        # READY
        host = self._host_of(i, pc)
        if self.gated and self.blocked.get(host, 0):
            return None  # a co-located messenger blocked the worker
        kind = op[0]
        if kind == "hop":
            if self.window is None or \
                    self.inflight.get((op[1], op[2]), 0) < self.window:
                return _SEND
            return _BLOCK if self.gated else None
        if kind == "wait":
            return _CONSUME if self.pending.get(op[1], 0) > 0 else None
        return _STEP  # signal / spawn

    def _apply(self, i: int, kind: int):
        """Execute a transition; return its undo record."""
        old = self.codes[i]
        pc = old // _PHASES
        op = self.traces[i].ops[pc]
        old_live = self.live
        child_old = None
        if kind == _SEND or kind == _UNBLOCK:
            sd = (op[1], op[2])
            self.inflight[sd] = n = self.inflight.get(sd, 0) + 1
            if n > self.inflight_peaks.get(sd, 0):
                self.inflight_peaks[sd] = n
            self.depth[op[2]] = d = self.depth.get(op[2], 0) + 1
            if d > self.peaks.get(op[2], 0):
                self.peaks[op[2]] = d
            if kind == _UNBLOCK:
                self.blocked[op[1]] -= 1
            self.codes[i] = pc * _PHASES + _TRANSIT
        elif kind == _RETIRE:
            sd = (op[1], op[2])
            self.inflight[sd] -= 1
            self.depth[op[2]] -= 1
            self.codes[i] = self._advance_code(i, pc + 1)
        elif kind == _BLOCK:
            self.blocked[op[1]] = self.blocked.get(op[1], 0) + 1
            self.codes[i] = pc * _PHASES + _BLOCKED
        elif kind == _CONSUME:
            self.pending[op[1]] -= 1
            self.codes[i] = self._advance_code(i, pc + 1)
        else:  # _STEP: signal or spawn
            if op[0] == "signal":
                key = op[1]
                self.pending[key] = self.pending.get(key, 0) + op[2]
            else:
                child = op[1]
                child_old = self.codes[child]
                self.codes[child] = self._entry_code(child)
            self.codes[i] = self._advance_code(i, pc + 1)
        return (i, old, kind, op, old_live, child_old)

    def _revert(self, undo) -> None:
        i, old, kind, op, old_live, child_old = undo
        if kind == _SEND or kind == _UNBLOCK:
            sd = (op[1], op[2])
            self.inflight[sd] -= 1
            self.depth[op[2]] -= 1
            if kind == _UNBLOCK:
                self.blocked[op[1]] += 1
        elif kind == _RETIRE:
            sd = (op[1], op[2])
            self.inflight[sd] += 1
            self.depth[op[2]] += 1
        elif kind == _BLOCK:
            self.blocked[op[1]] -= 1
        elif kind == _CONSUME:
            self.pending[op[1]] += 1
        else:
            if op[0] == "signal":
                self.pending[op[1]] -= op[2]
            else:
                self.codes[op[1]] = child_old
        self.codes[i] = old
        self.live = old_live

    def _eager(self, i: int):
        """Singleton-stubborn transition of thread ``i``, if any.

        Only meaningful in ungated mode: host blocking couples
        co-located transitions, so gated exploration branches fully.
        """
        code = self.codes[i]
        phase = code % _PHASES
        if phase == _TRANSIT:
            pc = code // _PHASES
            if self.traces[i].ops[pc][2] not in self.lazy_hosts:
                return _RETIRE
            return None
        if phase != _READY:
            return None
        pc = code // _PHASES
        op = self.traces[i].ops[pc]
        kind = op[0]
        if kind == "hop" or kind == "signal" or kind == "spawn":
            return _SEND if kind == "hop" else _STEP
        # wait: eager only when this thread owns the key outright
        if self.pending.get(op[1], 0) > 0 and self.single_waiter[op[1]]:
            return _CONSUME
        return None

    # -- the DFS -----------------------------------------------------------

    def _describe(self, i: int, kind: int) -> tuple:
        t = self.traces[i]
        pc = self.codes[i] // _PHASES
        op = t.ops[min(pc, len(t.ops) - 1)]
        if op[0] == "hop":
            detail = f"{op[1]!r} -> {op[2]!r}"
            action = _KIND_NAMES[kind] if kind in (
                _SEND, _RETIRE, _BLOCK, _UNBLOCK) else "hop"
        elif op[0] == "wait":
            action, detail = "wait", _key_repr(op[1])
        elif op[0] == "signal":
            action, detail = "signal", _key_repr(op[1])
        else:
            action, detail = "inject", self.traces[op[1]].label
        return (t.label, action, detail)

    def _stuck_report(self) -> tuple:
        out = []
        for i, t in enumerate(self.traces):
            code = self.codes[i]
            phase = code % _PHASES
            if phase in (_NOT_SPAWNED, _DONE):
                continue
            pc = code // _PHASES
            op = t.ops[pc]
            if phase == _TRANSIT:
                why = (f"in transit {op[1]!r} -> {op[2]!r} "
                       f"(destination worker never dequeues it)")
            elif phase == _BLOCKED:
                why = (f"blocked in emit_hop {op[1]!r} -> {op[2]!r} "
                       f"(credit window exhausted)")
            elif op[0] == "wait":
                why = f"waiting on {_key_repr(op[1])} (never signaled)"
            elif op[0] == "hop":
                why = f"cannot send {op[1]!r} -> {op[2]!r}"
            else:
                why = f"frozen at blocked host before {op[0]}"
            out.append((t.label, why))
        return tuple(out)

    def explore(self) -> ExploreResult:
        seen: set = set()
        states = transitions = eager_steps = naive = terminals = 0
        deadlock = None
        reason = ""
        t0 = time.monotonic()
        path: list = []          # (label, action, detail) applied steps
        undo_log: list = []      # undo records, parallel to path

        def apply_step(i, kind):
            nonlocal transitions
            path.append(self._describe(i, kind))
            undo_log.append(self._apply(i, kind))
            transitions += 1

        def unwind(to_len):
            while len(undo_log) > to_len:
                self._revert(undo_log.pop())
                path.pop()

        # DFS frames: (undo_log length at entry, iterator of threads)
        frames: list = []

        def enter():
            """Eager-close, memoize, enumerate. Returns branch list or
            None when the state was already visited / is settled."""
            nonlocal states, eager_steps, naive, terminals, deadlock
            if not self.gated:
                progress = True
                while progress:
                    progress = False
                    for i in range(len(self.traces)):
                        kind = self._eager(i)
                        if kind is not None:
                            naive += self.live
                            apply_step(i, kind)
                            eager_steps += 1
                            progress = True
            key = self._canonical()
            if key in seen:
                return None
            seen.add(key)
            states += 1
            branches = [i for i in range(len(self.traces))
                        if self._transition(i) is not None]
            naive += len(branches)
            if not branches:
                if self.live > 0:
                    if deadlock is None:
                        deadlock = Schedule(tuple(path),
                                            self._stuck_report())
                else:
                    terminals += 1
                return None
            return branches

        # A frame's ``base`` is the undo-log length at its state's
        # entry (post eager closure); the invariant is that the mutable
        # state equals the frame's state whenever its next branch is
        # taken, and subtrees unwind back to ``base`` when they return.
        branches = enter()
        if branches is not None:
            frames.append((len(undo_log), iter(branches)))
        ok = True
        ticks = 0
        while frames:
            if deadlock is not None and self.stop_on_deadlock:
                break
            if states > self.max_states:
                ok, reason = False, (
                    f"state cap {self.max_states} exceeded")
                break
            ticks += 1
            if self.deadline_s is not None and \
                    (ticks & 0x3FF) == 0 and \
                    time.monotonic() - t0 > self.deadline_s:
                ok, reason = False, (
                    f"deadline {self.deadline_s:.1f}s exceeded")
                break
            base, it = frames[-1]
            i = next(it, None)
            if i is None:
                frames.pop()
                unwind(frames[-1][0] if frames else 0)
                continue
            kind = self._transition(i)
            if kind is None:  # unreachable: state is restored to the
                continue      # frame's own before every branch
            apply_step(i, kind)
            sub = enter()
            if sub is None:
                unwind(base)
            else:
                frames.append((len(undo_log), iter(sub)))
        # fully unwind so the explorer can be reused
        unwind(0)
        return ExploreResult(
            complete=ok and (deadlock is None or self.stop_on_deadlock),
            states=states, transitions=transitions,
            eager_steps=eager_steps, naive_transitions=naive,
            deadlock=deadlock, terminals=terminals,
            peaks=dict(self.peaks),
            inflight_peaks=dict(self.inflight_peaks),
            reason=reason)


def signal_totals(traces, initial_pending=None) -> dict:
    """Per-key token balance assuming every thread runs to completion:
    ``initial + signaled - waited``. Under proven deadlock-freedom the
    leftover count per key is schedule-invariant, so orphan detection
    is arithmetic, not search."""
    totals = dict(initial_pending or {})
    for t in traces:
        for op in t.ops:
            if op[0] == "signal":
                totals[op[1]] = totals.get(op[1], 0) + op[2]
            elif op[0] == "wait":
                totals[op[1]] = totals.get(op[1], 0) - 1
    return totals
