"""Per-statement access summaries: what each statement reads, writes,
waits on, signals, and where the messenger stands when it executes.

This is the front end shared by the dependence, locality and protocol
analyses. One walk over a program produces a flat list of
:class:`StmtSummary` records in pre-order (execution order for
straight-line code), each carrying:

* node-variable accesses (:class:`NodeAccess`) with their *symbolic*
  key expressions, both raw and normalized (``k+1`` == ``1+k``);
* agent-variable uses and defs;
* hop / wait / signal / inject payloads;
* the symbolic current place, tracked through :class:`HopStmt` — the
  locality checker's main input. Place tracking is conservative: after
  a ``For`` or ``If`` whose bodies hop, the place is forgotten
  (``None``) unless every path agrees;
* the enclosing loop variables and ``If`` conditions (then-branch
  conditions only — the analyzer can use an equality ``mj == 0`` as a
  substitution, while a negation has no such use).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..navp import ir
from . import visitor

__all__ = ["NodeAccess", "StmtSummary", "summarize", "summarize_body"]


@dataclass(frozen=True)
class NodeAccess:
    """One read or write of a node variable.

    ``key`` is the normalized key tuple (commutative operands ordered);
    ``raw_key`` is as written in the program.
    """

    var: str
    key: tuple
    raw_key: tuple
    path: tuple
    write: bool


@dataclass(frozen=True)
class StmtSummary:
    """Everything an analysis needs to know about one statement."""

    path: tuple
    stmt: ir.Stmt
    pos: int                   # pre-order position (execution order proxy)
    node_reads: tuple = ()     # NodeAccess, write=False
    node_writes: tuple = ()    # NodeAccess, write=True
    agent_uses: frozenset = frozenset()
    agent_defs: frozenset = frozenset()
    hop: tuple | None = None       # place expr tuple, or None
    wait: tuple | None = None      # (event, args) or None
    signal: tuple | None = None    # (event, args, count) or None
    inject: tuple | None = None    # (program_name, bindings) or None
    place: tuple | None = None     # symbolic place when executing, or None
    conds: tuple = ()              # enclosing then-branch If conditions
    loops: tuple = ()              # enclosing loop variables, outer first


def _expr_accesses(expr: ir.Expr, path: tuple) -> tuple:
    """(node_reads, agent_uses) of one expression."""
    reads = []
    uses = set()
    for e in visitor.walk_expr(expr):
        if isinstance(e, ir.NodeGet):
            reads.append(NodeAccess(
                var=e.name,
                key=visitor.normalize_key(e.idx),
                raw_key=tuple(e.idx),
                path=path,
                write=False,
            ))
        elif isinstance(e, ir.Var):
            uses.add(e.name)
    return tuple(reads), uses


def _contains_hop(body: tuple) -> bool:
    return any(isinstance(s, ir.HopStmt)
               for _p, s in visitor.walk_stmts(body))


class _Walker:
    def __init__(self) -> None:
        self.out: list = []
        self.pos = 0

    def body(self, stmts: tuple, path: tuple, place, conds: tuple,
             loops: tuple):
        """Summarize a statement list; returns the place after it."""
        for i, stmt in enumerate(stmts):
            spath = path + (i,)
            place = self.stmt(stmt, spath, place, conds, loops)
        return place

    def stmt(self, stmt: ir.Stmt, spath: tuple, place, conds: tuple,
             loops: tuple):
        reads: list = []
        writes: list = []
        uses: set = set()
        defs: set = set()
        hop = wait = signal = inject = None

        if isinstance(stmt, ir.NodeSet):
            for e in stmt.idx + (stmt.expr,):
                r, u = _expr_accesses(e, spath)
                reads.extend(r)
                uses |= u
            writes.append(NodeAccess(
                var=stmt.name,
                key=visitor.normalize_key(stmt.idx),
                raw_key=tuple(stmt.idx),
                path=spath,
                write=True,
            ))
        elif isinstance(stmt, ir.Assign):
            r, u = _expr_accesses(stmt.expr, spath)
            reads.extend(r)
            uses |= u
            defs.add(stmt.var)
        elif isinstance(stmt, ir.ComputeStmt):
            for e in stmt.args:
                r, u = _expr_accesses(e, spath)
                reads.extend(r)
                uses |= u
            defs.add(stmt.out)
        elif isinstance(stmt, ir.HopStmt):
            for e in stmt.place:
                r, u = _expr_accesses(e, spath)
                reads.extend(r)
                uses |= u
            hop = tuple(stmt.place)
        elif isinstance(stmt, ir.WaitStmt):
            for e in stmt.args:
                r, u = _expr_accesses(e, spath)
                reads.extend(r)
                uses |= u
            wait = (stmt.event, tuple(stmt.args))
        elif isinstance(stmt, ir.SignalStmt):
            for e in stmt.args + (stmt.count,):
                r, u = _expr_accesses(e, spath)
                reads.extend(r)
                uses |= u
            signal = (stmt.event, tuple(stmt.args), stmt.count)
        elif isinstance(stmt, ir.InjectStmt):
            for _v, e in stmt.bindings:
                r, u = _expr_accesses(e, spath)
                reads.extend(r)
                uses |= u
            inject = (stmt.program, tuple(stmt.bindings))
        elif isinstance(stmt, (ir.For, ir.If)):
            for e in visitor.stmt_exprs(stmt):
                r, u = _expr_accesses(e, spath)
                reads.extend(r)
                uses |= u
            if isinstance(stmt, ir.For):
                defs.add(stmt.var)
        else:
            # an extension statement: summarize its declared exprs
            for e in visitor.stmt_exprs(stmt):
                r, u = _expr_accesses(e, spath)
                reads.extend(r)
                uses |= u

        self.out.append(StmtSummary(
            path=spath,
            stmt=stmt,
            pos=self.pos,
            node_reads=tuple(reads),
            node_writes=tuple(writes),
            agent_uses=frozenset(uses),
            agent_defs=frozenset(defs),
            hop=hop,
            wait=wait,
            signal=signal,
            inject=inject,
            place=place,
            conds=conds,
            loops=loops,
        ))
        self.pos += 1

        # -- recurse into bodies; compute the post-statement place ---------
        if isinstance(stmt, ir.HopStmt):
            return hop
        if isinstance(stmt, ir.For):
            # A body that hops makes the place iteration-dependent: the
            # first iteration starts at `place` but later ones start
            # wherever the previous iteration ended, so the body entry
            # place is unknown (statements after an in-body hop still
            # get that hop's target).
            hops = _contains_hop(stmt.body)
            self.body(stmt.body, spath, None if hops else place,
                      conds, loops + (stmt.var,))
            return None if hops else place
        if isinstance(stmt, ir.If):
            then_place = self.body(stmt.then, spath[:-1]
                                   + ((spath[-1], "then"),), place,
                                   conds + (stmt.cond,), loops)
            else_place = self.body(stmt.orelse, spath[:-1]
                                   + ((spath[-1], "else"),), place,
                                   conds, loops)
            if then_place == else_place:
                return then_place
            return None
        return place


def summarize_body(body: tuple, entry_place=None,
                   base_path: tuple = ()) -> list:
    """Summaries for a bare statement tuple (see :func:`summarize`).

    ``base_path`` prefixes every summary's path, so a nested body (a
    loop's, say) yields paths addressable from the enclosing program.
    """
    walker = _Walker()
    walker.body(tuple(body), tuple(base_path), entry_place, (), ())
    return walker.out


def summarize(program: ir.Program, entry_place=None) -> list:
    """Pre-order :class:`StmtSummary` list for ``program``.

    ``entry_place`` is the symbolic coordinate (tuple of Exprs) the
    messenger occupies when the program starts, or None for unknown.
    """
    return summarize_body(program.body, entry_place)
