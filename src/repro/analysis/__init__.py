"""Static analysis of navigational IR programs.

The paper's transformations are legal only "without violating any
dependency conditions" (Section 2); this package decides those
conditions *statically*, before a program ever touches a fabric:

* :mod:`~repro.analysis.visitor` — the shared, exhaustive IR walker
  (one extension point for new node types);
* :mod:`~repro.analysis.summary` — per-statement access summaries
  with symbolic current-place tracking;
* :mod:`~repro.analysis.deps` — loop dependence analysis
  (flow/anti/output, carried or not) backing the transformations'
  legality gates;
* :mod:`~repro.analysis.locality` — hop-locality proofs under a
  symbolic data layout;
* :mod:`~repro.analysis.protocol` — wait/signal deadlock and cycle
  detection across injection closures;
* :mod:`~repro.analysis.mhp` — the may-happen-in-parallel
  thread-segment graph over injection closures;
* :mod:`~repro.analysis.races` — static data-race detection (the
  runtime half lives in :mod:`repro.fabric.hb`);
* :mod:`~repro.analysis.diagnostics` — the structured findings;
* :mod:`~repro.analysis.lint` — the driver behind ``repro lint``;
* :mod:`~repro.analysis.corpus` — known-bad negative controls.

See ``docs/analysis.md`` for the full story.
"""

from . import diagnostics, visitor  # noqa: F401  (import order matters)
from . import summary  # noqa: F401
from . import deps  # noqa: F401
from . import locality, protocol  # noqa: F401
from . import mhp, races  # noqa: F401
from . import corpus, lint  # noqa: F401
from .diagnostics import Diagnostic, DiagnosticReport
from .lint import lint_program, lint_registry, seed_paper_programs
from .locality import LayoutSpec, check_locality, fixed_home, key_home
from .mhp import MHPAnalysis, build_mhp
from .races import analyze_races, race_diagnostics

__all__ = [
    "visitor", "summary", "deps", "locality", "protocol",
    "diagnostics", "lint", "corpus", "mhp", "races",
    "Diagnostic", "DiagnosticReport",
    "lint_program", "lint_registry", "seed_paper_programs",
    "LayoutSpec", "check_locality", "fixed_home", "key_home",
    "MHPAnalysis", "build_mhp", "analyze_races", "race_diagnostics",
]
