"""Machine and network cost model.

The paper's testbed: SUN Blade 100 workstations (502 MHz UltraSPARC-IIe,
256 MB RAM) on 100 Mb/s switched Ethernet, assumed fully connected via a
collision-free switch (Section 3.1). This module describes such a
machine as data; the discrete-event fabric charges every computation and
communication through these cost functions, so all timing results are
deterministic functions of the spec.

Calibration policy (see DESIGN.md): the floating-point rate is derived
from the paper's own sequential measurements (Table 1), and the network
parameters from the nominal link speed minus protocol overhead. The
element size used for *cost* purposes is 4 bytes — the paper's statement
that N = 9216 needs "about 1 GB" (3 * 9216^2 * 4 B = 1.02 GB) pins its
matrices to single precision — independent of the dtype used when the
numerics actually execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigurationError

__all__ = ["NetworkSpec", "MemorySpec", "MachineSpec"]


@dataclass(frozen=True)
class NetworkSpec:
    """Point-to-point network model for a fully connected switch.

    ``transfer_time`` models the bandwidth-proportional part, which
    occupies the sender's NIC and then the receiver's NIC (capturing
    endpoint contention — the effect behind the paper's ``doall``
    discussion in Section 3); ``latency_s`` is the per-message fixed
    overhead (protocol stack plus, for NavP, the MESSENGERS hop cost).
    """

    bandwidth_Bps: float = 11.0e6  # effective payload bytes/s of 100 Mb/s
    latency_s: float = 1.0e-3
    # Messages at or below this size ride in inter-packet gaps: they are
    # charged latency but do not occupy NIC bandwidth. A whole-message
    # FIFO NIC would otherwise make a 512 B control hop (a spawner, an
    # injector) wait behind multi-hundred-kB block transfers, which real
    # packet-multiplexed Ethernet does not do.
    small_message_bytes: int = 2048

    def __post_init__(self) -> None:
        if self.bandwidth_Bps <= 0 or self.latency_s < 0:
            raise ConfigurationError("invalid network parameters")
        if self.small_message_bytes < 0:
            raise ConfigurationError("small_message_bytes must be >= 0")

    def is_small(self, nbytes: int) -> bool:
        """True when the message bypasses NIC bandwidth accounting."""
        return nbytes <= self.small_message_bytes

    def wire_time(self, nbytes: int) -> float:
        """Bandwidth-proportional occupancy of one endpoint NIC."""
        if nbytes < 0:
            raise ConfigurationError(f"negative message size {nbytes}")
        return nbytes / self.bandwidth_Bps

    def message_time(self, nbytes: int) -> float:
        """End-to-end time of one uncontended message."""
        return self.latency_s + self.wire_time(nbytes)


@dataclass(frozen=True)
class MemorySpec:
    """Per-PE memory for the paging model (Table 2).

    ``available_bytes`` is what a computation can use before the OS
    starts paging: physical memory minus a resident OS/daemon share.
    """

    physical_bytes: int = 256 * 1024 * 1024
    os_reserved_bytes: int = 26 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.os_reserved_bytes >= self.physical_bytes:
            raise ConfigurationError("OS reservation exceeds physical memory")

    @property
    def available_bytes(self) -> int:
        return self.physical_bytes - self.os_reserved_bytes


@dataclass(frozen=True)
class MachineSpec:
    """One PE plus its NIC, memory, and runtime overheads."""

    name: str = "generic"
    flop_rate: float = 1.1077e8  # double flops/s; calibrated, see presets
    elem_size: int = 4           # bytes per matrix element for cost purposes
    hop_state_bytes: int = 512   # messenger control state shipped per hop
    inject_overhead_s: float = 2.0e-4
    event_overhead_s: float = 2.0e-5
    network: NetworkSpec = field(default_factory=NetworkSpec)
    memory: MemorySpec = field(default_factory=MemorySpec)

    def __post_init__(self) -> None:
        if self.flop_rate <= 0:
            raise ConfigurationError("flop_rate must be positive")
        if self.elem_size <= 0:
            raise ConfigurationError("elem_size must be positive")

    # -- computation costs ---------------------------------------------
    def flops_time(self, flops: float, cache_factor: float = 1.0) -> float:
        """Seconds to execute ``flops`` floating-point operations."""
        if flops < 0:
            raise ConfigurationError(f"negative flop count {flops}")
        return flops * cache_factor / self.flop_rate

    def gemm_flops(self, m: int, k: int, n: int) -> int:
        """Flop count of an ``m x k`` by ``k x n`` multiply-accumulate."""
        return 2 * m * k * n

    def gemm_time(self, m: int, k: int, n: int,
                  cache_factor: float = 1.0) -> float:
        return self.flops_time(self.gemm_flops(m, k, n), cache_factor)

    # -- data sizes ------------------------------------------------------
    def matrix_bytes(self, rows: int, cols: int | None = None) -> int:
        """Model size of a ``rows x cols`` matrix (cols defaults to rows)."""
        if cols is None:
            cols = rows
        return rows * cols * self.elem_size

    def with_(self, **changes) -> "MachineSpec":
        """A copy of this spec with some fields replaced."""
        return replace(self, **changes)
