"""Calibrated machine presets.

``SUN_BLADE_100`` models the paper's testbed. Calibration sources:

* **flop_rate** — from Table 1's smallest sequential run, which is free
  of paging: ``2 * 1536^3 flops / 65.44 s = 1.1077e8 flop/s``. Cross
  checks against the other unpaged rows: N = 2304 predicts 220.9 s
  (paper: 219.71), N = 3072 predicts 523.5 s (paper: 520.30) — within
  0.7%.
* **network** — 100 Mb/s Ethernet is 12.5 MB/s raw; we charge 11 MB/s
  effective payload bandwidth (Ethernet + IP + TCP framing) and 1 ms
  per-message latency for the 2005-era protocol stacks (LAM/TCP and the
  MESSENGERS daemon).
* **memory** — 256 MB physical per workstation (the paper); 26 MB held
  by OS + daemons, leaving 230 MB, the value that makes the paper's
  N = 4608 working set (254.8 MB) sit just past the paging knee, as its
  measured-vs-fitted gap shows.
"""

from __future__ import annotations

from .spec import MachineSpec, MemorySpec, NetworkSpec

__all__ = ["SUN_BLADE_100", "MODERN_CLUSTER", "FAST_TEST_MACHINE",
           "PRESETS", "get_preset"]


SUN_BLADE_100 = MachineSpec(
    name="SUN Blade 100 (502 MHz UltraSPARC-IIe, 256 MB, 100 Mb/s)",
    flop_rate=2 * 1536**3 / 65.44,
    elem_size=4,
    hop_state_bytes=512,
    inject_overhead_s=2.0e-4,
    event_overhead_s=2.0e-5,
    network=NetworkSpec(bandwidth_Bps=11.0e6, latency_s=1.0e-3),
    memory=MemorySpec(physical_bytes=256 * 1024 * 1024,
                      os_reserved_bytes=26 * 1024 * 1024),
)

# A contemporary counterfactual: ~50 GFLOP/s cores with 10 GbE. Used by
# the ablations to ask how the paper's conclusions transport to modern
# hardware — the compute/communication ratio is roughly similar to the
# 2005 testbed (both grew ~400x), so the NavP orderings carry over,
# while absolute times shrink by orders of magnitude.
MODERN_CLUSTER = MachineSpec(
    name="modern cluster (one core @ 50 GFLOP/s, 10 GbE)",
    flop_rate=5.0e10,
    elem_size=8,
    hop_state_bytes=512,
    inject_overhead_s=5.0e-6,
    event_overhead_s=5.0e-7,
    network=NetworkSpec(bandwidth_Bps=1.1e9, latency_s=2.0e-5),
    memory=MemorySpec(physical_bytes=64 * 2**30,
                      os_reserved_bytes=4 * 2**30),
)

# A deliberately slow "machine" with fast network, handy in unit tests:
# compute dominates so schedules are easy to reason about, and small
# matrices still produce non-trivial virtual times.
FAST_TEST_MACHINE = MachineSpec(
    name="unit-test machine",
    flop_rate=1.0e6,
    elem_size=8,
    hop_state_bytes=64,
    inject_overhead_s=1.0e-5,
    event_overhead_s=1.0e-6,
    network=NetworkSpec(bandwidth_Bps=1.0e8, latency_s=1.0e-5),
    memory=MemorySpec(),
)


# CLI-facing names (``repro plan --machine sun-blade-100``).
PRESETS = {
    "sun-blade-100": SUN_BLADE_100,
    "modern-cluster": MODERN_CLUSTER,
    "fast-test": FAST_TEST_MACHINE,
}


def get_preset(name: str) -> MachineSpec:
    """Look up a preset by CLI name; ValueError lists the choices."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown machine preset {name!r}; choose from "
            f"{', '.join(sorted(PRESETS))}") from None
