"""Block-granularity LRU cache model.

Section 5 (item 2) of the paper argues that NavP and the sequential
program share a cache advantage over the block-oriented MPI program:

* sequential: the ``C`` algorithmic block (accumulated in ``t``) stays
  cache-resident while ``A`` and ``B`` blocks stream past;
* NavP: the carried ``mA`` block stays resident while ``B``/``C``
  blocks stream past;
* MPI (Gentleman): each round pairs each local ``C`` block with a
  *freshly received* ``A``/``B`` block, so "triplets of A B C blocks
  are frequently fresh in the cache".

The paper's technical report quantifies the resulting advantage at up
to ~4%. We reproduce the *mechanism* with an explicit LRU simulation
over block-access traces of the three inner-loop structures, and
convert miss counts into a multiplicative compute factor with a single
calibrated constant ``kappa`` chosen so the simulated NavP-vs-MPI gap
matches the paper's 4% figure. Because the machine's ``flop_rate`` is
itself calibrated from *sequential* measurements, factors are
normalized so the sequential pattern is exactly 1.0.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Iterator
from functools import lru_cache

__all__ = [
    "LRUBlockCache",
    "trace_sequential",
    "trace_navp",
    "trace_mpi_gentleman",
    "misses_per_block_op",
    "cache_factors",
    "DEFAULT_L2_BYTES",
    "DEFAULT_KAPPA",
]

# UltraSPARC-IIe external cache.
DEFAULT_L2_BYTES = 256 * 1024
# Seconds-per-miss expressed as a fraction of one block-op; calibrated so
# that factor(MPI) - factor(NavP) ~= 0.04 (one extra miss per block op).
DEFAULT_KAPPA = 0.04


class LRUBlockCache:
    """An LRU cache over hashable block keys, counting hits and misses."""

    def __init__(self, capacity_blocks: int):
        if capacity_blocks < 1:
            raise ValueError("cache capacity must be at least one block")
        self.capacity = capacity_blocks
        self._slots: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, key) -> bool:
        """Touch ``key``; returns True on a hit."""
        if key in self._slots:
            self._slots.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._slots[key] = None
        if len(self._slots) > self.capacity:
            self._slots.popitem(last=False)
        return False

    def run(self, trace: Iterable) -> "LRUBlockCache":
        for key in trace:
            self.access(key)
        return self

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


def trace_sequential(a: int) -> Iterator[tuple]:
    """Block accesses of the sequential loop nest (Figure 2), blocked.

    ``a`` is the number of algorithmic blocks per axis of the tile
    being computed. The scalar accumulator ``t`` of the paper becomes,
    at block level, the C block held across the k loop; it is touched
    once per (i, j) when stored.
    """
    for i in range(a):
        for j in range(a):
            for k in range(a):
                yield ("A", i, k)
                yield ("B", k, j)
            yield ("C", i, j)


def trace_navp(a: int, rounds: int | None = None) -> Iterator[tuple]:
    """Block accesses of a NavP carrier visit.

    For each visit (one carried ``mA`` slice, i.e. one ``k``), the
    carrier sweeps the local C tile: ``mA`` is touched every op but
    stays resident; B and C blocks stream.
    """
    rounds = a if rounds is None else rounds
    for k in range(rounds):
        for i in range(a):
            for j in range(a):
                yield ("mA", k, i)
                yield ("B", k, j)
                yield ("C", i, j)
            yield ("C", i, "flush", k)  # eviction pressure between sweeps


def trace_mpi_gentleman(a: int, rounds: int | None = None) -> Iterator[tuple]:
    """Block accesses of the straightforward blocked Gentleman rounds.

    Every round, each local (i, j) pairs with an A and a B block that
    were just received (or pointer-swapped in) — fresh keys per round,
    matching the paper's "triplets frequently fresh" characterization.
    """
    rounds = a if rounds is None else rounds
    for r in range(rounds):
        for i in range(a):
            for j in range(a):
                yield ("A", i, j, r)
                yield ("B", i, j, r)
                yield ("C", i, j)


def misses_per_block_op(trace: Iterable, capacity_blocks: int,
                        n_ops: int) -> float:
    """LRU misses divided by the number of block multiply-accumulates."""
    if n_ops <= 0:
        raise ValueError("n_ops must be positive")
    cache = LRUBlockCache(capacity_blocks).run(trace)
    return cache.misses / n_ops


def cache_factors(
    ab: int = 128,
    elem_size: int = 4,
    l2_bytes: int = DEFAULT_L2_BYTES,
    tile_blocks: int = 8,
    kappa: float = DEFAULT_KAPPA,
) -> dict:
    """Per-paradigm compute factors derived from the LRU simulation.

    Returns a dict with keys ``"sequential"``, ``"navp"``, ``"mpi"``;
    each value multiplies compute time in the DES. The sequential
    pattern is normalized to exactly 1.0 (the flop rate is calibrated
    from sequential measurements).

    The LRU simulation is deterministic in its arguments, so the heavy
    part is memoized; every fabric construction calls this, and a table
    sweep builds dozens of fabrics with identical parameters. Callers
    get a fresh dict each time (they may mutate it).
    """
    seq, navp, mpi, misses, capacity = _cache_factors_cached(
        ab, elem_size, l2_bytes, tile_blocks, kappa)
    return {
        "sequential": seq,
        "navp": navp,
        "mpi": mpi,
        "misses": dict(misses),
        "capacity_blocks": capacity,
    }


@lru_cache(maxsize=128)
def _cache_factors_cached(ab: int, elem_size: int, l2_bytes: int,
                          tile_blocks: int, kappa: float) -> tuple:
    capacity = max(1, l2_bytes // (ab * ab * elem_size))
    a = tile_blocks
    n_ops = a * a * a
    m_seq = misses_per_block_op(trace_sequential(a), capacity, n_ops)
    m_navp = misses_per_block_op(trace_navp(a), capacity, n_ops)
    m_mpi = misses_per_block_op(trace_mpi_gentleman(a), capacity, n_ops)
    return (
        1.0,
        1.0 + kappa * max(0.0, m_navp - m_seq),
        1.0 + kappa * max(0.0, m_mpi - m_seq),
        (("sequential", m_seq), ("navp", m_navp), ("mpi", m_mpi)),
        capacity,
    )
