"""Paging (thrashing) model for working sets beyond physical memory.

Table 2 of the paper contrasts the sequential program at N = 9216 —
whose ~1 GB working set thrashes a 256 MB workstation, taking 36 534 s
against a curve-fitted compute time of 13 921 s — with 1-D DSC over
8 PEs, where each PE's share fits in memory and runs at 0.93 of the
fitted sequential speed.

The slowdown of a blocked matmul under paging is not analytically
simple (panel streaming keeps the penalty small until the working set
is several times physical memory), so we model it the way the paper
calibrates its baselines: from the paper's own measured-vs-fitted
sequential pairs we extract (working-set ratio, slowdown factor)
anchors and interpolate monotonically between them:

====  ===============  ============  ========
 N     working set       ws/avail     factor
====  ===============  ============  ========
4608   243.0 MiB         1.057        1.108
5376   330.8 MiB         1.438        1.109
6144   432.0 MiB         1.878        1.185
9216   972.0 MiB         4.226        2.624
====  ===============  ============  ========

(avail = 256 MiB - 26 MiB OS share; working set = 3 N^2 * 4 B; factor
= measured / fitted from Tables 1-2.) Below ratio 1 the factor is
exactly 1; above the last anchor it extrapolates linearly along the
last segment.
"""

from __future__ import annotations

import numpy as np

from .spec import MemorySpec

__all__ = ["PagingModel", "matmul_working_set"]

# (working_set / available_memory, measured/fitted slowdown) anchors,
# derived from the paper's Tables 1 and 2 as documented above.
_PAPER_ANCHORS: tuple[tuple[float, float], ...] = (
    (1.0, 1.0),
    (1.057, 1.108),
    (1.438, 1.109),
    (1.878, 1.185),
    (4.226, 2.624),
)


def matmul_working_set(n: int, elem_size: int, matrices: int = 3) -> int:
    """Bytes touched by an ``n x n`` matmul holding ``matrices`` operands."""
    return matrices * n * n * elem_size


class PagingModel:
    """Maps a working-set size to a multiplicative slowdown factor."""

    def __init__(self, memory: MemorySpec | None = None,
                 anchors=_PAPER_ANCHORS):
        self.memory = memory if memory is not None else MemorySpec()
        anchors = tuple(sorted(anchors))
        if len(anchors) < 2:
            raise ValueError("need at least two anchors")
        if any(f < 1.0 for _, f in anchors):
            raise ValueError("slowdown factors must be >= 1")
        self._ratios = np.array([r for r, _ in anchors], dtype=float)
        self._factors = np.array([f for _, f in anchors], dtype=float)

    def thrash_factor(self, working_set_bytes: int) -> float:
        """Slowdown multiplier for the given working set on this memory."""
        if working_set_bytes < 0:
            raise ValueError("working set must be non-negative")
        ratio = working_set_bytes / self.memory.available_bytes
        if ratio <= self._ratios[0]:
            return 1.0
        if ratio >= self._ratios[-1]:
            # extrapolate along the final segment
            r0, r1 = self._ratios[-2:]
            f0, f1 = self._factors[-2:]
            return float(f1 + (ratio - r1) * (f1 - f0) / (r1 - r0))
        return float(np.interp(ratio, self._ratios, self._factors))

    def fits(self, working_set_bytes: int) -> bool:
        """True when the working set fits in available memory."""
        return working_set_bytes <= self.memory.available_bytes
