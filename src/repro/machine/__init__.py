"""Machine, network, memory, and cache models (calibrated to the paper)."""

from .cache import (
    DEFAULT_KAPPA,
    DEFAULT_L2_BYTES,
    LRUBlockCache,
    cache_factors,
    misses_per_block_op,
    trace_mpi_gentleman,
    trace_navp,
    trace_sequential,
)
from .memory import PagingModel, matmul_working_set
from .presets import FAST_TEST_MACHINE, MODERN_CLUSTER, SUN_BLADE_100
from .spec import MachineSpec, MemorySpec, NetworkSpec

__all__ = [
    "MachineSpec",
    "MemorySpec",
    "NetworkSpec",
    "PagingModel",
    "matmul_working_set",
    "LRUBlockCache",
    "cache_factors",
    "misses_per_block_op",
    "trace_sequential",
    "trace_navp",
    "trace_mpi_gentleman",
    "DEFAULT_KAPPA",
    "DEFAULT_L2_BYTES",
    "SUN_BLADE_100",
    "MODERN_CLUSTER",
    "FAST_TEST_MACHINE",
]
