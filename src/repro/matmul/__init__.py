"""The paper's case study: matrix multiplication, all variants."""

from .cannon import run_cannon
from .doall import run_doall, run_doall_replicated
from .gentleman import run_gentleman, run_gentleman_tuned
from .ir2d import (
    IR2DSuite,
    build_fig11,
    build_fig13,
    build_fig15,
    run_ir2d_suite,
)
from .irgentleman import build_gentleman_ir
from .kinds import MatmulCase, RunResult
from .layouts import (
    gather_c_1d,
    gather_c_2d,
    layout_1d_a_at_origin,
    layout_1d_a_row_strips,
    layout_2d_antidiagonal,
    layout_2d_natural,
)
from .navp1d import run_dsc_1d, run_phase_1d, run_pipelined_1d
from .navp2d import run_dsc_2d, run_phase_2d, run_pipelined_2d
from .runner import VARIANTS, run_variant, variant_names
from .sequential import run_sequential, sequential_time_model
from .staggering import (
    phases_for_permutation,
    phases_for_scheme,
    staggering_comparison,
)
from .summa import run_summa

__all__ = [
    "MatmulCase",
    "RunResult",
    "run_sequential",
    "sequential_time_model",
    "run_dsc_1d",
    "run_pipelined_1d",
    "run_phase_1d",
    "run_dsc_2d",
    "run_pipelined_2d",
    "run_phase_2d",
    "run_gentleman",
    "run_gentleman_tuned",
    "IR2DSuite",
    "build_fig11",
    "build_fig13",
    "build_fig15",
    "build_gentleman_ir",
    "run_ir2d_suite",
    "run_cannon",
    "run_summa",
    "run_doall",
    "run_doall_replicated",
    "run_variant",
    "variant_names",
    "VARIANTS",
    "phases_for_permutation",
    "phases_for_scheme",
    "staggering_comparison",
    "layout_1d_a_at_origin",
    "layout_1d_a_row_strips",
    "layout_2d_antidiagonal",
    "layout_2d_natural",
    "gather_c_1d",
    "gather_c_2d",
]
