"""SUMMA — the stand-in for the paper's ScaLAPACK baseline.

The paper compares against ScaLAPACK 1.7's PDGEMM, which uses a
"logical LCM hybrid algorithmic blocking technique" the user cannot
control. The algorithm at PDGEMM's core is SUMMA: for each algorithmic
k-panel, the owning column broadcasts its ``db x ab`` slice of A along
its process row and the owning row broadcasts its ``ab x db`` slice of
B along its process column; every rank then accumulates the outer
product into its stationary C block.

As a tuned library kernel it keeps the C panel cache-resident, so its
compute is charged at the "sequential" cache rate (factor 1.0). On a
1-D chain (Table 1's ScaLAPACK column) the same code runs with a
``1 x P`` grid: A panels need no broadcast (each rank owns full block
columns... of its strip) while B panels broadcast along the chain.
"""

from __future__ import annotations

from ..fabric.topology import Grid2D
from ..machine.presets import SUN_BLADE_100
from ..machine.spec import MachineSpec
from ..mpi.comm import Comm, run_spmd
from ..util.blocks import check_divides
from .kinds import MatmulCase, RunResult

__all__ = ["run_summa", "summa_rank"]


def summa_rank(case: MatmulCase, rows: int, cols: int):
    """Per-rank SUMMA generator for a ``rows x cols`` grid."""
    ab = case.ab
    nb = case.nblocks

    def program(comm: Comm):
        i, j = comm.coord
        a_local = comm.vars["A"]
        b_local = comm.vars["B"]
        c_local = comm.vars["C"]
        a_cols = a_local.shape[1] // ab  # local k-panels in A
        b_rows = b_local.shape[0] // ab
        row_group = [(i, jj) for jj in range(cols)]
        col_group = [(ii, j) for ii in range(rows)]
        flops = 2.0 * a_local.shape[0] * ab * b_local.shape[1]

        for kp in range(nb):
            owner_col = kp // a_cols
            lk_a = kp % a_cols
            panel_a = None
            if j == owner_col:
                panel_a = a_local[:, lk_a * ab : (lk_a + 1) * ab]
            panel_a = yield from comm.bcast(
                row_group, (i, owner_col), ("sA", kp, i), panel_a)

            owner_row = kp // b_rows
            lk_b = kp % b_rows
            panel_b = None
            if i == owner_row:
                panel_b = b_local[lk_b * ab : (lk_b + 1) * ab, :]
            panel_b = yield from comm.bcast(
                col_group, (owner_row, j), ("sB", kp, j), panel_b)

            def update(pa=panel_a, pb=panel_b, c=c_local):
                c += pa @ pb

            yield comm.compute(update, flops=flops, kind="sequential",
                               note=f"panel {kp}")

    return program


def run_summa(case: MatmulCase, rows: int, cols: int | None = None,
              machine: MachineSpec | None = None,
              trace: bool = True, fabric: str = "sim") -> RunResult:
    """Run SUMMA on a ``rows x cols`` grid (``rows x rows`` if square)."""
    machine = machine if machine is not None else SUN_BLADE_100
    cols = rows if cols is None else cols
    check_divides(case.n, rows, "grid rows")
    check_divides(case.n, cols, "grid cols")
    check_divides(case.n // rows, case.ab, "algorithmic block order")
    check_divides(case.n // cols, case.ab, "algorithmic block order")

    a, b = case.operands()
    dbr, dbc = case.n // rows, case.n // cols

    def setup(fabric):
        for i in range(rows):
            for j in range(cols):
                fabric.load(
                    (i, j),
                    A=a[i * dbr : (i + 1) * dbr, j * dbc : (j + 1) * dbc],
                    B=b[i * dbr : (i + 1) * dbr, j * dbc : (j + 1) * dbc],
                    C=case.zeros((dbr, dbc)),
                )

    result = run_spmd(Grid2D(rows, cols), summa_rank(case, rows, cols),
                      machine=machine, setup=setup, trace=trace,
                      fabric=fabric)

    c = None
    if not case.shadow:
        import numpy as np

        c = np.empty((case.n, case.n), dtype=case.dtype)
        for i in range(rows):
            for j in range(cols):
                c[i * dbr : (i + 1) * dbr, j * dbc : (j + 1) * dbc] = (
                    result.get((i, j), "C"))
    return RunResult(
        variant="scalapack-summa", case=case, time=result.time,
        c=c, trace=result.trace,
        details={"grid": (rows, cols), "panels": case.nblocks},
    )
