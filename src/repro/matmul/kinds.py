"""Problem descriptions and run outcomes for the matmul case study."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import ConfigurationError
from ..fabric.trace import TraceLog
from ..util.blocks import check_divides
from ..util.shadow import ShadowArray
from ..util.validation import random_matrix

__all__ = ["MatmulCase", "RunResult"]


@dataclass(frozen=True)
class MatmulCase:
    """A square matmul instance ``C = A @ B`` of order ``n``.

    ``ab`` is the algorithmic block order (the paper's "Block order"
    column). With ``shadow=True`` the operands are
    :class:`~repro.util.shadow.ShadowArray` stand-ins: the same
    algorithm code runs, communication volumes and flop charges are
    identical, but no elements exist — this is how paper-scale orders
    (up to 9216) are simulated quickly.
    """

    n: int
    ab: int
    shadow: bool = False
    dtype: Any = np.float64
    seed: int = 1234

    def __post_init__(self) -> None:
        check_divides(self.n, self.ab, "algorithmic block order")

    def operands(self) -> tuple:
        """The (A, B) input pair — real arrays or shadows."""
        if self.shadow:
            return (ShadowArray((self.n, self.n), np.float32),
                    ShadowArray((self.n, self.n), np.float32))
        a = random_matrix(self.n, self.seed, self.dtype)
        b = random_matrix(self.n, self.seed + 1, self.dtype)
        return a, b

    def zeros(self, shape) -> Any:
        """A zero matrix (or shadow) of the given shape."""
        if self.shadow:
            return ShadowArray(shape, np.float32)
        return np.zeros(shape, dtype=self.dtype)

    def reference(self, a=None, b=None):
        """NumPy reference product (only meaningful for real operands)."""
        if self.shadow:
            raise ConfigurationError("no reference product in shadow mode")
        if a is None or b is None:
            a, b = self.operands()
        return a @ b

    @property
    def nblocks(self) -> int:
        return self.n // self.ab


@dataclass
class RunResult:
    """Outcome of running one matmul variant."""

    variant: str
    case: MatmulCase
    time: float
    c: Any = None  # assembled product (None in shadow mode)
    trace: TraceLog | None = None
    details: dict = field(default_factory=dict)

    @property
    def gflops(self) -> float:
        """Modeled rate achieved, in Gflop/s."""
        if self.time <= 0:
            return float("inf")
        return 2.0 * self.case.n**3 / self.time / 1e9
