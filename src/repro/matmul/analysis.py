"""Data-movement accounting across the matmul variants.

The paper's Section 3 leans on Gentleman's classical result: "data
movement — and not arithmetic operations — is often the limiting
factor in the performance of algorithms" [9, 12]. Since every simulated
transfer is recorded in the trace with its modeled byte count, the
movement of each algorithm is directly measurable; this module turns a
run into a ledger (total bytes, messages, per-PE peaks, bytes per flop)
and provides closed-form expectations for cross-checking.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.presets import SUN_BLADE_100
from ..machine.spec import MachineSpec
from .kinds import MatmulCase
from .runner import run_variant

__all__ = ["MovementReport", "measure_movement", "movement_table",
           "expected_bytes"]


@dataclass(frozen=True)
class MovementReport:
    variant: str
    n: int
    total_bytes: int
    messages: int
    max_in_per_pe: int
    max_out_per_pe: int
    time: float

    @property
    def bytes_per_flop(self) -> float:
        return self.total_bytes / (2.0 * self.n**3)

    @property
    def mean_message_bytes(self) -> float:
        return self.total_bytes / self.messages if self.messages else 0.0


def measure_movement(
    variant: str,
    case: MatmulCase,
    geometry: int,
    machine: MachineSpec | None = None,
) -> MovementReport:
    """Run a variant with tracing and account its network traffic."""
    machine = machine if machine is not None else SUN_BLADE_100
    result = run_variant(variant, case, geometry=geometry,
                         machine=machine, trace=True)
    trace = result.trace
    per_in = trace.bytes_by_place("in")
    per_out = trace.bytes_by_place("out")
    return MovementReport(
        variant=variant,
        n=case.n,
        total_bytes=trace.bytes_moved(),
        messages=trace.message_count(),
        max_in_per_pe=max(per_in.values(), default=0),
        max_out_per_pe=max(per_out.values(), default=0),
        time=result.time,
    )


def movement_table(
    variants,
    case: MatmulCase,
    geometry: int,
    machine: MachineSpec | None = None,
) -> list:
    return [measure_movement(v, case, geometry, machine=machine)
            for v in variants]


def expected_bytes(variant: str, n: int, ab: int, geometry: int,
                   machine: MachineSpec | None = None) -> float:
    """First-order closed forms for the dominant traffic of a variant.

    Small control messengers (injectors, spawners) are ignored; the
    cross-check tolerance in the tests absorbs them.
    """
    machine = machine if machine is not None else SUN_BLADE_100
    elem = machine.elem_size
    g = geometry

    if variant == "navp-1d-dsc":
        # every strip makes P hops carrying ab*n elements (the return
        # to node(0) wraps around the chain and is remote)
        strips = n // ab
        return strips * g * (ab * n) * elem
    if variant == "navp-1d-pipeline":
        # strips hop P-1 times (injection at node 0 is local)
        strips = n // ab
        return strips * (g - 1) * (ab * n) * elem
    if variant == "navp-1d-phase":
        # one staggering hop plus the tour's remaining g-1 hops
        strips = n // ab
        return strips * g * (ab * n) * elem
    if variant == "navp-2d-phase":
        # every A and B k-slice of every row/column block makes g-1
        # remote hops (the first is a real staggering hop too)
        slices = n // ab
        per_slice = (n // g) * ab * elem
        return 2 * g * slices * g * per_slice
    if variant == "mpi-gentleman":
        # staggering moves at most both matrices once; each of n/ab
        # rounds ships one edge column of A and row of B per rank
        a = (n // g) // ab
        rounds = n // ab
        edges = rounds * g * g * 2 * (a * ab * ab) * elem
        stagger = 2 * n * n * elem  # upper bound: every block moves once
        return edges + stagger
    raise KeyError(variant)
