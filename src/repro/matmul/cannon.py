"""Cannon's algorithm — the forward-staggering sibling of Gentleman's.

The paper cites Cannon's algorithm (Section 5 item 3) as the other
classical SPMD matmul that uses *forward staggering*: the initial skew
only shifts entries without reversing their order, and on a torus is
performed stepwise — row ``i`` of A shifts west ``i`` times, column
``j`` of B shifts north ``j`` times (Figure 16 lines 1-10).

We implement it at distribution-block granularity with exactly that
stepwise staggering, making it the natural subject for the
communication-phase comparison in :mod:`repro.matmul.staggering` and a
second MPI baseline for the benchmarks.
"""

from __future__ import annotations

from ..fabric.topology import Grid2D
from ..machine.presets import SUN_BLADE_100
from ..machine.spec import MachineSpec
from ..mpi.comm import Comm, run_spmd
from ..util.blocks import check_divides
from .kinds import MatmulCase, RunResult
from .layouts import gather_c_2d, layout_2d_natural

__all__ = ["run_cannon", "cannon_rank"]


def cannon_rank(case: MatmulCase, g: int):
    """Per-rank generator for Cannon's algorithm on a ``g x g`` torus."""
    db = case.n // g
    flops = 2.0 * db**3

    def program(comm: Comm):
        i, j = comm.coord
        a_cur = comm.vars["A"]
        b_cur = comm.vars["B"]
        c_local = comm.vars["C"]
        west = (i, (j - 1) % g)
        east = (i, (j + 1) % g)
        north = ((i - 1) % g, j)
        south = ((i + 1) % g, j)

        # stepwise forward staggering (Figure 16 lines 1-10)
        for k in range(g - 1):
            if i > k:
                req = yield comm.irecv(src=east, tag=("stagA", k))
                yield comm.send(west, ("stagA", k), a_cur)
                a_cur = (yield comm.wait(req)).payload
            if j > k:
                req = yield comm.irecv(src=south, tag=("stagB", k))
                yield comm.send(north, ("stagB", k), b_cur)
                b_cur = (yield comm.wait(req)).payload

        def update(pa, pb):
            def fn(pa=pa, pb=pb, c=c_local):
                c += pa @ pb
            return fn

        yield comm.compute(update(a_cur, b_cur), flops=flops, kind="mpi",
                           note="round 0")
        # shift-and-multiply rounds (Figure 16 lines 14-20)
        for k in range(g - 1):
            req_a = yield comm.irecv(src=east, tag=("A", k))
            req_b = yield comm.irecv(src=south, tag=("B", k))
            yield comm.send(west, ("A", k), a_cur)
            yield comm.send(north, ("B", k), b_cur)
            a_cur = (yield comm.wait(req_a)).payload
            b_cur = (yield comm.wait(req_b)).payload
            yield comm.compute(update(a_cur, b_cur), flops=flops,
                               kind="mpi", note=f"round {k + 1}")

    return program


def run_cannon(case: MatmulCase, g: int,
               machine: MachineSpec | None = None,
               trace: bool = True, fabric: str = "sim") -> RunResult:
    """Run Cannon's algorithm on a ``g x g`` torus."""
    machine = machine if machine is not None else SUN_BLADE_100
    check_divides(case.n, g, "grid order")
    result = run_spmd(
        Grid2D(g), cannon_rank(case, g), machine=machine,
        setup=lambda fabric: layout_2d_natural(fabric, case, g),
        trace=trace, fabric=fabric,
    )
    return RunResult(
        variant="mpi-cannon", case=case, time=result.time,
        c=gather_c_2d(result, case, g), trace=result.trace,
        details={"grid": g, "rounds": g},
    )
