"""Forward vs. reverse initial staggering — Section 5, item 3.

The paper contrasts two ways of skewing A and B before the systolic
multiply:

* **forward staggering** (Gentleman, Cannon): a row's chain of entries
  only *shifts*: row ``i`` of A moves ``i`` positions west, entry
  ``(i, j)`` landing at column ``(j - i) mod N``;
* **reverse staggering** (NavP): the chain is both shifted and
  *reverse-ordered*: entry ``(i, j)`` starts its tour at column
  ``(N - 1 - i - j) mod N`` (the first hop of Figures 9/15).

The claim: "reverse staggering never requires more than two
communication phases, while forward staggering often requires three."

Formalization. Staggering one row is routing a permutation of its
entries over the PEs. A **communication phase** lets each PE take part
in at most one transfer (the endpoint is busy streaming — the
half-duplex constraint of the paper's analysis); scheduling a
permutation is then an edge coloring of its transfer graph, which
decomposes by cycles:

* a fixed point is free (a pointer swap);
* a transposition (2-cycle) takes 2 phases (a sends to b, b to a);
* a cycle of even length ``L >= 4`` takes 2 phases (alternate edges);
* a cycle of odd length ``L >= 3`` takes 3 phases (an odd cycle is not
  2-edge-colorable).

Reverse staggering is an *involution* — ``j -> (N-1-i-j) mod N``
applied twice is the identity — so its cycles are only fixed points
and transpositions: **never more than 2 phases**. Forward staggering
by ``i`` is a cyclic shift whose cycles have length
``N / gcd(N, i)``; whenever that is odd and > 1 (e.g. every nonzero
shift when N itself is odd, as on the paper's 3x3 grid) it needs
**3 phases**. This module makes the whole argument executable.
"""

from __future__ import annotations

from math import gcd

from ..errors import ConfigurationError

__all__ = [
    "forward_stagger_permutation",
    "reverse_stagger_permutation",
    "cycles_of",
    "phases_for_permutation",
    "schedule_permutation_phases",
    "phases_for_scheme",
    "staggering_comparison",
]


def forward_stagger_permutation(n: int, row: int) -> list:
    """Destination of each column of a row under forward staggering."""
    return [(j - row) % n for j in range(n)]


def reverse_stagger_permutation(n: int, row: int) -> list:
    """Destination of each column of a row under reverse staggering."""
    return [(n - 1 - row - j) % n for j in range(n)]


def _check_permutation(perm) -> list:
    perm = list(perm)
    if sorted(perm) != list(range(len(perm))):
        raise ConfigurationError(f"not a permutation: {perm!r}")
    return perm


def cycles_of(perm) -> list:
    """Cycle decomposition (each cycle a list of positions)."""
    perm = _check_permutation(perm)
    seen = [False] * len(perm)
    cycles = []
    for start in range(len(perm)):
        if seen[start]:
            continue
        cycle = []
        j = start
        while not seen[j]:
            seen[j] = True
            cycle.append(j)
            j = perm[j]
        cycles.append(cycle)
    return cycles


def phases_for_permutation(perm) -> int:
    """Minimum communication phases to route ``perm`` (closed form)."""
    worst = 0
    for cycle in cycles_of(perm):
        length = len(cycle)
        if length == 1:
            continue
        worst = max(worst, 2 if length % 2 == 0 else 3)
    return worst


def schedule_permutation_phases(perm) -> list:
    """An explicit phase schedule achieving :func:`phases_for_permutation`.

    Returns a list of phases, each a list of ``(src, dst)`` transfers
    in which no PE appears twice. Used by tests to verify the closed
    form constructively.
    """
    phases: list[list] = []

    def put(level: int, edge) -> None:
        while len(phases) <= level:
            phases.append([])
        phases[level].append(edge)

    for cycle in cycles_of(perm):
        length = len(cycle)
        if length == 1:
            continue
        # edges of the cycle: cycle[t] -> cycle[(t+1) % L]... note
        # cycle[t+1] == perm[cycle[t]] by construction.
        edges = [(cycle[t], cycle[(t + 1) % length]) for t in range(length)]
        for t, edge in enumerate(edges):
            if t == length - 1 and length % 2 == 1:
                put(2, edge)  # the odd leftover edge
            else:
                put(t % 2, edge)
    # drop empty levels (identity permutation)
    return [p for p in phases if p]


def phases_for_scheme(n: int, scheme: str) -> int:
    """Worst-case phases over all rows of an order-``n`` staggering."""
    if scheme == "forward":
        build = forward_stagger_permutation
    elif scheme == "reverse":
        build = reverse_stagger_permutation
    else:
        raise ConfigurationError(f"unknown staggering scheme {scheme!r}")
    return max(
        (phases_for_permutation(build(n, row)) for row in range(n)),
        default=0,
    )


def forward_cycle_length(n: int, row: int) -> int:
    """Cycle length of the forward shift by ``row`` (``n/gcd(n,row)``)."""
    if row % n == 0:
        return 1
    return n // gcd(n, row % n)


def staggering_comparison(orders) -> list:
    """Rows ``(n, forward phases, reverse phases)`` for given orders."""
    return [
        (n, phases_for_scheme(n, "forward"), phases_for_scheme(n, "reverse"))
        for n in orders
    ]
