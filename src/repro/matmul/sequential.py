"""Sequential matrix multiplication (Figure 2) — the starting point.

The paper's incremental-parallelization journey begins from the plain
triple loop. We model it as a single messenger on a one-PE fabric so
its timing comes from the same calibrated machine model as everything
else; when the working set exceeds physical memory the paging model
multiplies the cost, which is exactly the thrashing phenomenon that
motivates the paper's curve-fitted baselines (Tables 1-2).

:func:`sequential_time_model` is the closed-form version used when
building tables (identical arithmetic, no DES involved).
"""

from __future__ import annotations

from ..fabric.factory import make_fabric
from ..fabric.topology import Grid1D
from ..machine.memory import PagingModel, matmul_working_set
from ..machine.presets import SUN_BLADE_100
from ..machine.spec import MachineSpec
from ..navp.messenger import Messenger
from .kinds import MatmulCase, RunResult

__all__ = ["SequentialMatmul", "run_sequential", "sequential_time_model"]


class SequentialMatmul(Messenger):
    """One messenger computing ``C = A @ B`` where the data lives."""

    def __init__(self, case: MatmulCase):
        self._case = case

    def main(self):
        case = self._case
        a = self.vars["A"]
        b = self.vars["B"]
        paging = PagingModel(self.machine.memory)
        working_set = matmul_working_set(case.n, self.machine.elem_size)
        thrash = paging.thrash_factor(working_set)
        flops = 2.0 * case.n**3 * thrash
        c = yield self.compute(
            fn=lambda: a @ b, flops=flops, kind="sequential",
            note=f"n={case.n} thrash={thrash:.3f}",
        )
        self.vars["C"] = c
        self.vars["thrash_factor"] = thrash


def run_sequential(
    case: MatmulCase,
    machine: MachineSpec | None = None,
    trace: bool = True,
    fabric: str = "sim",
) -> RunResult:
    """Run the sequential program on a single modeled PE."""
    machine = machine if machine is not None else SUN_BLADE_100
    fab = make_fabric(fabric, Grid1D(1), machine=machine, trace=trace)
    a, b = case.operands()
    fab.load((0,), A=a, B=b)
    fab.inject((0,), SequentialMatmul(case))
    result = fab.run()
    return RunResult(
        variant="sequential",
        case=case,
        time=result.time,
        c=None if case.shadow else result.get((0,), "C"),
        trace=result.trace,
        details={"thrash_factor": result.get((0,), "thrash_factor")},
    )


def sequential_time_model(
    n: int, machine: MachineSpec | None = None
) -> tuple[float, float]:
    """Closed-form (time, thrash_factor) for the sequential program.

    ``time`` corresponds to an *actual* run including paging; dividing
    by ``thrash_factor`` recovers the paging-free (curve-fit style)
    baseline the paper stars in its tables.
    """
    machine = machine if machine is not None else SUN_BLADE_100
    paging = PagingModel(machine.memory)
    thrash = paging.thrash_factor(matmul_working_set(n, machine.elem_size))
    return machine.flops_time(2.0 * n**3) * thrash, thrash
