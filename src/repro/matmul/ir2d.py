"""The 2-D NavP matmul stages as navigational IR — Figures 11, 13, 15.

The hand-written generator messengers in :mod:`repro.matmul.navp2d` are
the workhorses for the performance tables; these IR builders express
the same three programs as pure data, which is what lets them migrate
between *real OS processes* on the
:class:`~repro.fabric.process.ProcessFabric` (a live generator frame
cannot be pickled; an IR continuation can).

Granularity is the paper's fine-grained presentation (``N == P``): one
block entry per PE, carriers carrying single ``ab x ab`` blocks, with
the event protocols exactly as printed:

* Figure 11 — ``RowCarrier``/``ColCarrier`` with a one-shot ``EP``;
* Figure 13 — ``ACarrier``/``BCarrier`` per k with the ``EP``/``EC``
  slot handshake, ``EC`` signalled initially on every node;
* Figure 15 — natural layout, spawners walking the columns, the
  rotated ``(N-1-mi-mk+mj) % N`` schedules doing the reverse
  staggering implicitly.

Each builder registers its programs under ``g``-specific names and
returns a :class:`IR2DSuite` bundling the entry program, the initial
layout, and any initial event signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..fabric.factory import make_fabric
from ..fabric.topology import Grid2D
from ..machine.spec import MachineSpec
from ..navp import ir
from ..util.validation import random_matrix

__all__ = ["IR2DSuite", "build_fig11", "build_fig13", "build_fig15",
           "run_ir2d_suite"]

V = ir.Var
C = ir.Const


def _mod(expr, g: int) -> ir.Expr:
    return ir.Bin("%", expr, C(g))


def _sub(a, b) -> ir.Expr:
    return ir.Bin("-", a, b)


def _add(a, b) -> ir.Expr:
    return ir.Bin("+", a, b)


@dataclass(frozen=True)
class IR2DSuite:
    """One 2-D stage: entry program + data layout + initial events."""

    name: str
    g: int
    entry: ir.Program
    layout: dict                     # coord -> {var: value builder info}
    initial_signals: tuple = ()      # (coord, event, args, count)
    programs: tuple = ()


def _split_blocks(matrix, g: int) -> dict:
    ab = matrix.shape[0] // g
    return {
        (i, j): matrix[i * ab : (i + 1) * ab, j * ab : (j + 1) * ab]
        for i in range(g)
        for j in range(g)
    }


def _natural_layout(a, b, g: int) -> dict:
    ab = a.shape[0] // g
    blocks_a = _split_blocks(a, g)
    blocks_b = _split_blocks(b, g)
    return {
        (i, j): {
            "A": blocks_a[(i, j)],
            "B": blocks_b[(i, j)],
            "C": np.zeros((ab, ab), dtype=a.dtype),
        }
        for i in range(g)
        for j in range(g)
    }


def _antidiagonal_layout(a, b, g: int) -> dict:
    """Figures 10/12: row dicts of A and column dicts of B on the
    anti-diagonal; zeroed C everywhere."""
    ab = a.shape[0] // g
    blocks_a = _split_blocks(a, g)
    blocks_b = _split_blocks(b, g)
    layout: dict = {
        (i, j): {"C": np.zeros((ab, ab), dtype=a.dtype)}
        for i in range(g)
        for j in range(g)
    }
    for line in range(g):
        row = g - 1 - line
        layout[(row, line)]["Arow"] = {
            k: blocks_a[(row, k)] for k in range(g)}
        layout[(row, line)]["Bcol"] = {
            k: blocks_b[(k, line)] for k in range(g)}
    return layout


def _accumulate_c(a_expr: ir.Expr, b_expr: ir.Expr) -> tuple:
    """C = C + a @ b as IR statements (C is the local block)."""
    return (
        ir.ComputeStmt("gemm_acc", (ir.NodeGet("C"), a_expr, b_expr),
                       out="cnew"),
        ir.NodeSet("C", (), V("cnew")),
    )


# --------------------------------------------------------------------------
# Figure 11 — DSC in the second dimension
# --------------------------------------------------------------------------

def build_fig11(g: int, a=None, b=None, seed: int = 50,
                ab: int = 8) -> IR2DSuite:
    if a is None:
        a = random_matrix(g * ab, seed)
        b = random_matrix(g * ab, seed + 1)

    row_tour = _mod(_add(_sub(C(g - 1), V("mi")), V("mj")), g)
    col_tour = _mod(_add(_sub(C(g - 1), V("mj")), V("mi")), g)

    row_carrier = ir.register_program(ir.Program(
        f"fig11-rowcarrier-{g}",
        body=(
            ir.Assign("mA", ir.NodeGet("Arow")),      # mA(*) = A(*)
            ir.For("mj", C(g), (
                ir.HopStmt((V("mi"), row_tour)),
                ir.WaitStmt("EP"),
                ir.For("k", C(g), _accumulate_c(
                    ir.Index(V("mA"), (V("k"),)),
                    ir.Index(ir.NodeGet("B"), (V("k"),)),
                )),
            )),
        ),
        params=("mi",),
    ), replace=True)

    col_carrier = ir.register_program(ir.Program(
        f"fig11-colcarrier-{g}",
        body=(
            ir.Assign("mB", ir.NodeGet("Bcol")),      # mB(*) = B(*)
            ir.For("mi", C(g), (
                ir.HopStmt((col_tour, V("mj"))),
                ir.NodeSet("B", (), V("mB")),         # B(*) = mB(*)
                ir.SignalStmt("EP"),
            )),
        ),
        params=("mj",),
    ), replace=True)

    entry = ir.register_program(ir.Program(
        f"fig11-main-{g}",
        body=(
            ir.For("ml", C(g), (
                ir.HopStmt((_sub(C(g - 1), V("ml")), V("ml"))),
                ir.InjectStmt(row_carrier.name,
                              (("mi", _sub(C(g - 1), V("ml"))),)),
                ir.InjectStmt(col_carrier.name, (("mj", V("ml")),)),
            )),
        ),
    ), replace=True)

    return IR2DSuite(
        name="fig11", g=g, entry=entry,
        layout=_antidiagonal_layout(a, b, g),
        programs=(entry, row_carrier, col_carrier),
    )


# --------------------------------------------------------------------------
# Figure 13 — pipelining in both dimensions
# --------------------------------------------------------------------------

def build_fig13(g: int, a=None, b=None, seed: int = 60,
                ab: int = 8) -> IR2DSuite:
    if a is None:
        a = random_matrix(g * ab, seed)
        b = random_matrix(g * ab, seed + 1)

    a_tour = _mod(_add(_sub(C(g - 1), V("mi")), V("mj")), g)
    b_tour = _mod(_add(_sub(C(g - 1), V("mj")), V("mi")), g)

    a_carrier = ir.register_program(ir.Program(
        f"fig13-acarrier-{g}",
        body=(
            ir.Assign("mA", ir.Index(ir.NodeGet("Arow"), (V("mk"),))),
            ir.For("mj", C(g), (
                ir.HopStmt((V("mi"), a_tour)),
                ir.WaitStmt("EP", (V("mk"),)),
                *_accumulate_c(V("mA"), ir.NodeGet("Bslot")),
                ir.SignalStmt("EC"),
            )),
        ),
        params=("mi", "mk"),
    ), replace=True)

    b_carrier = ir.register_program(ir.Program(
        f"fig13-bcarrier-{g}",
        body=(
            ir.Assign("mB", ir.Index(ir.NodeGet("Bcol"), (V("mk"),))),
            ir.For("mi", C(g), (
                ir.HopStmt((b_tour, V("mj"))),
                ir.WaitStmt("EC"),
                ir.NodeSet("Bslot", (), V("mB")),
                ir.SignalStmt("EP", (V("mk"),)),
            )),
        ),
        params=("mk", "mj"),
    ), replace=True)

    spawner = ir.register_program(ir.Program(
        f"fig13-spawner-{g}",
        body=(
            ir.For("mk", C(g), (
                ir.InjectStmt(a_carrier.name, (
                    ("mi", _sub(C(g - 1), V("ml"))), ("mk", V("mk")))),
                ir.InjectStmt(b_carrier.name, (
                    ("mk", V("mk")), ("mj", V("ml")))),
            )),
        ),
        params=("ml",),
    ), replace=True)

    entry = ir.register_program(ir.Program(
        f"fig13-main-{g}",
        body=(
            ir.For("ml", C(g), (
                ir.HopStmt((_sub(C(g - 1), V("ml")), V("ml"))),
                ir.InjectStmt(spawner.name, (("ml", V("ml")),)),
            )),
        ),
    ), replace=True)

    signals = tuple(
        ((i, j), "EC", (), 1) for i in range(g) for j in range(g)
    )
    return IR2DSuite(
        name="fig13", g=g, entry=entry,
        layout=_antidiagonal_layout(a, b, g),
        initial_signals=signals,
        programs=(entry, spawner, a_carrier, b_carrier),
    )


# --------------------------------------------------------------------------
# Figure 15 — full DPC: phase shifting in both dimensions
# --------------------------------------------------------------------------

def build_fig15(g: int, a=None, b=None, seed: int = 70,
                ab: int = 8) -> IR2DSuite:
    if a is None:
        a = random_matrix(g * ab, seed)
        b = random_matrix(g * ab, seed + 1)

    a_tour = _mod(_add(_sub(_sub(C(g - 1), V("mi")), V("mk")), V("mj")), g)
    b_tour = _mod(_add(_sub(_sub(C(g - 1), V("mj")), V("mk")), V("mi")), g)

    a_carrier = ir.register_program(ir.Program(
        f"fig15-acarrier-{g}",
        body=(
            ir.Assign("mA", ir.NodeGet("A")),           # mA = A
            ir.For("mj", C(g), (
                ir.HopStmt((V("mi"), a_tour)),
                ir.WaitStmt("EP", (V("mk"),)),
                *_accumulate_c(V("mA"), ir.NodeGet("Bslot")),
                ir.SignalStmt("EC"),
            )),
        ),
        params=("mi", "mk"),
    ), replace=True)

    b_carrier = ir.register_program(ir.Program(
        f"fig15-bcarrier-{g}",
        body=(
            ir.Assign("mB", ir.NodeGet("B")),           # mB = B
            ir.For("mi", C(g), (
                ir.HopStmt((b_tour, V("mj"))),
                ir.WaitStmt("EC"),
                ir.NodeSet("Bslot", (), V("mB")),
                ir.SignalStmt("EP", (V("mk"),)),
            )),
        ),
        params=("mk", "mj"),
    ), replace=True)

    spawner = ir.register_program(ir.Program(
        f"fig15-spawner-{g}",
        body=(
            ir.For("mi", C(g), (
                ir.HopStmt((V("mi"), V("mj"))),
                ir.SignalStmt("EC"),
                # the local A block's k is its column; B's k is its row
                ir.InjectStmt(a_carrier.name, (
                    ("mi", V("mi")), ("mk", V("mj")))),
                ir.InjectStmt(b_carrier.name, (
                    ("mk", V("mi")), ("mj", V("mj")))),
            )),
        ),
        params=("mj",),
    ), replace=True)

    entry = ir.register_program(ir.Program(
        f"fig15-main-{g}",
        body=(
            ir.For("mj", C(g), (
                ir.HopStmt((C(0), V("mj"))),
                ir.InjectStmt(spawner.name, (("mj", V("mj")),)),
            )),
        ),
    ), replace=True)

    return IR2DSuite(
        name="fig15", g=g, entry=entry,
        layout=_natural_layout(a, b, g),
        programs=(entry, spawner, a_carrier, b_carrier),
    )


# --------------------------------------------------------------------------
# running a suite
# --------------------------------------------------------------------------

def run_ir2d_suite(
    suite: IR2DSuite,
    fabric_kind: str = "sim",
    machine: MachineSpec | None = None,
    trace: bool = False,
):
    """Run a 2-D IR suite on any fabric kind (sim/thread/process/socket).

    Returns ``(c, fabric_result)`` with the assembled product.
    """
    from ..navp.interp import IRMessenger

    g = suite.g
    fabric = make_fabric(fabric_kind, Grid2D(g), machine=machine,
                         trace=trace)
    for coord, node_vars in suite.layout.items():
        fabric.load(coord, **node_vars)
    for coord, event, args, count in suite.initial_signals:
        fabric.signal_initial(coord, event, *args, count=count)
    fabric.inject((0, 0), IRMessenger(suite.entry.name))
    result = fabric.run()

    sample = next(iter(suite.layout.values()))["C"]
    ab = sample.shape[0]
    c = np.empty((g * ab, g * ab), dtype=sample.dtype)
    for (i, j), node_vars in result.places.items():
        c[i * ab : (i + 1) * ab, j * ab : (j + 1) * ab] = node_vars["C"]
    return c, result
