"""Initial data distributions — Figures 4, 6, 8, 10, 12 and 14.

Each function installs node variables on a fabric according to one of
the paper's initial layouts, at distribution-block granularity:

* 1-D (``P`` PEs): B and C are split into ``P`` vertical strips of
  width ``n/P``; ``B(*, j)`` and ``C(*, j)`` live on ``node(j)``.
  A starts whole on ``node(0)`` (Figures 4, 6) or split into ``P``
  horizontal strips with ``A(i, *)`` on ``node(i)`` (Figure 8).
* 2-D (``G x G`` PEs): ``C(i, j)`` lives on ``node(i, j)``. For the
  2-D DSC/pipelined stages (Figures 10, 12), row block ``A(G-1-l, *)``
  and column block ``B(*, l)`` both live on the anti-diagonal PE
  ``node(G-1-l, l)``. For full 2-D DPC (Figure 14) and the SPMD
  algorithms, A, B and C all start in the natural layout,
  ``X(i, j)`` on ``node(i, j)``.

Gather helpers reassemble the distributed C for verification.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..fabric.sim import FabricResult
from ..util.blocks import check_divides
from .kinds import MatmulCase

__all__ = [
    "layout_1d_a_at_origin",
    "layout_1d_a_row_strips",
    "layout_2d_antidiagonal",
    "layout_2d_natural",
    "gather_c_1d",
    "gather_c_2d",
]


def _strips(case: MatmulCase, p: int):
    check_divides(case.n, p, "PE count")
    a, b = case.operands()
    return a, b, case.n // p


def layout_1d_a_at_origin(fabric, case: MatmulCase, p: int) -> None:
    """Figures 4 and 6: A whole on node(0); B, C column strips."""
    a, b, w = _strips(case, p)
    fabric.load((0,), A=a)
    for j in range(p):
        fabric.load(
            (j,),
            B=b[:, j * w : (j + 1) * w],
            C=case.zeros((case.n, w)),
        )


def layout_1d_a_row_strips(fabric, case: MatmulCase, p: int) -> None:
    """Figure 8: A split into row strips, ``A(i, *)`` on node(i)."""
    a, b, w = _strips(case, p)
    for j in range(p):
        fabric.load(
            (j,),
            A=a[j * w : (j + 1) * w, :],
            B=b[:, j * w : (j + 1) * w],
            C=case.zeros((case.n, w)),
        )


def layout_2d_antidiagonal(fabric, case: MatmulCase, g: int) -> None:
    """Figures 10 and 12: A rows / B columns on the anti-diagonal.

    ``A(G-1-l, *)`` and ``B(*, l)`` on ``node(G-1-l, l)``; zeroed
    ``C(i, j)`` on every ``node(i, j)``.
    """
    a, b, db = _strips(case, g)
    for line in range(g):
        fabric.load(
            (g - 1 - line, line),
            Arow=a[(g - 1 - line) * db : (g - line) * db, :],
            Bcol=b[:, line * db : (line + 1) * db],
        )
    for i in range(g):
        for j in range(g):
            fabric.load((i, j), C=case.zeros((db, db)))


def layout_2d_natural(fabric, case: MatmulCase, g: int) -> None:
    """Figure 14 (and SPMD baselines): ``A/B/C(i, j)`` on ``node(i, j)``."""
    a, b, db = _strips(case, g)
    for i in range(g):
        for j in range(g):
            fabric.load(
                (i, j),
                A=a[i * db : (i + 1) * db, j * db : (j + 1) * db],
                B=b[i * db : (i + 1) * db, j * db : (j + 1) * db],
                C=case.zeros((db, db)),
            )


def gather_c_1d(result: FabricResult, case: MatmulCase, p: int,
                name: str = "C"):
    """Reassemble C from 1-D column strips (None in shadow mode)."""
    if case.shadow:
        return None
    w = case.n // p
    out = np.empty((case.n, case.n), dtype=case.dtype)
    for j in range(p):
        strip = result.get((j,), name)
        if strip.shape != (case.n, w):
            raise ConfigurationError(
                f"C strip at node({j}) has shape {strip.shape}, "
                f"expected {(case.n, w)}"
            )
        out[:, j * w : (j + 1) * w] = strip
    return out


def gather_c_2d(result: FabricResult, case: MatmulCase, g: int,
                name: str = "C"):
    """Reassemble C from 2-D distribution blocks (None in shadow mode)."""
    if case.shadow:
        return None
    db = case.n // g
    out = np.empty((case.n, case.n), dtype=case.dtype)
    for i in range(g):
        for j in range(g):
            blk = result.get((i, j), name)
            if blk.shape != (db, db):
                raise ConfigurationError(
                    f"C block at node({i},{j}) has shape {blk.shape}, "
                    f"expected {(db, db)}"
                )
            out[i * db : (i + 1) * db, j * db : (j + 1) * db] = blk
    return out
