"""Gentleman's schedule as navigational IR (cross-fabric Table 3 peer).

:mod:`repro.matmul.gentleman` keeps the paper's message-passing
baseline as SPMD generator ranks, which confines it to the sim and
thread fabrics (generator frames cannot be pickled). This module
restates the *schedule* of Gentleman's algorithm — natural layout, PE
``(i, j)`` consuming operand pair ``k = (i + j + r) mod g`` in round
``r`` — in the navigational IR, so the same Table 3 comparison runs on
real OS processes and over real TCP sockets too.

The restatement is carrier-based, the NavP discipline applied to the
Gentleman data movement: instead of every rank shifting its tile west/
north each round, each block rides a messenger along the round
schedule:

* ``ACarrier(mi, mk)`` starts where ``A(mi, mk)`` lives, and in round
  ``r`` visits PE ``(mi, (mk - mi - r) mod g)`` — precisely the PE
  whose round-``r`` product needs that A block — depositing it in the
  keyed slot ``Aslot[r]`` and signalling ``EA(r)``;
* ``BCarrier(mk, mj)`` mirrors it down column ``mj`` via
  ``((mk - mj - r) mod g, mj)``, filling ``Bslot[r]`` / ``EB(r)``;
* a stationary ``Ranker`` on every PE consumes the slot pairs strictly
  in round order: ``C += Aslot[r] @ Bslot[r]`` for ``r = 0..g-1``.

Keying slots and events by the round makes the protocol order-free
(an early carrier can never overwrite an unconsumed block) while the
ranker's fixed ``r`` order keeps the floating-point accumulation
identical on every fabric — the cross-fabric tests assert the results
are *bit-identical*, not merely close.
"""

from __future__ import annotations

from ..navp import ir
from ..util.validation import random_matrix
from .ir2d import IR2DSuite, _accumulate_c, _natural_layout

__all__ = ["build_gentleman_ir"]

V = ir.Var
C = ir.Const


def _tour(mine, other, r, g: int) -> ir.Expr:
    """``(other - mine - r) mod g`` — the round-r stop of a carrier."""
    return ir.Bin("%", ir.Bin("-", ir.Bin("-", other, mine), r), C(g))


def build_gentleman_ir(g: int, a=None, b=None, seed: int = 80,
                       ab: int = 8) -> IR2DSuite:
    if a is None:
        a = random_matrix(g * ab, seed)
        b = random_matrix(g * ab, seed + 1)

    a_carrier = ir.register_program(ir.Program(
        f"gent-acarrier-{g}",
        body=(
            ir.Assign("mA", ir.NodeGet("A")),
            ir.For("r", C(g), (
                ir.HopStmt((V("mi"),
                            _tour(V("mi"), V("mk"), V("r"), g))),
                ir.NodeSet("Aslot", (V("r"),), V("mA")),
                ir.SignalStmt("EA", (V("r"),)),
            )),
        ),
        params=("mi", "mk"),
    ), replace=True)

    b_carrier = ir.register_program(ir.Program(
        f"gent-bcarrier-{g}",
        body=(
            ir.Assign("mB", ir.NodeGet("B")),
            ir.For("r", C(g), (
                ir.HopStmt((_tour(V("mj"), V("mk"), V("r"), g),
                            V("mj"))),
                ir.NodeSet("Bslot", (V("r"),), V("mB")),
                ir.SignalStmt("EB", (V("r"),)),
            )),
        ),
        params=("mk", "mj"),
    ), replace=True)

    ranker = ir.register_program(ir.Program(
        f"gent-ranker-{g}",
        body=(
            ir.For("r", C(g), (
                ir.WaitStmt("EA", (V("r"),)),
                ir.WaitStmt("EB", (V("r"),)),
                *_accumulate_c(
                    ir.Index(ir.NodeGet("Aslot"), (V("r"),)),
                    ir.Index(ir.NodeGet("Bslot"), (V("r"),)),
                ),
            )),
        ),
    ), replace=True)

    # One setup tour injects, at each PE (i, j): its ranker, the
    # carrier of the locally resident A(i, j) (an ACarrier with
    # mi=i, mk=j), and of B(i, j) (a BCarrier with mk=i, mj=j).
    entry = ir.register_program(ir.Program(
        f"gent-main-{g}",
        body=(
            ir.For("mi", C(g), (
                ir.For("mj", C(g), (
                    ir.HopStmt((V("mi"), V("mj"))),
                    ir.InjectStmt(ranker.name, ()),
                    ir.InjectStmt(a_carrier.name, (
                        ("mi", V("mi")), ("mk", V("mj")))),
                    ir.InjectStmt(b_carrier.name, (
                        ("mk", V("mi")), ("mj", V("mj")))),
                )),
            )),
        ),
    ), replace=True)

    return IR2DSuite(
        name="gentleman-ir", g=g, entry=entry,
        layout=_natural_layout(a, b, g),
        programs=(entry, ranker, a_carrier, b_carrier),
    )
