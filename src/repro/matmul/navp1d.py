"""NavP matrix multiplication on a 1-D PE chain — Figures 5, 7 and 9.

The three stages of the paper's first incremental round:

* :func:`run_dsc_1d` — the DSC transformation applied to the
  sequential code (Figure 5): one computation thread chases the
  distributed columns of B and C, carrying one row strip of A at a
  time in the agent variable ``mA``.
* :func:`run_pipelined_1d` — the Pipelining transformation (Figure 7):
  one ``RowCarrier`` per strip of A, injected in order at ``node(0)``,
  following each other through the PE pipeline.
* :func:`run_phase_1d` — the Phase-shifting transformation (Figure 9):
  carriers enter the pipeline at different PEs (reverse staggering), so
  every PE computes from the start.

Granularity: the paper generalizes its fine-grained pseudocode by
treating "entries" as blocks (Section 3). Here a carrier is responsible
for one *row of algorithmic blocks* — an ``ab x n`` strip of A — as in
the paper's actual implementation (Section 5: "The RowCarriers ...
each of which [is] responsible for the computation of a row of
algorithmic blocks").

No events are needed in 1-D: the C strips written at a PE are disjoint
per carrier, and B is read-only (the paper's pseudocode likewise has
none until the second dimension is introduced).
"""

from __future__ import annotations

from ..fabric.factory import make_fabric
from ..fabric.topology import Grid1D
from ..machine.presets import SUN_BLADE_100
from ..machine.spec import MachineSpec
from ..navp.messenger import Messenger
from ..util.blocks import check_divides, strip_rows
from .kinds import MatmulCase, RunResult
from .layouts import gather_c_1d, layout_1d_a_at_origin, layout_1d_a_row_strips

__all__ = [
    "DSCCarrier1D",
    "RowCarrier1D",
    "PhaseRowCarrier1D",
    "run_dsc_1d",
    "run_pipelined_1d",
    "run_phase_1d",
]


def _visit_flops(case: MatmulCase, p: int) -> float:
    """Flops of one carrier visit: an ``ab x n`` by ``n x n/p`` product."""
    return 2.0 * case.ab * case.n * (case.n // p)


class DSCCarrier1D(Messenger):
    """Figure 5: the single DSC thread.

    For each strip ``mi`` it hops along all PEs; every time it returns
    to ``node(0)`` (``mj == 0``) it picks up the next strip of A into
    the agent variable ``mA``.
    """

    def __init__(self, case: MatmulCase, p: int):
        self._case = case
        self._p = p
        self.mA = None

    def main(self):
        case, p = self._case, self._p
        nstrips = case.nblocks
        flops = _visit_flops(case, p)
        for mi in range(nstrips):
            for mj in range(p):
                yield self.hop((mj,))
                if mj == 0:
                    self.mA = strip_rows(self.vars["A"], mi, case.ab)
                mA = self.mA
                b = self.vars["B"]
                c = self.vars["C"]

                def visit(mA=mA, b=b, c=c, mi=mi):
                    c[mi * case.ab : (mi + 1) * case.ab, :] = mA @ b

                yield self.compute(visit, flops=flops,
                                   note=f"strip {mi} @ node({mj})")


class _Injector1D(Messenger):
    """Figure 7's main program: hop to node(0), inject carriers in order."""

    def __init__(self, carriers):
        self._carriers = carriers

    def main(self):
        yield self.hop((0,))
        for carrier in self._carriers:
            yield self.inject(carrier)


class RowCarrier1D(Messenger):
    """Figure 7: one pipelined carrier per strip of A."""

    def __init__(self, mi: int, case: MatmulCase, p: int):
        self.mi = mi
        self._case = case
        self._p = p
        self.mA = None

    def main(self):
        case, p, mi = self._case, self._p, self.mi
        self.mA = strip_rows(self.vars["A"], mi, case.ab)  # mA(*) = A(mi,*)
        flops = _visit_flops(case, p)
        for mj in range(p):
            yield self.hop((mj,))
            mA = self.mA
            b = self.vars["B"]
            c = self.vars["C"]

            def visit(mA=mA, b=b, c=c, mi=mi):
                c[mi * case.ab : (mi + 1) * case.ab, :] = mA @ b

            yield self.compute(visit, flops=flops,
                               note=f"strip {mi} @ node({mj})")


class _PhaseInjector1D(Messenger):
    """Figure 9's main program: hop along the chain, injecting locally."""

    def __init__(self, by_owner: dict):
        self._by_owner = by_owner

    def main(self):
        for owner in sorted(self._by_owner):
            yield self.hop((owner,))
            for carrier in self._by_owner[owner]:
                yield self.inject(carrier)


class PhaseRowCarrier1D(Messenger):
    """Figure 9: a phase-shifted carrier.

    A strip owned by PE ``q`` starts its tour at ``node((P-1-q) % P)``
    — the paper's ``hop(node((N-1-mi+mj) % N))`` schedule lifted to
    distribution-block granularity (``q`` plays the role of ``mi``).
    The first hop performs the reverse staggering of Figure 8.
    """

    def __init__(self, mi: int, owner: int, case: MatmulCase, p: int):
        self.mi = mi
        self.owner = owner
        self._case = case
        self._p = p
        self.mA = None

    def main(self):
        case, p, mi, q = self._case, self._p, self.mi, self.owner
        local = mi - q * (case.nblocks // p)
        self.mA = strip_rows(self.vars["A"], local, case.ab)  # mA(*) = A(*)
        flops = _visit_flops(case, p)
        for mj in range(p):
            yield self.hop(((p - 1 - q + mj) % p,))
            mA = self.mA
            b = self.vars["B"]
            c = self.vars["C"]

            def visit(mA=mA, b=b, c=c, mi=mi):
                c[mi * case.ab : (mi + 1) * case.ab, :] = mA @ b

            yield self.compute(
                visit, flops=flops,
                note=f"strip {mi} @ node({(p - 1 - q + mj) % p})",
            )


def _run(case: MatmulCase, p: int, machine, trace, layout, build,
         fabric_kind: str = "sim"):
    machine = machine if machine is not None else SUN_BLADE_100
    check_divides(case.n, p, "PE count")
    # (the algorithmic block order must divide n — MatmulCase checks
    # that — but the column-strip width n/p need not be a multiple of
    # it: carriers work on ab x (n/p) tiles)
    fabric = make_fabric(fabric_kind, Grid1D(p), machine=machine, trace=trace)
    layout(fabric, case, p)
    build(fabric)
    result = fabric.run()
    return result


def run_dsc_1d(case: MatmulCase, p: int,
               machine: MachineSpec | None = None,
               trace: bool = True, fabric: str = "sim") -> RunResult:
    """Distributed sequential computing on ``p`` PEs (Figure 5)."""
    result = _run(
        case, p, machine, trace, layout_1d_a_at_origin,
        lambda fab: fab.inject((0,), DSCCarrier1D(case, p)),
        fabric_kind=fabric,
    )
    return RunResult(
        variant="navp-1d-dsc", case=case, time=result.time,
        c=gather_c_1d(result, case, p), trace=result.trace,
        details={"pes": p},
    )


def run_pipelined_1d(case: MatmulCase, p: int,
                     machine: MachineSpec | None = None,
                     trace: bool = True, fabric: str = "sim") -> RunResult:
    """Pipelined DSC on ``p`` PEs (Figure 7)."""
    carriers = [RowCarrier1D(mi, case, p) for mi in range(case.nblocks)]
    result = _run(
        case, p, machine, trace, layout_1d_a_at_origin,
        lambda fab: fab.inject((0,), _Injector1D(carriers)),
        fabric_kind=fabric,
    )
    return RunResult(
        variant="navp-1d-pipeline", case=case, time=result.time,
        c=gather_c_1d(result, case, p), trace=result.trace,
        details={"pes": p, "carriers": len(carriers)},
    )


def run_phase_1d(case: MatmulCase, p: int,
                 machine: MachineSpec | None = None,
                 trace: bool = True, fabric: str = "sim") -> RunResult:
    """Phase-shifted full DPC on ``p`` PEs (Figure 9)."""
    strips_per_pe = case.nblocks // p
    by_owner: dict = {}
    for mi in range(case.nblocks):
        owner = mi // strips_per_pe
        by_owner.setdefault(owner, []).append(
            PhaseRowCarrier1D(mi, owner, case, p)
        )
    result = _run(
        case, p, machine, trace, layout_1d_a_row_strips,
        lambda fab: fab.inject((0,), _PhaseInjector1D(by_owner)),
        fabric_kind=fabric,
    )
    return RunResult(
        variant="navp-1d-phase", case=case, time=result.time,
        c=gather_c_1d(result, case, p), trace=result.trace,
        details={"pes": p, "carriers": case.nblocks},
    )
