"""Uniform entry point over every matmul variant in the case study.

The benchmark harness and the examples address algorithms by name;
this registry maps names to runners with a common signature::

    run_variant("navp-2d-phase", case, geometry=3)   # 3x3 grid
    run_variant("navp-1d-dsc", case, geometry=3)     # 3-PE chain
    run_variant("scalapack-1d", case, geometry=3)    # SUMMA on 1x3

``geometry`` is the PE count for 1-D variants and the grid order for
2-D variants; the sequential baseline ignores it.
"""

from __future__ import annotations

from collections.abc import Callable

from ..errors import ConfigurationError
from ..machine.spec import MachineSpec
from .cannon import run_cannon
from .doall import run_doall, run_doall_replicated
from .gentleman import run_gentleman, run_gentleman_tuned
from .kinds import MatmulCase, RunResult
from .navp1d import run_dsc_1d, run_phase_1d, run_pipelined_1d
from .navp2d import run_dsc_2d, run_phase_2d, run_pipelined_2d
from .sequential import run_sequential
from .summa import run_summa

__all__ = ["VARIANTS", "run_variant", "variant_names"]


def _seq(case, geometry, machine, trace):
    return run_sequential(case, machine=machine, trace=trace)


def _summa_1d(case, geometry, machine, trace):
    result = run_summa(case, 1, geometry, machine=machine, trace=trace)
    result.variant = "scalapack-1d"
    return result


def _wrap(fn):
    return lambda case, geometry, machine, trace: fn(
        case, geometry, machine=machine, trace=trace)


VARIANTS: dict[str, Callable] = {
    "sequential": _seq,
    "navp-1d-dsc": _wrap(run_dsc_1d),
    "navp-1d-pipeline": _wrap(run_pipelined_1d),
    "navp-1d-phase": _wrap(run_phase_1d),
    "navp-2d-dsc": _wrap(run_dsc_2d),
    "navp-2d-pipeline": _wrap(run_pipelined_2d),
    "navp-2d-phase": _wrap(run_phase_2d),
    "mpi-gentleman": _wrap(run_gentleman),
    "mpi-gentleman-tuned": _wrap(run_gentleman_tuned),
    "mpi-cannon": _wrap(run_cannon),
    "scalapack-summa": _wrap(run_summa),
    "scalapack-1d": _summa_1d,
    "doall-naive": _wrap(run_doall),
    "doall-replicated": _wrap(run_doall_replicated),
}


def variant_names() -> list:
    return sorted(VARIANTS)


def run_variant(
    name: str,
    case: MatmulCase,
    geometry: int = 1,
    machine: MachineSpec | None = None,
    trace: bool = True,
) -> RunResult:
    """Run one named variant on the given case and geometry."""
    try:
        runner = VARIANTS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown variant {name!r}; known: {', '.join(variant_names())}"
        ) from None
    return runner(case, geometry, machine, trace)
