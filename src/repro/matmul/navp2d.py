"""NavP matrix multiplication on a 2-D PE grid — Figures 11, 13 and 15.

The paper's second incremental round applies the same three
transformations hierarchically in the ``i`` dimension:

* :func:`run_dsc_2d` — DSC in the second dimension (Figure 11): the
  phase-shifted strip carriers of the 1-D stage now run one grid row
  each, while ``ColCarrier`` messengers ship whole B column blocks down
  the grid columns, dropping a copy at each PE and signalling ``EP``.
* :func:`run_pipelined_2d` — pipelining in both dimensions
  (Figure 13): A *and* B move at algorithmic-block granularity.
  ``ACarrier(k)`` carries one k-slice of an A row block;
  ``BCarrier(k)`` carries the matching k-slice of a B column block and
  parks it in the PE's single B slot under an ``EP``/``EC`` handshake
  ("a producer BCarrier needs to make sure that the B entry produced
  by its predecessor in the pipeline is consumed before it puts the B
  entry it carries in place").
* :func:`run_phase_2d` — phase shifting in both dimensions
  (Figure 15): matrices start in the *natural* layout (A, B, C blocks
  all on ``node(i, j)``) and the rotated hop schedules
  ``(N-1-mi-mk+mj) % N`` perform the reverse staggering implicitly, so
  all ``G^2`` PEs compute from the start. This final stage has the
  structure of Gentleman's algorithm, executed by migrating carriers.

Synchronization faithfully follows the paper: ``EP`` ("B present") and
``EC`` ("B consumed") on each PE's local event table. We key ``EP`` by
the global k index — at fine granularity this is what the paper's
per-node ``EP(i,j)`` achieves positionally — and keep ``EC`` as the
slot-free semaphore, signalled once per PE initially. Carriers also
verify the k tag of the slot they consume and raise
:class:`~repro.errors.ProtocolError` on any pairing violation, so a
broken pipeline can never silently corrupt the product.
"""

from __future__ import annotations

from ..errors import ProtocolError
from ..fabric.factory import make_fabric
from ..fabric.topology import Grid2D
from ..machine.presets import SUN_BLADE_100
from ..machine.spec import MachineSpec
from ..navp.messenger import Messenger
from ..util.blocks import check_divides
from .kinds import MatmulCase, RunResult
from .layouts import gather_c_2d, layout_2d_antidiagonal, layout_2d_natural

__all__ = [
    "run_dsc_2d",
    "run_pipelined_2d",
    "run_phase_2d",
    "ColCarrier2D",
    "StripCarrier2D",
    "ACarrier2D",
    "BCarrier2D",
]


# --------------------------------------------------------------------------
# Stage 4: DSC in the second dimension (Figures 10 and 11)
# --------------------------------------------------------------------------

class _AntiDiagonalInjector(Messenger):
    """Figure 11/13 main program: walk the anti-diagonal, inject locally."""

    def __init__(self, factory):
        self._factory = factory  # (line) -> list of messengers

    def main(self):
        g = self._factory.g
        for line in range(g):
            yield self.hop((g - 1 - line, line))
            for messenger in self._factory(line):
                yield self.inject(messenger)


class ColCarrier2D(Messenger):
    """Figure 11 ``ColCarrier``: ships a whole B column block down column
    ``mj``, dropping a copy (node variable ``B``) and signalling ``EP``
    at every stop — once per strip carrier that will need it."""

    def __init__(self, mj: int, g: int, strips_per_row: int):
        self.mj = mj
        self._g = g
        self._strips = strips_per_row
        self.mB = None

    def main(self):
        g, mj = self._g, self.mj
        self.mB = self.vars["Bcol"]  # mB(*) = B(*)
        for mi in range(g):
            yield self.hop(((g - 1 - mj + mi) % g, mj))
            self.vars["B"] = self.mB  # B(*) = mB(*)
            yield self.signal_event("EP", count=self._strips)


class StripCarrier2D(Messenger):
    """Figure 11 ``RowCarrier`` at algorithmic granularity: one carrier
    per ``ab x n`` strip of A, touring its grid row."""

    def __init__(self, row: int, local_strip: int, case: MatmulCase, g: int):
        self.row = row
        self.local_strip = local_strip
        self._case = case
        self._g = g
        self.mA = None

    def main(self):
        case, g, row, s = self._case, self._g, self.row, self.local_strip
        ab, db = case.ab, case.n // g
        self.mA = self.vars["Arow"][s * ab : (s + 1) * ab, :]  # mA(*) = A(*)
        flops = 2.0 * ab * case.n * db
        for mj in range(g):
            col = (g - 1 - row + mj) % g
            yield self.hop((row, col))
            yield self.wait_event("EP")
            mA = self.mA
            b = self.vars["B"]
            c = self.vars["C"]

            def visit(mA=mA, b=b, c=c, s=s, ab=ab):
                c[s * ab : (s + 1) * ab, :] = mA @ b

            yield self.compute(visit, flops=flops,
                               note=f"A strip ({row},{s}) @ {(row, col)}")


def run_dsc_2d(case: MatmulCase, g: int,
               machine: MachineSpec | None = None,
               trace: bool = True, fabric: str = "sim") -> RunResult:
    """DSC in the second dimension on a ``g x g`` grid (Figure 11)."""
    machine = machine if machine is not None else SUN_BLADE_100
    check_divides(case.n, g, "grid order")
    db = case.n // g
    check_divides(db, case.ab, "algorithmic block order")
    strips = db // case.ab

    fab = make_fabric(fabric, Grid2D(g), machine=machine, trace=trace)
    layout_2d_antidiagonal(fab, case, g)

    def factory(line: int):
        row = g - 1 - line
        out = [StripCarrier2D(row, s, case, g) for s in range(strips)]
        out.append(ColCarrier2D(line, g, strips))
        return out

    factory.g = g
    fab.inject((g - 1, 0), _AntiDiagonalInjector(factory))
    result = fab.run()
    return RunResult(
        variant="navp-2d-dsc", case=case, time=result.time,
        c=gather_c_2d(result, case, g), trace=result.trace,
        details={"grid": g, "strip_carriers": g * strips},
    )


# --------------------------------------------------------------------------
# Stages 5 and 6: pipelining / phase shifting in both dimensions
# (Figures 13 and 15)
# --------------------------------------------------------------------------

class ACarrier2D(Messenger):
    """Figures 13/15 ``ACarrier``: carries one ``db x ab`` k-slice of an
    A row block through its grid row; at each stop waits for the
    matching B slice (``EP`` keyed by k), accumulates into the local C
    block, and signals ``EC`` to free the slot."""

    def __init__(self, row: int, k: int, shift: int, case: MatmulCase, g: int,
                 pick_local: bool):
        self.row = row
        self.k = k          # global k-slice index, 0 .. n/ab - 1
        self.shift = shift  # extra column shift: 0 (Fig 13) or mk (Fig 15)
        self._case = case
        self._g = g
        self._pick_local = pick_local
        self.mA = None

    def main(self):
        case, g, row, k = self._case, self._g, self.row, self.k
        ab, db = case.ab, case.n // g
        if self._pick_local:
            # Figure 15: the slice comes out of the local A block.
            local_k = k % (db // ab)
            self.mA = self.vars["A"][:, local_k * ab : (local_k + 1) * ab]
        else:
            # Figure 13: all slices of the row block start on the
            # anti-diagonal PE that holds the whole row block.
            self.mA = self.vars["Arow"][:, k * ab : (k + 1) * ab]
        flops = 2.0 * db * ab * db
        for mj in range(g):
            col = (g - 1 - row - self.shift + mj) % g
            yield self.hop((row, col))
            yield self.wait_event("EP", k)
            slot_k, b = self.vars["Bslot"]
            if slot_k != k:
                raise ProtocolError(
                    f"B slot at node({row},{col}) holds k={slot_k}, "
                    f"ACarrier expected k={k}"
                )
            mA = self.mA
            c = self.vars["C"]

            def visit(mA=mA, b=b, c=c):
                c += mA @ b

            yield self.compute(visit, flops=flops,
                               note=f"A(k={k}) @ {(row, col)}")
            yield self.signal_event("EC")


class BCarrier2D(Messenger):
    """Figures 13/15 ``BCarrier``: carries one ``ab x db`` k-slice of a
    B column block down its grid column; at each stop waits until the
    predecessor's slice was consumed (``EC``), parks its slice in the
    PE's B slot, and announces it (``EP`` keyed by k)."""

    def __init__(self, col: int, k: int, shift: int, case: MatmulCase, g: int,
                 pick_local: bool):
        self.col = col
        self.k = k
        self.shift = shift
        self._case = case
        self._g = g
        self._pick_local = pick_local
        self.mB = None

    def main(self):
        case, g, col, k = self._case, self._g, self.col, self.k
        ab, db = case.ab, case.n // g
        if self._pick_local:
            local_k = k % (db // ab)
            self.mB = self.vars["B"][local_k * ab : (local_k + 1) * ab, :]
        else:
            self.mB = self.vars["Bcol"][k * ab : (k + 1) * ab, :]
        for mi in range(g):
            row = (g - 1 - col - self.shift + mi) % g
            yield self.hop((row, col))
            yield self.wait_event("EC")
            self.vars["Bslot"] = (k, self.mB)
            yield self.signal_event("EP", k)


class _PhaseSpawnerColumn(Messenger):
    """Figure 15 ``spawner(mj)``: walk down column mj, enable the local
    slot (EC), and inject the local A and B slice carriers."""

    def __init__(self, mj: int, case: MatmulCase, g: int):
        self.mj = mj
        self._case = case
        self._g = g

    def main(self):
        case, g, mj = self._case, self._g, self.mj
        slices = (case.n // g) // case.ab
        for mi in range(g):
            yield self.hop((mi, mj))
            yield self.signal_event("EC")
            for s in range(slices):
                k_a = mj * slices + s   # k of the local A block's slices
                k_b = mi * slices + s   # k of the local B block's slices
                yield self.inject(
                    ACarrier2D(mi, k_a, shift=mj, case=case, g=g,
                               pick_local=True)
                )
                yield self.inject(
                    BCarrier2D(mj, k_b, shift=mi, case=case, g=g,
                               pick_local=True)
                )


class _PhaseInjector2D(Messenger):
    """Figure 15 main program: inject one spawner at the top of each column."""

    def __init__(self, case: MatmulCase, g: int):
        self._case = case
        self._g = g

    def main(self):
        for mj in range(self._g):
            yield self.hop((0, mj))
            yield self.inject(_PhaseSpawnerColumn(mj, self._case, self._g))


def run_pipelined_2d(case: MatmulCase, g: int,
                     machine: MachineSpec | None = None,
                     trace: bool = True, fabric: str = "sim") -> RunResult:
    """Pipelining in both dimensions on a ``g x g`` grid (Figure 13)."""
    machine = machine if machine is not None else SUN_BLADE_100
    check_divides(case.n, g, "grid order")
    check_divides(case.n // g, case.ab, "algorithmic block order")
    nk = case.nblocks  # k-slices across the full k dimension

    fab = make_fabric(fabric, Grid2D(g), machine=machine, trace=trace)
    layout_2d_antidiagonal(fab, case, g)
    for i in range(g):
        for j in range(g):
            fab.signal_initial((i, j), "EC")  # slot initially free

    def factory(line: int):
        row = g - 1 - line
        out = []
        for k in range(nk):  # Figure 13 spawner: inject per mk, A then B
            out.append(ACarrier2D(row, k, shift=0, case=case, g=g,
                                  pick_local=False))
            out.append(BCarrier2D(line, k, shift=0, case=case, g=g,
                                  pick_local=False))
        return out

    factory.g = g
    fab.inject((g - 1, 0), _AntiDiagonalInjector(factory))
    result = fab.run()
    return RunResult(
        variant="navp-2d-pipeline", case=case, time=result.time,
        c=gather_c_2d(result, case, g), trace=result.trace,
        details={"grid": g, "a_carriers": g * nk, "b_carriers": g * nk},
    )


def run_phase_2d(case: MatmulCase, g: int,
                 machine: MachineSpec | None = None,
                 trace: bool = True, fabric: str = "sim") -> RunResult:
    """Full DPC via phase shifting in both dimensions (Figure 15)."""
    machine = machine if machine is not None else SUN_BLADE_100
    check_divides(case.n, g, "grid order")
    check_divides(case.n // g, case.ab, "algorithmic block order")

    fab = make_fabric(fabric, Grid2D(g), machine=machine, trace=trace)
    layout_2d_natural(fab, case, g)
    fab.inject((0, 0), _PhaseInjector2D(case, g))
    result = fab.run()
    nk = case.nblocks
    return RunResult(
        variant="navp-2d-phase", case=case, time=result.time,
        c=gather_c_2d(result, case, g), trace=result.trace,
        details={"grid": g, "a_carriers": g * nk, "b_carriers": g * nk},
    )
