"""Gentleman's algorithm (Figure 16) on the MPI-like substrate.

This is the paper's message-passing baseline: the classical SPMD
matrix multiplication in which A shifts west and B shifts north every
round while C stays put, modified exactly as the paper describes
(Sections 4-5):

* **block partitioning** — each rank holds an ``a x a`` tile of
  algorithmic blocks per matrix (``a = (n/G)/ab``), kept as nested
  lists of block views so that local shifts are *pointer swaps*, never
  element copies;
* **single-step initial staggering** — the network is fully connected,
  so each algorithmic block of A (global block row ``gi``) is shipped
  directly to column ``(gj - gi) mod nb`` (and B transposed likewise)
  in one communication step instead of ``N-1`` ring steps;
* **non-blocking receives with blocking sends** — each round posts
  ``MPI_Irecv`` for the incoming A and B edge columns/rows, sends its
  own edges, ``MPI_Wait``s, then computes;
* **the straightforward loop order** — all local block products of a
  round run after both edges arrived, in a fixed order. This is the
  "artificial sequential order" the paper blames for MPI losing to
  NavP (Section 5 item 1): nothing overlaps the edge exchange.

The cache model charges these rounds at the "mpi" rate (fresh A-B-C
triplets; Section 5 item 2).
"""

from __future__ import annotations

from ..fabric.topology import Grid2D
from ..machine.presets import SUN_BLADE_100
from ..machine.spec import MachineSpec
from ..mpi.comm import Comm, run_spmd
from ..util.blocks import check_divides, to_block_grid
from .kinds import MatmulCase, RunResult
from .layouts import gather_c_2d, layout_2d_natural

__all__ = ["run_gentleman", "run_gentleman_tuned", "gentleman_rank",
           "gentleman_tuned_rank", "stagger_single_step"]


def stagger_single_step(comm: Comm, grid: list, a: int, g: int, which: str,
                        block_row_shift: bool):
    """Single-step initial staggering of one operand's block tile.

    ``block_row_shift=False`` staggers columns (A: block (gi, gj) moves
    to column ``(gj - gi) mod nb``); ``True`` staggers rows (B: block
    (gi, gj) moves to row ``(gi - gj) mod nb``). Returns the restaggered
    ``a x a`` tile. Generator — drive with ``yield from``.
    """
    i, j = comm.coord
    nb = a * g
    outgoing: dict = {}
    for x in range(a):
        for y in range(a):
            gi, gj = i * a + x, j * a + y
            if block_row_shift:
                gi2, gj2 = (gi - gj) % nb, gj
                dst = (gi2 // a, j)
                pos = (gi2 % a, y)
            else:
                gi2, gj2 = gi, (gj - gi) % nb
                dst = (i, gj2 // a)
                pos = (x, gj2 % a)
            outgoing.setdefault(dst, []).append((pos, grid[x][y]))

    fresh = [[None] * a for _ in range(a)]
    placed = 0
    for dst, items in sorted(outgoing.items()):
        if dst == comm.coord:
            for pos, blk in items:
                fresh[pos[0]][pos[1]] = blk
            placed += len(items)
        else:
            yield comm.send(dst, ("stag", which), items)
    while placed < a * a:
        msg = yield comm.recv(tag=("stag", which))
        for pos, blk in msg.payload:
            fresh[pos[0]][pos[1]] = blk
        placed += len(msg.payload)
    return fresh


def gentleman_rank(case: MatmulCase, g: int):
    """Build the per-rank generator for Gentleman's algorithm."""
    ab = case.ab
    a = (case.n // g) // ab
    nb = case.nblocks
    flops_round = a * a * 2.0 * ab**3

    def program(comm: Comm):
        i, j = comm.coord
        ablocks = to_block_grid(comm.vars["A"], ab)
        bblocks = to_block_grid(comm.vars["B"], ab)
        cblocks = to_block_grid(comm.vars["C"], ab)

        # -- initial staggering, one step over the switch ---------------
        ablocks = yield from stagger_single_step(
            comm, ablocks, a, g, "A", block_row_shift=False)
        bblocks = yield from stagger_single_step(
            comm, bblocks, a, g, "B", block_row_shift=True)

        west = (i, (j - 1) % g)
        east = (i, (j + 1) % g)
        north = ((i - 1) % g, j)
        south = ((i + 1) % g, j)

        def round_update():
            for x in range(a):
                for y in range(a):
                    cblocks[x][y] += ablocks[x][y] @ bblocks[x][y]

        # first multiply (Figure 16 lines 11-13)
        yield comm.compute(round_update, flops=flops_round, kind="mpi",
                           note="round 0")

        # N-1 shift-and-multiply rounds (Figure 16 lines 14-20),
        # at algorithmic-block granularity: one block step per round.
        for r in range(1, nb):
            req_a = yield comm.irecv(src=east, tag=("A", r))
            req_b = yield comm.irecv(src=south, tag=("B", r))
            out_a = [ablocks[x][0] for x in range(a)]  # west edge column
            out_b = list(bblocks[0])                   # north edge row
            yield comm.send(west, ("A", r), out_a)
            yield comm.send(north, ("B", r), out_b)
            msg_a = yield comm.wait(req_a)
            msg_b = yield comm.wait(req_b)
            # pointer-swap local shift + splice in the received edges
            for x in range(a):
                ablocks[x] = ablocks[x][1:] + [msg_a.payload[x]]
            bblocks = bblocks[1:] + [msg_b.payload]
            yield comm.compute(round_update, flops=flops_round, kind="mpi",
                               note=f"round {r}")

    return program


def gentleman_tuned_rank(case: MatmulCase, g: int):
    """The fine-tuned variant the paper concedes is possible.

    "It would be possible to improve the performance of the MPI code by
    subtle fine-tuning at a cost of considerably more programming
    effort" (Section 5) — this is that effort: each round computes the
    *interior* blocks (whose operands were pointer-swapped locally)
    while the incoming edge column/row is still in flight, and only the
    boundary blocks wait for ``MPI_Wait``. The communication disappears
    behind computation, which is exactly the scheduling freedom the
    MESSENGERS daemon gives NavP for free.
    """
    ab = case.ab
    a = (case.n // g) // ab
    nb = case.nblocks
    block_flops = 2.0 * ab**3

    def program(comm: Comm):
        i, j = comm.coord
        ablocks = to_block_grid(comm.vars["A"], ab)
        bblocks = to_block_grid(comm.vars["B"], ab)
        cblocks = to_block_grid(comm.vars["C"], ab)

        ablocks = yield from stagger_single_step(
            comm, ablocks, a, g, "A", block_row_shift=False)
        bblocks = yield from stagger_single_step(
            comm, bblocks, a, g, "B", block_row_shift=True)

        west = (i, (j - 1) % g)
        east = (i, (j + 1) % g)
        north = ((i - 1) % g, j)
        south = ((i + 1) % g, j)

        def update(cells):
            def fn(cells=cells, A=ablocks, B=bblocks, C=cblocks):
                for x, y in cells:
                    C[x][y] += A[x][y] @ B[x][y]
            return fn

        all_cells = [(x, y) for x in range(a) for y in range(a)]
        yield comm.compute(update(all_cells),
                           flops=len(all_cells) * block_flops,
                           kind="mpi", note="round 0")

        interior = [(x, y) for x in range(a) for y in range(a)
                    if x < a - 1 and y < a - 1]
        boundary = [(x, y) for x in range(a) for y in range(a)
                    if x == a - 1 or y == a - 1]

        for r in range(1, nb):
            req_a = yield comm.irecv(src=east, tag=("A", r))
            req_b = yield comm.irecv(src=south, tag=("B", r))
            out_a = [ablocks[x][0] for x in range(a)]
            out_b = list(bblocks[0])
            yield comm.isend(west, ("A", r), out_a)
            yield comm.isend(north, ("B", r), out_b)
            # shift the interior by pointer swap and compute it NOW,
            # overlapping the in-flight edges
            for x in range(a):
                ablocks[x] = ablocks[x][1:] + [None]
            bblocks = bblocks[1:] + [None]
            if interior:
                yield comm.compute(update(interior),
                                   flops=len(interior) * block_flops,
                                   kind="mpi", note=f"round {r} interior")
            msg_a = yield comm.wait(req_a)
            msg_b = yield comm.wait(req_b)
            for x in range(a):
                ablocks[x][a - 1] = msg_a.payload[x]
            bblocks[a - 1] = msg_b.payload
            yield comm.compute(update(boundary),
                               flops=len(boundary) * block_flops,
                               kind="mpi", note=f"round {r} boundary")

    return program


def run_gentleman_tuned(case: MatmulCase, g: int,
                        machine: MachineSpec | None = None,
                        trace: bool = True, fabric: str = "sim") -> RunResult:
    """Run the communication-overlapping Gentleman variant."""
    machine = machine if machine is not None else SUN_BLADE_100
    check_divides(case.n, g, "grid order")
    check_divides(case.n // g, case.ab, "algorithmic block order")
    result = run_spmd(
        Grid2D(g), gentleman_tuned_rank(case, g), machine=machine,
        setup=lambda fabric: layout_2d_natural(fabric, case, g),
        trace=trace, fabric=fabric,
    )
    return RunResult(
        variant="mpi-gentleman-tuned", case=case, time=result.time,
        c=gather_c_2d(result, case, g), trace=result.trace,
        details={"grid": g, "rounds": case.nblocks},
    )


def run_gentleman(case: MatmulCase, g: int,
                  machine: MachineSpec | None = None,
                  trace: bool = True, fabric: str = "sim") -> RunResult:
    """Run Gentleman's algorithm on a ``g x g`` grid."""
    machine = machine if machine is not None else SUN_BLADE_100
    check_divides(case.n, g, "grid order")
    check_divides(case.n // g, case.ab, "algorithmic block order")
    result = run_spmd(
        Grid2D(g), gentleman_rank(case, g), machine=machine,
        setup=lambda fabric: layout_2d_natural(fabric, case, g),
        trace=trace, fabric=fabric,
    )
    return RunResult(
        variant="mpi-gentleman", case=case, time=result.time,
        c=gather_c_2d(result, case, g), trace=result.trace,
        details={"grid": g, "rounds": case.nblocks},
    )
