"""The naive ``doall`` parallelization (Figure 3) and its contention.

Section 3 of the paper argues that simply turning the outer loops of
Figure 2 into ``doall`` loops is not a good parallelization: with
"zero-inventory" scheduling, "contention could happen as multiple PEs
request the same entries at the same time", and caching copies
everywhere is non-scalable.

``run_doall`` realizes the zero-inventory version at distribution-block
granularity: in round ``k``, every rank of row ``i`` needs ``A(i, k)``
and every rank of column ``j`` needs ``B(k, j)``; the owners serve each
consumer with a separate unicast (no multicast on switched Ethernet),
serializing ``2(G-1)`` full-block transfers through their NICs while
all non-owners sit idle — the contention the paper predicts, growing
with the grid. There is no prefetching: round ``k``'s data is requested
when round ``k`` starts, which is what "zero inventory" means.
"""

from __future__ import annotations

from ..fabric.topology import Grid2D
from ..machine.presets import SUN_BLADE_100
from ..machine.spec import MachineSpec
from ..mpi.comm import Comm, run_spmd
from ..util.blocks import check_divides
from .kinds import MatmulCase, RunResult
from .layouts import gather_c_2d, layout_2d_natural

__all__ = ["run_doall", "run_doall_replicated", "doall_rank",
           "replicated_rank", "replicated_memory_per_pe"]


def doall_rank(case: MatmulCase, g: int):
    db = case.n // g
    flops = 2.0 * db**3

    def program(comm: Comm):
        i, j = comm.coord
        a_local = comm.vars["A"]
        b_local = comm.vars["B"]
        c_local = comm.vars["C"]

        for k in range(g):
            if j == k:
                for jj in range(g):
                    if jj != j:
                        yield comm.send((i, jj), ("dA", k), a_local)
                a_k = a_local
            else:
                a_k = (yield comm.recv(src=(i, k), tag=("dA", k))).payload
            if i == k:
                for ii in range(g):
                    if ii != i:
                        yield comm.send((ii, j), ("dB", k), b_local)
                b_k = b_local
            else:
                b_k = (yield comm.recv(src=(k, j), tag=("dB", k))).payload

            def update(pa=a_k, pb=b_k, c=c_local):
                c += pa @ pb

            yield comm.compute(update, flops=flops, kind="mpi",
                               note=f"k={k}")

    return program


def replicated_rank(case: MatmulCase, g: int):
    """The paper's other rejected design: "if we cache multiple copies
    of the same entry on the PEs that require it, we have a non-scalable
    solution." Every rank first collects the *entire* A row and B column
    it will ever need (2(G-1) extra blocks resident), then computes with
    no further communication."""
    db = case.n // g
    flops = 2.0 * db**3

    def program(comm: Comm):
        i, j = comm.coord
        a_local = comm.vars["A"]
        b_local = comm.vars["B"]
        c_local = comm.vars["C"]

        # replication phase: broadcast A along rows, B along columns
        for jj in range(g):
            if jj != j:
                yield comm.send((i, jj), ("rA", j), a_local)
        for ii in range(g):
            if ii != i:
                yield comm.send((ii, j), ("rB", i), b_local)
        a_row = {j: a_local}
        b_col = {i: b_local}
        for jj in range(g):
            if jj != j:
                msg = yield comm.recv(src=(i, jj), tag=("rA", jj))
                a_row[jj] = msg.payload
        for ii in range(g):
            if ii != i:
                msg = yield comm.recv(src=(ii, j), tag=("rB", ii))
                b_col[ii] = msg.payload
        comm.vars["resident_copies"] = len(a_row) + len(b_col)

        for k in range(g):
            def update(pa=a_row[k], pb=b_col[k], c=c_local):
                c += pa @ pb

            yield comm.compute(update, flops=flops, kind="mpi",
                               note=f"k={k}")

    return program


def replicated_memory_per_pe(case: MatmulCase, g: int,
                             elem_size: int = 4) -> int:
    """Resident bytes per PE under full replication: own A, B, C plus
    G-1 cached copies of each operand — grows linearly with the grid."""
    db = case.n // g
    blocks = 3 + 2 * (g - 1)
    return blocks * db * db * elem_size


def run_doall_replicated(case: MatmulCase, g: int,
                         machine: MachineSpec | None = None,
                         trace: bool = True, fabric: str = "sim") -> RunResult:
    """Run the caching variant of doall on a ``g x g`` grid."""
    machine = machine if machine is not None else SUN_BLADE_100
    check_divides(case.n, g, "grid order")
    result = run_spmd(
        Grid2D(g), replicated_rank(case, g), machine=machine,
        setup=lambda fabric: layout_2d_natural(fabric, case, g),
        trace=trace, fabric=fabric,
    )
    return RunResult(
        variant="doall-replicated", case=case, time=result.time,
        c=gather_c_2d(result, case, g), trace=result.trace,
        details={
            "grid": g,
            "memory_per_pe": replicated_memory_per_pe(
                case, g, machine.elem_size),
        },
    )


def run_doall(case: MatmulCase, g: int,
              machine: MachineSpec | None = None,
              trace: bool = True, fabric: str = "sim") -> RunResult:
    """Run the zero-inventory doall parallelization on a ``g x g`` grid."""
    machine = machine if machine is not None else SUN_BLADE_100
    check_divides(case.n, g, "grid order")
    result = run_spmd(
        Grid2D(g), doall_rank(case, g), machine=machine,
        setup=lambda fabric: layout_2d_natural(fabric, case, g),
        trace=trace, fabric=fabric,
    )
    return RunResult(
        variant="doall-naive", case=case, time=result.time,
        c=gather_c_2d(result, case, g), trace=result.trace,
        details={"grid": g},
    )
