"""Regenerate the paper's Tables 1-4 and compare against its numbers.

Each builder runs the named variants on the calibrated SimFabric at
every (matrix order, block order) the paper reports — in shadow mode,
so paper-scale orders simulate in milliseconds — and pairs the modeled
time/speedup with the paper's published cells.

Speedups follow the paper's own method: the baseline is the *paging
free* sequential time (the starred curve-fitted values for large
orders; see :mod:`repro.perfmodel.seqfit` for the fit reproduction),
while the sequential column itself shows the thrashing-inclusive time.

``shape_report`` encodes the qualitative claims a reproduction must
preserve — who wins, in what order, by roughly what factor — and is
asserted by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.presets import SUN_BLADE_100
from ..machine.spec import MachineSpec
from ..matmul.kinds import MatmulCase
from ..matmul.runner import run_variant
from ..matmul.sequential import sequential_time_model
from ..util.texttable import render_table
from .paperdata import TABLE1, TABLE2, TABLE3, TABLE4, PaperTable

__all__ = [
    "ComparisonCell",
    "ComparisonRow",
    "TableComparison",
    "build_table",
    "build_table1",
    "build_table2",
    "build_table3",
    "build_table4",
]


# Cells where the paper's own measurement is a known outlier and no
# calibrated model should chase it: ScaLAPACK 1.7 picks its LCM hybrid
# blocking internally ("not controlled by users" — paper footnote), and
# its 2x2 run at N=5120 degrades to speedup 2.62 while every
# neighbouring configuration sits near 3.5; we exclude that single cell
# from the tolerance check instead of distorting the model to match it.
_ANOMALOUS_CELLS = {
    ("scalapack-summa", 5120, 2),
}


@dataclass(frozen=True)
class ComparisonCell:
    paper_time: float
    paper_speedup: float
    model_time: float
    model_speedup: float

    @property
    def speedup_ratio(self) -> float:
        """model speedup / paper speedup (1.0 = exact)."""
        return self.model_speedup / self.paper_speedup


@dataclass
class ComparisonRow:
    n: int
    ab: int
    seq_paper: float
    seq_paper_fit: float | None
    seq_model: float
    seq_model_fit: float
    cells: dict = field(default_factory=dict)  # variant -> ComparisonCell


@dataclass
class TableComparison:
    name: str
    geometry: int
    dims: int
    columns: list
    rows: list = field(default_factory=list)

    def render(self) -> str:
        headers = ["n", "blk", "seq(paper)", "seq(model)"]
        for col in self.columns:
            headers += [f"{col} t", "sp", "t'", "sp'"]
        group = [("", 4)] + [(f"{c} (paper | model)", 4) for c in self.columns]
        table_rows = []
        for row in self.rows:
            cells = [row.n, row.ab, row.seq_paper, row.seq_model]
            for col in self.columns:
                cell = row.cells[col]
                cells += [cell.paper_time, cell.paper_speedup,
                          cell.model_time, cell.model_speedup]
            table_rows.append(cells)
        return render_table(headers, table_rows, title=self.name,
                            group_headers=group)

    def shape_report(self) -> list:
        """(claim, holds, detail) triples for the paper's qualitative claims."""
        report = []
        ordered = [c for c in (
            "navp-1d-dsc", "navp-1d-pipeline", "navp-1d-phase") if c in self.columns]
        ordered2 = [c for c in (
            "navp-2d-dsc", "navp-2d-pipeline", "navp-2d-phase") if c in self.columns]
        for row in self.rows:
            for chain in (ordered, ordered2):
                for earlier, later in zip(chain, chain[1:]):
                    a = row.cells[earlier].model_time
                    b = row.cells[later].model_time
                    report.append((
                        f"n={row.n}: {later} improves on {earlier}",
                        b < a,
                        f"{b:.2f} < {a:.2f}",
                    ))
            if "navp-1d-dsc" in row.cells:
                sp = row.cells["navp-1d-dsc"].model_speedup
                report.append((
                    f"n={row.n}: 1-D DSC runs near sequential speed",
                    0.85 <= sp <= 1.05,
                    f"speedup {sp:.2f}",
                ))
            if "mpi-gentleman" in row.cells and "navp-2d-phase" in row.cells:
                mpi = row.cells["mpi-gentleman"].model_time
                navp = row.cells["navp-2d-phase"].model_time
                report.append((
                    f"n={row.n}: NavP phase beats MPI Gentleman",
                    navp < mpi,
                    f"{navp:.2f} < {mpi:.2f}",
                ))
            for col, cell in row.cells.items():
                if (col, row.n, self.geometry) in _ANOMALOUS_CELLS:
                    continue
                # NavP columns are what the calibrated model targets;
                # the MPI/ScaLAPACK baselines get a wider band because
                # the real 2005 systems carry software overheads the
                # machine model deliberately does not include (see
                # EXPERIMENTS.md).
                tol = 0.30 if col.startswith("navp") else 0.40
                report.append((
                    f"n={row.n}: {col} speedup within {int(tol * 100)}% "
                    f"of paper",
                    1.0 - tol <= cell.speedup_ratio <= 1.0 + tol,
                    f"model {cell.model_speedup:.2f} vs paper "
                    f"{cell.paper_speedup:.2f}",
                ))
        return report

    def failed_shapes(self) -> list:
        return [r for r in self.shape_report() if not r[1]]


def build_table(
    paper: PaperTable,
    machine: MachineSpec | None = None,
    orders=None,
) -> TableComparison:
    """Run the simulation for every cell of a paper table."""
    machine = machine if machine is not None else SUN_BLADE_100
    columns: list = []
    for row in paper.rows:
        for col in row.variants:
            if col not in columns:
                columns.append(col)
    out = TableComparison(
        name=paper.name, geometry=paper.geometry, dims=paper.dims,
        columns=columns,
    )
    for prow in paper.rows:
        if orders is not None and prow.n not in orders:
            continue
        case = MatmulCase(n=prow.n, ab=prow.ab, shadow=True)
        seq_actual, thrash = sequential_time_model(prow.n, machine)
        baseline = seq_actual / thrash  # paging-free, like the paper's fit
        crow = ComparisonRow(
            n=prow.n, ab=prow.ab,
            seq_paper=prow.seq, seq_paper_fit=prow.seq_fit,
            seq_model=seq_actual, seq_model_fit=baseline,
        )
        for col, (paper_time, paper_speedup) in prow.variants.items():
            result = run_variant(col, case, geometry=paper.geometry,
                                 machine=machine, trace=False)
            crow.cells[col] = ComparisonCell(
                paper_time=paper_time,
                paper_speedup=paper_speedup,
                model_time=result.time,
                model_speedup=baseline / result.time,
            )
        out.rows.append(crow)
    return out


def build_table1(machine=None, orders=None) -> TableComparison:
    return build_table(TABLE1, machine=machine, orders=orders)


def build_table2(machine=None, orders=None) -> TableComparison:
    return build_table(TABLE2, machine=machine, orders=orders)


def build_table3(machine=None, orders=None) -> TableComparison:
    return build_table(TABLE3, machine=machine, orders=orders)


def build_table4(machine=None, orders=None) -> TableComparison:
    return build_table(TABLE4, machine=machine, orders=orders)
