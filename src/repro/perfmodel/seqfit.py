"""Reproduction of the paper's curve-fitted sequential baselines.

"In order to obtain fair speedup numbers, we calculate sequential
timing for large problems using least squared curve fitting with a
polynomial of order 3 using performance numbers collected with small
problems." (Section 5)

:func:`reproduce_fit` runs that procedure inside the model: simulate
the *actual* sequential times (which include paging once the working
set crosses physical memory), fit the cubic on the small, unpaged
orders, and extrapolate to the large ones. The extrapolations are then
compared with both the model's paging-free times (they should agree
essentially exactly — the unpaged model is cubic) and the paper's
starred values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.presets import SUN_BLADE_100
from ..machine.spec import MachineSpec
from ..matmul.sequential import sequential_time_model
from ..util.curvefit import PolynomialFit, fit_sequential_times

__all__ = ["SeqFitReport", "reproduce_fit"]


@dataclass
class SeqFitReport:
    fit: PolynomialFit
    fit_orders: tuple
    fit_times: tuple
    rows: list  # (n, actual_model, fitted_model, paging_free, paper_star)

    def render(self) -> str:
        lines = [
            "Cubic least-squares baseline reproduction "
            f"(fit on n = {', '.join(str(n) for n in self.fit_orders)})",
            f"{'n':>6} {'actual(model)':>14} {'fit(model)':>12} "
            f"{'paging-free':>12} {'paper*':>10}",
        ]
        for n, actual, fitted, free, star in self.rows:
            star_s = f"{star:10.2f}" if star is not None else "         -"
            lines.append(
                f"{n:6d} {actual:14.2f} {fitted:12.2f} {free:12.2f} {star_s}"
            )
        return "\n".join(lines)


def reproduce_fit(
    fit_orders=(768, 1536, 2304, 3072),
    eval_orders=(4608, 5376, 6144, 9216),
    paper_stars={4608: 1745.94, 5376: 2735.69, 6144: 4268.16,
                 9216: 13921.50},
    machine: MachineSpec | None = None,
) -> SeqFitReport:
    """Run the paper's baseline-fitting procedure against the model."""
    machine = machine if machine is not None else SUN_BLADE_100
    times = []
    for n in fit_orders:
        actual, _ = sequential_time_model(n, machine)
        times.append(actual)
    fit = fit_sequential_times(fit_orders, times, degree=3)
    rows = []
    for n in eval_orders:
        actual, thrash = sequential_time_model(n, machine)
        rows.append((
            n,
            actual,
            float(fit(n)),
            actual / thrash,
            paper_stars.get(n),
        ))
    return SeqFitReport(fit=fit, fit_orders=tuple(fit_orders),
                        fit_times=tuple(times), rows=rows)
