"""Reproduction of the paper's Figure 1: the transformation space-time
diagrams, regenerated from real execution traces.

Figure 1 of the paper is schematic — PEs across, time down, one label
per occupied cell — drawn for ``N = P = 3`` at fine granularity. We run
exactly that configuration (three strips on three PEs, so each carrier
is one of the paper's numbered threads) through the simulator for each
stage and render the traces with :mod:`repro.viz.spacetime`.

``figure1_report`` additionally extracts the quantitative signatures of
the four panels, which the tests assert:

* (a) sequential: a single PE computes everything;
* (b) DSC: exactly one PE computes at any instant, the locus moving;
* (c) pipelining: PEs overlap, but PE ``p`` starts only after the first
  carrier reaches it (staircase starts);
* (d) phase shifting: every PE computes from (essentially) time zero.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.presets import SUN_BLADE_100
from ..machine.spec import MachineSpec
from ..matmul.kinds import MatmulCase
from ..matmul.navp1d import run_dsc_1d, run_phase_1d, run_pipelined_1d
from ..matmul.sequential import run_sequential
from ..viz.spacetime import render_spacetime

__all__ = ["Figure1Panel", "build_figure1", "figure1_report"]


@dataclass
class Figure1Panel:
    label: str
    title: str
    time: float
    diagram: str
    first_starts: dict  # place -> first compute start
    overlap: bool       # did two PEs ever compute simultaneously?


def _overlapping(trace) -> bool:
    events = sorted(trace.of_kind("compute"), key=lambda e: e.t0)
    for i, a in enumerate(events):
        for b in events[i + 1 :]:
            if b.t0 >= a.t1:
                break
            if b.place != a.place:
                return True
    return False


def build_figure1(
    p: int = 3,
    ab: int = 64,
    machine: MachineSpec | None = None,
    buckets: int = 18,
) -> list:
    """Run the four stages at fine granularity and render each panel."""
    machine = machine if machine is not None else SUN_BLADE_100
    n = p * ab  # one strip per PE: the paper's N == P presentation
    case = MatmulCase(n=n, ab=ab, shadow=False)
    stages = [
        ("(a)", "Sequential", lambda: run_sequential(case, machine=machine)),
        ("(b)", "DSC", lambda: run_dsc_1d(case, p, machine=machine)),
        ("(c)", "DSC pipelining",
         lambda: run_pipelined_1d(case, p, machine=machine)),
        ("(d)", "DPC phase shifting",
         lambda: run_phase_1d(case, p, machine=machine)),
    ]
    panels = []
    for label, title, runner in stages:
        result = runner()
        panels.append(Figure1Panel(
            label=label,
            title=title,
            time=result.time,
            diagram=render_spacetime(
                result.trace, p if label != "(a)" else 1,
                buckets=buckets, title=f"Figure 1{label}: {title}",
            ),
            first_starts=result.trace.first_compute_start(),
            overlap=_overlapping(result.trace),
        ))
    return panels


def figure1_report(panels) -> list:
    """(claim, holds, detail) triples over the four panels."""
    a, b, c, d = panels
    report = [
        ("(a) sequential uses one PE", list(a.first_starts) == [0],
         str(sorted(a.first_starts))),
        ("(b) DSC computes on all PEs", len(b.first_starts) == 3,
         str(sorted(b.first_starts))),
        ("(b) DSC never overlaps compute", not b.overlap, ""),
        ("(c) pipelining overlaps compute", c.overlap, ""),
        ("(c) pipelined starts form a staircase",
         sorted(c.first_starts, key=c.first_starts.get)
         == sorted(c.first_starts),
         str(c.first_starts)),
        ("(d) phase shifting starts all PEs almost immediately",
         max(d.first_starts.values()) - min(d.first_starts.values())
         < 0.25 * d.time,
         str(d.first_starts)),
        ("each stage is an improvement (b >= c >= d)",
         b.time > c.time > d.time,
         f"{b.time:.3f} > {c.time:.3f} > {d.time:.3f}"),
    ]
    return report
