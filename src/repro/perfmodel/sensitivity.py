"""Sensitivity analysis: which conclusions depend on which constants.

The machine model has calibrated parameters (flop rate, bandwidth,
latency, per-hop state). A reproduction is only trustworthy if its
*qualitative* conclusions do not hinge on the exact values, so this
module perturbs each parameter across a band and re-evaluates the
paper's core shape claims:

1. the 1-D incremental chain is monotone (DSC > pipelined > phase);
2. the 2-D incremental chain is monotone;
3. 1-D DSC stays within 15% of sequential;
4. NavP 2-D phase beats straightforward MPI Gentleman.

The result is a claim-by-perturbation truth table; `bench_sensitivity`
prints it and asserts the claims hold across the calibrated
neighbourhood (claim 4 is known — and shown — to dissolve on much
faster networks; see ``bench_network_model``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.presets import SUN_BLADE_100
from ..machine.spec import MachineSpec, NetworkSpec
from ..matmul.kinds import MatmulCase
from ..matmul.runner import run_variant
from ..matmul.sequential import sequential_time_model

__all__ = ["Perturbation", "CLAIMS", "evaluate_claims",
           "sensitivity_sweep", "default_perturbations"]


@dataclass(frozen=True)
class Perturbation:
    label: str
    machine: MachineSpec


def default_perturbations(base: MachineSpec | None = None) -> list:
    base = base if base is not None else SUN_BLADE_100
    net = base.network

    def with_net(**kw):
        return base.with_(network=NetworkSpec(
            bandwidth_Bps=kw.get("bandwidth_Bps", net.bandwidth_Bps),
            latency_s=kw.get("latency_s", net.latency_s),
            small_message_bytes=net.small_message_bytes,
        ))

    return [
        Perturbation("calibrated", base),
        Perturbation("flops x0.5", base.with_(flop_rate=base.flop_rate / 2)),
        Perturbation("flops x2", base.with_(flop_rate=base.flop_rate * 2)),
        Perturbation("bandwidth x0.5",
                     with_net(bandwidth_Bps=net.bandwidth_Bps / 2)),
        Perturbation("bandwidth x1.5",
                     with_net(bandwidth_Bps=net.bandwidth_Bps * 1.5)),
        Perturbation("latency x10", with_net(latency_s=net.latency_s * 10)),
        Perturbation("latency /10", with_net(latency_s=net.latency_s / 10)),
        Perturbation("hop state x16",
                     base.with_(hop_state_bytes=base.hop_state_bytes * 16)),
    ]


def _times(machine: MachineSpec, n: int = 1536, ab: int = 128) -> dict:
    case = MatmulCase(n=n, ab=ab, shadow=True)
    variants = ("navp-1d-dsc", "navp-1d-pipeline", "navp-1d-phase",
                "navp-2d-dsc", "navp-2d-pipeline", "navp-2d-phase",
                "mpi-gentleman")
    out = {
        v: run_variant(v, case, geometry=3, machine=machine,
                       trace=False).time
        for v in variants
    }
    out["sequential"], _ = sequential_time_model(n, machine)
    return out


CLAIMS = {
    "1-D chain monotone": lambda t: (
        t["navp-1d-dsc"] > t["navp-1d-pipeline"] > t["navp-1d-phase"]),
    "2-D chain monotone": lambda t: (
        t["navp-2d-dsc"] > t["navp-2d-pipeline"] > t["navp-2d-phase"]),
    "DSC within 15% of sequential": lambda t: (
        t["navp-1d-dsc"] < 1.15 * t["sequential"]),
    "phase beats MPI": lambda t: (
        t["navp-2d-phase"] < t["mpi-gentleman"]),
}


def evaluate_claims(machine: MachineSpec) -> dict:
    times = _times(machine)
    return {claim: bool(check(times)) for claim, check in CLAIMS.items()}


def sensitivity_sweep(perturbations=None) -> list:
    """(label, {claim: holds}) rows across the perturbation set."""
    perturbations = perturbations or default_perturbations()
    return [(p.label, evaluate_claims(p.machine)) for p in perturbations]
