"""The paper's published numbers (Tables 1-4), transcribed verbatim.

Every entry is ``(time_seconds, speedup)`` as printed in the paper.
Starred sequential baselines (obtained by the authors via cubic
least-squares fits because the real runs thrash) are carried in
``seq_fit``; where absent, the measured time itself was the baseline.

These records drive the paper-vs-model comparison tables in
:mod:`repro.perfmodel.tables` and the shape assertions in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PaperRow", "PaperTable", "TABLE1", "TABLE2", "TABLE3", "TABLE4"]


@dataclass(frozen=True)
class PaperRow:
    n: int
    ab: int
    seq: float
    seq_fit: float | None = None  # the paper's starred value
    variants: dict = field(default_factory=dict)

    @property
    def baseline(self) -> float:
        """The sequential baseline the paper used for speedups."""
        return self.seq_fit if self.seq_fit is not None else self.seq


@dataclass(frozen=True)
class PaperTable:
    name: str
    geometry: int  # PE count (1-D) or grid order (2-D)
    dims: int      # 1 or 2
    rows: tuple


TABLE1 = PaperTable(
    name="Table 1: performance on 3 PEs (1-D)",
    geometry=3,
    dims=1,
    rows=(
        PaperRow(1536, 128, 65.44, None, {
            "navp-1d-dsc": (67.22, 0.97),
            "navp-1d-pipeline": (27.72, 2.36),
            "navp-1d-phase": (24.55, 2.67),
            "scalapack-1d": (26.80, 2.44),
        }),
        PaperRow(2304, 128, 219.71, None, {
            "navp-1d-dsc": (229.45, 0.96),
            "navp-1d-pipeline": (91.03, 2.41),
            "navp-1d-phase": (81.23, 2.70),
            "scalapack-1d": (82.83, 2.65),
        }),
        PaperRow(3072, 128, 520.30, None, {
            "navp-1d-dsc": (543.91, 0.96),
            "navp-1d-pipeline": (205.87, 2.53),
            "navp-1d-phase": (189.50, 2.75),
            "scalapack-1d": (211.45, 2.46),
        }),
        PaperRow(4608, 128, 1934.73, 1745.94, {
            "navp-1d-dsc": (1809.73, 0.96),
            "navp-1d-pipeline": (688.18, 2.54),
            "navp-1d-phase": (653.64, 2.67),
            "scalapack-1d": (767.91, 2.27),
        }),
        PaperRow(5376, 128, 3033.92, 2735.69, {
            "navp-1d-dsc": (2926.24, 0.93),
            "navp-1d-pipeline": (1151.07, 2.38),
            "navp-1d-phase": (990.05, 2.76),
            "scalapack-1d": (1173.46, 2.33),
        }),
        PaperRow(6144, 256, 5055.93, 4268.16, {
            "navp-1d-dsc": (4697.32, 0.91),
            "navp-1d-pipeline": (1811.77, 2.36),
            "navp-1d-phase": (1554.99, 2.74),
            "scalapack-1d": (1984.18, 2.15),
        }),
    ),
)

TABLE2 = PaperTable(
    name="Table 2: performance on 8 PEs (1-D DSC, out-of-core)",
    geometry=8,
    dims=1,
    rows=(
        PaperRow(9216, 128, 36534.49, 13921.50, {
            "navp-1d-dsc": (14959.42, 0.93),
        }),
    ),
)

TABLE3 = PaperTable(
    name="Table 3: performance on 2x2 PEs",
    geometry=2,
    dims=2,
    rows=(
        PaperRow(1024, 128, 19.49, None, {
            "mpi-gentleman": (6.02, 3.24),
            "navp-2d-dsc": (7.63, 2.55),
            "navp-2d-pipeline": (5.88, 3.31),
            "navp-2d-phase": (5.54, 3.52),
            "scalapack-summa": (5.23, 3.73),
        }),
        PaperRow(2048, 128, 158.51, None, {
            "mpi-gentleman": (50.99, 3.11),
            "navp-2d-dsc": (50.59, 3.13),
            "navp-2d-pipeline": (42.61, 3.72),
            "navp-2d-phase": (41.54, 3.82),
            "scalapack-summa": (45.53, 3.48),
        }),
        PaperRow(3072, 128, 520.30, None, {
            "mpi-gentleman": (157.53, 3.30),
            "navp-2d-dsc": (158.06, 3.29),
            "navp-2d-pipeline": (144.09, 3.61),
            "navp-2d-phase": (137.39, 3.79),
            "scalapack-summa": (156.27, 3.33),
        }),
        PaperRow(4096, 128, 1281.58, 1238.21, {
            "mpi-gentleman": (367.04, 3.37),
            "navp-2d-dsc": (362.73, 3.41),
            "navp-2d-pipeline": (328.98, 3.76),
            "navp-2d-phase": (321.70, 3.85),
            "scalapack-summa": (417.83, 2.96),
        }),
        PaperRow(5120, 128, 2727.86, 2373.32, {
            "mpi-gentleman": (733.91, 3.23),
            "navp-2d-dsc": (792.23, 3.00),
            "navp-2d-pipeline": (757.67, 3.13),
            "navp-2d-phase": (624.87, 3.80),
            "scalapack-summa": (907.16, 2.62),
        }),
    ),
)

TABLE4 = PaperTable(
    name="Table 4: performance on 3x3 PEs",
    geometry=3,
    dims=2,
    rows=(
        PaperRow(1536, 128, 65.44, None, {
            "mpi-gentleman": (10.97, 5.97),
            "navp-2d-dsc": (13.66, 4.79),
            "navp-2d-pipeline": (9.18, 7.13),
            "navp-2d-phase": (8.21, 7.97),
            "scalapack-summa": (8.08, 8.10),
        }),
        PaperRow(2304, 128, 219.71, None, {
            "mpi-gentleman": (29.95, 7.34),
            "navp-2d-dsc": (39.53, 5.56),
            "navp-2d-pipeline": (29.93, 7.34),
            "navp-2d-phase": (26.74, 8.22),
            "scalapack-summa": (29.39, 7.48),
        }),
        PaperRow(3072, 128, 520.30, None, {
            "mpi-gentleman": (82.25, 6.33),
            "navp-2d-dsc": (86.52, 6.01),
            "navp-2d-pipeline": (66.94, 7.77),
            "navp-2d-phase": (62.36, 8.34),
            "scalapack-summa": (70.92, 7.34),
        }),
        PaperRow(4608, 128, 1934.73, 1745.94, {
            "mpi-gentleman": (241.92, 7.22),
            "navp-2d-dsc": (268.41, 6.50),
            "navp-2d-pipeline": (220.28, 7.93),
            "navp-2d-phase": (205.68, 8.49),
            "scalapack-summa": (255.87, 6.82),
        }),
        PaperRow(5376, 128, 3033.92, 2735.69, {
            "mpi-gentleman": (437.27, 6.26),
            "navp-2d-dsc": (421.78, 6.49),
            "navp-2d-pipeline": (360.77, 7.58),
            "navp-2d-phase": (323.67, 8.45),
            "scalapack-summa": (398.50, 6.86),
        }),
        PaperRow(6144, 256, 5055.93, 4268.16, {
            "mpi-gentleman": (637.79, 6.69),
            "navp-2d-dsc": (745.18, 5.73),
            "navp-2d-pipeline": (584.85, 7.30),
            "navp-2d-phase": (510.29, 8.36),
            "scalapack-summa": (635.36, 6.72),
        }),
    ),
)
