"""Closed-form timing predictions, cross-checking the DES.

For every variant the simulator runs, a first-order analytic model
predicts the makespan from the same machine constants. These formulas
are deliberately simple — fill/drain terms plus dominant communication
— and the benchmark ``bench_analytic`` verifies that the discrete-event
results track them (they should agree to within ~15%; the DES resolves
contention and handshake effects the formulas wave away).

Notation: ``P`` PEs (or ``G x G``), matrix order ``n``, algorithmic
block order ``ab``, ``M = n/ab`` strips, ``db = n/G``.
"""

from __future__ import annotations

from ..machine.presets import SUN_BLADE_100
from ..machine.spec import MachineSpec
from ..matmul.sequential import sequential_time_model

__all__ = ["predict", "PREDICTORS"]


def _msg(machine: MachineSpec, nbytes: float) -> float:
    return machine.network.message_time(int(nbytes))


def predict_sequential(n, ab, geometry, machine):
    time, _ = sequential_time_model(n, machine)
    return time


def predict_dsc_1d(n, ab, p, machine):
    """One thread: all visits serialized, plus every strip hop."""
    m = n // ab
    visit = machine.gemm_time(ab, n, n // p)
    hop = _msg(machine, ab * n * machine.elem_size)
    return m * p * (visit + hop)


def predict_pipelined_1d(n, ab, p, machine):
    """Per-PE work plus pipeline fill, hops overlapped."""
    m = n // ab
    visit = machine.gemm_time(ab, n, n // p)
    hop = _msg(machine, ab * n * machine.elem_size)
    return (m + p - 1) * visit + (p - 1) * hop


def predict_phase_1d(n, ab, p, machine):
    """All PEs busy from the start; one staggering hop up front."""
    m = n // ab
    visit = machine.gemm_time(ab, n, n // p)
    hop = _msg(machine, ab * n * machine.elem_size)
    return m * visit + 2 * hop


def predict_dsc_2d(n, ab, g, machine):
    """Per grid row: a strip pipeline of depth g."""
    db = n // g
    strips = db // ab
    visit = machine.gemm_time(ab, n, db)
    colhop = _msg(machine, n * db * machine.elem_size)
    return (strips + g - 1) * visit + g * colhop


def predict_pipelined_2d(n, ab, g, machine):
    """k-slice pipeline of depth g per node."""
    db = n // g
    nk = n // ab
    slice_t = machine.gemm_time(db, ab, db)
    hop = _msg(machine, db * ab * machine.elem_size)
    return (nk + g - 1) * slice_t + g * hop


def predict_phase_2d(n, ab, g, machine):
    db = n // g
    nk = n // ab
    slice_t = machine.gemm_time(db, ab, db)
    hop = _msg(machine, db * ab * machine.elem_size)
    return nk * slice_t + 2 * hop


def predict_gentleman(n, ab, g, machine, cache_factor: float = 1.04):
    """Per round: a full local update plus the unoverlapped edge swap."""
    db = n // g
    a = db // ab
    nk = n // ab
    round_compute = machine.flops_time(a * a * 2.0 * ab**3, cache_factor)
    edge = _msg(machine, a * ab * ab * machine.elem_size)
    stagger = 2 * _msg(machine, db * db * machine.elem_size)
    return nk * (round_compute + 2 * edge) + stagger


def predict_summa(n, ab, g, machine):
    db = n // g
    nk = n // ab
    panel_compute = machine.gemm_time(db, ab, db)
    panel_bcast = (g - 1) * _msg(machine, db * ab * machine.elem_size)
    # the two broadcasts overlap each other but not the compute
    return nk * (panel_compute + panel_bcast)


PREDICTORS = {
    "sequential": predict_sequential,
    "navp-1d-dsc": predict_dsc_1d,
    "navp-1d-pipeline": predict_pipelined_1d,
    "navp-1d-phase": predict_phase_1d,
    "navp-2d-dsc": predict_dsc_2d,
    "navp-2d-pipeline": predict_pipelined_2d,
    "navp-2d-phase": predict_phase_2d,
    "mpi-gentleman": predict_gentleman,
    "scalapack-summa": predict_summa,
}


def predict(variant: str, n: int, ab: int, geometry: int,
            machine: MachineSpec | None = None) -> float:
    """Analytic makespan prediction for a variant (seconds)."""
    machine = machine if machine is not None else SUN_BLADE_100
    return PREDICTORS[variant](n, ab, geometry, machine)
