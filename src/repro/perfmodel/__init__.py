"""Performance reproduction: paper data, table builders, figures, analytics."""

from .analytic import PREDICTORS, predict
from .figures import Figure1Panel, build_figure1, figure1_report
from .paperdata import TABLE1, TABLE2, TABLE3, TABLE4, PaperRow, PaperTable
from .sensitivity import (
    CLAIMS,
    Perturbation,
    default_perturbations,
    evaluate_claims,
    sensitivity_sweep,
)
from .report import generate_report
from .seqfit import SeqFitReport, reproduce_fit
from .tables import (
    ComparisonCell,
    ComparisonRow,
    TableComparison,
    build_table,
    build_table1,
    build_table2,
    build_table3,
    build_table4,
)

__all__ = [
    "predict",
    "PREDICTORS",
    "build_figure1",
    "figure1_report",
    "Figure1Panel",
    "TABLE1",
    "TABLE2",
    "TABLE3",
    "TABLE4",
    "PaperRow",
    "PaperTable",
    "reproduce_fit",
    "generate_report",
    "SeqFitReport",
    "sensitivity_sweep",
    "evaluate_claims",
    "default_perturbations",
    "Perturbation",
    "CLAIMS",
    "build_table",
    "build_table1",
    "build_table2",
    "build_table3",
    "build_table4",
    "ComparisonCell",
    "ComparisonRow",
    "TableComparison",
]
