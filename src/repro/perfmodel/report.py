"""One-shot reproduction report: every table and figure in one text.

``python -m repro report`` (or :func:`generate_report`) regenerates
Tables 1-4, the Figure 1 claims, the staggering comparison, and the
curve-fit reproduction in a single run, and states which shape checks
passed — the whole paper, one command.
"""

from __future__ import annotations

import io

from ..machine.spec import MachineSpec
from ..matmul.staggering import staggering_comparison
from .figures import build_figure1, figure1_report
from .seqfit import reproduce_fit
from .tables import build_table1, build_table2, build_table3, build_table4

__all__ = ["generate_report"]


def generate_report(machine: MachineSpec | None = None,
                    quick: bool = False) -> str:
    """Regenerate the full evaluation; returns the report text.

    ``quick=True`` restricts each table to its smallest matrix order
    (useful for smoke runs); the default reproduces every row.
    """
    out = io.StringIO()
    total_checks = failed_checks = 0

    def section(title: str) -> None:
        out.write("\n" + "=" * 72 + "\n" + title + "\n" + "=" * 72 + "\n")

    for builder, quick_orders in (
        (build_table1, {1536}),
        (build_table2, {9216}),
        (build_table3, {1024}),
        (build_table4, {1536}),
    ):
        comparison = builder(machine=machine,
                             orders=quick_orders if quick else None)
        section(comparison.name)
        out.write(comparison.render() + "\n")
        report = comparison.shape_report()
        bad = [entry for entry in report if not entry[1]]
        total_checks += len(report)
        failed_checks += len(bad)
        out.write(f"shape checks: {len(report) - len(bad)}/{len(report)} "
                  f"passed\n")
        for claim, _ok, detail in bad:
            out.write(f"  FAILED: {claim} ({detail})\n")

    section("Figure 1: the transformation space-time diagrams")
    panels = build_figure1()
    for panel in panels:
        out.write(panel.diagram + "\n\n")
    fig_report = figure1_report(panels)
    bad = [entry for entry in fig_report if not entry[1]]
    total_checks += len(fig_report)
    failed_checks += len(bad)
    out.write(f"figure claims: {len(fig_report) - len(bad)}/"
              f"{len(fig_report)} hold\n")

    section("Section 5 item 3: staggering communication phases")
    out.write(f"{'n':>4} {'forward':>8} {'reverse':>8}\n")
    for n, fwd, rev in staggering_comparison(range(2, 13)):
        out.write(f"{n:4d} {fwd:8d} {rev:8d}\n")
        total_checks += 1
        if rev > 2:
            failed_checks += 1

    section("Curve-fitted sequential baselines (the starred values)")
    out.write(reproduce_fit(machine=machine).render() + "\n")

    section("Summary")
    out.write(f"{total_checks - failed_checks}/{total_checks} "
              f"reproduction checks passed\n")
    return out.getvalue()
