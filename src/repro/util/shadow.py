"""Shadow arrays: shape/dtype stand-ins that carry no data.

Reproducing the paper's Tables 1-4 requires simulating matrix orders up
to N = 9216. Executing the real block numerics at that scale would
dominate run time without affecting the *timing* results, because the
discrete-event fabric derives computation cost from flop counts and
communication cost from byte counts, never from wall-clock measurement.

A :class:`ShadowArray` mimics exactly the slice of NumPy semantics the
matmul messengers use — 2-D slicing, ``@``, ``+``, in-place ``+=``,
``.T``, ``.nbytes``, ``.shape``, ``.dtype`` — while storing no elements.
Algorithms written against this interface run unmodified in both
"execute" mode (real ``numpy.ndarray``) and "shadow" mode.

Shape rules follow NumPy; unsupported operations raise ``TypeError`` so
silent mis-simulation is impossible.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ShadowArray", "shadow_zeros", "shadow_like", "is_shadow"]

# np.dtype() is surprisingly costly; shadow arrays use a handful of
# dtypes, so normalize through a small cache.
_DTYPE_CACHE: dict = {}


def _as_dtype(dtype):
    try:
        cached = _DTYPE_CACHE.get(dtype)
    except TypeError:  # unhashable dtype spec
        return np.dtype(dtype)
    if cached is None:
        cached = _DTYPE_CACHE[dtype] = np.dtype(dtype)
    return cached


def _slice_length(s, dim: int) -> int:
    """Length of the result of indexing a dimension of size ``dim`` by ``s``."""
    if isinstance(s, int):
        if not -dim <= s < dim:
            raise IndexError(f"index {s} out of bounds for axis of size {dim}")
        return -1  # marker: dimension is dropped
    if isinstance(s, slice):
        start, stop, step = s.indices(dim)
        if step <= 0:
            raise TypeError("ShadowArray only supports positive slice steps")
        return max(0, (stop - start + step - 1) // step)
    raise TypeError(f"unsupported index type for ShadowArray: {type(s)!r}")


class ShadowArray:
    """An array that knows its shape and dtype but holds no data.

    Instances are immutable value objects, so derived arrays (slices,
    binop results, transposes) are *interned*: the fabric's inner loops
    slice the same blocks millions of times per table sweep, and
    handing back a pooled instance turns each of those into a dict hit.
    ``size``/``nbytes`` are precomputed at construction for the same
    reason (they feed every flop/byte cost estimate).
    """

    __slots__ = ("shape", "dtype", "size", "nbytes")

    def __init__(self, shape, dtype=np.float32):
        if isinstance(shape, int):
            shape = (shape,)
        shape = tuple(int(d) for d in shape)
        if any(d < 0 for d in shape):
            raise ValueError(f"negative dimension in shape {shape}")
        self.shape = shape
        self.dtype = _as_dtype(dtype)
        size = 1
        for d in shape:
            size *= d
        self.size = size
        self.nbytes = size * self.dtype.itemsize

    # -- metadata -----------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def T(self) -> "ShadowArray":
        return _make(self.shape[::-1], self.dtype)

    def __repr__(self) -> str:
        return f"ShadowArray(shape={self.shape}, dtype={self.dtype})"

    def copy(self) -> "ShadowArray":
        return _make(self.shape, self.dtype)

    def astype(self, dtype) -> "ShadowArray":
        return _make(self.shape, _as_dtype(dtype))

    # -- indexing -----------------------------------------------------
    def __getitem__(self, key) -> "ShadowArray":
        memo_key = None
        try:  # int/tuple-of-int keys (the hot case) memoize directly
            memo_key = (self.shape, self.dtype, key)
            cached = _GETITEM_CACHE.get(memo_key)
            if cached is not None:
                return cached
        except TypeError:  # slices are unhashable on this Python
            memo_key = None
        if not isinstance(key, tuple):
            key = (key,)
        ndim = len(self.shape)
        if len(key) > ndim:
            raise IndexError(
                f"too many indices ({len(key)}) for shape {self.shape}"
            )
        # pad with full slices
        key = key + (slice(None),) * (ndim - len(key))
        out = []
        for s, dim in zip(key, self.shape):
            length = _slice_length(s, dim)
            if length >= 0:
                out.append(length)
        result = _make(tuple(out), self.dtype)
        if memo_key is not None and len(_GETITEM_CACHE) < _POOL_CAP:
            _GETITEM_CACHE[memo_key] = result
        return result

    def __setitem__(self, key, value) -> None:
        # Validate that the shapes are compatible, then discard.
        target = self[key]
        vshape = getattr(value, "shape", None)
        if vshape is not None and tuple(vshape) != target.shape:
            # allow broadcasting of scalars / length-1 dims like numpy
            if not _broadcastable(tuple(vshape), target.shape):
                raise ValueError(
                    f"could not broadcast shape {vshape} into {target.shape}"
                )

    # -- arithmetic ---------------------------------------------------
    def _binop(self, other) -> "ShadowArray":
        if other.__class__ is ShadowArray and other.shape == self.shape:
            return _make(self.shape, self.dtype)
        oshape = getattr(other, "shape", ())
        return _make(_broadcast_shapes(self.shape, tuple(oshape)), self.dtype)

    __add__ = __radd__ = __sub__ = __rsub__ = _binop
    __mul__ = __rmul__ = __truediv__ = __rtruediv__ = _binop

    def __iadd__(self, other) -> "ShadowArray":
        if other.__class__ is ShadowArray and other.shape == self.shape:
            return self
        oshape = tuple(getattr(other, "shape", ()))
        if not _broadcastable(oshape, self.shape):
            raise ValueError(
                f"operands could not be broadcast: {self.shape} += {oshape}"
            )
        return self

    __isub__ = __iadd__

    def __matmul__(self, other) -> "ShadowArray":
        if len(self.shape) != 2 or getattr(other, "ndim", 0) != 2:
            raise TypeError("ShadowArray @ requires two 2-D operands")
        if self.shape[1] != other.shape[0]:
            raise ValueError(
                f"matmul shape mismatch: {self.shape} @ {other.shape}"
            )
        return _make((self.shape[0], other.shape[1]), self.dtype)

    def fill(self, value) -> None:
        """No-op; present for API parity with ``ndarray.fill``."""


# Interned instances and memoized slices, both capped so pathological
# workloads cannot grow the pools without bound.
_POOL_CAP = 4096
_INTERN: dict = {}
_GETITEM_CACHE: dict = {}


def _make(shape: tuple, dtype) -> ShadowArray:
    """Pooled constructor for already-validated (shape, np.dtype)."""
    key = (shape, dtype)
    arr = _INTERN.get(key)
    if arr is None:
        arr = object.__new__(ShadowArray)
        arr.shape = shape
        arr.dtype = dtype
        size = 1
        for d in shape:
            size *= d
        arr.size = size
        arr.nbytes = size * dtype.itemsize
        if len(_INTERN) < _POOL_CAP:
            _INTERN[key] = arr
    return arr


def _broadcast_shapes(a: tuple, b: tuple) -> tuple:
    """NumPy broadcasting of two shapes (raises ValueError on mismatch)."""
    out = []
    for da, db in zip(reversed((1,) * max(0, len(b) - len(a)) + a),
                      reversed((1,) * max(0, len(a) - len(b)) + b)):
        if da == db or da == 1 or db == 1:
            out.append(max(da, db))
        else:
            raise ValueError(f"shapes {a} and {b} are not broadcastable")
    return tuple(reversed(out))


def _broadcastable(src: tuple, dst: tuple) -> bool:
    try:
        return _broadcast_shapes(src, dst) == dst
    except ValueError:
        return False


def shadow_zeros(shape, dtype=np.float32) -> ShadowArray:
    """Shadow equivalent of :func:`numpy.zeros`."""
    return ShadowArray(shape, dtype)


def shadow_like(a) -> ShadowArray:
    """A shadow with the shape and dtype of an existing array."""
    return ShadowArray(a.shape, a.dtype)


def is_shadow(a) -> bool:
    return isinstance(a, ShadowArray)
