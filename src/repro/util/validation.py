"""Result verification helpers.

Every matmul variant in this library — including ones running on the
virtual-time simulator — can execute the real block numerics, and the
test suite verifies each against a NumPy reference through these
helpers.
"""

from __future__ import annotations

import numpy as np

from ..errors import VerificationError

__all__ = ["assert_allclose", "relative_error", "random_matrix"]


def relative_error(actual, expected) -> float:
    """Frobenius-norm relative error ``|actual - expected| / |expected|``."""
    actual = np.asarray(actual, dtype=float)
    expected = np.asarray(expected, dtype=float)
    denom = np.linalg.norm(expected)
    if denom == 0.0:
        return float(np.linalg.norm(actual))
    return float(np.linalg.norm(actual - expected) / denom)


def assert_allclose(actual, expected, rtol: float = 1e-10, what: str = "result"):
    """Raise :class:`VerificationError` if matrices differ beyond ``rtol``."""
    err = relative_error(actual, expected)
    if not np.isfinite(err) or err > rtol:
        raise VerificationError(
            f"{what} differs from reference: relative error {err:.3e} > {rtol:.1e}"
        )
    return err


def random_matrix(n: int, seed: int, dtype=np.float64):
    """Deterministic random test matrix (values in [-1, 1))."""
    rng = np.random.default_rng(seed)
    return (rng.random((n, n), dtype=np.float64) * 2.0 - 1.0).astype(dtype)
