"""Plain-text table rendering for benchmark and experiment reports.

All table/figure reproductions print through this module so the output
format is uniform: fixed-width columns, optional grouped headers (the
paper's tables group a "Time (s)" and "Speedup" column per variant),
and right-aligned numerics.
"""

from __future__ import annotations

__all__ = ["render_table", "format_value"]


def format_value(v, ndigits: int = 2) -> str:
    """Render a cell: floats with fixed decimals, None as blank."""
    if v is None:
        return ""
    if isinstance(v, float):
        return f"{v:.{ndigits}f}"
    return str(v)


def render_table(
    headers,
    rows,
    title: str | None = None,
    group_headers=None,
    ndigits: int = 2,
) -> str:
    """Render rows into an aligned text table.

    Parameters
    ----------
    headers:
        Column header strings.
    rows:
        Iterable of row sequences (same length as ``headers``).
    title:
        Optional title line printed above the table.
    group_headers:
        Optional list of ``(label, span)`` pairs describing a first
        header row that groups columns, e.g.
        ``[("", 2), ("Sequential", 2), ("NavP (1D DSC)", 2)]``.
    ndigits:
        Decimal places for float cells.
    """
    str_rows = [[format_value(c, ndigits) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    ncol = len(headers)
    for r in str_rows:
        if len(r) != ncol:
            raise ValueError(f"row has {len(r)} cells, expected {ncol}")

    widths = [len(h) for h in headers]
    for r in str_rows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))

    if group_headers is not None:
        if sum(span for _, span in group_headers) != ncol:
            raise ValueError("group header spans must cover all columns")
        # Widen columns if a group label is wider than its columns.
        idx = 0
        for label, span in group_headers:
            cur = sum(widths[idx : idx + span]) + 2 * (span - 1)
            need = len(label)
            while cur < need:
                widths[idx + (cur - need) % span] += 1
                cur += 1
            idx += span

    def fmt_row(cells) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    if group_headers is not None:
        parts = []
        idx = 0
        for label, span in group_headers:
            width = sum(widths[idx : idx + span]) + 2 * (span - 1)
            parts.append(label.center(width))
            idx += span
        lines.append("  ".join(parts).rstrip())
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append(fmt_row(r))
    return "\n".join(lines)
