"""Block partitioning helpers.

The paper distinguishes two nested levels of blocking (Section 3.6):

* **distribution blocks** — the unit of data distribution: with a
  ``G x G`` processor grid and matrix order ``n``, each distribution
  block is ``(n/G) x (n/G)`` and lives on one PE;
* **algorithmic blocks** — the unit of computation and of carrier
  payloads: each distribution block is further decomposed into
  ``ab x ab`` algorithmic blocks so that carriers can "spread out their
  computations to the entire network earlier" (Section 5).

These helpers compute the index arithmetic for both levels and expose
views (never copies) of NumPy arrays for a given block, following the
scientific-Python guidance to prefer views over copies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PartitionError

__all__ = [
    "Blocking",
    "block_view",
    "block_slices",
    "check_divides",
    "strip_rows",
    "strip_cols",
    "to_block_grid",
    "from_block_grid",
]


def check_divides(n: int, b: int, what: str = "block order") -> None:
    """Raise :class:`PartitionError` unless ``b`` evenly divides ``n``."""
    if b <= 0 or n <= 0:
        raise PartitionError(f"orders must be positive, got n={n}, {what}={b}")
    if n % b != 0:
        raise PartitionError(f"{what} {b} does not divide matrix order {n}")


def block_slices(i: int, j: int, b: int) -> tuple[slice, slice]:
    """Slices selecting block ``(i, j)`` of a matrix with block order ``b``."""
    return slice(i * b, (i + 1) * b), slice(j * b, (j + 1) * b)


def block_view(a, i: int, j: int, b: int):
    """A view of block ``(i, j)`` (block order ``b``) of array-like ``a``.

    Works for both :class:`numpy.ndarray` and
    :class:`repro.util.shadow.ShadowArray` since both support 2-D slicing.
    """
    si, sj = block_slices(i, j, b)
    return a[si, sj]


def strip_rows(a, i: int, b: int):
    """A view of the ``i``-th horizontal strip of height ``b``."""
    return a[i * b : (i + 1) * b, :]


def strip_cols(a, j: int, b: int):
    """A view of the ``j``-th vertical strip of width ``b``."""
    return a[:, j * b : (j + 1) * b]


def to_block_grid(a, b: int) -> list:
    """Split a 2-D array into a nested list of ``b x b`` block views.

    The nested-list representation is what makes "pointer swapping"
    (Section 4 of the paper) natural: shifting a row or column of
    algorithmic blocks is list rotation, no element copies.
    """
    rows, cols = a.shape
    check_divides(rows, b)
    check_divides(cols, b)
    return [
        [block_view(a, i, j, b) for j in range(cols // b)]
        for i in range(rows // b)
    ]


def from_block_grid(grid: list, out) -> None:
    """Write a nested list of blocks back into a full matrix ``out``."""
    if not grid or not grid[0]:
        raise PartitionError("empty block grid")
    b = grid[0][0].shape[0]
    for i, row in enumerate(grid):
        for j, blk in enumerate(row):
            out[i * b : (i + 1) * b, j * b : (j + 1) * b] = blk


@dataclass(frozen=True)
class Blocking:
    """Two-level blocking of an ``n x n`` matrix over a ``G``-sized grid axis.

    Parameters
    ----------
    n:
        Matrix order.
    grid:
        Number of PEs along the axis (``P`` for 1-D, ``G`` for one axis
        of a 2-D grid). The distribution block order is ``n // grid``.
    ab:
        Algorithmic block order; must divide the distribution block
        order.

    Attributes (derived)
    --------------------
    db:
        Distribution block order, ``n // grid``.
    blocks_per_db:
        Algorithmic blocks per distribution block along one axis.
    nblocks:
        Total algorithmic blocks along one axis, ``n // ab``.
    """

    n: int
    grid: int
    ab: int

    def __post_init__(self) -> None:
        check_divides(self.n, self.grid, "grid order")
        db = self.n // self.grid
        check_divides(db, self.ab, "algorithmic block order")

    @property
    def db(self) -> int:
        return self.n // self.grid

    @property
    def blocks_per_db(self) -> int:
        return self.db // self.ab

    @property
    def nblocks(self) -> int:
        return self.n // self.ab

    def owner(self, block_index: int) -> int:
        """Grid coordinate owning algorithmic block index ``block_index``."""
        if not 0 <= block_index < self.nblocks:
            raise PartitionError(
                f"block index {block_index} out of range [0, {self.nblocks})"
            )
        return block_index // self.blocks_per_db

    def local_index(self, block_index: int) -> int:
        """Index of the algorithmic block within its distribution block."""
        if not 0 <= block_index < self.nblocks:
            raise PartitionError(
                f"block index {block_index} out of range [0, {self.nblocks})"
            )
        return block_index % self.blocks_per_db

    def global_index(self, grid_coord: int, local: int) -> int:
        """Inverse of (:meth:`owner`, :meth:`local_index`)."""
        if not 0 <= grid_coord < self.grid:
            raise PartitionError(f"grid coord {grid_coord} out of range")
        if not 0 <= local < self.blocks_per_db:
            raise PartitionError(f"local index {local} out of range")
        return grid_coord * self.blocks_per_db + local
