"""Shared utilities: blocking, shadow arrays, curve fitting, tables."""

from .blocks import (
    Blocking,
    block_slices,
    block_view,
    check_divides,
    strip_cols,
    strip_rows,
)
from .curvefit import PolynomialFit, fit_polynomial, fit_sequential_times
from .shadow import ShadowArray, is_shadow, shadow_like, shadow_zeros
from .texttable import format_value, render_table
from .validation import assert_allclose, random_matrix, relative_error

__all__ = [
    "Blocking",
    "block_slices",
    "block_view",
    "check_divides",
    "strip_cols",
    "strip_rows",
    "PolynomialFit",
    "fit_polynomial",
    "fit_sequential_times",
    "ShadowArray",
    "is_shadow",
    "shadow_like",
    "shadow_zeros",
    "format_value",
    "render_table",
    "assert_allclose",
    "random_matrix",
    "relative_error",
]
