"""Least-squares polynomial curve fitting for sequential baselines.

The paper (Section 5) cannot time the sequential program at large
matrix orders without thrashing, so it estimates those baselines by a
least-squares fit of a *polynomial of order 3* to timings collected at
small orders, then uses the fitted values to compute speedups (the
starred entries of Tables 1-4).

This module reimplements that procedure. The fit is solved through the
normal equations on a Vandermonde basis scaled to [0, 1] for numerical
stability (matrix orders up to 9216 cubed would otherwise produce a
wildly ill-conditioned system).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PolynomialFit", "fit_polynomial", "fit_sequential_times"]


@dataclass(frozen=True)
class PolynomialFit:
    """A fitted polynomial ``t(x) = sum_k coeffs[k] * (x/scale)**k``."""

    coeffs: tuple
    scale: float
    degree: int

    def __call__(self, x):
        xs = np.asarray(x, dtype=float) / self.scale
        acc = np.zeros_like(xs)
        for c in reversed(self.coeffs):  # Horner
            acc = acc * xs + c
        return float(acc) if np.isscalar(x) or np.ndim(x) == 0 else acc

    def residuals(self, xs, ys):
        """Per-point residuals ``fit(x) - y``."""
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        return self(xs) - ys


def fit_polynomial(xs, ys, degree: int = 3) -> PolynomialFit:
    """Least-squares fit of a polynomial of the given degree.

    Parameters
    ----------
    xs, ys:
        Sample coordinates. Requires ``len(xs) >= degree + 1``.
    degree:
        Polynomial degree; the paper uses 3 (matmul time is cubic in
        the matrix order).
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.ndim != 1 or xs.shape != ys.shape:
        raise ValueError("xs and ys must be 1-D arrays of equal length")
    if len(xs) < degree + 1:
        raise ValueError(
            f"need at least {degree + 1} samples for degree {degree}, got {len(xs)}"
        )
    scale = float(np.max(np.abs(xs)))
    if scale == 0.0:
        raise ValueError("all sample abscissae are zero")
    v = np.vander(xs / scale, degree + 1, increasing=True)
    # Normal equations; for degree 3 on scaled data this is well posed.
    gram = v.T @ v
    rhs = v.T @ ys
    coeffs = np.linalg.solve(gram, rhs)
    return PolynomialFit(coeffs=tuple(float(c) for c in coeffs),
                         scale=scale, degree=degree)


def fit_sequential_times(orders, times, degree: int = 3) -> PolynomialFit:
    """Fit sequential run time vs. matrix order, as the paper does.

    Thin wrapper over :func:`fit_polynomial` that validates the inputs
    are positive and increasing, which timing series must be.
    """
    orders = np.asarray(orders, dtype=float)
    times = np.asarray(times, dtype=float)
    if np.any(orders <= 0) or np.any(times <= 0):
        raise ValueError("orders and times must be positive")
    if np.any(np.diff(orders) <= 0):
        raise ValueError("orders must be strictly increasing")
    return fit_polynomial(orders, times, degree=degree)
