"""``python -m repro.cli`` — same entry point as ``python -m repro``."""

import sys

from . import main

sys.exit(main())
