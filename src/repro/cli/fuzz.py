"""``repro fuzz-schedules`` — schedule perturbation checks."""

from __future__ import annotations


def configure(sub) -> None:
    fuzz_p = sub.add_parser(
        "fuzz-schedules",
        help="perturb simultaneous-event order across seeds: golden "
             "pipelines must stay bit-exact, the racy corpus must "
             "reproduce its statically predicted races")
    fuzz_p.add_argument("--seeds", type=int, default=20,
                        help="number of perturbation seeds (default 20)")
    fuzz_p.add_argument("--g", type=int, default=3,
                        help="grid order for the 2-D golden suites "
                             "(default 3)")
    fuzz_p.add_argument("--smoke", action="store_true",
                        help="fixed small seed set, a few seconds — "
                             "the CI tier-1 mode")
    fuzz_p.set_defaults(handler=_cmd_fuzz_schedules)


def _cmd_fuzz_schedules(args) -> int:
    from ..fabric.fuzz import fuzz_corpus, fuzz_golden_suites

    seeds = tuple(range(6)) if args.smoke else tuple(range(args.seeds))
    failures = 0

    print(f"schedule fuzzing: {len(seeds)} seed(s)\n")
    print("golden pipelines (results must be schedule-independent):")
    for check in fuzz_golden_suites(g=args.g, seeds=seeds):
        print(f"  {check.describe()}")
        if not check.ok:
            failures += 1

    print("\nracy corpus (dynamic findings must match the static report):")
    for result in fuzz_corpus(seeds=seeds):
        print(f"  {result.describe()}")
        for sig in sorted(result.unpredicted, key=repr):
            print(f"    unpredicted: {sig!r}")
        if not result.ok:
            failures += 1

    if failures:
        print(f"\n{failures} fuzzing check(s) FAILED")
        return 1
    print("\nall schedule-fuzzing checks passed")
    return 0
