"""``repro bench`` — the pinned performance suite."""

from __future__ import annotations

import sys


def configure(sub) -> None:
    bench_p = sub.add_parser(
        "bench", help="run the pinned performance suite")
    bench_p.add_argument("--out", default="benchmarks/out",
                         help="directory for BENCH_<date>.json snapshots "
                              "(default benchmarks/out)")
    bench_p.add_argument("--against", default=None,
                         help="snapshot to compare against (default: the "
                              "newest BENCH_*.json in --out)")
    bench_p.add_argument("--threshold", type=float, default=0.85,
                         help="regression threshold on the primary metric "
                              "ratio (default 0.85)")
    bench_p.add_argument("--smoke", action="store_true",
                         help="small sizes, <60 s — the CI tier-1 mode")
    bench_p.add_argument("--label", default="",
                         help="free-form label stored in the snapshot")
    bench_p.add_argument("--only", nargs="*", default=None,
                         help="run a subset of benchmarks by name")
    bench_p.add_argument("--no-write", action="store_true",
                         help="run and report without writing a snapshot")
    bench_p.add_argument("--repeats", type=int, default=3,
                         help="runs per benchmark; the fastest is kept "
                              "(default 3)")
    bench_p.set_defaults(handler=_cmd_bench)


def _cmd_bench(args) -> int:
    from ..perf import (
        compare_benches,
        find_previous,
        load_bench,
        render_report,
        run_suite,
        write_bench,
    )
    from ..perf.report import make_snapshot

    try:
        results = run_suite(smoke=args.smoke, only=args.only,
                            repeats=args.repeats)
    except KeyError as exc:
        print(f"unknown benchmark {exc.args[0]!r}", file=sys.stderr)
        return 2
    snapshot = make_snapshot(results, label=args.label, smoke=args.smoke)

    previous_path = args.against or find_previous(args.out)
    if previous_path is not None:
        comparison = compare_benches(snapshot, load_bench(previous_path),
                                     threshold=args.threshold)
        comparison["against"] = str(previous_path)
        snapshot["vs_baseline"] = comparison
    if not args.no_write:
        path = write_bench(snapshot, args.out)
        print(f"wrote {path}")
    print(render_report(snapshot))
    if snapshot.get("vs_baseline", {}).get("regressions"):
        return 1
    return 0
