"""``repro faults`` — the fault-injection and recovery demo."""

from __future__ import annotations


def configure(sub) -> None:
    faults_p = sub.add_parser(
        "faults",
        help="fault-injection demo: run a pipeline under crashes and "
             "message drops with recovery on, and show the result is "
             "bit-exact vs the clean run")
    faults_p.add_argument("--plan", default=None, metavar="PLAN.json",
                          help="fault-plan file (default: a seeded "
                               "random plan)")
    faults_p.add_argument("--seed", type=int, default=7,
                          help="seed for the generated plan (default 7)")
    faults_p.add_argument("--g", type=int, default=3,
                          help="grid order (default 3)")
    faults_p.add_argument("--no-recovery", action="store_true",
                          help="show what the same plan does without "
                               "recovery")
    faults_p.add_argument("--socket", action="store_true",
                          help="also SIGKILL a TCP-fabric worker; the "
                               "controller detects it by heartbeat "
                               "loss and recovers by respawn + replay")
    faults_p.add_argument("--process", action="store_true",
                          help="also SIGKILL a real worker process "
                               "mid-run and recover by respawn+replay")
    faults_p.set_defaults(handler=_cmd_faults)


def _cmd_faults(args) -> int:
    import numpy as np

    from ..matmul.ir2d import build_fig11, run_ir2d_suite
    from ..resilience import Crash, FaultPlan, injected
    from ..resilience.faults import STATS
    from ..util.validation import random_matrix

    if args.plan:
        plan = FaultPlan.from_file(args.plan)
    else:
        plan = FaultPlan.random(args.seed, places=args.g * args.g,
                                crashes=1, drops=2,
                                name=f"demo-{args.seed}")
    print(f"fault plan {plan.name or '(unnamed)'}: "
          f"{len(plan.crashes)} crash(es), "
          f"{len(plan.message_faults)} message fault(s), "
          f"{len(plan.slow_nodes)} slow node(s)")

    g = args.g
    n = 8 * g
    a, b = random_matrix(n, 220), random_matrix(n, 221)
    suite = build_fig11(g, a, b)

    _c, clean = run_ir2d_suite(suite, "sim")
    print(f"\nclean virtual time        {clean.time:.6f} s")

    for key in STATS:
        STATS[key] = 0
    with injected(plan, recovery=True):
        c, faulted = run_ir2d_suite(suite, "sim")
    exact = faulted.time == clean.time
    print(f"faulted, recovery on      {faulted.time:.6f} s  "
          f"({STATS['fired']} fault(s) fired, {STATS['masked']} masked"
          f"{', BIT-EXACT vs clean' if exact else ''})")
    numeric_ok = bool(np.allclose(c, a @ b))
    print(f"result vs NumPy           "
          f"{'correct' if numeric_ok else 'WRONG'}")
    status = 0 if (exact and numeric_ok) else 1

    if args.no_recovery:
        from ..errors import DeadlockError

        for key in STATS:
            STATS[key] = 0
        try:
            with injected(plan, recovery=False):
                run_ir2d_suite(suite, "sim")
            print("faulted, recovery off     run completed "
                  f"({STATS['lost']} messenger(s)/message(s) lost)")
        except DeadlockError as exc:
            first = str(exc).splitlines()[0]
            print(f"faulted, recovery off     deadlock: {first}")

    if args.process:
        from ..fabric.process import ProcessFabric
        from ..fabric.topology import Grid2D

        psuite = build_fig11(2, random_matrix(16, 220),
                             random_matrix(16, 221))
        kill_plan = FaultPlan(faults=(Crash(place=1, at_hop=2),),
                              name="sigkill-demo")
        fabric = ProcessFabric(Grid2D(2), timeout=60.0,
                               faults=kill_plan, trace=True)
        for coord, node_vars in psuite.layout.items():
            fabric.load(coord, **node_vars)
        for coord, event, eargs, count in psuite.initial_signals:
            fabric.signal_initial(coord, event, *eargs, count=count)
        fabric.inject((0, 0), psuite.entry.name)
        result = fabric.run()
        print("\nprocess fabric: SIGKILLed worker 1 at hop 2")
        for event in result.trace.faults() + result.trace.recoveries():
            print(f"  [{event.kind}] {event.note}")
        print(f"  run completed in {result.time:.3f} s wall "
              f"({sum(fabric.restarts.values())} respawn(s))")

    if args.socket:
        from ..fabric.socket import SocketFabric
        from ..fabric.topology import Grid2D

        ssuite = build_fig11(2, random_matrix(16, 220),
                             random_matrix(16, 221))
        kill_plan = FaultPlan(faults=(Crash(place=1, at_hop=2),),
                              name="sigkill-tcp-demo")
        fabric = SocketFabric(Grid2D(2), timeout=90.0,
                              faults=kill_plan, trace=True)
        for coord, node_vars in ssuite.layout.items():
            fabric.load(coord, **node_vars)
        for coord, event, eargs, count in ssuite.initial_signals:
            fabric.signal_initial(coord, event, *eargs, count=count)
        fabric.inject((0, 0), ssuite.entry.name)
        result = fabric.run()
        print("\nsocket fabric: SIGKILLed TCP worker 1 at hop 2; the "
              "controller noticed via heartbeat loss (phi-accrual), "
              "not a process handle")
        for event in result.trace.faults() + result.trace.recoveries():
            print(f"  [{event.kind}] {event.note}")
        print(f"  run completed in {result.time:.3f} s wall "
              f"({sum(fabric.restarts.values())} respawn(s), "
              f"{fabric.stale_frames} stale frame(s) dropped)")
    return status
