"""``repro datascan`` — the computation-to-data scan study."""

from __future__ import annotations


def configure(sub) -> None:
    ds_p = sub.add_parser("datascan",
                          help="computation-to-data scan study")
    ds_p.add_argument("--pes", type=int, default=8)
    ds_p.add_argument("--items", type=int, default=200_000,
                      help="items per PE")
    ds_p.set_defaults(handler=_cmd_datascan)


def _cmd_datascan(args) -> int:
    from ..datascan import (
        DataScanCase,
        histogram,
        run_navp_scan,
        run_ship_data,
        run_spmd_reduce,
    )

    case = DataScanCase(pes=args.pes, items_per_pe=args.items)
    query = histogram(64)
    ship = run_ship_data(case, query)
    scan = run_navp_scan(case, query)
    reduce_ = run_spmd_reduce(case, query)
    print(f"{query.name} over {args.pes} x {args.items:,} items")
    print(f"  ship-data    {ship.time:8.3f} s")
    print(f"  navp-scan    {scan.time:8.3f} s  "
          f"({ship.time / scan.time:.1f}x over shipping)")
    print(f"  spmd-reduce  {reduce_.time:8.3f} s")
    return 0
