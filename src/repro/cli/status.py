"""``repro status`` / ``repro shutdown`` — operate a serve daemon."""

from __future__ import annotations

import json
import sys


def configure(sub) -> None:
    st = sub.add_parser("status",
                        help="query a running serve daemon")
    st.add_argument("job", nargs="?", default=None,
                    help="job id for a single record (default: "
                         "daemon-wide summary)")
    _addr_args(st)
    st.add_argument("--resize", type=int, default=None, metavar="N",
                    help="grow/shrink the worker pool to N first")
    st.add_argument("--json", action="store_true")
    st.set_defaults(handler=_cmd_status)

    sh = sub.add_parser("shutdown",
                        help="stop a running serve daemon")
    _addr_args(sh)
    sh.add_argument("--now", action="store_true",
                    help="do not drain running jobs first")
    sh.set_defaults(handler=_cmd_shutdown)


def _addr_args(parser) -> None:
    parser.add_argument("--addr", default=None, help="daemon host:port")
    parser.add_argument("--addr-file", default=None, metavar="PATH",
                        help="read the daemon address from this file")


def _client(args):
    from ..serve.client import ServeClient, resolve_addr
    return ServeClient(resolve_addr(args.addr, args.addr_file))


def _cmd_status(args) -> int:
    from ..errors import ServeError

    try:
        with _client(args) as client:
            if args.resize is not None:
                size = client.resize(args.resize)
                print(f"pool resized to {size} worker(s)")
            out = client.status(args.job)
    except ServeError as exc:
        print(exc, file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(out, indent=2))
        return 0
    if args.job is not None:
        print(f"{out['job']}: {out['state']}"
              + (f" — {out['reason']}" if out.get("reason") else ""))
        if out.get("digest"):
            print(f"  digest   {out['digest']}")
            print(f"  verified {'yes' if out['ok'] else 'NO'}"
                  f"  restarts {out['restarts']}"
                  f"  wall {out['wall_s']:.3f}s")
        return 0
    pool, q = out["pool"], out["queue"]
    print(f"uptime {out['uptime_s']:.0f}s  pool {pool['size']} "
          f"worker(s), {pool['free']} free, {pool['respawns']} "
          f"respawn(s)")
    print(f"queue {q['depth']}/{q['max_depth']} pending"
          + (f" {q['by_tenant']}" if q["by_tenant"] else ""))
    print(f"jobs completed {out['completed']}  failed {out['failed']}  "
          f"rejected {out['rejected']}  "
          f"running {out['jobs'].get('running', 0)}")
    durability = out.get("durability")
    if durability:
        rec = durability["recovered"]
        led = durability["ledger"]
        print(f"durable at {durability['state_dir']}  "
              f"(session {rec['sessions'] + 1}"
              f"{', recovered from crash' if rec['unclean'] else ''}): "
              f"{rec['terminal']} finished / {rec['requeued']} queued / "
              f"{rec['resumed']} in-flight recovered; ledger "
              f"{led['appends']} append(s), {led['fsyncs']} fsync(s)")
    return 0


def _cmd_shutdown(args) -> int:
    from ..errors import ServeError

    try:
        with _client(args) as client:
            out = client.shutdown(drain=not args.now)
    except ServeError as exc:
        print(exc, file=sys.stderr)
        return 1
    print(f"daemon stopped ({out['drained']} job(s) drained, "
          f"{out['cancelled']} cancelled)")
    return 0
