"""``repro plan`` — derive a parallelization plan for a target.

The planner re-enacts the paper's Section 3 decision procedure
mechanically: enumerate every candidate transformation step, let the
affine dependence analyses veto the illegal ones, score the survivors
with the calibrated analytic model on a machine preset, apply the
winners, and validate the emitted IR bit-for-bit against the
sequential program on SimFabric. Exit status is 1 when no legal plan
exists or when validation fails, 0 on a validated plan.
"""

from __future__ import annotations

import json
import sys

from ..machine.presets import PRESETS, get_preset
from ..plan.targets import TARGETS


def configure(sub) -> None:
    plan_p = sub.add_parser(
        "plan",
        help="derive, score and validate a parallelization plan")
    plan_p.add_argument("target", choices=sorted(TARGETS),
                        help="program family to plan")
    plan_p.add_argument("--machine", default="sun-blade-100",
                        choices=sorted(PRESETS),
                        help="machine preset to score against "
                             "(default sun-blade-100, the paper's)")
    plan_p.add_argument("--geometry", type=int, default=None,
                        help="PE count (default: the target's paper "
                             "geometry)")
    plan_p.add_argument("--emit-ir", action="store_true",
                        help="also print the final stage's emitted "
                             "navigational IR")
    plan_p.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable plan (the golden-plan "
                             "schema) instead of the report")
    plan_p.add_argument("--no-validate", action="store_true",
                        help="skip the race-detector + SimFabric "
                             "golden-run validation of the winner")
    plan_p.set_defaults(handler=_cmd_plan)


def _cmd_plan(args) -> int:
    from ..errors import TransformError
    from ..plan import make_plan, plan_to_dict, render_plan

    machine = get_preset(args.machine)
    try:
        plan = make_plan(args.target, machine, geometry=args.geometry,
                         validate=not args.no_validate)
    except TransformError as exc:
        print(f"no legal plan: {exc}", file=sys.stderr)
        return 1
    if args.as_json:
        print(json.dumps(plan_to_dict(plan), indent=2, sort_keys=True))
    else:
        print(render_plan(plan, emit_ir=args.emit_ir), end="")
    val = plan.validation
    if val.get("ran") and not (val.get("race_free")
                               and val.get("bit_identical")):
        return 1
    return 0
