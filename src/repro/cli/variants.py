"""``repro variants`` — list the runnable matmul variants.

``--json`` emits one machine-readable record per variant: whether it
has a navigational-IR form (from the shared program catalog,
:mod:`repro.serve.catalog`), which fabrics can run it, and whether
the serve daemon accepts it — the same source of truth the daemon's
admission control and ``repro run --fabric`` consult, so a submit
script can discover what is runnable without hard-coding names.
"""

from __future__ import annotations

import json

from ..matmul import variant_names


def configure(sub) -> None:
    parser = sub.add_parser("variants",
                            help="list runnable matmul variants")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable records (IR form, "
                             "fabrics, serveability)")
    parser.set_defaults(handler=_cmd_variants)


def _cmd_variants(args) -> int:
    if not args.json:
        for name in variant_names():
            print(name)
        return 0
    from ..fabric.factory import FABRIC_KINDS
    from ..serve.catalog import IR_CATALOG
    records = []
    for name in variant_names():
        entry = IR_CATALOG.get(name)
        records.append({
            "name": name,
            "ir": entry is not None,
            "figure": entry.figure if entry else None,
            "description": entry.description if entry else None,
            # kinds beyond the simulator run the IR restatement; a
            # generator-only variant stays on the model
            "fabrics": list(FABRIC_KINDS) if entry else ["sim"],
            "serveable": entry is not None,
        })
    print(json.dumps({"variants": records}, indent=2))
    return 0
