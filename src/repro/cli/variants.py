"""``repro variants`` — list the runnable matmul variants."""

from __future__ import annotations

from ..matmul import variant_names


def configure(sub) -> None:
    parser = sub.add_parser("variants",
                            help="list runnable matmul variants")
    parser.set_defaults(handler=_cmd_variants)


def _cmd_variants(args) -> int:
    for name in variant_names():
        print(name)
    return 0
