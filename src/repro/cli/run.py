"""``repro run`` — run one matmul variant on the model or a fabric."""

from __future__ import annotations

import sys

from ..matmul import MatmulCase, run_variant, sequential_time_model, variant_names
from ..util.validation import assert_allclose


def configure(sub) -> None:
    run_p = sub.add_parser("run", help="run one variant on the model")
    run_p.add_argument("variant", choices=variant_names())
    run_p.add_argument("--n", type=int, default=1536,
                       help="matrix order (default 1536)")
    run_p.add_argument("--ab", type=int, default=128,
                       help="algorithmic block order (default 128)")
    run_p.add_argument("--geometry", type=int, default=3,
                       help="PE count (1-D) or grid order (2-D)")
    run_p.add_argument("--real", action="store_true",
                       help="execute the numerics and verify vs NumPy "
                            "(default: shadow mode, timing only)")
    run_p.add_argument("--faults", default=None, metavar="PLAN.json",
                       help="inject the faults described in a "
                            "fault-plan file (see docs/resilience.md)")
    run_p.add_argument("--fabric", default="sim",
                       choices=("sim", "thread", "process", "socket"),
                       help="execution substrate; kinds other than "
                            "'sim' run the variant's IR form with real "
                            "numerics and verify vs NumPy (supported "
                            "for the navp-2d-* and mpi-gentleman "
                            "variants)")
    run_p.add_argument("--no-recovery", action="store_true",
                       help="with --faults: let injected faults "
                            "actually destroy messengers instead of "
                            "masking them")
    run_p.set_defaults(handler=_cmd_run)


def _cmd_run_on_fabric(args) -> int:
    """Run a variant's IR restatement on a real substrate."""
    import time as time_mod
    from contextlib import nullcontext

    import numpy as np

    from ..fabric import fabric_capabilities
    from ..matmul import run_ir2d_suite
    from ..serve.catalog import IR_CATALOG, build_job_suite

    if args.variant not in IR_CATALOG:
        print(f"--fabric {args.fabric} needs an IR form; available for: "
              f"{', '.join(sorted(IR_CATALOG))}", file=sys.stderr)
        return 2
    # validate the request against the fabric's capability set up
    # front, instead of failing deep inside the run
    needed = {"ir-inject"}
    if args.faults:
        needed.add("fault-injection")
    missing = needed - fabric_capabilities(args.fabric)
    if missing:
        print(f"the {args.fabric} fabric cannot run this request; "
              f"missing capabilities: {', '.join(sorted(missing))}",
              file=sys.stderr)
        return 2
    if args.faults:
        from ..resilience import FaultPlan, injected
        context = injected(FaultPlan.from_file(args.faults),
                           recovery=not args.no_recovery)
    else:
        context = nullcontext()
    g = args.geometry
    ab = max(args.n // g, 1)
    suite, a, b = build_job_suite(args.variant, g, seed=220, ab=ab)
    t0 = time_mod.perf_counter()
    with context:
        c, result = run_ir2d_suite(suite, args.fabric, trace=True)
    wall = time_mod.perf_counter() - t0
    ok = bool(np.allclose(c, a @ b))
    print(f"{args.variant} ({suite.name}) on the {args.fabric} fabric: "
          f"g={g} ab={ab}")
    print(f"  wall time      {wall:10.3f} s")
    print(f"  transfers      {result.trace.message_count():10d} "
          f"logical block transfer(s)")
    transport = result.trace.transport()
    if transport:
        hwm = result.trace.mailbox_hwm()
        print(f"  transport      mailbox high-water "
              f"{max(hwm.values())} frame(s) across "
              f"{len(transport)} worker(s)")
    print(f"  result vs NumPy {'correct' if ok else 'WRONG'}")
    return 0 if ok else 1


def _cmd_run(args) -> int:
    if args.fabric != "sim":
        return _cmd_run_on_fabric(args)
    case = MatmulCase(n=args.n, ab=args.ab, shadow=not args.real)
    if args.faults:
        from ..resilience import FaultPlan, injected
        from ..resilience.faults import STATS

        plan = FaultPlan.from_file(args.faults)
        for key in STATS:
            STATS[key] = 0
        context = injected(plan, recovery=not args.no_recovery)
    else:
        from contextlib import nullcontext

        context = nullcontext()
    with context:
        result = run_variant(args.variant, case, geometry=args.geometry,
                             trace=False)
    seq, thrash = sequential_time_model(args.n)
    baseline = seq / thrash
    print(f"{args.variant}: n={args.n} ab={args.ab} "
          f"geometry={args.geometry}")
    print(f"  modeled time   {result.time:10.3f} s")
    print(f"  speedup        {baseline / result.time:10.2f} "
          f"(vs paging-free sequential {baseline:.2f} s)")
    if args.real and result.c is not None:
        err = assert_allclose(result.c, case.reference())
        print(f"  verified vs NumPy (relative error {err:.2e})")
    if args.faults:
        from ..resilience.faults import STATS

        print(f"  faults         {STATS['fired']} fired, "
              f"{STATS['masked']} masked, {STATS['lost']} lost")
    return 0
