"""``repro wavefront`` — the wavefront extension study."""

from __future__ import annotations


def configure(sub) -> None:
    wf_p = sub.add_parser("wavefront", help="the wavefront extension")
    wf_p.add_argument("--n", type=int, default=4096)
    wf_p.add_argument("--block", type=int, default=64)
    wf_p.add_argument("--pes", type=int, default=4)
    wf_p.set_defaults(handler=_cmd_wavefront)


def _cmd_wavefront(args) -> int:
    from ..wavefront import (
        WavefrontCase,
        run_dsc_wavefront,
        run_pipelined_wavefront,
        run_sequential_wavefront,
    )

    case = WavefrontCase(n=args.n, b=args.block, shadow=True)
    seq = run_sequential_wavefront(case, trace=False).time
    dsc = run_dsc_wavefront(case, args.pes, trace=False).time
    pipe = run_pipelined_wavefront(case, args.pes, trace=False).time
    print(f"wavefront n={args.n} block={args.block} on {args.pes} PEs")
    print(f"  sequential {seq:8.3f} s")
    print(f"  DSC        {dsc:8.3f} s  (speedup {seq / dsc:.2f})")
    print(f"  pipelined  {pipe:8.3f} s  (speedup {seq / pipe:.2f})")
    return 0
