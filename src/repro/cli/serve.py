"""``repro serve`` — run the persistent multi-tenant job service.

Foreground daemon: binds, forks the warm worker pool, prints (and
optionally writes) its address, then serves until ``repro shutdown``
or Ctrl-C. See docs/serving.md for the architecture and protocol.
"""

from __future__ import annotations


def configure(sub) -> None:
    p = sub.add_parser("serve",
                       help="run the multi-tenant job service daemon")
    p.add_argument("--pool", type=int, default=4,
                   help="warm worker processes (default 4)")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (default: ephemeral)")
    p.add_argument("--addr-file", default=None, metavar="PATH",
                   help="write host:port here once bound (what "
                        "submit/status scripts read)")
    p.add_argument("--window", type=int, default=32,
                   help="per-worker credit window (default 32)")
    p.add_argument("--queue-depth", type=int, default=64,
                   help="admission queue bound (default 64)")
    p.add_argument("--tenant-cap", type=int, default=8,
                   help="per-tenant in-flight job cap (default 8)")
    p.add_argument("--job-timeout", type=float, default=60.0,
                   help="per-job wall-clock bound in seconds")
    p.add_argument("--max-restarts", type=int, default=2,
                   help="per-job worker respawn budget (default 2)")
    p.add_argument("--checkpoint-every", type=int, default=8,
                   help="quiescent checkpoint cadence in forwarded "
                        "hops (default 8)")
    p.add_argument("--chaos", action="store_true",
                   help="enable the kill-worker chaos verb (CI fault "
                        "drills)")
    p.add_argument("--no-mc-admission", action="store_true",
                   help="skip the static protocol-deadlock gate at "
                        "admission")
    p.set_defaults(handler=_cmd_serve)


def _cmd_serve(args) -> int:
    from ..serve import ServeService

    service = ServeService(
        pool_size=args.pool, port=args.port, window=args.window,
        max_depth=args.queue_depth, tenant_cap=args.tenant_cap,
        job_timeout_s=args.job_timeout, max_restarts=args.max_restarts,
        checkpoint_every=args.checkpoint_every, chaos=args.chaos,
        mc_admission=not args.no_mc_admission,
    )
    host, port = service.start()
    print(f"repro serve: listening on {host}:{port} "
          f"(pool {args.pool}, window {args.window})", flush=True)
    if args.addr_file:
        with open(args.addr_file, "w", encoding="utf-8") as fh:
            fh.write(f"{host}:{port}\n")
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: interrupted, tearing down", flush=True)
        service.shutdown(drain=False)
    print("repro serve: stopped", flush=True)
    return 0
