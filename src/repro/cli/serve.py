"""``repro serve`` — run the persistent multi-tenant job service.

Foreground daemon: binds, forks the warm worker pool, prints (and
optionally writes) its address, then serves until ``repro shutdown``,
SIGTERM (graceful drain), or Ctrl-C. With ``--state-dir`` the daemon
is durable: every job transition is write-ahead logged, and a restart
on the same directory recovers queued, in-flight, and finished jobs.
See docs/serving.md for the architecture, protocol, and durability
model.
"""

from __future__ import annotations

import os
import signal
import threading


def configure(sub) -> None:
    p = sub.add_parser("serve",
                       help="run the multi-tenant job service daemon")
    p.add_argument("--pool", type=int, default=4,
                   help="warm worker processes (default 4)")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (default: ephemeral)")
    p.add_argument("--addr-file", default=None, metavar="PATH",
                   help="write pid:host:port here once bound (what "
                        "submit/status scripts read; the pid lets "
                        "clients detect a stale file)")
    p.add_argument("--state-dir", default=None, metavar="DIR",
                   help="durable control plane: write-ahead log + "
                        "checkpoints here; restart on the same dir "
                        "recovers all jobs")
    p.add_argument("--window", type=int, default=32,
                   help="per-worker credit window (default 32)")
    p.add_argument("--queue-depth", type=int, default=64,
                   help="admission queue bound (default 64)")
    p.add_argument("--tenant-cap", type=int, default=8,
                   help="per-tenant in-flight job cap (default 8)")
    p.add_argument("--job-timeout", type=float, default=60.0,
                   help="per-job wall-clock bound in seconds")
    p.add_argument("--max-restarts", type=int, default=2,
                   help="per-job worker respawn budget (default 2)")
    p.add_argument("--checkpoint-every", type=int, default=8,
                   help="quiescent checkpoint cadence in forwarded "
                        "hops (default 8)")
    p.add_argument("--chaos", action="store_true",
                   help="enable the kill-worker chaos verb (CI fault "
                        "drills)")
    p.add_argument("--no-mc-admission", action="store_true",
                   help="skip the static protocol-deadlock gate at "
                        "admission")
    p.set_defaults(handler=_cmd_serve)


def _cmd_serve(args) -> int:
    from ..serve import ServeService

    service = ServeService(
        pool_size=args.pool, port=args.port, window=args.window,
        max_depth=args.queue_depth, tenant_cap=args.tenant_cap,
        job_timeout_s=args.job_timeout, max_restarts=args.max_restarts,
        checkpoint_every=args.checkpoint_every, chaos=args.chaos,
        mc_admission=not args.no_mc_admission, state_dir=args.state_dir,
    )
    host, port = service.start()
    recovered = service.recovery_summary
    extra = ""
    if args.state_dir:
        extra = (f", state {args.state_dir}"
                 f"{' [recovering]' if recovered['unclean'] else ''}")
        if recovered["terminal"] or recovered["requeued"] \
                or recovered["resumed"]:
            print(f"repro serve: recovered {recovered['terminal']} "
                  f"finished, {recovered['requeued']} queued, "
                  f"{recovered['resumed']} in-flight job(s) from the "
                  f"ledger", flush=True)
    print(f"repro serve: listening on {host}:{port} "
          f"(pool {args.pool}, window {args.window}{extra})", flush=True)
    if args.addr_file:
        with open(args.addr_file, "w", encoding="utf-8") as fh:
            fh.write(f"{os.getpid()}:{host}:{port}\n")

    def _drain(signum, frame):  # noqa: ARG001 - signal signature
        # graceful degradation: stop admitting, let running jobs
        # finish, flush + cleanly close the ledger. Runs off the
        # signal frame so a slow drain cannot wedge signal delivery.
        print("repro serve: SIGTERM, draining", flush=True)
        threading.Thread(target=service.shutdown,
                         kwargs={"drain": True}, daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: interrupted, tearing down", flush=True)
        service.shutdown(drain=False)
    print("repro serve: stopped", flush=True)
    return 0
