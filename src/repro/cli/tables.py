"""``repro table`` / ``repro figure1`` / ``repro report`` — the
paper's tables and figures."""

from __future__ import annotations

from ..perfmodel import (
    build_figure1,
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    figure1_report,
)


def configure(sub) -> None:
    table_p = sub.add_parser("table", help="regenerate a paper table")
    table_p.add_argument("number", type=int, choices=[1, 2, 3, 4])
    table_p.set_defaults(handler=_cmd_table)

    fig_p = sub.add_parser("figure1",
                           help="regenerate the Figure 1 panels")
    fig_p.set_defaults(handler=_cmd_figure1)

    rep_p = sub.add_parser("report",
                           help="regenerate the whole evaluation at once")
    rep_p.add_argument("--quick", action="store_true",
                       help="smallest matrix order per table only")
    rep_p.set_defaults(handler=_cmd_report)


def _cmd_table(args) -> int:
    builder = {1: build_table1, 2: build_table2,
               3: build_table3, 4: build_table4}[args.number]
    comparison = builder()
    print(comparison.render())
    failures = comparison.failed_shapes()
    if failures:
        print("\nshape check failures:")
        for claim, _ok, detail in failures:
            print(f"  {claim}: {detail}")
        return 1
    print("\nshape checks: all passed")
    return 0


def _cmd_figure1(args) -> int:
    panels = build_figure1()
    for panel in panels:
        print(panel.diagram)
        print(f"(makespan {panel.time:.4f} s)\n")
    bad = [claim for claim, ok, _d in figure1_report(panels) if not ok]
    if bad:
        print("failed claims:", "; ".join(bad))
        return 1
    print("all Figure 1 claims hold")
    return 0


def _cmd_report(args) -> int:
    from ..perfmodel.report import generate_report

    text = generate_report(quick=args.quick)
    print(text)
    return 0 if "FAILED" not in text else 1
