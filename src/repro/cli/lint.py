"""``repro lint`` — static analysis of registered IR programs.

Exit codes (the contract CI drivers rely on):

``0``
    no errors (warnings are allowed unless ``--strict``); in
    ``--corpus`` mode, every known defect was caught.
``1``
    at least one error diagnostic (or warning with ``--strict``), or a
    corpus defect the analyses missed.
``2``
    usage: unknown program names, or nothing to lint.

``--json`` replaces the human-readable listing with one JSON object::

    {"mode": "lint", "programs": [...],
     "diagnostics": [{"severity", "category", "program", "path",
                      "message"}, ...],
     "loops": {PROGRAM: {"loop": VAR, "dependences": [
         {"kind", "space", "var", "src", "dst", "carried",
          "distance", "direction", "exact", "reason"}, ...]}},
     "summary": {"programs", "errors", "warnings", "notes"},
     "exit_code": 0|1}

``loops`` appears only with ``--loop VAR`` and exposes the affine
engine's raw distance/direction vectors (``distance`` is null when
only the direction is known). Statement paths are JSON lists in the
:func:`repro.navp.ir.body_at` convention, with branch steps rendered
as ``[index, "then"|"else"]``. Corpus mode (``--corpus --json``)
instead reports ``{"mode": "corpus", "cases": [...], "caught",
"total", "exit_code"}``.

``--protocol-mc`` adds a ``protocol_mc`` object mapping each linted
*root* to its :meth:`ModelCheckResult.to_json` verdict: ``status``,
``deadlock_free``, ``max_mailbox_depth``/``window``/``bounded``,
state-space ``stats`` (states explored, POR ``reduction_factor``,
per-pass breakdown), and the concrete ``counterexample`` schedule when
one exists (replayable on SimFabric — see ``docs/analysis.md``).
"""

from __future__ import annotations

import json
import sys


def configure(sub) -> None:
    lint_p = sub.add_parser(
        "lint", help="statically analyze registered IR programs")
    lint_p.add_argument("programs", nargs="*",
                        help="program names to lint (after seeding the "
                             "paper programs); default with --all: "
                             "every registered program")
    lint_p.add_argument("--all", action="store_true", dest="lint_all",
                        help="lint every registered program")
    lint_p.add_argument("--g", type=int, default=3,
                        help="grid order used to seed the paper "
                             "programs (default 3)")
    lint_p.add_argument("--loop", default=None,
                        help="also run the loop dependence analysis "
                             "over this loop variable in each linted "
                             "program that has it")
    lint_p.add_argument("--corpus", action="store_true",
                        help="run the known-bad corpus instead and "
                             "check every defect is caught")
    lint_p.add_argument("--races", action="store_true",
                        help="also run the static data-race analysis "
                             "over every linted root program's "
                             "injection closure")
    lint_p.add_argument("--protocol-mc", action="store_true",
                        dest="protocol_mc",
                        help="also model-check every linted root "
                             "program's injection closure for "
                             "deadlock-freedom, bounded mailboxes, and "
                             "orphan signals (in --corpus mode the "
                             "liveness cases already run it)")
    lint_p.add_argument("--mc-states", type=int, default=200_000,
                        help="state cap per model-checking pass "
                             "(default 200000)")
    lint_p.add_argument("--mc-deadline", type=float, default=5.0,
                        help="wall-clock cap in seconds per "
                             "model-checking pass (default 5.0)")
    lint_p.add_argument("--strict", action="store_true",
                        help="treat warnings as errors for the exit "
                             "status")
    lint_p.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable report on stdout "
                             "(see the repro.cli.lint docstring for "
                             "the schema)")
    lint_p.set_defaults(handler=_cmd_lint)


def _path_json(path: tuple) -> list:
    return [list(step) if isinstance(step, tuple) else step
            for step in path]


def _diag_json(diag) -> dict:
    return {
        "severity": diag.severity,
        "category": diag.category,
        "program": diag.program,
        "path": _path_json(diag.path),
        "message": diag.message,
    }


def _vector_json(dep) -> dict:
    out = {
        "kind": dep.kind,
        "space": dep.space,
        "var": dep.var,
        "src": _path_json(dep.src),
        "dst": _path_json(dep.dst),
        "carried": dep.carried,
        "detail": dep.detail,
    }
    if dep.vector is not None:
        out.update({
            "distance": dep.vector.distance,
            "direction": dep.vector.direction,
            "exact": dep.vector.exact,
            "reason": dep.vector.reason,
        })
    return out


def _cmd_corpus(args) -> int:
    from ..analysis.corpus import verify_corpus
    from ..viz.irprint import format_diagnostic

    results = verify_corpus()
    failures = sum(1 for _case, _report, hit in results if not hit)
    if args.as_json:
        print(json.dumps({
            "mode": "corpus",
            "cases": [
                {"name": case.name, "category": case.category,
                 "expect_clean": case.expect_clean,
                 "ok": hit,
                 "diagnostics": [_diag_json(d) for d in report]}
                for case, report, hit in results
            ],
            "ok": len(results) - failures,
            "total": len(results),
            "exit_code": 1 if failures else 0,
        }, indent=2, sort_keys=True))
        return 1 if failures else 0
    for case, report, hit in results:
        if case.expect_clean:
            status = "clean" if hit else "FALSE POSITIVE"
        else:
            status = "caught" if hit else "MISSED"
        print(f"{case.name} [{case.category}]: {status}")
        for diag in report:
            print(format_diagnostic(diag, registry=case.registry))
    print(f"\n{len(results) - failures}"
          f"/{len(results)} corpus checks passed")
    return 1 if failures else 0


def _cmd_lint(args) -> int:
    from ..analysis import lint as lint_mod
    from ..analysis.deps import analyze_loop, loop_diagnostics
    from ..analysis.diagnostics import DiagnosticReport
    from ..errors import AnalysisError
    from ..navp import ir
    from ..viz.irprint import format_diagnostic

    if args.corpus:
        return _cmd_corpus(args)

    layouts = lint_mod.seed_paper_programs(args.g)
    if args.lint_all:
        names = sorted(ir.REGISTRY)
    elif args.programs:
        unknown = [n for n in args.programs if n not in ir.REGISTRY]
        if unknown:
            print(f"unknown program(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        names = args.programs
    else:
        print("nothing to lint: name programs or pass --all "
              "(registered programs: "
              f"{', '.join(sorted(ir.REGISTRY))})", file=sys.stderr)
        return 2

    report = lint_mod.lint_registry(names, layouts=layouts)
    if args.races:
        from ..analysis.lint import _injected_names
        from ..analysis.races import race_diagnostics

        injected = _injected_names(ir.REGISTRY)
        extra = DiagnosticReport()
        for name in names:
            if name not in injected:  # roots carry their closures
                extra.extend(race_diagnostics(ir.get_program(name)))
        report.extend(extra)
    protocol_mc: dict = {}
    if args.protocol_mc:
        from ..analysis.lint import _injected_names, paper_mc_contexts
        from ..analysis.lint import root_entry_coord
        from ..analysis.protocol_mc import mc_diagnostics, model_check

        contexts = paper_mc_contexts(args.g)
        injected = _injected_names(ir.REGISTRY)
        extra = DiagnosticReport()
        for name in names:
            if name in injected:  # roots carry their closures
                continue
            prog = ir.get_program(name)
            ctx = contexts.get(name, {})
            kwargs = dict(
                entry=ctx.get("entry", root_entry_coord(prog)),
                initial_signals=ctx.get("initial_signals", ()),
                max_states=args.mc_states,
                deadline_s=args.mc_deadline)
            res = model_check(name, **kwargs)
            extra.extend(mc_diagnostics(prog, result=res, **kwargs))
            protocol_mc[name] = res.to_json()
        report.extend(extra)
    loops: dict = {}
    if args.loop:
        extra = DiagnosticReport()
        for name in names:
            try:
                analysis = analyze_loop(ir.get_program(name), args.loop)
                extra.extend(loop_diagnostics(ir.get_program(name),
                                              args.loop))
            except AnalysisError:
                continue  # no unique loop over that variable: skip
            loops[name] = {
                "loop": args.loop,
                "dependences": [_vector_json(d)
                                for d in analysis.dependences],
            }
        report.extend(extra)

    errors, warnings = len(report.errors), len(report.warnings)
    code = 1 if errors or (args.strict and warnings) else 0
    if args.as_json:
        payload = {
            "mode": "lint",
            "programs": list(names),
            "diagnostics": [_diag_json(d) for d in report],
            "summary": {
                "programs": len(names),
                "errors": errors,
                "warnings": warnings,
                "notes": len(report) - errors - warnings,
            },
            "exit_code": code,
        }
        if args.loop:
            payload["loops"] = loops
        if args.protocol_mc:
            payload["protocol_mc"] = protocol_mc
        print(json.dumps(payload, indent=2, sort_keys=True))
        return code

    for diag in report:
        print(format_diagnostic(diag))
    print(f"\n{len(names)} program(s) linted: {errors} error(s), "
          f"{warnings} warning(s), "
          f"{len(report) - errors - warnings} note(s)")
    return code
