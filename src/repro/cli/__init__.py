"""Command-line interface: ``python -m repro <command>``.

MESSENGERS lets a programmer "inject a migrating thread at command
line"; this is the reproduction's equivalent front door — run any
variant on the modeled cluster, regenerate any of the paper's tables
or figures, plan a parallelization, or list what is available, without
writing a script.

Each command lives in its own module under :mod:`repro.cli`; a module
contributes a ``configure(sub)`` hook that registers its subparser(s)
and binds a handler. :func:`build_parser` and :func:`main` stay
importable from ``repro.cli`` exactly as before the split.

Commands
--------
``variants [--json]``              list runnable matmul variants;
                                   ``--json`` adds each variant's IR
                                   form, fabrics and serveability from
                                   the shared program catalog
``run VARIANT [--n --ab --geometry --real --fabric KIND]``
                                   run one variant; ``--real`` executes
                                   the numerics and verifies vs NumPy;
                                   ``--fabric thread|process|socket``
                                   executes the variant's IR form on a
                                   real substrate (up to worker
                                   processes behind TCP)
``table {1,2,3,4}``                regenerate a paper table
``figure1``                        regenerate the space-time panels
``staggering [--max-n N]``         the Section 5 phase-count comparison
``wavefront [--n --block --pes]``  the wavefront extension study
``plan TARGET [--machine PRESET --geometry N --emit-ir --json]``
                                   derive a parallelization plan: the
                                   affine analyses enumerate and gate
                                   the candidate transformations, the
                                   analytic model scores them on the
                                   machine preset, and the winner is
                                   validated bit-for-bit on SimFabric
                                   (see docs/analysis.md)
``lint [PROGRAMS...] [--all --json]``
                                   statically analyze registered IR
                                   programs (dependences, hop
                                   locality, wait/signal protocol;
                                   ``--races`` adds the static
                                   data-race analysis, ``--loop VAR``
                                   the loop dependence vectors,
                                   ``--json`` a machine-readable
                                   report)
``fuzz-schedules [--seeds --smoke]``
                                   perturb simultaneous-event order:
                                   golden pipelines must stay
                                   bit-exact and the racy corpus must
                                   reproduce its predicted races
``bench [--smoke --against ...]``  run the pinned performance suite,
                                   write ``BENCH_<date>.json``, and
                                   compare against the previous
                                   snapshot (see docs/performance.md)
``faults [--plan --process --socket ...]``
                                   fault-injection demo: crashes and
                                   drops are masked by recovery and
                                   the virtual-time result stays
                                   bit-exact; ``--process`` SIGKILLs
                                   a real worker and recovers it;
                                   ``--socket`` does the same over TCP,
                                   detecting the kill by heartbeat
                                   loss (see docs/resilience.md)
``serve [--pool N --port P --addr-file PATH --chaos]``
                                   run the persistent multi-tenant job
                                   service: a warm pool of socket-
                                   fabric workers leased to submitted
                                   jobs, with admission control,
                                   tenant fairness and checkpoint/
                                   restart recovery (docs/serving.md)
``submit PROGRAM [--tenant --priority --wait --json ...]``
                                   submit one job to a running daemon
                                   (``--addr host:port`` or
                                   ``--addr-file PATH``)
``status [JOB] [--resize N --json]``
                                   daemon summary or one job record;
                                   ``--resize`` grows/shrinks the pool
``shutdown [--now]``               stop the daemon (draining running
                                   jobs unless ``--now``)

Exit codes
----------
Every command uses the same convention (``repro lint`` documents it as
its contract for CI drivers):

``0``  success — no errors (warnings allowed unless ``--strict``)
``1``  findings — lint errors, corpus misses, failed shape checks,
       benchmark regressions, or a plan whose validation failed
``2``  usage — unknown program/target names, missing arguments
"""

from __future__ import annotations

import argparse
import sys

from . import (
    bench,
    datascan,
    faults,
    fuzz,
    lint,
    plan,
    run,
    serve,
    staggering,
    status,
    submit,
    tables,
    variants,
    wavefront,
)

__all__ = ["main", "build_parser"]

# registration order == ``repro --help`` listing order
_MODULES = (variants, run, tables, staggering, wavefront, datascan,
            plan, lint, fuzz, faults, bench, serve, submit, status)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Incremental Parallelization Using "
                    "Navigational Programming' (ICPP 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for module in _MODULES:
        module.configure(sub)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
