"""``repro submit`` — submit one job to a running serve daemon.

Exit codes: 0 submitted (and, with ``--wait``, completed); 1 the
daemon rejected or failed the job; 2 the program is unknown (the
error lists what the daemon can run — the same catalog ``repro
variants --json`` shows).
"""

from __future__ import annotations

import json
import sys


def configure(sub) -> None:
    p = sub.add_parser("submit",
                       help="submit a job to a running serve daemon")
    p.add_argument("program", help="catalog program name (see "
                                   "'repro variants --json')")
    p.add_argument("--addr", default=None, help="daemon host:port")
    p.add_argument("--addr-file", default=None, metavar="PATH",
                   help="read the daemon address from this file")
    p.add_argument("--g", type=int, default=2,
                   help="grid order (g*g logical PEs, default 2)")
    p.add_argument("--seed", type=int, default=0,
                   help="input matrix seed (default 0)")
    p.add_argument("--ab", type=int, default=4,
                   help="algorithmic block order (default 4)")
    p.add_argument("--workers", type=int, default=2,
                   help="pool workers to lease (default 2)")
    p.add_argument("--tenant", default="default",
                   help="tenant name for fairness and caps")
    p.add_argument("--priority", type=int, default=0,
                   help="higher dispatches sooner (default 0)")
    p.add_argument("--idempotency-key", default=None, metavar="KEY",
                   help="exactly-once handle: resubmitting with the "
                        "same key returns the original job instead of "
                        "running a duplicate (default: auto-generated "
                        "per invocation)")
    p.add_argument("--wait", action="store_true",
                   help="block until the job finishes")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="--wait bound in seconds (default 60)")
    p.add_argument("--json", action="store_true",
                   help="print the job record as JSON")
    p.set_defaults(handler=_cmd_submit)


def _cmd_submit(args) -> int:
    from ..errors import AdmissionError, ServeError
    from ..serve.client import ServeClient, resolve_addr

    try:
        addr = resolve_addr(args.addr, args.addr_file)
    except ServeError as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        with ServeClient(addr) as client:
            try:
                info = client.submit_info(
                    args.program, idempotency_key=args.idempotency_key,
                    g=args.g, seed=args.seed, ab=args.ab,
                    workers=args.workers, tenant=args.tenant,
                    priority=args.priority)
                jid = info["job"]
            except AdmissionError as exc:
                print(f"rejected: {exc}", file=sys.stderr)
                return 2 if "unknown program" in str(exc) else 1
            if not args.wait:
                if args.json:
                    print(json.dumps(info))
                else:
                    suffix = " (deduped)" if info.get("deduped") else ""
                    print(f"{jid}{suffix}")
                return 0
            record = client.wait(jid, timeout=args.timeout)
    except ServeError as exc:
        print(exc, file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(record, indent=2))
    else:
        line = f"{record['job']}: {record['state']}"
        if record.get("digest"):
            line += f" digest={record['digest'][:16]}…"
        if record.get("recovered"):
            line += f" (recovered, {record['restarts']} respawn(s))"
        if record.get("reason"):
            line += f" — {record['reason']}"
        print(line)
    return 0 if record["state"] == "completed" else 1
