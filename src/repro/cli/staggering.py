"""``repro staggering`` — the Section 5 phase-count comparison."""

from __future__ import annotations

from ..matmul import staggering_comparison


def configure(sub) -> None:
    stag_p = sub.add_parser("staggering",
                            help="forward vs reverse staggering phases")
    stag_p.add_argument("--max-n", type=int, default=16)
    stag_p.set_defaults(handler=_cmd_staggering)


def _cmd_staggering(args) -> int:
    print(f"{'n':>4} {'forward':>8} {'reverse':>8}")
    for n, fwd, rev in staggering_comparison(range(2, args.max_n + 1)):
        print(f"{n:4d} {fwd:8d} {rev:8d}")
    print("\nreverse staggering never needs more than 2 phases; forward "
          "needs 3\nunless n is a power of two (Section 5, item 3).")
    return 0
