"""Resilience: deterministic fault injection, checkpointing, recovery.

The subsystem has three layers, each usable alone:

* :mod:`repro.resilience.faults` — declarative, seeded
  :class:`FaultPlan` (crash / drop / duplicate / delay / slow-node)
  with a JSON round trip and the ambient :func:`injected` context.
* :mod:`repro.resilience.checkpoint` — hop-boundary messenger
  snapshots and Chandy–Lamport-style :class:`ConsistentCut` capture,
  with in-memory and on-disk stores.
* :mod:`repro.resilience.recovery` — :class:`RecoveryPolicy`
  (retry/backoff), :class:`DedupFilter` (exactly-once from
  at-least-once), :class:`ReplayLedger` (respawn replay).

See ``docs/resilience.md`` for the fault-plan schema, the snapshot
protocol, and the recovery guarantees per fabric.
"""

from .faults import (
    Crash,
    FaultPlan,
    MessageFault,
    PlanRuntime,
    SlowNode,
    STATS,
    ambient,
    injected,
)
from .checkpoint import (
    CheckpointStore,
    ConsistentCut,
    DiskStore,
    MemoryStore,
    restore_cut,
    resume_from_cut,
)
from .recovery import DedupFilter, RecoveryPolicy, ReplayLedger

__all__ = [
    "Crash",
    "MessageFault",
    "SlowNode",
    "FaultPlan",
    "PlanRuntime",
    "injected",
    "ambient",
    "STATS",
    "ConsistentCut",
    "CheckpointStore",
    "MemoryStore",
    "DiskStore",
    "restore_cut",
    "resume_from_cut",
    "RecoveryPolicy",
    "DedupFilter",
    "ReplayLedger",
]
