"""Recovery policy: retries, backoff, dedup, and replay ledgers.

The pieces the fabrics share when they mask faults:

* :class:`RecoveryPolicy` — how hard to try. On ``SimFabric`` retries
  are *modeled* (``retry_cost_s`` of virtual time per attempt — zero by
  default so golden tables stay bit-exact under masked faults); on the
  thread/process fabrics ``backoff_s``/``backoff_factor`` are real
  sleeps between redelivery attempts.
* :class:`DedupFilter` — at-least-once delivery (retries, duplicated
  messages, replay after respawn) is turned back into exactly-once
  processing by keying every transfer with a ``(messenger, sequence)``
  pair and dropping the ones already seen. Thread-safe: the thread and
  process fabrics consult it from delivery threads.
* :class:`ReplayLedger` — the controller-side journal of everything
  sent to each failure domain since its last checkpoint, so a respawned
  worker can be replayed deterministically.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["RecoveryPolicy", "DedupFilter", "ReplayLedger"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """How a fabric responds to injected (or real) delivery failures."""

    enabled: bool = True
    max_retries: int = 3
    backoff_s: float = 0.01
    backoff_factor: float = 2.0
    retry_cost_s: float = 0.0  # virtual seconds per retry on SimFabric

    def __post_init__(self):
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff_s < 0 or self.retry_cost_s < 0:
            raise ConfigurationError("backoff/retry costs must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1.0")

    def delays(self) -> list:
        """Real-time sleeps before each retry attempt."""
        out, delay = [], self.backoff_s
        for _ in range(self.max_retries):
            out.append(delay)
            delay *= self.backoff_factor
        return out

    def jittered_delays(self, seed=None) -> list:
        """Exponential backoff with full jitter, for reconnection.

        Retrying peers that fail together also back off together; the
        classic fix is to draw each sleep uniformly from (0, ceiling]
        while the ceiling grows exponentially ("full jitter"). Seeded,
        so a fabric can make its reconnect schedule reproducible.
        """
        import random
        rng = random.Random(seed)
        return [d * rng.uniform(0.1, 1.0) for d in self.delays()]

    @classmethod
    def coerce(cls, value) -> "RecoveryPolicy":
        """Accept a policy, a bool, or None (-> default-enabled)."""
        if value is None or value is True:
            return cls()
        if value is False:
            return cls(enabled=False)
        if isinstance(value, cls):
            return value
        raise ConfigurationError(
            f"recovery must be a RecoveryPolicy or bool, got {value!r}")


class DedupFilter:
    """Record delivery keys; report whether each is the first sighting."""

    __slots__ = ("_seen", "_lock", "duplicates")

    def __init__(self):
        self._seen: set = set()
        self._lock = threading.Lock()
        self.duplicates = 0

    def first(self, key) -> bool:
        """True exactly once per key; later sightings count as dups."""
        with self._lock:
            if key in self._seen:
                self.duplicates += 1
                return False
            self._seen.add(key)
            return True

    def forget(self, key) -> None:
        with self._lock:
            self._seen.discard(key)

    def __len__(self) -> int:
        with self._lock:
            return len(self._seen)


class ReplayLedger:
    """Per-domain journal of deliveries since the last checkpoint.

    The process-fabric controller appends every payload it routes to a
    worker; on respawn it replays the journal into the fresh queue (the
    worker's :class:`DedupFilter` — rebuilt from the checkpoint — keeps
    replayed-but-already-processed work from running twice). ``clear``
    is called when a checkpoint covering the domain lands.
    """

    __slots__ = ("_entries",)

    def __init__(self):
        self._entries: dict = {}

    def append(self, domain, payload) -> None:
        self._entries.setdefault(domain, []).append(payload)

    def entries(self, domain) -> list:
        return list(self._entries.get(domain, ()))

    def clear(self, domain) -> None:
        self._entries.pop(domain, None)

    def truncate(self, domain, n: int) -> None:
        """Drop the first ``n`` entries — the ones a just-committed
        checkpoint now covers — keeping everything journaled since."""
        kept = self._entries.get(domain)
        if kept is not None:
            del kept[:n]

    def domains(self) -> list:
        return list(self._entries)

    def __len__(self) -> int:
        return sum(len(v) for v in self._entries.values())
