"""Checkpointing: hop-boundary snapshots and coordinated consistent cuts.

Two granularities, both exploiting the paper's central primitive — a
messenger that carries its full computation state on every ``hop()`` is,
by construction, its own checkpoint:

* **Messenger snapshots.** At every hop/wait/signal/inject boundary the
  fabric records the messenger's pickled state (for IR messengers,
  exactly the ``(program, env, stack)`` continuation that already ships
  across OS processes). A crashed messenger restarts from its last
  boundary; the compute segment since then is re-executed — at-least
  once semantics, safe because NavP compute kernels are deterministic
  functions of node + agent variables.

* **Consistent cuts.** A Chandy–Lamport-style coordinated snapshot of
  the whole fabric: per-PE node variables, event counts, mailbox
  contents, in-flight transfers, and every live messenger's boundary
  snapshot, all captured at a single virtual time on ``SimFabric``
  (where virtual time gives us a free global barrier: a cut *at time t*
  is consistent by definition) and at task-queue quiescence per worker
  on ``ProcessFabric`` (marker messages processed between tasks, so no
  continuation is ever split by the cut).

Stores are pluggable: :class:`MemoryStore` for tests and the simulator,
:class:`DiskStore` for process runs that must survive the controller.
"""

from __future__ import annotations

import copy
import hashlib
import os
import pickle
from dataclasses import dataclass, field
from typing import Any

from ..errors import ResilienceError

__all__ = [
    "ConsistentCut",
    "CheckpointStore",
    "MemoryStore",
    "DiskStore",
    "restore_cut",
    "resume_from_cut",
]


@dataclass
class ConsistentCut:
    """A coordinated snapshot of fabric state at one instant.

    ``places`` maps place index -> deep-copied node variables;
    ``events`` maps place index -> event-count table; ``mailboxes``
    maps place index -> pending point-to-point messages; ``in_flight``
    holds transfers captured on the channels (the Chandy–Lamport
    channel state); ``messengers`` maps messenger name -> its boundary
    snapshot (pickled bytes or an interpreter continuation).
    """

    time: float
    places: dict = field(default_factory=dict)
    events: dict = field(default_factory=dict)
    mailboxes: dict = field(default_factory=dict)
    in_flight: list = field(default_factory=list)
    messengers: dict = field(default_factory=dict)
    label: str = ""

    def __len__(self) -> int:
        return len(self.places)


class CheckpointStore:
    """Interface: keep cuts (and ad-hoc payloads) by key."""

    def save(self, key: str, payload: Any) -> None:
        raise NotImplementedError

    def load(self, key: str) -> Any:
        raise NotImplementedError

    def keys(self) -> list:
        raise NotImplementedError

    def latest(self) -> Any:
        """The most recently saved payload (None when empty)."""
        keys = self.keys()
        return self.load(keys[-1]) if keys else None

    def try_load(self, key: str, default: Any = None) -> Any:
        """:meth:`load`, but ``default`` instead of an error when the
        key has never been saved (e.g. a resumed job that crashed
        before its first committed checkpoint)."""
        try:
            return self.load(key)
        except ResilienceError:
            return default


class MemoryStore(CheckpointStore):
    """In-memory store; the default for SimFabric and tests.

    ``copy_payloads=True`` deep-copies on save *and* load so a restored
    run cannot alias (and silently corrupt) the stored cut — the mode
    rollback tests rely on. Reference mode is for crash *masking*,
    where the fabric restores at the same instant it captured and
    aliasing is exactly what keeps golden times intact.
    """

    def __init__(self, copy_payloads: bool = True):
        self.copy_payloads = copy_payloads
        self._data: dict = {}
        self._order: list = []

    def save(self, key: str, payload: Any) -> None:
        if key not in self._data:
            self._order.append(key)
        self._data[key] = (copy.deepcopy(payload) if self.copy_payloads
                           else payload)

    def load(self, key: str) -> Any:
        try:
            payload = self._data[key]
        except KeyError:
            raise ResilienceError(f"no checkpoint under key {key!r}")
        return copy.deepcopy(payload) if self.copy_payloads else payload

    def keys(self) -> list:
        return list(self._order)


class DiskStore(CheckpointStore):
    """Pickle-per-checkpoint store under ``root``.

    File names are SHA-1 of the key (keys may hold slashes/colons); a
    plain-text ``index`` file preserves save order and the mapping back
    to human-readable keys.

    ``save`` returns only after the bundle is fsync'd (file, then the
    rename via a directory sync): callers write a record elsewhere —
    the serve daemon's ``ckpt`` ledger line — advertising that this cut
    exists, and that record must never outlive the bundle across a
    power loss.
    """

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._index_path = os.path.join(root, "index")

    def _path(self, key: str) -> str:
        digest = hashlib.sha1(key.encode()).hexdigest()
        return os.path.join(self.root, digest + ".ckpt")

    def _sync_dir(self) -> None:
        fd = os.open(self.root, os.O_RDONLY)
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - fs without dir fsync
            pass
        finally:
            os.close(fd)

    def save(self, key: str, payload: Any) -> None:
        path = self._path(key)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)  # atomic: a crash never leaves a torn file
        if key not in self.keys():
            with open(self._index_path, "a") as fh:
                fh.write(key + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        self._sync_dir()

    def load(self, key: str) -> Any:
        path = self._path(key)
        if not os.path.exists(path):
            raise ResilienceError(f"no checkpoint under key {key!r}")
        with open(path, "rb") as fh:
            return pickle.load(fh)

    def keys(self) -> list:
        if not os.path.exists(self._index_path):
            return []
        with open(self._index_path) as fh:
            return [line.rstrip("\n") for line in fh if line.strip()]


def restore_cut(fabric, cut: ConsistentCut) -> list:
    """Roll a ``SimFabric`` back to ``cut`` and return the messengers
    to re-inject.

    Node variables, event counts, and mailbox contents are restored
    from the cut's (deep-copied) payloads; in-flight transfers are
    re-deposited at their destinations (they were captured *on the
    channel*, so on rollback they have, logically, just arrived).
    Returns ``(name, place_index, snapshot, pending)`` tuples — the
    caller resumes each via
    :meth:`repro.navp.interp.IRMessenger.resume` (or just calls
    :func:`resume_from_cut`, which does all of it).
    """
    from ..fabric.sim import SimFabric  # lazy: avoid import cycle

    if not isinstance(fabric, SimFabric):
        raise ResilienceError(
            f"restore_cut targets a SimFabric, got {type(fabric).__name__}")
    if set(cut.places) - set(range(len(fabric.places))):
        raise ResilienceError(
            "cut was captured on a fabric with different places")
    for index, node_vars in cut.places.items():
        place = fabric.places[index]
        place.vars.clear()
        place.vars.update(copy.deepcopy(node_vars))
    for index, counts in cut.events.items():
        place = fabric.places[index]
        place.events.clear()
        for (name, args), count in counts.items():
            sem = place.event(name, args)
            if count:
                sem.release(count)
    for index, pending in cut.mailboxes.items():
        mailbox = fabric.places[index].mailbox
        mailbox._pending.clear()
        mailbox._waiters.clear()
        for message in copy.deepcopy(pending):
            mailbox.deposit(message)
    for dst_index, message in copy.deepcopy(cut.in_flight):
        fabric.places[dst_index].mailbox.deposit(message)
    return [(name, place_index, copy.deepcopy(snapshot),
             copy.deepcopy(pending))
            for name, (place_index, snapshot, pending)
            in cut.messengers.items()]


def resume_from_cut(fabric, cut: ConsistentCut):
    """Restore ``cut`` onto a fresh fabric and re-inject the surviving
    continuations; the caller then just runs the fabric. The restored
    run starts a new virtual timeline (time restarts at zero) but
    recomputes the same values: continuations are resumed at the exact
    boundary the cut recorded, re-performing the one effect the cut
    interrupted."""
    from ..navp.interp import IRMessenger  # lazy: avoid import cycle

    for name, place_index, snapshot, pending in restore_cut(fabric, cut):
        messenger = IRMessenger.resume(snapshot, pending=pending)
        fabric.inject(fabric.places[place_index].coord, messenger)
    return fabric
